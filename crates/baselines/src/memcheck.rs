//! A Valgrind/Memcheck-class checker (the paper's §7.1 mentions Valgrind as
//! the other widely-used dynamic tool).
//!
//! Memcheck differs from Purify in mechanism and cost profile:
//!
//! * the program runs under **dynamic binary interpretation** — *every*
//!   instruction pays a translation/dispatch multiple, not just memory
//!   accesses;
//! * freed blocks go into a **quarantine** instead of being reused at once,
//!   so use-after-free is caught long after the free (at the price of
//!   higher memory pressure);
//! * small **redzones** around each buffer catch adjacent overflows at byte
//!   granularity.
//!
//! Like Purify it reports leaks with a mark-and-sweep pass at exit.

use safemem_alloc::{Heap, LayoutPolicy};
use safemem_core::{BugReport, CallStack, GroupKey, LeakKind, MemTool, OverflowSide};
use safemem_os::{AccessKind, Os};
use std::collections::{HashMap, HashSet, VecDeque};

/// Cost calibration for the Memcheck model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemcheckConfig {
    /// Multiplier applied to every computed cycle (binary interpretation;
    /// Valgrind's own documentation cites 20–30× for memcheck).
    pub interpretation_factor: u64,
    /// Extra cycles per memory-access instruction (validity-bit updates).
    pub check_cycles_per_access: u64,
    /// Redzone bytes on each side of every buffer.
    pub redzone_bytes: u64,
    /// Freed blocks held in quarantine before becoming reusable.
    pub quarantine_blocks: usize,
    /// Cycles per word in the exit leak scan.
    pub scan_cycles_per_word: u64,
}

impl Default for MemcheckConfig {
    fn default() -> Self {
        MemcheckConfig {
            interpretation_factor: 15,
            check_cycles_per_access: 30,
            redzone_bytes: 16,
            quarantine_blocks: 64,
            scan_cycles_per_word: 8,
        }
    }
}

/// The Memcheck-like tool.
#[derive(Debug)]
pub struct Memcheck {
    config: MemcheckConfig,
    heap: Heap,
    /// Live payloads → group (for leak attribution).
    groups: HashMap<u64, GroupKey>,
    /// Quarantined freed blocks, FIFO: (payload addr, size).
    quarantine: VecDeque<(u64, u64)>,
    /// Deferred frees: blocks released from quarantine but not yet freed in
    /// the heap (the heap frees them when they rotate out).
    roots: Vec<u64>,
    reports: Vec<BugReport>,
    reported_groups: HashSet<GroupKey>,
}

impl Memcheck {
    /// Creates the tool with default calibration.
    #[must_use]
    pub fn new() -> Self {
        Memcheck::with_config(MemcheckConfig::default())
    }

    /// Creates the tool with explicit calibration.
    #[must_use]
    pub fn with_config(config: MemcheckConfig) -> Self {
        Memcheck {
            config,
            heap: Heap::new(LayoutPolicy::LineAligned),
            groups: HashMap::new(),
            quarantine: VecDeque::new(),
            roots: Vec::new(),
            reports: Vec::new(),
            reported_groups: HashSet::new(),
        }
    }

    /// Registers a root word for the exit leak scan.
    pub fn add_root(&mut self, addr: u64) {
        self.roots.push(addr);
    }

    /// Registers every word in a range as roots.
    pub fn add_root_range(&mut self, addr: u64, len: u64) {
        let mut a = addr;
        while a + 8 <= addr + len {
            self.roots.push(a);
            a += 8;
        }
    }

    fn charge_access(&self, os: &mut Os, bytes: usize) {
        let words = (bytes as u64).div_ceil(8).max(1);
        os.compute(words * self.config.check_cycles_per_access);
    }

    fn in_quarantine(&self, addr: u64) -> Option<(u64, u64)> {
        self.quarantine
            .iter()
            .copied()
            .find(|&(qa, qs)| addr >= qa && addr < qa + qs)
    }

    fn check_access(&mut self, os: &mut Os, addr: u64, len: usize, kind: AccessKind) {
        self.charge_access(os, len);
        let end = addr + len as u64;
        if let Some((qa, qs)) = self.in_quarantine(addr) {
            self.reports.push(BugReport::UseAfterFree {
                buffer_addr: qa,
                buffer_size: qs,
                access_vaddr: addr,
                access: kind,
            });
            return;
        }
        if let Some(a) = self.heap.allocation_containing(addr) {
            if end > a.addr + a.payload {
                self.reports.push(BugReport::Overflow {
                    buffer_addr: a.addr,
                    buffer_size: a.payload,
                    access_vaddr: a.addr + a.payload,
                    access: kind,
                    side: OverflowSide::After,
                });
            }
            return;
        }
        // Within a redzone just past some buffer?
        if let Some(a) = self
            .heap
            .allocation_containing(addr.wrapping_sub(self.config.redzone_bytes))
        {
            let a = *a;
            self.reports.push(BugReport::Overflow {
                buffer_addr: a.addr,
                buffer_size: a.payload,
                access_vaddr: addr,
                access: kind,
                side: OverflowSide::After,
            });
        }
    }

    /// Exit-time mark-and-sweep leak scan.
    pub fn leak_scan(&mut self, os: &mut Os) {
        let mut marked: HashSet<u64> = HashSet::new();
        let mut frontier: Vec<u64> = Vec::new();
        let mut words = 0u64;
        for &root in &self.roots {
            words += 1;
            if let Ok(value) = os.read_u64(root) {
                if let Some(a) = self.heap.allocation_containing(value) {
                    if marked.insert(a.addr) {
                        frontier.push(a.addr);
                    }
                }
            }
        }
        while let Some(addr) = frontier.pop() {
            let payload = match self.heap.allocation_at(addr) {
                Some(a) => a.payload,
                None => continue,
            };
            let mut off = 0;
            while off + 8 <= payload {
                words += 1;
                if let Ok(value) = os.read_u64(addr + off) {
                    if let Some(t) = self.heap.allocation_containing(value) {
                        if marked.insert(t.addr) {
                            frontier.push(t.addr);
                        }
                    }
                }
                off += 8;
            }
        }
        let quarantined: HashSet<u64> = self.quarantine.iter().map(|&(a, _)| a).collect();
        let leaked: Vec<(u64, u64, GroupKey)> = self
            .heap
            .live_allocations()
            .filter(|a| !marked.contains(&a.addr) && !quarantined.contains(&a.addr))
            .map(|a| {
                let group = self.groups.get(&a.addr).copied().unwrap_or(GroupKey {
                    size: a.payload,
                    signature: 0,
                });
                (a.addr, a.payload, group)
            })
            .collect();
        let now = os.cpu_cycles();
        for (addr, size, group) in leaked {
            if self.reported_groups.insert(group) {
                self.reports.push(BugReport::Leak {
                    addr,
                    size,
                    group,
                    kind: LeakKind::SLeak,
                    at_cpu_cycles: now,
                });
            }
        }
        os.compute(words * self.config.scan_cycles_per_word);
    }
}

impl Default for Memcheck {
    fn default() -> Self {
        Memcheck::new()
    }
}

impl MemTool for Memcheck {
    fn name(&self) -> &'static str {
        "memcheck"
    }

    fn heap(&self) -> &Heap {
        &self.heap
    }

    fn malloc(&mut self, os: &mut Os, size: u64, stack: &CallStack) -> u64 {
        let allocation = self.heap.alloc(os, size).expect("heap exhausted");
        self.groups
            .insert(allocation.addr, GroupKey::new(size, stack));
        self.charge_access(os, size as usize);
        allocation.addr
    }

    fn free(&mut self, os: &mut Os, addr: u64) {
        if self.heap.allocation_at(addr).is_none() || self.in_quarantine(addr).is_some() {
            self.reports.push(BugReport::WildFree { addr });
            return;
        }
        let size = self.heap.allocation_at(addr).expect("checked live").payload;
        // Quarantine instead of freeing; rotate the oldest block out.
        self.quarantine.push_back((addr, size));
        self.groups.remove(&addr);
        if self.quarantine.len() > self.config.quarantine_blocks {
            let (old, _) = self.quarantine.pop_front().expect("non-empty");
            let _ = self.heap.free(os, old);
        }
        self.charge_access(os, size as usize);
    }

    fn realloc(&mut self, os: &mut Os, addr: u64, new_size: u64, stack: &CallStack) -> u64 {
        let Some(old) = self.heap.allocation_at(addr).copied() else {
            self.reports.push(BugReport::WildFree { addr });
            return self.malloc(os, new_size, stack);
        };
        let new_addr = self.malloc(os, new_size, stack);
        let keep = old.payload.min(new_size.max(1)) as usize;
        let mut data = vec![0u8; keep];
        self.read(os, old.addr, &mut data);
        self.write(os, new_addr, &data);
        self.free(os, addr);
        new_addr
    }

    fn read(&mut self, os: &mut Os, addr: u64, buf: &mut [u8]) {
        self.check_access(os, addr, buf.len(), AccessKind::Read);
        os.vread(addr, buf)
            .expect("memcheck runs without watchpoints");
    }

    fn write(&mut self, os: &mut Os, addr: u64, data: &[u8]) {
        self.check_access(os, addr, data.len(), AccessKind::Write);
        os.vwrite(addr, data)
            .expect("memcheck runs without watchpoints");
    }

    fn compute(&mut self, os: &mut Os, cycles: u64, mem_accesses: u64) {
        // Interpretation slows *everything* down, and validity updates add
        // a per-access cost on top.
        os.compute(
            cycles * self.config.interpretation_factor
                + mem_accesses * self.config.check_cycles_per_access,
        );
    }

    fn finish(&mut self, os: &mut Os) {
        self.leak_scan(os);
    }

    fn reports(&self) -> Vec<BugReport> {
        self.reports.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Os, Memcheck, CallStack) {
        (
            Os::with_defaults(1 << 24),
            Memcheck::new(),
            CallStack::new(&[0x400_000]),
        )
    }

    #[test]
    fn quarantine_catches_late_use_after_free() {
        let (mut os, mut tool, stack) = setup();
        let a = tool.malloc(&mut os, 64, &stack);
        tool.write(&mut os, a, &[1u8; 64]);
        tool.free(&mut os, a);
        // Dozens of alloc/free cycles later the block is still quarantined.
        for _ in 0..20 {
            let t = tool.malloc(&mut os, 64, &stack);
            tool.free(&mut os, t);
        }
        let mut buf = [0u8; 8];
        tool.read(&mut os, a, &mut buf);
        assert!(tool
            .reports()
            .iter()
            .any(|r| matches!(r, BugReport::UseAfterFree { .. })));
    }

    #[test]
    fn quarantine_rotation_eventually_reuses() {
        let (mut os, mut tool, stack) = setup();
        let a = tool.malloc(&mut os, 64, &stack);
        tool.free(&mut os, a);
        // Push the block out of the quarantine; once rotated out, the heap
        // may hand the same placement to a new allocation.
        let mut reused = false;
        for _ in 0..(2 * MemcheckConfig::default().quarantine_blocks + 8) {
            let t = tool.malloc(&mut os, 64, &stack);
            reused |= t == a;
            tool.free(&mut os, t);
        }
        assert!(
            reused,
            "block must eventually leave quarantine and be reused"
        );
    }

    #[test]
    fn double_free_of_quarantined_block_detected() {
        let (mut os, mut tool, stack) = setup();
        let a = tool.malloc(&mut os, 32, &stack);
        tool.free(&mut os, a);
        tool.free(&mut os, a);
        assert!(tool
            .reports()
            .iter()
            .any(|r| matches!(r, BugReport::WildFree { .. })));
    }

    #[test]
    fn overflow_detected_at_byte_granularity() {
        let (mut os, mut tool, stack) = setup();
        let a = tool.malloc(&mut os, 20, &stack);
        tool.write(&mut os, a, &[1u8; 21]);
        assert!(tool
            .reports()
            .iter()
            .any(|r| matches!(r, BugReport::Overflow { .. })));
    }

    #[test]
    fn interpretation_slowdown_dominates() {
        let (mut os, mut tool, _) = setup();
        let t0 = os.cpu_cycles();
        tool.compute(&mut os, 1_000, 100);
        let spent = os.cpu_cycles() - t0;
        let cfg = MemcheckConfig::default();
        assert_eq!(
            spent,
            1_000 * cfg.interpretation_factor + 100 * cfg.check_cycles_per_access
        );
    }

    #[test]
    fn exit_scan_reports_unreachable() {
        let (mut os, mut tool, stack) = setup();
        let root = safemem_os::STATIC_BASE;
        let kept = tool.malloc(&mut os, 64, &stack);
        let lost = tool.malloc(&mut os, 64, &CallStack::new(&[0x500_000]));
        tool.write(&mut os, kept, &[0u8; 64]);
        tool.write(&mut os, lost, &[0u8; 64]);
        os.write_u64(root, kept).unwrap();
        tool.add_root(root);
        tool.finish(&mut os);
        let reports = tool.reports();
        let leaks: Vec<_> = reports.iter().filter(|r| r.is_leak()).collect();
        assert_eq!(leaks.len(), 1);
        assert!(matches!(leaks[0], BugReport::Leak { addr, .. } if *addr == lost));
    }
}
