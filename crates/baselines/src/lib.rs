//! Baseline tools the SafeMem paper compares against.
//!
//! * [`Purify`] — a model of the commercial Purify checker (paper §5):
//!   2-bits-per-byte shadow state, per-access checking, mark-and-sweep leak
//!   scans. The overhead comparison of Table 3.
//! * [`PageGuard`] — an Electric-Fence-style `mprotect` guard tool: the
//!   page-protection space baseline of Table 4 and the syscall baseline of
//!   Table 2.
//! * [`Memcheck`] — a Valgrind/Memcheck-class interpreter-based checker
//!   (§7.1 cites Valgrind as the other common dynamic tool): quarantined
//!   frees, redzones, interpretation-level slowdown.
//!
//! Both implement [`MemTool`](safemem_core::MemTool), so the workloads of
//! `safemem-workloads` run unchanged under every tool.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod memcheck;
pub mod pageguard;
pub mod purify;

pub use memcheck::{Memcheck, MemcheckConfig};
pub use pageguard::PageGuard;
pub use purify::{Purify, PurifyConfig};
