//! A page-protection guard tool (Electric-Fence style).
//!
//! The space-overhead baseline of Table 4 and the syscall baseline of
//! Table 2: the same guard idea as SafeMem's corruption detector, but built
//! on `mprotect` instead of ECC watchpoints. Every buffer is page-aligned
//! with a `PROT_NONE` page on each side; freed buffers are protected until
//! reuse. Detection coverage matches SafeMem's corruption half — the cost is
//! the page-granularity memory waste (two 4 KiB guards plus page rounding
//! per object, vs two 64 B lines plus line rounding).

use safemem_alloc::{Allocation, Heap, LayoutPolicy};
use safemem_core::{BugReport, CallStack, MemTool, OverflowSide};
use safemem_os::{Os, OsFault, Prot, PAGE_BYTES};
use std::collections::HashMap;

/// Retry budget for fault-handling access loops.
const MAX_RETRIES: usize = 1024;

#[derive(Debug, Clone, Copy)]
struct GuardInfo {
    buffer_addr: u64,
    buffer_size: u64,
    side: OverflowSide,
}

/// The page-guard tool.
#[derive(Debug)]
pub struct PageGuard {
    heap: Heap,
    /// Guard page start → which buffer and side it guards.
    guards: HashMap<u64, GuardInfo>,
    /// Protected freed payloads: page-aligned payload start → (addr, size, base).
    freed: HashMap<u64, (u64, u64, u64)>,
    freed_by_base: HashMap<u64, u64>,
    reports: Vec<BugReport>,
}

impl PageGuard {
    /// Creates the tool.
    #[must_use]
    pub fn new() -> Self {
        PageGuard {
            heap: Heap::new(LayoutPolicy::PageGuard),
            guards: HashMap::new(),
            freed: HashMap::new(),
            freed_by_base: HashMap::new(),
            reports: Vec::new(),
        }
    }

    fn guard_pages(allocation: &Allocation) -> (u64, u64) {
        let front = allocation.base;
        let back = allocation.base + allocation.stride - PAGE_BYTES;
        (front, back)
    }

    fn payload_pages(allocation: &Allocation) -> (u64, u64) {
        let len = allocation.payload.div_ceil(PAGE_BYTES) * PAGE_BYTES;
        (allocation.addr, len)
    }

    /// Handles a SEGV at `vaddr`: record the bug and unprotect the page so
    /// execution can continue. Returns `false` for an unowned fault.
    fn handle_segv(&mut self, os: &mut Os, vaddr: u64, access: safemem_os::AccessKind) -> bool {
        let page = vaddr & !(PAGE_BYTES - 1);
        if let Some(info) = self.guards.remove(&page) {
            os.mprotect(page, PAGE_BYTES, Prot::READ_WRITE)
                .expect("guard page unprotect");
            self.reports.push(BugReport::Overflow {
                buffer_addr: info.buffer_addr,
                buffer_size: info.buffer_size,
                access_vaddr: vaddr,
                access,
                side: info.side,
            });
            return true;
        }
        let hit = self
            .freed
            .iter()
            .find(|(&start, &(_, _, _))| {
                let len = self.freed[&start].1.div_ceil(PAGE_BYTES) * PAGE_BYTES;
                vaddr >= start && vaddr < start + len
            })
            .map(|(&start, &info)| (start, info));
        if let Some((start, (addr, size, base))) = hit {
            let len = size.div_ceil(PAGE_BYTES) * PAGE_BYTES;
            os.mprotect(start, len, Prot::READ_WRITE)
                .expect("freed unprotect");
            self.freed.remove(&start);
            self.freed_by_base.remove(&base);
            self.reports.push(BugReport::UseAfterFree {
                buffer_addr: addr,
                buffer_size: size,
                access_vaddr: vaddr,
                access,
            });
            return true;
        }
        false
    }
}

impl Default for PageGuard {
    fn default() -> Self {
        PageGuard::new()
    }
}

impl MemTool for PageGuard {
    fn name(&self) -> &'static str {
        "pageguard"
    }

    fn heap(&self) -> &Heap {
        &self.heap
    }

    fn malloc(&mut self, os: &mut Os, size: u64, _stack: &CallStack) -> u64 {
        let allocation = self.heap.alloc(os, size).expect("heap exhausted");
        // Reused freed block: lift its protection first.
        if let Some(start) = self.freed_by_base.remove(&allocation.base) {
            if let Some((_, fsize, _)) = self.freed.remove(&start) {
                let len = fsize.div_ceil(PAGE_BYTES) * PAGE_BYTES;
                os.mprotect(start, len, Prot::READ_WRITE)
                    .expect("freed unprotect");
            }
        }
        let (front, back) = Self::guard_pages(&allocation);
        os.mprotect(front, PAGE_BYTES, Prot::NONE)
            .expect("front guard");
        self.guards.insert(
            front,
            GuardInfo {
                buffer_addr: allocation.addr,
                buffer_size: allocation.payload,
                side: OverflowSide::Before,
            },
        );
        os.mprotect(back, PAGE_BYTES, Prot::NONE)
            .expect("back guard");
        self.guards.insert(
            back,
            GuardInfo {
                buffer_addr: allocation.addr,
                buffer_size: allocation.payload,
                side: OverflowSide::After,
            },
        );
        allocation.addr
    }

    fn free(&mut self, os: &mut Os, addr: u64) {
        let Ok(record) = self.heap.free(os, addr) else {
            self.reports.push(BugReport::WildFree { addr });
            return;
        };
        let (front, back) = Self::guard_pages(&record);
        for page in [front, back] {
            if self.guards.remove(&page).is_some() {
                os.mprotect(page, PAGE_BYTES, Prot::READ_WRITE)
                    .expect("guard unprotect");
            }
        }
        let (start, len) = Self::payload_pages(&record);
        os.mprotect(start, len, Prot::NONE).expect("freed protect");
        self.freed
            .insert(start, (record.addr, record.payload, record.base));
        self.freed_by_base.insert(record.base, start);
    }

    fn realloc(&mut self, os: &mut Os, addr: u64, new_size: u64, stack: &CallStack) -> u64 {
        let Some(old) = self.heap.allocation_at(addr).copied() else {
            self.reports.push(BugReport::WildFree { addr });
            return self.malloc(os, new_size, stack);
        };
        let new_addr = self.malloc(os, new_size, stack);
        let keep = old.payload.min(new_size.max(1)) as usize;
        let mut data = vec![0u8; keep];
        self.read(os, old.addr, &mut data);
        self.write(os, new_addr, &data);
        self.free(os, addr);
        new_addr
    }

    fn read(&mut self, os: &mut Os, addr: u64, buf: &mut [u8]) {
        for _ in 0..MAX_RETRIES {
            match os.vread(addr, buf) {
                Ok(()) => return,
                Err(OsFault::Segv { vaddr, access }) => {
                    assert!(
                        self.handle_segv(os, vaddr, access),
                        "unowned SEGV at {vaddr:#x}"
                    );
                }
                Err(fault) => panic!("unexpected fault under pageguard: {fault}"),
            }
        }
        panic!("SEGV retry limit exceeded");
    }

    fn write(&mut self, os: &mut Os, addr: u64, data: &[u8]) {
        for _ in 0..MAX_RETRIES {
            match os.vwrite(addr, data) {
                Ok(()) => return,
                Err(OsFault::Segv { vaddr, access }) => {
                    assert!(
                        self.handle_segv(os, vaddr, access),
                        "unowned SEGV at {vaddr:#x}"
                    );
                }
                Err(fault) => panic!("unexpected fault under pageguard: {fault}"),
            }
        }
        panic!("SEGV retry limit exceeded");
    }

    fn finish(&mut self, _os: &mut Os) {}

    fn reports(&self) -> Vec<BugReport> {
        self.reports.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Os, PageGuard, CallStack) {
        (
            Os::with_defaults(1 << 24),
            PageGuard::new(),
            CallStack::new(&[0x400_000]),
        )
    }

    #[test]
    fn overflow_into_guard_page_detected() {
        let (mut os, mut tool, stack) = setup();
        let a = tool.malloc(&mut os, 100, &stack);
        tool.write(&mut os, a, &[1u8; 100]);
        // Page-guard granularity: the bug must reach the guard *page*.
        tool.write(&mut os, a + PAGE_BYTES, &[9]);
        assert!(tool.reports().iter().any(|r| matches!(
            r,
            BugReport::Overflow {
                side: OverflowSide::After,
                ..
            }
        )));
    }

    #[test]
    fn underflow_detected() {
        let (mut os, mut tool, stack) = setup();
        let a = tool.malloc(&mut os, 100, &stack);
        let mut buf = [0u8; 1];
        tool.read(&mut os, a - 1, &mut buf);
        assert!(tool.reports().iter().any(|r| matches!(
            r,
            BugReport::Overflow {
                side: OverflowSide::Before,
                ..
            }
        )));
    }

    #[test]
    fn use_after_free_detected_until_reuse() {
        let (mut os, mut tool, stack) = setup();
        let a = tool.malloc(&mut os, 64, &stack);
        tool.write(&mut os, a, &[1u8; 64]);
        tool.free(&mut os, a);
        let mut buf = [0u8; 8];
        tool.read(&mut os, a, &mut buf);
        assert!(tool
            .reports()
            .iter()
            .any(|r| matches!(r, BugReport::UseAfterFree { .. })));
        // Reuse lifts the protection.
        let b = tool.malloc(&mut os, 64, &stack);
        assert_eq!(b, a, "free-list reuse expected");
        tool.write(&mut os, b, &[2u8; 64]);
    }

    #[test]
    fn space_overhead_is_page_scale() {
        let (mut os, mut tool, stack) = setup();
        for _ in 0..8 {
            tool.malloc(&mut os, 100, &stack);
        }
        // 100-byte payloads cost 3 pages each: overhead far above 100×.
        assert!(tool.heap().stats().overhead_percent() > 5000.0);
    }

    #[test]
    fn in_bounds_accesses_are_clean() {
        let (mut os, mut tool, stack) = setup();
        let a = tool.malloc(&mut os, 1000, &stack);
        tool.write(&mut os, a, &[7u8; 1000]);
        let mut buf = [0u8; 1000];
        tool.read(&mut os, a, &mut buf);
        assert_eq!(buf, [7u8; 1000]);
        assert!(tool.reports().is_empty());
    }
}
