//! A Purify-class dynamic checker (the paper's comparison tool, §5).
//!
//! Purify maintains two state bits for every byte of memory — allocated or
//! freed, initialised or uninitialised — checks *every* memory access
//! against them, and finds leaks by periodically mark-and-sweeping the heap
//! with conservative pointer tracking. The model reproduces all three
//! mechanisms and their costs:
//!
//! * per-access checking on explicit buffer operations **and** on the rest
//!   of the instruction stream (via [`MemTool::compute`]) — the source of
//!   the 5–50× slowdowns in Table 3;
//! * byte-granular shadow state giving the same detection coverage
//!   (overflow, use-after-free, uninitialised reads, wild frees);
//! * mark-and-sweep leak scans that pause the program for time proportional
//!   to the bytes scanned.

use safemem_alloc::{Heap, LayoutPolicy};
use safemem_core::{BugReport, CallStack, GroupKey, LeakKind, MemTool};
use safemem_os::{AccessKind, Os};
use std::collections::{HashMap, HashSet};

/// Cost calibration for the Purify model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PurifyConfig {
    /// Cycles of checking added to every memory-access instruction.
    pub check_cycles_per_access: u64,
    /// Cycles per 8-byte word examined during a mark-and-sweep scan.
    pub scan_cycles_per_word: u64,
    /// CPU cycles between leak scans (`None` = scan only at exit).
    pub scan_period: Option<u64>,
}

impl Default for PurifyConfig {
    fn default() -> Self {
        PurifyConfig {
            check_cycles_per_access: 60,
            scan_cycles_per_word: 6,
            scan_period: Some(120_000_000), // 50 ms of CPU time
        }
    }
}

#[derive(Debug)]
struct ShadowInfo {
    group: GroupKey,
    /// One bit per 8-byte word: written at least once.
    init: Vec<u64>,
}

/// The Purify-like tool.
#[derive(Debug)]
pub struct Purify {
    config: PurifyConfig,
    heap: Heap,
    shadow: HashMap<u64, ShadowInfo>,
    /// Freed-but-not-reused placements: payload addr → (size, base).
    freed: HashMap<u64, (u64, u64)>,
    freed_by_base: HashMap<u64, u64>,
    /// Root addresses (in simulated memory) holding potential heap pointers.
    roots: Vec<u64>,
    reports: Vec<BugReport>,
    reported_groups: HashSet<GroupKey>,
    last_scan: u64,
    scans: u64,
}

impl Purify {
    /// Creates the tool with default calibration.
    #[must_use]
    pub fn new() -> Self {
        Purify::with_config(PurifyConfig::default())
    }

    /// Creates the tool with explicit calibration.
    #[must_use]
    pub fn with_config(config: PurifyConfig) -> Self {
        Purify {
            config,
            heap: Heap::new(LayoutPolicy::Natural),
            shadow: HashMap::new(),
            freed: HashMap::new(),
            freed_by_base: HashMap::new(),
            roots: Vec::new(),
            reports: Vec::new(),
            reported_groups: HashSet::new(),
            last_scan: 0,
            scans: 0,
        }
    }

    /// Registers a root location (a word in simulated memory that may hold
    /// a heap pointer) for conservative leak scanning.
    pub fn add_root(&mut self, addr: u64) {
        self.roots.push(addr);
    }

    /// Registers every word in `[addr, addr + len)` as a root — e.g. a
    /// program's whole static/global segment.
    pub fn add_root_range(&mut self, addr: u64, len: u64) {
        let mut a = addr;
        while a + 8 <= addr + len {
            self.roots.push(a);
            a += 8;
        }
    }

    /// Number of mark-and-sweep scans performed.
    #[must_use]
    pub fn scan_count(&self) -> u64 {
        self.scans
    }

    fn charge_access(&self, os: &mut Os, bytes: usize) {
        let words = (bytes as u64).div_ceil(8).max(1);
        os.compute(words * self.config.check_cycles_per_access);
    }

    /// Checks one access against the shadow state, recording bugs.
    fn check_access(&mut self, os: &mut Os, addr: u64, len: usize, kind: AccessKind) {
        self.charge_access(os, len);
        let end = addr + len as u64;
        // Within a live allocation?
        if let Some(a) = self.heap.allocation_containing(addr) {
            let a = *a;
            if end > a.addr + a.payload {
                self.reports.push(BugReport::Overflow {
                    buffer_addr: a.addr,
                    buffer_size: a.payload,
                    access_vaddr: a.addr + a.payload,
                    access: kind,
                    side: safemem_core::OverflowSide::After,
                });
            }
            if kind == AccessKind::Read {
                self.check_init(a.addr, addr, len);
            } else {
                self.mark_init(a.addr, addr, len);
            }
            return;
        }
        // Within a freed-but-not-reused placement?
        let hit_freed = self
            .freed
            .iter()
            .find(|(&fa, &(size, _))| addr >= fa && addr < fa + size)
            .map(|(&fa, &(size, _))| (fa, size));
        if let Some((fa, size)) = hit_freed {
            self.reports.push(BugReport::UseAfterFree {
                buffer_addr: fa,
                buffer_size: size,
                access_vaddr: addr,
                access: kind,
            });
            return;
        }
        // A byte just past a live allocation (classic off-by-one)?
        if let Some(a) = self.heap.allocation_containing(addr.wrapping_sub(1)) {
            self.reports.push(BugReport::Overflow {
                buffer_addr: a.addr,
                buffer_size: a.payload,
                access_vaddr: addr,
                access: kind,
                side: safemem_core::OverflowSide::After,
            });
        }
        // Otherwise: an access to memory Purify has no record of (stack,
        // globals) — unchecked, like real Purify's uninstrumented regions.
    }

    fn mark_init(&mut self, alloc_addr: u64, addr: u64, len: usize) {
        if let Some(info) = self.shadow.get_mut(&alloc_addr) {
            let start = (addr - alloc_addr) / 8;
            let end = (addr - alloc_addr + len as u64).div_ceil(8);
            for w in start..end {
                let (idx, bit) = ((w / 64) as usize, w % 64);
                if idx < info.init.len() {
                    info.init[idx] |= 1 << bit;
                }
            }
        }
    }

    fn check_init(&mut self, alloc_addr: u64, addr: u64, len: usize) {
        let uninit = self.shadow.get(&alloc_addr).is_some_and(|info| {
            let start = (addr - alloc_addr) / 8;
            let end = (addr - alloc_addr + len as u64).div_ceil(8);
            (start..end).any(|w| {
                let (idx, bit) = ((w / 64) as usize, w % 64);
                idx < info.init.len() && info.init[idx] & (1 << bit) == 0
            })
        });
        if uninit {
            self.reports.push(BugReport::UninitRead {
                buffer_addr: alloc_addr,
                access_vaddr: addr,
            });
        }
    }

    /// Mark-and-sweep leak detection with conservative pointer tracking
    /// (paper §5). Pauses the program: the scan cost is charged as CPU time.
    pub fn leak_scan(&mut self, os: &mut Os) {
        self.scans += 1;
        self.last_scan = os.cpu_cycles();
        let mut marked: HashSet<u64> = HashSet::new();
        let mut frontier: Vec<u64> = Vec::new();
        let mut words_scanned: u64 = 0;

        // Mark phase: roots first.
        for &root in &self.roots {
            words_scanned += 1;
            if let Ok(value) = os.read_u64(root) {
                if let Some(a) = self.heap.allocation_containing(value) {
                    if marked.insert(a.addr) {
                        frontier.push(a.addr);
                    }
                }
            }
        }
        // Conservative transitive scan of marked payloads.
        while let Some(addr) = frontier.pop() {
            let payload = match self.heap.allocation_at(addr) {
                Some(a) => a.payload,
                None => continue,
            };
            let mut offset = 0;
            while offset + 8 <= payload {
                words_scanned += 1;
                if let Ok(value) = os.read_u64(addr + offset) {
                    if let Some(target) = self.heap.allocation_containing(value) {
                        if marked.insert(target.addr) {
                            frontier.push(target.addr);
                        }
                    }
                }
                offset += 8;
            }
        }
        // Sweep: live but unreachable allocations are leaks.
        let leaked: Vec<(u64, u64, GroupKey)> = self
            .heap
            .live_allocations()
            .filter(|a| !marked.contains(&a.addr))
            .map(|a| {
                let group = self.shadow.get(&a.addr).map_or(
                    GroupKey {
                        size: a.payload,
                        signature: 0,
                    },
                    |s| s.group,
                );
                (a.addr, a.payload, group)
            })
            .collect();
        words_scanned += self.heap.live_count() as u64;
        let now = os.cpu_cycles();
        for (addr, size, group) in leaked {
            if self.reported_groups.insert(group) {
                self.reports.push(BugReport::Leak {
                    addr,
                    size,
                    group,
                    kind: LeakKind::SLeak,
                    at_cpu_cycles: now,
                });
            }
        }
        os.compute(words_scanned * self.config.scan_cycles_per_word);
    }

    fn maybe_scan(&mut self, os: &mut Os) {
        if let Some(period) = self.config.scan_period {
            if os.cpu_cycles().saturating_sub(self.last_scan) >= period {
                self.leak_scan(os);
            }
        }
    }
}

impl Default for Purify {
    fn default() -> Self {
        Purify::new()
    }
}

impl MemTool for Purify {
    fn name(&self) -> &'static str {
        "purify"
    }

    fn heap(&self) -> &Heap {
        &self.heap
    }

    fn malloc(&mut self, os: &mut Os, size: u64, stack: &CallStack) -> u64 {
        let allocation = self.heap.alloc(os, size).expect("heap exhausted");
        if let Some(region) = self.freed_by_base.remove(&allocation.base) {
            self.freed.remove(&region);
        }
        let words = allocation.payload.div_ceil(8).div_ceil(64) as usize;
        self.shadow.insert(
            allocation.addr,
            ShadowInfo {
                group: GroupKey::new(size, stack),
                init: vec![0; words.max(1)],
            },
        );
        // Shadow-state updates for the whole buffer.
        self.charge_access(os, allocation.payload as usize);
        self.maybe_scan(os);
        allocation.addr
    }

    fn free(&mut self, os: &mut Os, addr: u64) {
        match self.heap.free(os, addr) {
            Ok(record) => {
                self.shadow.remove(&addr);
                self.freed.insert(addr, (record.payload, record.base));
                self.freed_by_base.insert(record.base, addr);
                self.charge_access(os, record.payload as usize);
            }
            Err(_) => self.reports.push(BugReport::WildFree { addr }),
        }
        self.maybe_scan(os);
    }

    fn realloc(&mut self, os: &mut Os, addr: u64, new_size: u64, stack: &CallStack) -> u64 {
        let Some(old) = self.heap.allocation_at(addr).copied() else {
            self.reports.push(BugReport::WildFree { addr });
            return self.malloc(os, new_size, stack);
        };
        let new_addr = self.malloc(os, new_size, stack);
        let keep = old.payload.min(new_size.max(1)) as usize;
        let mut data = vec![0u8; keep];
        self.read(os, old.addr, &mut data);
        self.write(os, new_addr, &data);
        self.free(os, addr);
        new_addr
    }

    fn read(&mut self, os: &mut Os, addr: u64, buf: &mut [u8]) {
        self.check_access(os, addr, buf.len(), AccessKind::Read);
        os.vread(addr, buf)
            .expect("purify runs without ECC watchpoints");
    }

    fn write(&mut self, os: &mut Os, addr: u64, data: &[u8]) {
        self.check_access(os, addr, data.len(), AccessKind::Write);
        os.vwrite(addr, data)
            .expect("purify runs without ECC watchpoints");
    }

    fn compute(&mut self, os: &mut Os, cycles: u64, mem_accesses: u64) {
        // Every memory-access instruction in the program is instrumented.
        os.compute(cycles + mem_accesses * self.config.check_cycles_per_access);
    }

    fn finish(&mut self, os: &mut Os) {
        self.leak_scan(os);
    }

    fn reports(&self) -> Vec<BugReport> {
        self.reports.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Os, Purify, CallStack) {
        (
            Os::with_defaults(1 << 23),
            Purify::new(),
            CallStack::new(&[0x400_000]),
        )
    }

    #[test]
    fn detects_overflow() {
        let (mut os, mut tool, stack) = setup();
        let a = tool.malloc(&mut os, 20, &stack);
        tool.write(&mut os, a, &[1u8; 24]); // 4 bytes past the end
        assert!(tool
            .reports()
            .iter()
            .any(|r| matches!(r, BugReport::Overflow { .. })));
    }

    #[test]
    fn detects_use_after_free() {
        let (mut os, mut tool, stack) = setup();
        let a = tool.malloc(&mut os, 32, &stack);
        tool.write(&mut os, a, &[1u8; 32]);
        tool.free(&mut os, a);
        let mut buf = [0u8; 8];
        tool.read(&mut os, a, &mut buf);
        assert!(tool
            .reports()
            .iter()
            .any(|r| matches!(r, BugReport::UseAfterFree { .. })));
    }

    #[test]
    fn detects_uninit_read_but_not_after_write() {
        let (mut os, mut tool, stack) = setup();
        let a = tool.malloc(&mut os, 64, &stack);
        let mut buf = [0u8; 8];
        tool.read(&mut os, a, &mut buf);
        assert!(tool
            .reports()
            .iter()
            .any(|r| matches!(r, BugReport::UninitRead { .. })));
        let b = tool.malloc(&mut os, 64, &stack);
        tool.write(&mut os, b, &[1u8; 64]);
        let n = tool.reports().len();
        tool.read(&mut os, b, &mut buf);
        assert_eq!(tool.reports().len(), n, "initialised read is clean");
    }

    #[test]
    fn mark_sweep_finds_unreachable_only() {
        let (mut os, mut tool, stack) = setup();
        // A root in static memory points at `kept`; `lost` is unreachable.
        let root = safemem_os::STATIC_BASE;
        let kept = tool.malloc(&mut os, 64, &stack);
        let lost = tool.malloc(&mut os, 64, &CallStack::new(&[0x500_000]));
        tool.write(&mut os, kept, &[0u8; 64]);
        tool.write(&mut os, lost, &[0u8; 64]);
        os.write_u64(root, kept).unwrap();
        tool.add_root(root);
        tool.leak_scan(&mut os);
        let reports = tool.reports();
        let leaks: Vec<_> = reports.iter().filter(|r| r.is_leak()).collect();
        assert_eq!(leaks.len(), 1);
        assert!(matches!(leaks[0], BugReport::Leak { addr, .. } if *addr == lost));
    }

    #[test]
    fn mark_sweep_follows_pointer_chains() {
        let (mut os, mut tool, stack) = setup();
        let root = safemem_os::STATIC_BASE;
        let a = tool.malloc(&mut os, 16, &stack);
        let b = tool.malloc(&mut os, 16, &stack);
        tool.write(&mut os, a, &b.to_le_bytes()); // a → b
        tool.write(&mut os, b, &[0u8; 16]);
        os.write_u64(root, a).unwrap();
        tool.add_root(root);
        tool.leak_scan(&mut os);
        assert!(
            !tool.reports().iter().any(BugReport::is_leak),
            "transitively reachable objects are not leaks: {:?}",
            tool.reports()
        );
    }

    #[test]
    fn per_access_instrumentation_slows_compute() {
        let (mut os, mut tool, _) = setup();
        let t0 = os.cpu_cycles();
        tool.compute(&mut os, 1_000, 300);
        let spent = os.cpu_cycles() - t0;
        assert_eq!(
            spent,
            1_000 + 300 * PurifyConfig::default().check_cycles_per_access
        );
    }

    #[test]
    fn scan_cost_scales_with_reachable_heap_size() {
        let (mut os, mut tool, stack) = setup();
        // 20 reachable 4 KiB buffers: each gets a root pointing at it.
        for i in 0..20u64 {
            let a = tool.malloc(&mut os, 4096, &stack);
            tool.write(&mut os, a, &vec![0u8; 4096]);
            let root = safemem_os::STATIC_BASE + i * 8;
            os.write_u64(root, a).unwrap();
            tool.add_root(root);
        }
        let t0 = os.cpu_cycles();
        tool.leak_scan(&mut os);
        let big_heap_cost = os.cpu_cycles() - t0;
        // Marking 80 KiB of reachable heap costs at least 10k words × 6.
        assert!(big_heap_cost >= 10_000 * 6, "scan cost {big_heap_cost}");
    }

    #[test]
    fn wild_free_detected() {
        let (mut os, mut tool, _) = setup();
        tool.free(&mut os, 0x1234_5678);
        assert!(matches!(tool.reports()[0], BugReport::WildFree { .. }));
    }
}
