//! A fast, deterministic, non-cryptographic hasher for simulator-internal
//! maps (the Firefox/rustc "FxHash" multiply-rotate scheme).
//!
//! The simulator's hot paths — virtual-memory translation, the watchpoint
//! registry, heap metadata, leak-tracking groups — are all keyed by small
//! integers (page numbers, line addresses, allocation ids). `std`'s default
//! SipHash is hardened against adversarial keys, which these are not, and
//! its per-lookup cost is visible in campaign replay profiles. This crate
//! provides a drop-in `BuildHasher` that is an order of magnitude cheaper
//! on word-sized keys.
//!
//! Determinism note: swapping hashers cannot perturb simulation output.
//! `std`'s `RandomState` seeds SipHash differently on every process, so any
//! observable result that survived that (every golden scorecard does) is
//! already independent of map iteration order; a fixed-seed hasher only
//! makes the iteration order reproducible as well.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit seed from the golden ratio, the classic Fibonacci-hashing constant.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: one multiply-rotate-xor round per written word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (zero-sized, fixed seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_builders() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xDEAD_BEEF);
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinct_keys_distinct_hashes() {
        // Not a collision-resistance claim — just a sanity check that the
        // mixing round is not degenerate on small sequential keys.
        let hashes: Vec<u64> = (0u64..1024)
            .map(|k| {
                let mut h = FxHasher::default();
                h.write_u64(k);
                h.finish()
            })
            .collect();
        let mut dedup = hashes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), hashes.len());
    }

    #[test]
    fn byte_stream_matches_word_writes_on_whole_words() {
        let mut a = FxHasher::default();
        a.write(&42u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        m.insert(7, 1);
        assert_eq!(m.get(&7), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
