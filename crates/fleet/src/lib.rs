//! Multi-process fleet simulation: the paper's production-run story at
//! GWP-ASan scale.
//!
//! A [`Fleet`] time-multiplexes **one** physical [`Machine`] — one ECC
//! memory controller, one cache hierarchy, one swap device — across
//! hundreds-to-thousands of simulated processes. Each process is a full
//! `safemem-os` instance over a [`SlotBackend`]
//! (the pluggable machine/OS boundary): before a process's turn the
//! scheduler installs the shared machine into that process's slot, and
//! after the turn it takes the machine back. Processes are kept apart by
//! disjoint physical frame windows (`OsConfig::phys_base`), so each OS
//! pages, pins, and watches only its own slice of the shared memory, while
//! the backend's per-process virtual clock keeps the leak detector's
//! lifetime thresholds meaningful per process.
//!
//! Every process runs a connection-churn server workload
//! ([`ChurnSim`]) under its own sampled SafeMem
//! instance. At sub-1.0 sampling rates each individual process is unlikely
//! to catch its planted bug; the fleet-level detection probability
//! `1 - (1 - r)^n` is what the `fleet` campaign preset scores against the
//! tallies this crate produces.
//!
//! The scheduler is strictly sequential and deterministic: turn order is
//! `(request, pid)` lexicographic, and no decision consults host state, so
//! a fleet run is a pure function of its [`ProcessSpec`]s and
//! [`FleetConfig`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use safemem_core::{MemTool, SafeMem, SamplingPlan};
use safemem_machine::{Machine, SlotBackend};
use safemem_os::{Os, OsConfig, SwapPolicy, PAGE_BYTES};
use safemem_workloads::apps::churn::CHURN_DEFAULT_REQUESTS;
use safemem_workloads::apps::{ChurnKind, ChurnLeak, ChurnSim};
use safemem_workloads::{Ctx, RunResult, Workload};

/// Default physical frame window per process, in pages (128 KiB): ample for
/// a churn server's resident set while keeping a 512-process fleet's shared
/// memory at 64 MiB.
pub const DEFAULT_WINDOW_PAGES: u64 = 32;

/// Per-process plan: which churn server it runs and how its SafeMem
/// instance samples.
///
/// The sampling seed is taken verbatim (not derived here) so the campaign
/// layer can key it exactly like its single-process cells — a fleet process
/// and the campaign cell with the same spec then make identical
/// per-allocation sampling decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessSpec {
    /// The churn workload this process runs.
    pub kind: ChurnKind,
    /// Seed for the workload driver context (churn draws nothing from it,
    /// but it keeps fleet and solo runs configured identically).
    pub workload_seed: u64,
    /// SafeMem sampling rate in parts-per-million.
    pub sampling_ppm: u32,
    /// SafeMem sampling seed for this process.
    pub sampling_seed: u64,
}

/// Fleet-wide knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Requests each process serves.
    pub requests: u64,
    /// Physical frame window per process, in pages.
    pub window_pages: u64,
    /// Whether the servers receive bug-triggering inputs.
    pub buggy: bool,
    /// Swap policy of every process's OS.
    pub swap_policy: SwapPolicy,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            requests: CHURN_DEFAULT_REQUESTS,
            window_pages: DEFAULT_WINDOW_PAGES,
            buggy: true,
            swap_policy: SwapPolicy::PinWatchedPages,
        }
    }
}

/// Per-workload-kind detection tally, folded over all processes of that
/// kind (fixed size regardless of fleet size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KindTally {
    /// Processes running this kind.
    pub processes: u64,
    /// Processes whose planted bug was reported.
    pub detected: u64,
    /// False reports across this kind's processes (wrong-group leaks, or
    /// any corruption report from a process that planted none).
    pub false_positives: u64,
    /// Allocations that drew full instrumentation, summed over processes.
    pub sampled_allocs: u64,
    /// Allocations issued, summed over processes.
    pub total_allocs: u64,
}

/// Everything a fleet run produces. All fields are fixed-size aggregates
/// except [`detected`](FleetReport::detected), one flag per process (the
/// cross-check surface for the campaign's per-cell replays).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetReport {
    /// Fleet size.
    pub processes: u64,
    /// Requests each process served.
    pub requests: u64,
    /// Bytes of the one shared physical memory.
    pub shared_phys_bytes: u64,
    /// The shared machine clock at the end of the run (all processes'
    /// turns, serialized).
    pub machine_cycles: u64,
    /// Sum of per-process CPU cycles (virtual clocks, I/O excluded).
    pub process_cycles: u64,
    /// Page faults summed over all processes.
    pub page_faults: u64,
    /// Swap-ins on the shared swap device, summed over all processes.
    pub swap_ins: u64,
    /// Swap-outs on the shared swap device, summed over all processes.
    pub swap_outs: u64,
    /// Per-kind tallies in first-appearance order of the spec list.
    pub tallies: Vec<(&'static str, KindTally)>,
    /// Per-process detection flag, indexed by pid.
    pub detected: Vec<bool>,
}

impl FleetReport {
    /// The tally for workload `name`, if any process ran it.
    #[must_use]
    pub fn tally(&self, name: &str) -> Option<&KindTally> {
        self.tallies
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, t)| t)
    }

    /// Total false positives across the fleet.
    #[must_use]
    pub fn false_positives(&self) -> u64 {
        self.tallies.iter().map(|(_, t)| t.false_positives).sum()
    }

    /// Total detections across the fleet.
    #[must_use]
    pub fn detections(&self) -> u64 {
        self.tallies.iter().map(|(_, t)| t.detected).sum()
    }
}

/// The workload-registry name of a churn kind.
#[must_use]
pub fn kind_name(kind: ChurnKind) -> &'static str {
    match kind {
        ChurnKind::Leak => "churn-leak",
        ChurnKind::UseAfterFree => "churn-uaf",
        ChurnKind::Overflow => "churn-obo",
    }
}

/// One simulated process: its OS (over a vacant slot), its SafeMem
/// instance, and its server state.
struct Process {
    os: Os,
    tool: SafeMem,
    sim: ChurnSim,
    kind: ChurnKind,
    workload_seed: u64,
}

/// The slot backend of a fleet process's OS.
fn slot_of(os: &mut Os) -> &mut SlotBackend {
    os.machine_mut()
        .as_any_mut()
        .downcast_mut::<SlotBackend>()
        .expect("fleet processes run over SlotBackend")
}

impl Process {
    /// Runs `f` with the shared machine installed in this process's slot.
    fn turn<R>(&mut self, machine: &mut Option<Machine>, f: impl FnOnce(&mut Process) -> R) -> R {
        slot_of(&mut self.os).install(machine.take().expect("shared machine in flight"));
        let result = f(self);
        *machine = Some(slot_of(&mut self.os).take());
        result
    }
}

/// The multi-process scheduler over one shared machine.
pub struct Fleet {
    config: FleetConfig,
    procs: Vec<Process>,
    machine: Option<Machine>,
}

impl Fleet {
    /// Boots a fleet: one shared machine sized to hold every process's
    /// frame window, and one OS + sampled SafeMem instance per spec.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty or `config.window_pages` is zero.
    #[must_use]
    pub fn boot(specs: &[ProcessSpec], config: FleetConfig) -> Self {
        assert!(!specs.is_empty(), "a fleet needs at least one process");
        assert!(config.window_pages > 0, "zero-page frame window");
        let window = config.window_pages * PAGE_BYTES;
        let shared = Machine::with_defaults(window * specs.len() as u64);
        let hz = shared.clock().hz();
        let mut machine = Some(shared);
        let mut procs = Vec::with_capacity(specs.len());
        for (pid, spec) in specs.iter().enumerate() {
            let mut os = Os::with_backend(
                Box::new(SlotBackend::vacant(hz)),
                OsConfig {
                    phys_bytes: window,
                    phys_base: pid as u64 * window,
                    swap_policy: config.swap_policy,
                    ..OsConfig::default()
                },
            );
            // Tool construction queries the machine (line size), so it runs
            // as this process's first scheduled turn.
            slot_of(&mut os).install(machine.take().expect("shared machine in flight"));
            let tool = SafeMem::builder()
                .sampling(SamplingPlan::new(spec.sampling_ppm, spec.sampling_seed))
                .build(&mut os);
            machine = Some(slot_of(&mut os).take());
            procs.push(Process {
                os,
                tool,
                sim: ChurnSim::new(spec.kind, config.requests),
                kind: spec.kind,
                workload_seed: spec.workload_seed,
            });
        }
        Fleet {
            config,
            procs,
            machine,
        }
    }

    /// Runs every process to completion — `(request, pid)`-ordered turns,
    /// then a drain/finish turn per process — and tallies the fleet.
    #[must_use]
    pub fn run(mut self) -> FleetReport {
        let buggy = self.config.buggy;
        for request in 0..self.config.requests {
            for proc in &mut self.procs {
                proc.turn(&mut self.machine, |p| {
                    let mut ctx = Ctx::new(&mut p.os, &mut p.tool, p.sim.app_id(), p.workload_seed);
                    p.sim.step(&mut ctx, request, buggy);
                });
            }
        }

        let window = self.config.window_pages * PAGE_BYTES;
        let mut report = FleetReport {
            processes: self.procs.len() as u64,
            requests: self.config.requests,
            shared_phys_bytes: window * self.procs.len() as u64,
            machine_cycles: 0,
            process_cycles: 0,
            page_faults: 0,
            swap_ins: 0,
            swap_outs: 0,
            tallies: Vec::new(),
            detected: Vec::with_capacity(self.procs.len()),
        };

        for proc in &mut self.procs {
            let outcome = proc.turn(&mut self.machine, |p| {
                {
                    let mut ctx = Ctx::new(&mut p.os, &mut p.tool, p.sim.app_id(), p.workload_seed);
                    p.sim.drain(&mut ctx);
                }
                p.tool.finish(&mut p.os);
                score(p)
            });
            let vm = proc.os.vm().stats();
            report.process_cycles += proc.os.cpu_cycles();
            report.page_faults += vm.page_faults;
            report.swap_ins += vm.swap_ins;
            report.swap_outs += vm.swap_outs;
            let name = kind_name(proc.kind);
            let tally = match report.tallies.iter_mut().find(|(n, _)| *n == name) {
                Some((_, t)) => t,
                None => {
                    report.tallies.push((name, KindTally::default()));
                    &mut report.tallies.last_mut().expect("just pushed").1
                }
            };
            tally.processes += 1;
            tally.detected += u64::from(outcome.detected);
            tally.false_positives += outcome.false_positives;
            tally.sampled_allocs += outcome.sampled_allocs;
            tally.total_allocs += outcome.total_allocs;
            report.detected.push(outcome.detected);
        }

        let machine = self.machine.expect("shared machine parked after turns");
        report.machine_cycles = machine.clock().cycles();
        report
    }
}

struct Outcome {
    detected: bool,
    false_positives: u64,
    sampled_allocs: u64,
    total_allocs: u64,
}

/// Scores one finished process: was the planted bug reported, and did
/// anything else get reported that should not have been?
fn score(proc: &mut Process) -> Outcome {
    let result = RunResult {
        cpu_cycles: proc.os.cpu_cycles(),
        reports: proc.tool.reports(),
        heap_stats: proc.tool.heap().stats(),
    };
    let sampling = proc.tool.sampling().unwrap_or_default();
    let truth = match proc.kind {
        ChurnKind::Leak => ChurnLeak.true_leak_groups(),
        _ => Vec::new(),
    };
    let (detected, mut false_positives) = match proc.kind {
        ChurnKind::Leak => (
            result.true_leaks(&truth) > 0,
            result.false_leaks(&truth) as u64,
        ),
        ChurnKind::UseAfterFree | ChurnKind::Overflow => (
            result.corruption_detected(),
            result.false_leaks(&truth) as u64,
        ),
    };
    if proc.kind == ChurnKind::Leak && result.corruption_detected() {
        false_positives += 1;
    }
    Outcome {
        detected,
        false_positives,
        sampled_allocs: sampling.sampled_allocs,
        total_allocs: sampling.total_allocs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safemem_core::PPM;

    fn spec(kind: ChurnKind, pid: u64) -> ProcessSpec {
        ProcessSpec {
            kind,
            workload_seed: 0x05AF_E3E3,
            sampling_ppm: PPM,
            sampling_seed: pid,
        }
    }

    #[test]
    fn always_on_trio_detects_every_planted_bug() {
        let specs = [
            spec(ChurnKind::Leak, 0),
            spec(ChurnKind::UseAfterFree, 1),
            spec(ChurnKind::Overflow, 2),
        ];
        let report = Fleet::boot(&specs, FleetConfig::default()).run();
        assert_eq!(report.processes, 3);
        assert_eq!(report.detections(), 3, "tallies: {:?}", report.tallies);
        assert_eq!(report.false_positives(), 0);
        assert_eq!(report.detected, vec![true, true, true]);
        assert_eq!(report.tally("churn-leak").unwrap().detected, 1);
        assert!(report.process_cycles > 0);
        assert!(
            report.machine_cycles >= report.process_cycles,
            "the shared clock serializes every process's time"
        );
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let specs: Vec<ProcessSpec> = (0..6)
            .map(|pid| {
                spec(
                    [
                        ChurnKind::Leak,
                        ChurnKind::UseAfterFree,
                        ChurnKind::Overflow,
                    ][pid as usize % 3],
                    pid,
                )
            })
            .collect();
        let config = FleetConfig {
            requests: 48,
            ..FleetConfig::default()
        };
        let a = Fleet::boot(&specs, config).run();
        let b = Fleet::boot(&specs, config).run();
        assert_eq!(a, b);
    }

    #[test]
    fn sampled_fleet_detection_tracks_the_sampling_decision() {
        // At a sub-1.0 rate, a uaf process detects iff its victim
        // allocation drew instrumentation — so re-running the same fleet
        // must reproduce the exact same hit set, and some processes must
        // fall on each side at 20%.
        let specs: Vec<ProcessSpec> = (0..16)
            .map(|pid| ProcessSpec {
                sampling_ppm: 200_000,
                ..spec(ChurnKind::UseAfterFree, pid)
            })
            .collect();
        let config = FleetConfig {
            requests: 48,
            ..FleetConfig::default()
        };
        let report = Fleet::boot(&specs, config).run();
        let hits = report.detections();
        assert!(hits > 0 && hits < 16, "both outcomes occur: {hits}/16");
        assert_eq!(report.false_positives(), 0);
        let again = Fleet::boot(&specs, config).run();
        assert_eq!(report.detected, again.detected);
    }

    #[test]
    fn normal_inputs_stay_silent_fleet_wide() {
        let specs: Vec<ProcessSpec> = (0..6)
            .map(|pid| {
                spec(
                    [
                        ChurnKind::Leak,
                        ChurnKind::UseAfterFree,
                        ChurnKind::Overflow,
                    ][pid as usize % 3],
                    pid,
                )
            })
            .collect();
        let config = FleetConfig {
            buggy: false,
            ..FleetConfig::default()
        };
        let report = Fleet::boot(&specs, config).run();
        assert_eq!(report.detections(), 0);
        assert_eq!(report.false_positives(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn empty_fleet_is_rejected() {
        let _ = Fleet::boot(&[], FleetConfig::default());
    }

    #[test]
    #[ignore = "scale smoke (512 processes): run explicitly or via the CI fleet leg"]
    fn five_hundred_twelve_processes_share_one_machine() {
        let specs: Vec<ProcessSpec> = (0..512)
            .map(|pid| ProcessSpec {
                sampling_ppm: 200_000,
                ..spec(
                    [
                        ChurnKind::Leak,
                        ChurnKind::UseAfterFree,
                        ChurnKind::Overflow,
                    ][pid as usize % 3],
                    pid,
                )
            })
            .collect();
        let report = Fleet::boot(&specs, FleetConfig::default()).run();
        assert_eq!(report.processes, 512);
        assert_eq!(report.shared_phys_bytes, 512 * 32 * PAGE_BYTES);
        assert_eq!(report.false_positives(), 0);
        assert!(report.detections() > 0);
    }
}
