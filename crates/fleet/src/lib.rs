//! Multi-process fleet simulation: the paper's production-run story at
//! GWP-ASan scale.
//!
//! A [`Fleet`] time-multiplexes one physical [`Machine`] — one ECC
//! memory controller, one cache hierarchy, one swap device — across
//! hundreds-to-thousands of simulated processes. Each process is a full
//! `safemem-os` instance over a [`SlotBackend`]
//! (the pluggable machine/OS boundary): before a process's turn the
//! scheduler installs the shared machine into that process's slot, and
//! after the turn it takes the machine back. Processes are kept apart by
//! disjoint physical frame windows (`OsConfig::phys_base`), so each OS
//! pages, pins, and watches only its own slice of the shared memory, while
//! the backend's per-process virtual clock keeps the leak detector's
//! lifetime thresholds meaningful per process.
//!
//! Every process runs a connection-churn server workload
//! ([`ChurnSim`]) under its own sampled SafeMem
//! instance. At sub-1.0 sampling rates each individual process is unlikely
//! to catch its planted bug; the fleet-level detection probability
//! `1 - (1 - r)^n` is what the `fleet` campaign preset scores against the
//! tallies this crate produces.
//!
//! # Determinism and sharding
//!
//! Within a fleet, turn order is `(round, pid)` lexicographic and no
//! decision consults host state, so a run is a pure function of its
//! [`ProcessSpec`]s and [`FleetConfig`]. On top of that, every turn ends
//! with a full cache flush (see [`park`]): a process always starts its
//! turn from an empty cache, so its entire trajectory — every hit, miss,
//! fault, and cycle — is independent of which co-residents share its
//! machine. That independence is what makes the fleet *shardable*:
//! [`Fleet::run_sharded`] partitions the processes into contiguous shards,
//! each with its own machine sized to its own windows, runs the shards on
//! a scoped worker pool, and merges the per-shard reports in canonical pid
//! order into a [`FleetReport`] byte-identical to the single-machine run.
//!
//! # Long horizons
//!
//! [`FleetConfig`] carries the paper-scale deployment knobs: epoch-batched
//! leak checks ([`FleetConfig::epoch_batch`]), staggered process start
//! offsets ([`FleetConfig::stagger`]), and restart churn
//! ([`FleetConfig::restart_every`]) — each process can be torn down and
//! rebooted every k requests as a fresh generation, the way production
//! fleets roll. All three default to the pre-existing behaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use safemem_core::{LeakConfig, MemTool, SafeMem, SamplingPlan};
use safemem_ecc::ControllerStats;
use safemem_machine::{Machine, SlotBackend};
use safemem_os::{Os, OsConfig, SwapPolicy, PAGE_BYTES};
use safemem_workloads::apps::churn::CHURN_DEFAULT_REQUESTS;
use safemem_workloads::apps::{ChurnKind, ChurnLeak, ChurnSim};
use safemem_workloads::{Ctx, RunResult, Workload};

/// Default physical frame window per process, in pages (128 KiB): ample for
/// a churn server's resident set while keeping a 512-process fleet's shared
/// memory at 64 MiB.
///
/// The window is a multiple of both cache-level set strides, so re-basing a
/// process's window (as sharding does) never changes its cache set mapping.
pub const DEFAULT_WINDOW_PAGES: u64 = 32;

/// Per-process plan: which churn server it runs and how its SafeMem
/// instance samples.
///
/// The sampling seed is taken verbatim (not derived here) so the campaign
/// layer can key it exactly like its single-process cells — a fleet process
/// and the campaign cell with the same spec then make identical
/// per-allocation sampling decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessSpec {
    /// The churn workload this process runs.
    pub kind: ChurnKind,
    /// Seed for the workload driver context (churn draws nothing from it,
    /// but it keeps fleet and solo runs configured identically).
    pub workload_seed: u64,
    /// SafeMem sampling rate in parts-per-million.
    pub sampling_ppm: u32,
    /// SafeMem sampling seed for this process.
    pub sampling_seed: u64,
}

/// Fleet-wide knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Requests each process serves.
    pub requests: u64,
    /// Physical frame window per process, in pages.
    pub window_pages: u64,
    /// Whether the servers receive bug-triggering inputs.
    pub buggy: bool,
    /// Swap policy of every process's OS.
    pub swap_policy: SwapPolicy,
    /// Whether each process's leak detector batches check deadlines at
    /// epoch boundaries ([`LeakConfig::epoch_batch`]) — the DoubleTake-style
    /// batching that makes long horizons affordable. `false` keeps the
    /// eager per-deadline reference path.
    pub epoch_batch: bool,
    /// Staggered start offsets: process with global pid `p` idles for
    /// `p % stagger` scheduler rounds before serving its first request
    /// (0 = everyone starts at round 0). Offsets are a function of the
    /// *global* pid, so a sharded run staggers identically to a whole run.
    pub stagger: u64,
    /// Restart churn: tear the process down (drain, score, drop the OS)
    /// and boot a fresh generation — new OS, new sampled SafeMem, new
    /// server state — after every `k` served requests (None = one
    /// generation for the whole horizon). Each generation derives its own
    /// sampling seed; a process's detection flag is the OR over its
    /// generations and its false positives the sum.
    pub restart_every: Option<u64>,
    /// Global pid of the first spec in this fleet (nonzero only for the
    /// shard-local fleets [`Fleet::run_sharded`] boots, so stagger offsets
    /// and generation seeds stay functions of the global pid).
    pub pid_base: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            requests: CHURN_DEFAULT_REQUESTS,
            window_pages: DEFAULT_WINDOW_PAGES,
            buggy: true,
            swap_policy: SwapPolicy::PinWatchedPages,
            epoch_batch: true,
            stagger: 0,
            restart_every: None,
            pid_base: 0,
        }
    }
}

/// Per-workload-kind detection tally, folded over all processes of that
/// kind (fixed size regardless of fleet size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KindTally {
    /// Processes running this kind.
    pub processes: u64,
    /// Processes whose planted bug was reported (in any generation).
    pub detected: u64,
    /// False reports across this kind's processes (wrong-group leaks, or
    /// any corruption report from a process that planted none).
    pub false_positives: u64,
    /// Allocations that drew full instrumentation, summed over processes.
    pub sampled_allocs: u64,
    /// Allocations issued, summed over processes.
    pub total_allocs: u64,
}

/// Everything a fleet run produces. All fields are fixed-size aggregates
/// except [`detected`](FleetReport::detected), one flag per process (the
/// cross-check surface for the campaign's per-cell replays).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetReport {
    /// Fleet size.
    pub processes: u64,
    /// Requests each process served.
    pub requests: u64,
    /// Bytes of physical memory across the fleet's machines.
    pub shared_phys_bytes: u64,
    /// Machine clock at the end of the run, summed over the fleet's
    /// machines (all processes' turns plus the turn-boundary cache
    /// flushes, serialized per machine).
    pub machine_cycles: u64,
    /// Sum of per-process CPU cycles (virtual clocks, I/O excluded).
    pub process_cycles: u64,
    /// Page faults summed over all processes.
    pub page_faults: u64,
    /// Swap-ins on the machines' swap devices, summed over all processes.
    pub swap_ins: u64,
    /// Swap-outs on the machines' swap devices, summed over all processes.
    pub swap_outs: u64,
    /// ECC controller counters summed over the fleet's machines.
    pub ecc: ControllerStats,
    /// Per-kind tallies in first-appearance order of the spec list.
    pub tallies: Vec<(&'static str, KindTally)>,
    /// Per-process detection flag, indexed by pid.
    pub detected: Vec<bool>,
}

impl FleetReport {
    /// The tally for workload `name`, if any process ran it.
    #[must_use]
    pub fn tally(&self, name: &str) -> Option<&KindTally> {
        self.tallies
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, t)| t)
    }

    /// Total false positives across the fleet.
    #[must_use]
    pub fn false_positives(&self) -> u64 {
        self.tallies.iter().map(|(_, t)| t.false_positives).sum()
    }

    /// Total detections across the fleet.
    #[must_use]
    pub fn detections(&self) -> u64 {
        self.tallies.iter().map(|(_, t)| t.detected).sum()
    }

    /// Merges `other` (the next contiguous shard, in pid order) into this
    /// report: counters sum, detection flags concatenate, tallies merge in
    /// first-appearance order — exactly what a single-machine run of the
    /// concatenated spec list produces.
    fn absorb_shard(&mut self, other: FleetReport) {
        self.processes += other.processes;
        self.shared_phys_bytes += other.shared_phys_bytes;
        self.machine_cycles += other.machine_cycles;
        self.process_cycles += other.process_cycles;
        self.page_faults += other.page_faults;
        self.swap_ins += other.swap_ins;
        self.swap_outs += other.swap_outs;
        add_controller_stats(&mut self.ecc, &other.ecc);
        for (name, tally) in other.tallies {
            match self.tallies.iter_mut().find(|(n, _)| *n == name) {
                Some((_, t)) => {
                    t.processes += tally.processes;
                    t.detected += tally.detected;
                    t.false_positives += tally.false_positives;
                    t.sampled_allocs += tally.sampled_allocs;
                    t.total_allocs += tally.total_allocs;
                }
                None => self.tallies.push((name, tally)),
            }
        }
        self.detected.extend(other.detected);
    }
}

/// Component-wise sum of ECC controller counters (the struct is plain
/// counters, so shard merge is addition).
fn add_controller_stats(into: &mut ControllerStats, from: &ControllerStats) {
    into.groups_verified += from.groups_verified;
    into.groups_encoded += from.groups_encoded;
    into.corrected_single_bit += from.corrected_single_bit;
    into.reported_single_bit += from.reported_single_bit;
    into.uncorrectable += from.uncorrectable;
    into.scrubbed_groups += from.scrubbed_groups;
    into.scrub_corrections += from.scrub_corrections;
    into.scrub_passes += from.scrub_passes;
    into.injected_data_bits += from.injected_data_bits;
    into.injected_code_bits += from.injected_code_bits;
    into.injected_multi_bit += from.injected_multi_bit;
}

/// The workload-registry name of a churn kind.
#[must_use]
pub fn kind_name(kind: ChurnKind) -> &'static str {
    match kind {
        ChurnKind::Leak => "churn-leak",
        ChurnKind::UseAfterFree => "churn-uaf",
        ChurnKind::Overflow => "churn-obo",
    }
}

/// Per-process accumulator across generations (one generation unless
/// restart churn is on).
#[derive(Debug, Default)]
struct ProcAccum {
    detected: bool,
    false_positives: u64,
    sampled_allocs: u64,
    total_allocs: u64,
    cpu_cycles: u64,
    page_faults: u64,
    swap_ins: u64,
    swap_outs: u64,
}

/// One simulated process: its OS (over a vacant slot), its SafeMem
/// instance, and its server state — plus the generation bookkeeping for
/// restart churn.
struct Process {
    spec: ProcessSpec,
    /// Base of this process's frame window on its shard's machine.
    phys_base: u64,
    /// Scheduler rounds this process idles before its first request.
    offset: u64,
    /// Current generation index (0 unless restart churn is on).
    generation: u64,
    /// Requests served by the current generation.
    gen_served: u64,
    os: Os,
    tool: SafeMem,
    sim: ChurnSim,
    kind: ChurnKind,
    workload_seed: u64,
    acc: ProcAccum,
}

/// The slot backend of a fleet process's OS.
fn slot_of(os: &mut Os) -> &mut SlotBackend {
    os.machine_mut()
        .as_any_mut()
        .downcast_mut::<SlotBackend>()
        .expect("fleet processes run over SlotBackend")
}

/// Takes the machine back from a process's slot and flushes the caches
/// before parking it. The flush is the determinism barrier that makes a
/// process's trajectory independent of its co-residents: every turn starts
/// from an empty cache, so hit/miss behaviour — and therefore every cycle
/// count — is a function of that process's own history alone. Flush cycles
/// advance the machine clock but are foreign time to every process's
/// virtual clock (the slot accrues up to the take, and resets on install).
fn park(machine: &mut Option<Machine>, os: &mut Os) {
    let mut m = slot_of(os).take();
    m.flush_all_caches();
    *machine = Some(m);
}

/// The sampling seed of generation `g` of a process: generation 0 keeps the
/// spec's seed verbatim (so the no-restart path is unchanged and the
/// campaign cross-check still binds); later generations re-key it so a
/// rebooted process makes fresh sampling decisions, the way a restarted
/// production process would.
fn generation_seed(spec_seed: u64, generation: u64) -> u64 {
    if generation == 0 {
        spec_seed
    } else {
        spec_seed ^ generation.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

/// Boots one process generation: a fresh OS over a vacant slot and a
/// sampled SafeMem instance built as a scheduled turn on `machine`.
fn boot_stack(
    machine: &mut Option<Machine>,
    hz: u64,
    window: u64,
    phys_base: u64,
    spec: &ProcessSpec,
    sampling_seed: u64,
    config: &FleetConfig,
) -> (Os, SafeMem) {
    let mut os = Os::with_backend(
        Box::new(SlotBackend::vacant(hz)),
        OsConfig {
            phys_bytes: window,
            phys_base,
            swap_policy: config.swap_policy,
            ..OsConfig::default()
        },
    );
    // Tool construction queries the machine (line size), so it runs as a
    // scheduled turn.
    slot_of(&mut os).install(machine.take().expect("shared machine in flight"));
    let tool = SafeMem::builder()
        .sampling(SamplingPlan::new(spec.sampling_ppm, sampling_seed))
        .leak_config(LeakConfig {
            epoch_batch: config.epoch_batch,
            ..LeakConfig::default()
        })
        .build(&mut os);
    park(machine, &mut os);
    (os, tool)
}

impl Process {
    /// Runs `f` with the shared machine installed in this process's slot.
    fn turn<R>(&mut self, machine: &mut Option<Machine>, f: impl FnOnce(&mut Process) -> R) -> R {
        slot_of(&mut self.os).install(machine.take().expect("shared machine in flight"));
        let result = f(self);
        park(machine, &mut self.os);
        result
    }

    /// Closes the current generation as a scheduled turn — drain the
    /// server, finish the tool, score — and folds the outcome and the
    /// generation's OS counters into the per-process accumulator.
    fn close_generation(&mut self, machine: &mut Option<Machine>) {
        let outcome = self.turn(machine, |p| {
            {
                let mut ctx = Ctx::new(&mut p.os, &mut p.tool, p.sim.app_id(), p.workload_seed);
                p.sim.drain(&mut ctx);
            }
            p.tool.finish(&mut p.os);
            score(p)
        });
        let vm = self.os.vm().stats();
        self.acc.detected |= outcome.detected;
        self.acc.false_positives += outcome.false_positives;
        self.acc.sampled_allocs += outcome.sampled_allocs;
        self.acc.total_allocs += outcome.total_allocs;
        self.acc.cpu_cycles += self.os.cpu_cycles();
        self.acc.page_faults += vm.page_faults;
        self.acc.swap_ins += vm.swap_ins;
        self.acc.swap_outs += vm.swap_outs;
    }
}

/// The multi-process scheduler over one shared machine.
pub struct Fleet {
    config: FleetConfig,
    hz: u64,
    procs: Vec<Process>,
    machine: Option<Machine>,
}

impl Fleet {
    /// Boots a fleet: one shared machine sized to hold every process's
    /// frame window, and one OS + sampled SafeMem instance per spec.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty or `config.window_pages` is zero.
    #[must_use]
    pub fn boot(specs: &[ProcessSpec], config: FleetConfig) -> Self {
        assert!(!specs.is_empty(), "a fleet needs at least one process");
        assert!(config.window_pages > 0, "zero-page frame window");
        let window = config.window_pages * PAGE_BYTES;
        let shared = Machine::with_defaults(window * specs.len() as u64);
        let hz = shared.clock().hz();
        let mut machine = Some(shared);
        let mut procs = Vec::with_capacity(specs.len());
        for (pid, spec) in specs.iter().enumerate() {
            let global_pid = config.pid_base + pid as u64;
            let phys_base = pid as u64 * window;
            let (os, tool) = boot_stack(
                &mut machine,
                hz,
                window,
                phys_base,
                spec,
                generation_seed(spec.sampling_seed, 0),
                &config,
            );
            let offset = if config.stagger == 0 {
                0
            } else {
                global_pid % config.stagger
            };
            procs.push(Process {
                spec: *spec,
                phys_base,
                offset,
                generation: 0,
                gen_served: 0,
                os,
                tool,
                sim: ChurnSim::new(spec.kind, generation_length(&config, 0)),
                kind: spec.kind,
                workload_seed: spec.workload_seed,
                acc: ProcAccum::default(),
            });
        }
        Fleet {
            config,
            hz,
            procs,
            machine,
        }
    }

    /// Runs every process to completion — `(round, pid)`-ordered turns with
    /// stagger offsets and generation rollovers, then a drain/finish turn
    /// per process — and tallies the fleet.
    #[must_use]
    pub fn run(mut self) -> FleetReport {
        let config = self.config;
        let window = config.window_pages * PAGE_BYTES;
        let rounds = config.requests + self.procs.iter().map(|p| p.offset).max().unwrap_or(0);
        for round in 0..rounds {
            for proc in &mut self.procs {
                let Some(local) = round.checked_sub(proc.offset) else {
                    continue;
                };
                if local >= config.requests {
                    continue;
                }
                if proc.gen_served == generation_length(&config, proc.generation) {
                    // Restart churn: this generation served its quota.
                    proc.close_generation(&mut self.machine);
                    proc.generation += 1;
                    proc.gen_served = 0;
                    let (os, tool) = boot_stack(
                        &mut self.machine,
                        self.hz,
                        window,
                        proc.phys_base,
                        &proc.spec,
                        generation_seed(proc.spec.sampling_seed, proc.generation),
                        &config,
                    );
                    proc.os = os;
                    proc.tool = tool;
                    proc.sim =
                        ChurnSim::new(proc.kind, generation_length(&config, proc.generation));
                }
                let request = proc.gen_served;
                proc.turn(&mut self.machine, |p| {
                    let mut ctx = Ctx::new(&mut p.os, &mut p.tool, p.sim.app_id(), p.workload_seed);
                    p.sim.step(&mut ctx, request, config.buggy);
                });
                proc.gen_served += 1;
            }
        }

        let mut report = FleetReport {
            processes: self.procs.len() as u64,
            requests: config.requests,
            shared_phys_bytes: window * self.procs.len() as u64,
            machine_cycles: 0,
            process_cycles: 0,
            page_faults: 0,
            swap_ins: 0,
            swap_outs: 0,
            ecc: ControllerStats::default(),
            tallies: Vec::new(),
            detected: Vec::with_capacity(self.procs.len()),
        };

        for proc in &mut self.procs {
            proc.close_generation(&mut self.machine);
            report.process_cycles += proc.acc.cpu_cycles;
            report.page_faults += proc.acc.page_faults;
            report.swap_ins += proc.acc.swap_ins;
            report.swap_outs += proc.acc.swap_outs;
            let name = kind_name(proc.kind);
            let tally = match report.tallies.iter_mut().find(|(n, _)| *n == name) {
                Some((_, t)) => t,
                None => {
                    report.tallies.push((name, KindTally::default()));
                    &mut report.tallies.last_mut().expect("just pushed").1
                }
            };
            tally.processes += 1;
            tally.detected += u64::from(proc.acc.detected);
            tally.false_positives += proc.acc.false_positives;
            tally.sampled_allocs += proc.acc.sampled_allocs;
            tally.total_allocs += proc.acc.total_allocs;
            report.detected.push(proc.acc.detected);
        }

        let machine = self.machine.expect("shared machine parked after turns");
        report.machine_cycles = machine.clock().cycles();
        report.ecc = machine.controller().stats();
        report
    }

    /// Runs the fleet partitioned into `shards` contiguous shards, each
    /// with its own machine sized to its own processes' frame windows, on a
    /// scoped worker pool (one worker per shard, self-scheduling through an
    /// atomic cursor like the campaign runner). Processes never share
    /// frames across shards and every turn ends at the cache barrier, so
    /// the merged report is byte-identical to `Fleet::boot(specs,
    /// config).run()` for every shard count — `shards == 1` *is* that
    /// single-machine reference.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty, `shards` is zero, or
    /// `config.window_pages` is zero.
    #[must_use]
    pub fn run_sharded(specs: &[ProcessSpec], config: FleetConfig, shards: usize) -> FleetReport {
        assert!(shards > 0, "a fleet needs at least one shard");
        assert!(!specs.is_empty(), "a fleet needs at least one process");
        let shards = shards.min(specs.len());
        if shards == 1 {
            return Fleet::boot(specs, config).run();
        }

        // Contiguous balanced partition: shard s owns specs[start..end] and
        // their global pids, so concatenating shard results in shard order
        // is canonical pid order.
        let per = specs.len() / shards;
        let extra = specs.len() % shards;
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0usize;
        for s in 0..shards {
            let len = per + usize::from(s < extra);
            ranges.push(start..start + len);
            start += len;
        }

        let cursor = std::sync::atomic::AtomicUsize::new(0);
        let mut slots: Vec<Option<FleetReport>> = Vec::new();
        slots.resize_with(shards, || None);
        let slots = std::sync::Mutex::new(slots);
        std::thread::scope(|scope| {
            for _ in 0..shards {
                let cursor = &cursor;
                let slots = &slots;
                let ranges = &ranges;
                scope.spawn(move || loop {
                    let s = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(range) = ranges.get(s) else {
                        break;
                    };
                    let shard_config = FleetConfig {
                        pid_base: config.pid_base + range.start as u64,
                        ..config
                    };
                    let report = Fleet::boot(&specs[range.clone()], shard_config).run();
                    slots.lock().expect("no panics hold the shard lock")[s] = Some(report);
                });
            }
        });

        let mut merged: Option<FleetReport> = None;
        for report in slots.into_inner().expect("scope joined all workers") {
            let report = report.expect("every shard ran");
            match &mut merged {
                None => merged = Some(report),
                Some(m) => m.absorb_shard(report),
            }
        }
        merged.expect("at least one shard")
    }
}

/// Requests generation `g` serves under `config`: the whole horizon
/// without restart churn, else `restart_every` (the final generation takes
/// the remainder).
fn generation_length(config: &FleetConfig, generation: u64) -> u64 {
    match config.restart_every {
        None => config.requests,
        Some(k) => {
            let k = k.max(1);
            let served = generation * k;
            k.min(config.requests.saturating_sub(served))
        }
    }
}

struct Outcome {
    detected: bool,
    false_positives: u64,
    sampled_allocs: u64,
    total_allocs: u64,
}

/// Scores one finished process generation: was the planted bug reported,
/// and did anything else get reported that should not have been?
fn score(proc: &mut Process) -> Outcome {
    let result = RunResult {
        cpu_cycles: proc.os.cpu_cycles(),
        reports: proc.tool.reports(),
        heap_stats: proc.tool.heap().stats(),
    };
    let sampling = proc.tool.sampling().unwrap_or_default();
    let truth = match proc.kind {
        ChurnKind::Leak => ChurnLeak.true_leak_groups(),
        _ => Vec::new(),
    };
    let (detected, mut false_positives) = match proc.kind {
        ChurnKind::Leak => (
            result.true_leaks(&truth) > 0,
            result.false_leaks(&truth) as u64,
        ),
        ChurnKind::UseAfterFree | ChurnKind::Overflow => (
            result.corruption_detected(),
            result.false_leaks(&truth) as u64,
        ),
    };
    if proc.kind == ChurnKind::Leak && result.corruption_detected() {
        false_positives += 1;
    }
    Outcome {
        detected,
        false_positives,
        sampled_allocs: sampling.sampled_allocs,
        total_allocs: sampling.total_allocs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safemem_core::PPM;

    fn spec(kind: ChurnKind, pid: u64) -> ProcessSpec {
        ProcessSpec {
            kind,
            workload_seed: 0x05AF_E3E3,
            sampling_ppm: PPM,
            sampling_seed: pid,
        }
    }

    fn trio_specs(n: u64) -> Vec<ProcessSpec> {
        (0..n)
            .map(|pid| {
                spec(
                    [
                        ChurnKind::Leak,
                        ChurnKind::UseAfterFree,
                        ChurnKind::Overflow,
                    ][pid as usize % 3],
                    pid,
                )
            })
            .collect()
    }

    #[test]
    fn always_on_trio_detects_every_planted_bug() {
        let specs = [
            spec(ChurnKind::Leak, 0),
            spec(ChurnKind::UseAfterFree, 1),
            spec(ChurnKind::Overflow, 2),
        ];
        let report = Fleet::boot(&specs, FleetConfig::default()).run();
        assert_eq!(report.processes, 3);
        assert_eq!(report.detections(), 3, "tallies: {:?}", report.tallies);
        assert_eq!(report.false_positives(), 0);
        assert_eq!(report.detected, vec![true, true, true]);
        assert_eq!(report.tally("churn-leak").unwrap().detected, 1);
        assert!(report.process_cycles > 0);
        assert!(
            report.machine_cycles >= report.process_cycles,
            "the shared clock serializes every process's time"
        );
        assert!(report.ecc.groups_verified > 0, "ECC stats surface");
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let specs = trio_specs(6);
        let config = FleetConfig {
            requests: 48,
            ..FleetConfig::default()
        };
        let a = Fleet::boot(&specs, config).run();
        let b = Fleet::boot(&specs, config).run();
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_runs_compose_exactly() {
        // The load-bearing claim behind run_sharded: with the turn-boundary
        // cache barrier, per-shard machines compose into the whole —
        // every counter, including cycle counts and ECC controller stats,
        // not just the detection flags.
        let specs = trio_specs(6);
        let config = FleetConfig {
            requests: 48,
            ..FleetConfig::default()
        };
        let whole = Fleet::boot(&specs, config).run();
        for shards in [1usize, 2, 3, 6] {
            let sharded = Fleet::run_sharded(&specs, config, shards);
            assert_eq!(whole, sharded, "{shards} shards diverged");
        }
    }

    #[test]
    fn sharding_composes_under_stagger_and_restart() {
        let specs = trio_specs(7);
        let config = FleetConfig {
            requests: 48,
            stagger: 5,
            restart_every: Some(16),
            ..FleetConfig::default()
        };
        let whole = Fleet::boot(&specs, config).run();
        for shards in [2usize, 3] {
            let sharded = Fleet::run_sharded(&specs, config, shards);
            assert_eq!(whole, sharded, "{shards} shards diverged");
        }
    }

    #[test]
    fn stagger_offsets_follow_the_global_pid() {
        // Staggered processes serve the same requests, just later in
        // machine time — detections are unchanged, and the offsets only
        // delay, never drop, work.
        let specs = trio_specs(6);
        let base = FleetConfig {
            requests: 48,
            ..FleetConfig::default()
        };
        let plain = Fleet::boot(&specs, base).run();
        let staggered = Fleet::boot(&specs, FleetConfig { stagger: 4, ..base }).run();
        assert_eq!(plain.detected, staggered.detected);
        assert_eq!(plain.detections(), staggered.detections());
        assert_eq!(plain.false_positives(), 0);
        assert_eq!(staggered.false_positives(), 0);
        // Per-process work is identical; only the machine-time interleaving
        // moved, which the virtual clocks hide.
        assert_eq!(plain.process_cycles, staggered.process_cycles);
    }

    #[test]
    fn restart_churn_rolls_generations_without_false_positives() {
        // 192 requests with a restart every 96: two generations per
        // process, each as long as a default churn run. Each generation is
        // a fresh OS + tool over the same frame window — reuse must never
        // leak armed watch state into the next generation as a false
        // positive, and each generation's planted bug is detectable on its
        // own (a generation shorter than the SLeak watch horizon would
        // realistically truncate leak detection, so keep them full-length
        // here).
        let specs = trio_specs(6);
        let config = FleetConfig {
            requests: 192,
            restart_every: Some(96),
            ..FleetConfig::default()
        };
        let report = Fleet::boot(&specs, config).run();
        assert_eq!(report.false_positives(), 0, "{:?}", report.tallies);
        // The leak is planted at request 8 of each full-length generation,
        // so every always-on leak process still detects.
        assert_eq!(report.tally("churn-leak").unwrap().detected, 2);
        // Corruption plants at requests/2 of each generation's span.
        assert!(report.detections() >= 2);
        let again = Fleet::boot(&specs, config).run();
        assert_eq!(report, again, "restart churn stays deterministic");
    }

    #[test]
    fn eager_leak_checks_agree_with_epoch_batched_on_detection() {
        // The fleet-path mirror of the single-process epoch differential:
        // batching leak-check deadlines must not change what is detected.
        let specs = trio_specs(6);
        let batched = Fleet::boot(
            &specs,
            FleetConfig {
                requests: 48,
                epoch_batch: true,
                ..FleetConfig::default()
            },
        )
        .run();
        let eager = Fleet::boot(
            &specs,
            FleetConfig {
                requests: 48,
                epoch_batch: false,
                ..FleetConfig::default()
            },
        )
        .run();
        assert_eq!(batched.detected, eager.detected);
        assert_eq!(batched.tallies, eager.tallies);
    }

    #[test]
    fn sampled_fleet_detection_tracks_the_sampling_decision() {
        // At a sub-1.0 rate, a uaf process detects iff its victim
        // allocation drew instrumentation — so re-running the same fleet
        // must reproduce the exact same hit set, and some processes must
        // fall on each side at 20%.
        let specs: Vec<ProcessSpec> = (0..16)
            .map(|pid| ProcessSpec {
                sampling_ppm: 200_000,
                ..spec(ChurnKind::UseAfterFree, pid)
            })
            .collect();
        let config = FleetConfig {
            requests: 48,
            ..FleetConfig::default()
        };
        let report = Fleet::boot(&specs, config).run();
        let hits = report.detections();
        assert!(hits > 0 && hits < 16, "both outcomes occur: {hits}/16");
        assert_eq!(report.false_positives(), 0);
        let again = Fleet::boot(&specs, config).run();
        assert_eq!(report.detected, again.detected);
    }

    #[test]
    fn normal_inputs_stay_silent_fleet_wide() {
        let specs = trio_specs(6);
        let config = FleetConfig {
            buggy: false,
            ..FleetConfig::default()
        };
        let report = Fleet::boot(&specs, config).run();
        assert_eq!(report.detections(), 0);
        assert_eq!(report.false_positives(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn empty_fleet_is_rejected() {
        let _ = Fleet::boot(&[], FleetConfig::default());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_are_rejected() {
        let specs = trio_specs(3);
        let _ = Fleet::run_sharded(&specs, FleetConfig::default(), 0);
    }

    #[test]
    #[ignore = "scale smoke (512 processes): run explicitly or via the CI fleet leg"]
    fn five_hundred_twelve_processes_share_one_machine() {
        let specs: Vec<ProcessSpec> = (0..512)
            .map(|pid| ProcessSpec {
                sampling_ppm: 200_000,
                ..spec(
                    [
                        ChurnKind::Leak,
                        ChurnKind::UseAfterFree,
                        ChurnKind::Overflow,
                    ][pid as usize % 3],
                    pid,
                )
            })
            .collect();
        let report = Fleet::boot(&specs, FleetConfig::default()).run();
        assert_eq!(report.processes, 512);
        assert_eq!(report.shared_phys_bytes, 512 * 32 * PAGE_BYTES);
        assert_eq!(report.false_positives(), 0);
        assert!(report.detections() > 0);
        // And the sharded path composes to the same report at scale.
        let sharded = Fleet::run_sharded(&specs, FleetConfig::default(), 8);
        assert_eq!(report, sharded);
    }

    #[test]
    #[ignore = "long-horizon smoke (10k+ requests with stagger + restart churn): run explicitly or via the CI fleet leg"]
    fn long_horizon_fleet_with_stagger_and_restart_churn() {
        use safemem_workloads::apps::churn::CHURN_LONG_HORIZON_REQUESTS;
        let specs = trio_specs(6);
        let config = FleetConfig {
            requests: CHURN_LONG_HORIZON_REQUESTS,
            stagger: 64,
            restart_every: Some(2_048),
            ..FleetConfig::default()
        };
        let whole = Fleet::boot(&specs, config).run();
        assert_eq!(whole.false_positives(), 0);
        assert_eq!(whole.tally("churn-leak").unwrap().detected, 2);
        let sharded = Fleet::run_sharded(&specs, config, 3);
        assert_eq!(whole, sharded, "long horizons still compose");
    }
}
