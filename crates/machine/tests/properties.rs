//! Property tests for the machine: the cached access path (with flushes,
//! uncached kernel writes, scrubbing and prefetching interleaved) must be
//! byte-transparent against a flat reference model, and time must advance
//! monotonically with every operation.

use proptest::prelude::*;
use safemem_cache::default_two_level;
use safemem_ecc::EccMode;
use safemem_machine::{CostModel, Machine};

#[derive(Debug, Clone)]
enum Op {
    Read { addr: u64, len: usize },
    Write { addr: u64, data: Vec<u8> },
    WriteUncached { addr: u64, data: Vec<u8> },
    FlushRange { addr: u64, len: u64 },
    FlushAll,
    Scrub,
}

const MEM: u64 = 1 << 16;

fn ops() -> impl Strategy<Value = Vec<Op>> {
    let max = MEM - 512;
    proptest::collection::vec(
        prop_oneof![
            ((0..max), 1usize..256).prop_map(|(addr, len)| Op::Read { addr, len }),
            ((0..max), proptest::collection::vec(any::<u8>(), 1..256))
                .prop_map(|(addr, data)| Op::Write { addr, data }),
            ((0..max), proptest::collection::vec(any::<u8>(), 1..128))
                .prop_map(|(addr, data)| Op::WriteUncached { addr, data }),
            ((0..max), 1u64..512).prop_map(|(addr, len)| Op::FlushRange { addr, len }),
            Just(Op::FlushAll),
            Just(Op::Scrub),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every interleaving of cached/uncached writes, reads, flushes and
    /// scrub steps observes flat-array semantics, and the clock never goes
    /// backwards.
    #[test]
    fn prop_machine_is_transparent(ops in ops()) {
        let mut m = Machine::new(MEM, default_two_level(), CostModel::default());
        m.controller_mut().set_mode(EccMode::CorrectAndScrub);
        let mut shadow = vec![0u8; MEM as usize];
        let mut last_cycles = 0u64;

        for op in &ops {
            match op {
                Op::Read { addr, len } => {
                    let mut buf = vec![0u8; *len];
                    m.read(*addr, &mut buf).expect("no faults in a clean machine");
                    prop_assert_eq!(&buf[..], &shadow[*addr as usize..*addr as usize + len]);
                }
                Op::Write { addr, data } => {
                    m.write(*addr, data).expect("no faults");
                    shadow[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
                }
                Op::WriteUncached { addr, data } => {
                    // The kernel path must be coherent with the caches: the
                    // OS flushes the target first, as the syscalls do.
                    m.flush_range(*addr, data.len() as u64);
                    m.write_uncached(*addr, data);
                    shadow[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
                }
                Op::FlushRange { addr, len } => m.flush_range(*addr, *len),
                Op::FlushAll => m.flush_all_caches(),
                Op::Scrub => {
                    m.scrub_step(128);
                }
            }
            let now = m.clock().cycles();
            prop_assert!(now >= last_cycles, "clock must be monotone");
            last_cycles = now;
        }

        // Final sweep: everything readable and equal to the shadow.
        let mut buf = vec![0u8; 4096];
        for chunk in 0..(MEM / 4096) {
            m.read(chunk * 4096, &mut buf).expect("clean");
            prop_assert_eq!(&buf[..], &shadow[(chunk * 4096) as usize..(chunk * 4096 + 4096) as usize]);
        }
    }

    /// With the prefetcher on, the same transparency holds (prefetches are
    /// hints, never semantics).
    #[test]
    fn prop_prefetcher_preserves_semantics(ops in ops()) {
        let mut m = Machine::new(MEM, default_two_level(), CostModel::default());
        m.set_prefetch(true);
        let mut shadow = vec![0u8; MEM as usize];
        for op in &ops {
            match op {
                Op::Read { addr, len } => {
                    let mut buf = vec![0u8; *len];
                    m.read(*addr, &mut buf).expect("no faults");
                    prop_assert_eq!(&buf[..], &shadow[*addr as usize..*addr as usize + len]);
                }
                Op::Write { addr, data } => {
                    m.write(*addr, data).expect("no faults");
                    shadow[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
                }
                Op::WriteUncached { addr, data } => {
                    m.flush_range(*addr, data.len() as u64);
                    m.write_uncached(*addr, data);
                    shadow[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
                }
                Op::FlushRange { addr, len } => m.flush_range(*addr, *len),
                Op::FlushAll => m.flush_all_caches(),
                Op::Scrub => {}
            }
        }
        let mut buf = vec![0u8; 4096];
        for chunk in 0..(MEM / 4096) {
            m.read(chunk * 4096, &mut buf).expect("clean");
            prop_assert_eq!(&buf[..], &shadow[(chunk * 4096) as usize..(chunk * 4096 + 4096) as usize]);
        }
    }

    /// Random single-bit hardware errors sprinkled between operations are
    /// always healed: the program still observes flat-array semantics.
    #[test]
    fn prop_single_bit_errors_invisible(
        ops in ops(),
        errors in proptest::collection::vec(((0u64..MEM/8), 0u8..64), 1..8),
    ) {
        let mut m = Machine::new(MEM, default_two_level(), CostModel::default());
        let mut shadow = vec![0u8; MEM as usize];
        let mut err_iter = errors.into_iter();
        for (i, op) in ops.iter().enumerate() {
            // Inject an error every few ops, on data that is IN MEMORY
            // (not cached dirty), mimicking random bit decay.
            if i % 7 == 3 {
                if let Some((group, bit)) = err_iter.next() {
                    let addr = group * 8;
                    m.flush_range(addr, 8);
                    m.controller_mut().inject_data_error(addr, bit);
                }
            }
            match op {
                Op::Read { addr, len } => {
                    let mut buf = vec![0u8; *len];
                    m.read(*addr, &mut buf).expect("single-bit errors are corrected");
                    prop_assert_eq!(&buf[..], &shadow[*addr as usize..*addr as usize + len]);
                }
                Op::Write { addr, data } => {
                    m.write(*addr, data).expect("no faults");
                    shadow[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
                }
                _ => {}
            }
        }
    }
}
