//! The simulated physical machine for the SafeMem reproduction.
//!
//! Models the evaluation platform of the paper (§5.1): a 2.4 GHz processor
//! with an Intel-E7500-class ECC memory controller. A [`Machine`] owns
//!
//! * the [`EccController`] over physical memory,
//! * a [cache hierarchy](safemem_cache::Hierarchy) between CPU and memory,
//! * a cycle-accurate [`Clock`] and the calibrated [`CostModel`] that
//!   translates simulated events into cycles.
//!
//! All physical memory accesses flow through [`Machine::read`] /
//! [`Machine::write`]: the cache filters them, refills and writebacks reach
//! the controller where ECC is verified, and uncorrectable errors surface as
//! [`EccFault`]s — the raw material the OS layer turns
//! into SafeMem watchpoint hits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod clock;
pub mod cost;
pub mod dma;

pub use backend::{MachineBackend, SlotBackend};
pub use clock::Clock;
pub use cost::CostModel;
pub use dma::{DmaEngine, DmaStep, DmaTransfer};

use safemem_cache::{CacheConfig, Hierarchy, LineBacking, Traffic, WriteMissPolicy};
use safemem_ecc::codec::{LINE_BYTES as ECC_LINE_BYTES, LINE_GROUPS as ECC_LINE_GROUPS};
use safemem_ecc::{EccController, EccFault, EccMode, ScrambleScheme};

/// Adapter presenting the ECC controller as the cache hierarchy's backing.
struct CtlBacking<'a>(&'a mut EccController);

impl LineBacking for CtlBacking<'_> {
    type Error = EccFault;

    fn read_line(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), Self::Error> {
        self.0.read(addr, buf)
    }

    fn write_line(&mut self, addr: u64, data: &[u8]) {
        self.0.write(addr, data);
    }

    fn write_through(&mut self, addr: u64, data: &[u8]) -> Result<(), Self::Error> {
        // The controller merges partial writes without verifying — memory
        // writes never ECC-check (paper §2.1).
        self.0.write(addr, data);
        Ok(())
    }
}

/// The simulated machine: CPU clock + caches + ECC memory.
///
/// # Example
///
/// ```
/// use safemem_machine::Machine;
///
/// let mut m = Machine::with_defaults(1 << 20);
/// m.write(0x1000, &[1, 2, 3]).unwrap();
/// let mut buf = [0u8; 3];
/// m.read(0x1000, &mut buf).unwrap();
/// assert_eq!(buf, [1, 2, 3]);
/// assert!(m.clock().cycles() > 0);
/// ```
pub struct Machine {
    controller: EccController,
    hierarchy: Hierarchy,
    clock: Clock,
    cost: CostModel,
    scramble: ScrambleScheme,
    /// Per-access traffic scratch, reset before every access instead of
    /// reallocating the per-level counter vector on the hot path.
    traffic: Traffic,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("clock", &self.clock)
            .field("controller", &self.controller)
            .field("hierarchy", &self.hierarchy)
            .finish()
    }
}

impl Machine {
    /// Builds a machine with explicit cache geometry and cost model.
    ///
    /// # Panics
    ///
    /// Panics if `phys_bytes` is zero or `caches` is empty/invalid.
    #[must_use]
    pub fn new(phys_bytes: u64, caches: Vec<CacheConfig>, cost: CostModel) -> Self {
        Machine::with_write_miss_policy(phys_bytes, caches, cost, WriteMissPolicy::WriteAllocate)
    }

    /// Builds a machine with an explicit cache write-miss policy. SafeMem
    /// requires [`WriteMissPolicy::WriteAllocate`]; the alternative exists
    /// to demonstrate why (see the cache crate's docs).
    ///
    /// # Panics
    ///
    /// As for [`Machine::new`].
    #[must_use]
    pub fn with_write_miss_policy(
        phys_bytes: u64,
        caches: Vec<CacheConfig>,
        cost: CostModel,
        policy: WriteMissPolicy,
    ) -> Self {
        let mut controller = EccController::new(phys_bytes);
        controller.set_mode(EccMode::CorrectError);
        let hierarchy = Hierarchy::with_write_miss_policy(caches, policy);
        let traffic = Traffic::new(hierarchy.num_levels());
        Machine {
            controller,
            hierarchy,
            clock: Clock::new(cost.cpu_hz),
            cost,
            scramble: ScrambleScheme::default(),
            traffic,
        }
    }

    /// Builds a machine with the default two-level cache and cost model.
    ///
    /// # Panics
    ///
    /// Panics if `phys_bytes` is zero.
    #[must_use]
    pub fn with_defaults(phys_bytes: u64) -> Self {
        Machine::new(
            phys_bytes,
            safemem_cache::default_two_level(),
            CostModel::default(),
        )
    }

    /// The simulated clock.
    #[must_use]
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The calibrated cost model.
    #[must_use]
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Cache line size in bytes.
    #[must_use]
    pub fn line_size(&self) -> u64 {
        u64::from(self.hierarchy.line_size())
    }

    /// Direct access to the memory controller (used by the OS layer for
    /// scramble sequences, scrub policy, and fault draining).
    #[must_use]
    pub fn controller_mut(&mut self) -> &mut EccController {
        &mut self.controller
    }

    /// Shared access to the memory controller.
    #[must_use]
    pub fn controller(&self) -> &EccController {
        &self.controller
    }

    /// The machine's scramble scheme (fixed per platform, like the 3 fixed
    /// bits of the paper's prototype).
    #[must_use]
    pub fn scramble(&self) -> ScrambleScheme {
        self.scramble
    }

    /// The cache hierarchy (for residency queries in tests).
    #[must_use]
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Enables or disables the next-line hardware prefetcher. Safe to
    /// combine with ECC watchpoints: prefetches of armed lines are squashed
    /// by the hardware, never raised as faults and never cached.
    pub fn set_prefetch(&mut self, on: bool) {
        self.hierarchy.set_prefetch(on);
        self.hierarchy.set_prefetch_limit(self.controller.size());
    }

    /// Charges the scratch traffic record accumulated by the last access
    /// in one batch (see [`CostModel::traffic_cycles`]).
    fn charge(&mut self) {
        let cycles = self.cost.traffic_cycles(&self.traffic);
        self.clock.advance(cycles);
    }

    /// Reads physical memory through the cache hierarchy, advancing the
    /// clock by the access cost.
    ///
    /// # Errors
    ///
    /// Returns the [`EccFault`] raised by a refill of an inconsistent (e.g.
    /// watched/scrambled) ECC group. The faulting line is not cached, so the
    /// access can be retried after the fault is handled.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds physical memory.
    pub fn read(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), EccFault> {
        self.traffic.reset();
        let result = self.hierarchy.read(
            addr,
            buf,
            &mut CtlBacking(&mut self.controller),
            &mut self.traffic,
        );
        self.charge();
        if result.is_err() {
            self.clock.advance(self.cost.fault_detect_cycles);
        }
        result
    }

    /// Writes physical memory through the cache hierarchy (write-allocate),
    /// advancing the clock by the access cost.
    ///
    /// # Errors
    ///
    /// Returns the [`EccFault`] raised by the write-allocate refill if the
    /// target line is inconsistent — this is how *stores* to watched lines
    /// are caught (paper §2.2.2).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds physical memory.
    pub fn write(&mut self, addr: u64, buf: &[u8]) -> Result<(), EccFault> {
        self.traffic.reset();
        let result = self.hierarchy.write(
            addr,
            buf,
            &mut CtlBacking(&mut self.controller),
            &mut self.traffic,
        );
        self.charge();
        if result.is_err() {
            self.clock.advance(self.cost.fault_detect_cycles);
        }
        result
    }

    /// Flushes all cache lines overlapping `[addr, addr + len)` to memory,
    /// advancing the clock. Part of the `WatchMemory` sequence.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds physical memory.
    pub fn flush_range(&mut self, addr: u64, len: u64) {
        self.traffic.reset();
        let lines = len.div_ceil(self.line_size()).max(1);
        self.hierarchy.flush_range(
            addr,
            len,
            &mut CtlBacking(&mut self.controller),
            &mut self.traffic,
        );
        self.charge();
        self.clock.advance(lines * self.cost.flush_line_cycles);
    }

    /// Writes back and empties the entire cache hierarchy.
    pub fn flush_all_caches(&mut self) {
        self.traffic.reset();
        self.hierarchy
            .flush_all(&mut CtlBacking(&mut self.controller), &mut self.traffic);
        self.charge();
    }

    /// Writes physical memory directly, bypassing the cache hierarchy — the
    /// kernel path used by the watch/unwatch sequences, which must not
    /// trigger write-allocate refills of the very line being manipulated.
    ///
    /// The caller is responsible for having flushed any cached copy first
    /// (the syscall layer does). Honours the controller's ECC-enable state:
    /// with ECC disabled the stored codes stay stale.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds physical memory.
    pub fn write_uncached(&mut self, addr: u64, buf: &[u8]) {
        let lines = (buf.len() as u64).div_ceil(self.line_size()).max(1);
        self.controller.write(addr, buf);
        self.clock.advance(lines * self.cost.memory_write_cycles);
    }

    /// [`write_uncached`](Self::write_uncached) of one aligned line with
    /// caller-precomputed check codes (the watch-disarm fast path): same
    /// stored state, accounting, and clock charge, no re-encode.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not line-aligned or lies outside memory.
    pub fn write_uncached_precoded(
        &mut self,
        addr: u64,
        data: &[u8; ECC_LINE_BYTES],
        codes: &[u8; ECC_LINE_GROUPS],
    ) {
        self.controller.write_line_precoded(addr, data, codes);
        self.clock.advance(self.cost.memory_write_cycles);
    }

    /// Reads physical memory directly, bypassing the cache hierarchy, with
    /// full ECC verification (kernel path).
    ///
    /// # Errors
    ///
    /// Returns the [`EccFault`] if any touched group is uncorrectable.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds physical memory.
    pub fn read_uncached(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), EccFault> {
        let lines = (buf.len() as u64).div_ceil(self.line_size()).max(1);
        self.clock.advance(lines * self.cost.memory_read_cycles);
        self.controller.read(addr, buf)
    }

    /// Reads raw memory bytes without caches, checks, or time accounting —
    /// the diagnostic window used by the ECC fault handler.
    ///
    /// Note: cached dirty data is *not* visible here; this peeks at memory
    /// content exactly as the controller stores it, which is what the fault
    /// handler needs (the faulted line was just read from memory).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds physical memory.
    #[must_use]
    pub fn peek(&self, addr: u64, len: usize) -> Vec<u8> {
        self.controller.peek(addr, len)
    }

    /// [`peek`](Self::peek) into a caller-provided buffer (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds physical memory.
    pub fn peek_into(&self, addr: u64, out: &mut [u8]) {
        self.controller.peek_into(addr, out);
    }

    /// Models CPU-bound work: advances the clock by `cycles` without memory
    /// traffic.
    pub fn compute(&mut self, cycles: u64) {
        self.clock.advance(cycles);
    }

    /// Drains pending ECC faults (the simulated interrupt queue).
    pub fn take_faults(&mut self) -> Vec<EccFault> {
        self.controller.take_faults()
    }

    /// Runs one background scrub step of `groups` ECC groups, if the
    /// controller mode scrubs. Returns groups examined.
    pub fn scrub_step(&mut self, groups: u64) -> u64 {
        self.controller.scrub_step(groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safemem_ecc::FaultKind;

    #[test]
    fn roundtrip_and_time_advances() {
        let mut m = Machine::with_defaults(1 << 20);
        let t0 = m.clock().cycles();
        m.write(0x2000, &[7; 100]).unwrap();
        let t1 = m.clock().cycles();
        assert!(t1 > t0, "writes cost time");
        let mut buf = [0u8; 100];
        m.read(0x2000, &mut buf).unwrap();
        assert_eq!(buf, [7; 100]);
    }

    #[test]
    fn cache_hits_cost_less_than_misses() {
        let mut m = Machine::with_defaults(1 << 20);
        let mut buf = [0u8; 8];
        let t0 = m.clock().cycles();
        m.read(0x3000, &mut buf).unwrap(); // miss
        let miss_cost = m.clock().cycles() - t0;
        let t1 = m.clock().cycles();
        m.read(0x3000, &mut buf).unwrap(); // hit
        let hit_cost = m.clock().cycles() - t1;
        assert!(hit_cost < miss_cost, "hit {hit_cost} !< miss {miss_cost}");
    }

    #[test]
    fn full_watch_sequence_faults_and_recovers() {
        // The raw machine-level watch sequence the OS will wrap in syscalls.
        let mut m = Machine::with_defaults(1 << 20);
        let addr = 0x4000u64;
        let original = 0x1122_3344_5566_7788u64;
        m.write(addr, &original.to_le_bytes()).unwrap();

        // Arm: lock bus, flush the line, disable ECC, scramble, enable.
        let scheme = m.scramble();
        m.controller_mut().lock_bus();
        m.flush_range(addr, 8);
        m.controller_mut().set_enabled(false);
        m.write_uncached(addr, &scheme.apply(original).to_le_bytes());
        m.controller_mut().set_enabled(true);
        m.controller_mut().unlock_bus();

        // First access faults.
        let mut buf = [0u8; 8];
        let fault = m.read(addr, &mut buf).unwrap_err();
        assert_eq!(fault.kind, FaultKind::UncorrectableData);

        // Handler checks the signature against the stored original.
        let raw = u64::from_le_bytes(m.peek(addr, 8).try_into().unwrap());
        assert!(scheme.matches(original, raw));

        // Disarm: restore original data (ECC on, kernel path), then the
        // access succeeds.
        m.write_uncached(addr, &original.to_le_bytes());
        m.read(addr, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), original);
    }

    #[test]
    fn store_to_scrambled_line_faults_via_write_allocate() {
        let mut m = Machine::with_defaults(1 << 20);
        let addr = 0x5000u64;
        m.write(addr, &0u64.to_le_bytes()).unwrap();
        let scheme = m.scramble();
        m.flush_range(addr, 8);
        m.controller_mut().set_enabled(false);
        m.write_uncached(addr, &scheme.apply(0).to_le_bytes());
        m.controller_mut().set_enabled(true);
        // A *write* (store) to the watched line must also fault.
        assert!(m.write(addr, &[0xFF]).is_err());
    }

    #[test]
    fn no_write_allocate_defeats_store_watchpoints() {
        // Negative demonstration of §2.2.2: without write-allocate, a store
        // to a watched line silently destroys the watchpoint.
        let mut m = Machine::with_write_miss_policy(
            1 << 20,
            safemem_cache::default_two_level(),
            CostModel::default(),
            WriteMissPolicy::NoWriteAllocate,
        );
        let addr = 0x6000u64;
        m.write_uncached(addr, &0u64.to_le_bytes());
        let scheme = m.scramble();
        m.controller_mut().set_enabled(false);
        m.write_uncached(addr, &scheme.apply(0).to_le_bytes());
        m.controller_mut().set_enabled(true);
        // The store does NOT fault (no refill happens)...
        m.write(addr, &[0xFF]).expect("store slips through");
        // ...and the line is now half-overwritten with a fresh code: the
        // watchpoint is gone and subsequent reads are clean.
        let mut buf = [0u8; 1];
        m.read(addr, &mut buf).expect("watchpoint destroyed");
    }

    #[test]
    fn prefetcher_neither_fires_nor_destroys_watchpoints() {
        let mut m = Machine::with_defaults(1 << 20);
        m.set_prefetch(true);
        let addr = 0x7000u64; // the watched line
        m.write(addr - 64, &[1u8; 64]).unwrap();
        m.write(addr, &0u64.to_le_bytes()).unwrap();
        let scheme = m.scramble();
        m.flush_range(addr - 64, 128);
        m.controller_mut().set_enabled(false);
        m.write_uncached(addr, &scheme.apply(0).to_le_bytes());
        m.controller_mut().set_enabled(true);

        // Demand access to the PREVIOUS line prefetches the watched one:
        // the prefetch is squashed silently, no fault surfaces.
        let mut buf = [0u8; 8];
        m.read(addr - 64, &mut buf)
            .expect("prefetch must not fault");
        assert_eq!(m.hierarchy().residency(addr), None);
        // The watchpoint still fires on a demand access.
        assert!(m.read(addr, &mut buf).is_err());
    }

    #[test]
    fn compute_advances_clock_without_memory_traffic() {
        let mut m = Machine::with_defaults(1 << 20);
        m.compute(1000);
        assert_eq!(m.clock().cycles(), 1000);
        assert_eq!(m.controller().stats().groups_verified, 0);
    }

    #[test]
    fn faults_are_queued_for_the_os() {
        let mut m = Machine::with_defaults(1 << 20);
        m.write(0x100, &[1; 8]).unwrap();
        m.flush_all_caches();
        m.controller_mut().inject_multi_bit_error(0x100);
        let mut buf = [0u8; 8];
        assert!(m.read(0x100, &mut buf).is_err());
        let faults = m.take_faults();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].group_addr, 0x100);
    }

    #[test]
    fn ns_conversion_uses_cpu_frequency() {
        let mut m = Machine::with_defaults(1 << 20);
        m.compute(2_400_000_000); // one second of cycles at 2.4 GHz
        assert_eq!(m.clock().nanos(), 1_000_000_000);
    }
}
