//! The pluggable machine/OS boundary.
//!
//! [`MachineBackend`] abstracts the physical-machine surface the OS layer
//! consumes, so different memory substrates plug into the same detector
//! stack unchanged (the memflow proxy-OS layering): a [`Machine`] owned
//! outright by one process (the single-process path), or a [`SlotBackend`]
//! window onto a machine *shared* by a whole fleet of simulated processes,
//! where a cooperative scheduler moves the machine into the running
//! process's slot for the duration of its turn.
//!
//! The trait mirrors the [`Machine`] API exactly — every method forwards to
//! the inherent method of the installed machine — so swapping backends is
//! observably inert for single-process users.

use crate::clock::Clock;
use crate::cost::CostModel;
use safemem_cache::Hierarchy;
use safemem_ecc::{EccController, EccFault, ScrambleScheme};
use std::any::Any;

/// The machine surface the OS layer runs against.
///
/// Implementations must behave exactly like a [`Machine`] with the same
/// state: the conformance suite in `crates/os/tests` drives both backends
/// through identical scripts and compares bytes, faults, and clocks.
///
/// The one deliberate divergence is [`clock`](MachineBackend::clock): a
/// backend over *shared* hardware reports a **per-process virtual clock**
/// (time observed while this process was scheduled), not the global machine
/// clock — which is precisely what per-process CPU accounting needs.
pub trait MachineBackend: std::fmt::Debug {
    /// The clock this process observes (see the trait docs for sharing).
    fn clock(&self) -> &Clock;
    /// The calibrated cost model.
    fn cost(&self) -> &CostModel;
    /// Cache line size in bytes.
    fn line_size(&self) -> u64;
    /// Shared access to the memory controller.
    fn controller(&self) -> &EccController;
    /// Direct access to the memory controller (scramble sequences, scrub
    /// policy, fault draining, error injection).
    fn controller_mut(&mut self) -> &mut EccController;
    /// The machine's scramble scheme.
    fn scramble(&self) -> ScrambleScheme;
    /// The cache hierarchy (residency queries).
    fn hierarchy(&self) -> &Hierarchy;
    /// Enables or disables the next-line hardware prefetcher.
    fn set_prefetch(&mut self, on: bool);
    /// Reads physical memory through the cache hierarchy.
    ///
    /// # Errors
    ///
    /// Returns the [`EccFault`] raised by a refill of an inconsistent
    /// (e.g. watched/scrambled) ECC group.
    fn read(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), EccFault>;
    /// Writes physical memory through the cache hierarchy (write-allocate).
    ///
    /// # Errors
    ///
    /// As for [`read`](MachineBackend::read), via the write-allocate refill.
    fn write(&mut self, addr: u64, buf: &[u8]) -> Result<(), EccFault>;
    /// Flushes cached lines overlapping `[addr, addr + len)` to memory.
    fn flush_range(&mut self, addr: u64, len: u64);
    /// Writes back and empties the entire cache hierarchy.
    fn flush_all_caches(&mut self);
    /// Writes physical memory directly, bypassing the caches (kernel path).
    fn write_uncached(&mut self, addr: u64, buf: &[u8]);
    /// [`write_uncached`](MachineBackend::write_uncached) of one aligned
    /// line with caller-precomputed check codes.
    fn write_uncached_precoded(&mut self, addr: u64, data: &[u8; 64], codes: &[u8; 8]);
    /// Reads physical memory directly with full ECC verification.
    ///
    /// # Errors
    ///
    /// Returns the [`EccFault`] if any touched group is uncorrectable.
    fn read_uncached(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), EccFault>;
    /// Reads raw memory bytes without caches, checks, or time accounting.
    fn peek(&self, addr: u64, len: usize) -> Vec<u8>;
    /// [`peek`](MachineBackend::peek) into a caller-provided buffer.
    fn peek_into(&self, addr: u64, out: &mut [u8]) {
        out.copy_from_slice(&self.peek(addr, out.len()));
    }
    /// Models CPU-bound work: advances the clock by `cycles`.
    fn compute(&mut self, cycles: u64);
    /// Drains pending ECC faults (the simulated interrupt queue).
    fn take_faults(&mut self) -> Vec<EccFault>;
    /// Runs one background scrub step of `groups` ECC groups.
    fn scrub_step(&mut self, groups: u64) -> u64;
    /// Type-erased self, for scheduler-side downcasts.
    fn as_any(&self) -> &dyn Any;
    /// Type-erased mutable self, for scheduler-side downcasts (e.g. the
    /// fleet scheduler installing the shared machine into a [`SlotBackend`]).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl MachineBackend for crate::Machine {
    fn clock(&self) -> &Clock {
        crate::Machine::clock(self)
    }
    fn cost(&self) -> &CostModel {
        crate::Machine::cost(self)
    }
    fn line_size(&self) -> u64 {
        crate::Machine::line_size(self)
    }
    fn controller(&self) -> &EccController {
        crate::Machine::controller(self)
    }
    fn controller_mut(&mut self) -> &mut EccController {
        crate::Machine::controller_mut(self)
    }
    fn scramble(&self) -> ScrambleScheme {
        crate::Machine::scramble(self)
    }
    fn hierarchy(&self) -> &Hierarchy {
        crate::Machine::hierarchy(self)
    }
    fn set_prefetch(&mut self, on: bool) {
        crate::Machine::set_prefetch(self, on);
    }
    fn read(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), EccFault> {
        crate::Machine::read(self, addr, buf)
    }
    fn write(&mut self, addr: u64, buf: &[u8]) -> Result<(), EccFault> {
        crate::Machine::write(self, addr, buf)
    }
    fn flush_range(&mut self, addr: u64, len: u64) {
        crate::Machine::flush_range(self, addr, len);
    }
    fn flush_all_caches(&mut self) {
        crate::Machine::flush_all_caches(self);
    }
    fn write_uncached(&mut self, addr: u64, buf: &[u8]) {
        crate::Machine::write_uncached(self, addr, buf);
    }
    fn write_uncached_precoded(&mut self, addr: u64, data: &[u8; 64], codes: &[u8; 8]) {
        crate::Machine::write_uncached_precoded(self, addr, data, codes);
    }
    fn read_uncached(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), EccFault> {
        crate::Machine::read_uncached(self, addr, buf)
    }
    fn peek(&self, addr: u64, len: usize) -> Vec<u8> {
        crate::Machine::peek(self, addr, len)
    }
    fn peek_into(&self, addr: u64, out: &mut [u8]) {
        crate::Machine::peek_into(self, addr, out);
    }
    fn compute(&mut self, cycles: u64) {
        crate::Machine::compute(self, cycles);
    }
    fn take_faults(&mut self) -> Vec<EccFault> {
        crate::Machine::take_faults(self)
    }
    fn scrub_step(&mut self, groups: u64) -> u64 {
        crate::Machine::scrub_step(self, groups)
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

const VACANT: &str = "SlotBackend: no machine installed (the fleet scheduler must install the \
     shared machine before this process runs)";

/// A backend window onto a machine shared by many simulated processes.
///
/// A cooperative fleet scheduler time-multiplexes one physical [`Machine`]
/// across processes: before a process's turn it [`install`]s the machine
/// into that process's slot, and after the turn it [`take`]s it back. While
/// installed, every operation forwards to the shared machine (absolute
/// physical addresses — processes are kept apart by disjoint frame windows
/// at the VM layer, not by translation here).
///
/// The slot maintains a **per-process virtual clock**: after each operation
/// it accrues the shared clock's advance since the machine was installed
/// (or since the previous operation), so time spent by *other* processes
/// between this process's turns never inflates this process's CPU time —
/// the leak detector's lifetime thresholds stay per-process meaningful.
///
/// [`install`]: SlotBackend::install
/// [`take`]: SlotBackend::take
#[derive(Debug)]
pub struct SlotBackend {
    slot: Option<crate::Machine>,
    local: Clock,
    last_seen: u64,
}

impl SlotBackend {
    /// Creates an empty slot whose virtual clock runs at `hz`.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    #[must_use]
    pub fn vacant(hz: u64) -> Self {
        SlotBackend {
            slot: None,
            local: Clock::new(hz),
            last_seen: 0,
        }
    }

    /// Whether a machine is currently installed.
    #[must_use]
    pub fn is_installed(&self) -> bool {
        self.slot.is_some()
    }

    /// Installs the shared machine for this process's turn. The reference
    /// point for time accrual resets to the machine's current clock, so
    /// other processes' elapsed time is skipped.
    ///
    /// # Panics
    ///
    /// Panics if a machine is already installed (a scheduler bug).
    pub fn install(&mut self, machine: crate::Machine) {
        assert!(
            self.slot.is_none(),
            "SlotBackend: machine already installed"
        );
        self.last_seen = machine.clock().cycles();
        self.slot = Some(machine);
    }

    /// Removes the shared machine at the end of this process's turn,
    /// accruing any remaining clock advance first.
    ///
    /// # Panics
    ///
    /// Panics if no machine is installed.
    pub fn take(&mut self) -> crate::Machine {
        let machine = self.slot.take().expect(VACANT);
        let now = machine.clock().cycles();
        self.local.advance(now.saturating_sub(self.last_seen));
        self.last_seen = now;
        machine
    }

    fn shared(&self) -> &crate::Machine {
        self.slot.as_ref().expect(VACANT)
    }

    /// Runs `f` on the installed machine, then accrues its clock advance
    /// onto the per-process virtual clock.
    fn with<R>(&mut self, f: impl FnOnce(&mut crate::Machine) -> R) -> R {
        let machine = self.slot.as_mut().expect(VACANT);
        let result = f(machine);
        let now = machine.clock().cycles();
        self.local.advance(now.saturating_sub(self.last_seen));
        self.last_seen = now;
        result
    }
}

impl MachineBackend for SlotBackend {
    fn clock(&self) -> &Clock {
        &self.local
    }
    fn cost(&self) -> &CostModel {
        self.shared().cost()
    }
    fn line_size(&self) -> u64 {
        self.shared().line_size()
    }
    fn controller(&self) -> &EccController {
        self.shared().controller()
    }
    fn controller_mut(&mut self) -> &mut EccController {
        self.slot.as_mut().expect(VACANT).controller_mut()
    }
    fn scramble(&self) -> ScrambleScheme {
        self.shared().scramble()
    }
    fn hierarchy(&self) -> &Hierarchy {
        self.shared().hierarchy()
    }
    fn set_prefetch(&mut self, on: bool) {
        self.with(|m| m.set_prefetch(on));
    }
    fn read(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), EccFault> {
        self.with(|m| m.read(addr, buf))
    }
    fn write(&mut self, addr: u64, buf: &[u8]) -> Result<(), EccFault> {
        self.with(|m| m.write(addr, buf))
    }
    fn flush_range(&mut self, addr: u64, len: u64) {
        self.with(|m| m.flush_range(addr, len));
    }
    fn flush_all_caches(&mut self) {
        self.with(crate::Machine::flush_all_caches);
    }
    fn write_uncached(&mut self, addr: u64, buf: &[u8]) {
        self.with(|m| m.write_uncached(addr, buf));
    }
    fn write_uncached_precoded(&mut self, addr: u64, data: &[u8; 64], codes: &[u8; 8]) {
        self.with(|m| m.write_uncached_precoded(addr, data, codes));
    }
    fn read_uncached(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), EccFault> {
        self.with(|m| m.read_uncached(addr, buf))
    }
    fn peek(&self, addr: u64, len: usize) -> Vec<u8> {
        self.shared().peek(addr, len)
    }
    fn peek_into(&self, addr: u64, out: &mut [u8]) {
        self.shared().peek_into(addr, out);
    }
    fn compute(&mut self, cycles: u64) {
        self.with(|m| m.compute(cycles));
    }
    fn take_faults(&mut self) -> Vec<EccFault> {
        self.with(crate::Machine::take_faults)
    }
    fn scrub_step(&mut self, groups: u64) -> u64 {
        self.with(|m| m.scrub_step(groups))
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;

    #[test]
    fn slot_accrues_only_own_turns() {
        let mut machine = Machine::with_defaults(1 << 20);
        machine.compute(5_000); // time that elapsed before this process ran
        let hz = machine.clock().hz();
        let mut slot = SlotBackend::vacant(hz);
        assert!(!slot.is_installed());

        slot.install(machine);
        assert_eq!(slot.clock().cycles(), 0, "foreign time skipped");
        slot.compute(1_234);
        assert_eq!(slot.clock().cycles(), 1_234);

        let mut machine = slot.take();
        machine.compute(9_999); // another process's turn
        slot.install(machine);
        slot.compute(766);
        assert_eq!(slot.clock().cycles(), 2_000, "only own turns accrue");
        let machine = slot.take();
        assert!(machine.clock().cycles() >= 5_000 + 1_234 + 9_999 + 766);
    }

    #[test]
    fn slot_forwards_memory_operations() {
        let mut machine = Machine::with_defaults(1 << 20);
        machine.write(0x1000, &[7u8; 64]).unwrap();
        let mut slot = SlotBackend::vacant(machine.clock().hz());
        slot.install(machine);
        let mut buf = [0u8; 64];
        MachineBackend::read(&mut slot, 0x1000, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 64]);
        // peek bypasses the caches: flush the dirty line out first.
        MachineBackend::flush_range(&mut slot, 0x1000, 64);
        assert_eq!(slot.peek(0x1000, 4), vec![7u8; 4]);
        assert!(slot.clock().cycles() > 0, "the read cost accrued locally");
    }

    #[test]
    #[should_panic(expected = "no machine installed")]
    fn vacant_slot_panics_on_use() {
        let mut slot = SlotBackend::vacant(2_400_000_000);
        slot.compute(1);
    }

    #[test]
    fn downcast_through_the_trait_object() {
        let slot = SlotBackend::vacant(2_400_000_000);
        let boxed: Box<dyn MachineBackend> = Box::new(slot);
        assert!(boxed.as_any().downcast_ref::<SlotBackend>().is_some());
        assert!(boxed.as_any().downcast_ref::<Machine>().is_none());
    }
}
