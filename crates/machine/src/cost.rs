//! The calibrated cost model.
//!
//! Every named constant below is a *calibration* against the paper's
//! evaluation platform (§5.1: 2.4 GHz Pentium 4, Intel E7500) and its
//! measured microbenchmarks (Table 2). The reproduction's claims are about
//! *shapes* (relative overheads), but pinning the absolute constants to the
//! paper's measurements lets the regenerated tables land near the published
//! numbers too.

/// Cycle costs of the simulated machine's primitive events.
///
/// # Example
///
/// ```
/// use safemem_machine::CostModel;
///
/// let cost = CostModel::default();
/// // Table 2 of the paper: WatchMemory costs 2.0 µs at 2.4 GHz.
/// assert_eq!(cost.watch_memory_cycles, 4800);
/// assert_eq!(cost.cycles_to_micros(cost.watch_memory_cycles), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CostModel {
    /// CPU frequency in Hz (paper platform: 2.4 GHz).
    pub cpu_hz: u64,
    /// Hit latency per cache level, cycles (L1, L2, ...).
    pub level_hits: Vec<u64>,
    /// Full-line read from DRAM, cycles (~100 ns).
    pub memory_read_cycles: u64,
    /// Full-line write to DRAM (posted/buffered), cycles.
    pub memory_write_cycles: u64,
    /// Flushing one cache line (clflush-style), cycles.
    pub flush_line_cycles: u64,
    /// Detecting an ECC fault on an access (interrupt raise), cycles.
    pub fault_detect_cycles: u64,
    /// Kernel + user dispatch of an ECC fault to the registered handler,
    /// cycles (signal-delivery class cost, ~5 µs).
    pub fault_dispatch_cycles: u64,
    /// The `WatchMemory` syscall on a one-line region (Table 2: 2.0 µs ⇒
    /// 4800 @2.4 GHz).
    pub watch_memory_cycles: u64,
    /// Marginal kernel cost per additional line in a `WatchMemory` region.
    pub watch_extra_line_cycles: u64,
    /// The `DisableWatchMemory` syscall on a one-line region (Table 2:
    /// 1.5 µs ⇒ 3600).
    pub disable_watch_cycles: u64,
    /// Marginal kernel cost per additional line in a disable call.
    pub disable_extra_line_cycles: u64,
    /// The stock `mprotect` syscall (Table 2: 1.02 µs ⇒ 2448).
    pub mprotect_cycles: u64,
    /// Generic cheap syscall / trap overhead, cycles.
    pub syscall_base_cycles: u64,
    /// Handling a page fault that requires a swap-in, cycles (I/O excluded —
    /// the disk wait is charged as I/O time, not CPU time).
    pub page_fault_cycles: u64,
    /// Allocator bookkeeping per malloc/free, cycles.
    pub allocator_op_cycles: u64,
    /// Scrubber cost per ECC group examined, cycles.
    pub scrub_group_cycles: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cpu_hz: 2_400_000_000,
            level_hits: vec![3, 14],
            memory_read_cycles: 240,
            memory_write_cycles: 100,
            flush_line_cycles: 40,
            fault_detect_cycles: 500,
            fault_dispatch_cycles: 12_000,
            watch_memory_cycles: 4800,
            watch_extra_line_cycles: 300,
            disable_watch_cycles: 3600,
            disable_extra_line_cycles: 200,
            mprotect_cycles: 2448,
            syscall_base_cycles: 300,
            page_fault_cycles: 5000,
            allocator_op_cycles: 80,
            scrub_group_cycles: 4,
        }
    }
}

impl CostModel {
    /// Hit cost for cache level `level` (0 = L1). Levels beyond those
    /// configured fall back to the deepest known latency.
    #[must_use]
    pub fn level_hit_cycles(&self, level: usize) -> u64 {
        self.level_hits
            .get(level)
            .or_else(|| self.level_hits.last())
            .copied()
            .unwrap_or(10)
    }

    /// Converts cycles to microseconds at this model's CPU frequency.
    #[must_use]
    pub fn cycles_to_micros(&self, cycles: u64) -> f64 {
        cycles as f64 / self.cpu_hz as f64 * 1e6
    }

    /// Total cycle cost of one access's accumulated cache traffic:
    /// per-level hit latencies plus DRAM refills and writebacks. Charging
    /// once per access (however many lines it spanned) rather than per line
    /// is exact — the cost is linear in the counters.
    #[must_use]
    pub fn traffic_cycles(&self, traffic: &safemem_cache::Traffic) -> u64 {
        let mut cycles = 0;
        for (level, &hits) in traffic.level_hits.iter().enumerate() {
            cycles += hits * self.level_hit_cycles(level);
        }
        cycles += traffic.memory_reads * self.memory_read_cycles;
        cycles += traffic.memory_writes * self.memory_write_cycles;
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table2_calibration() {
        let c = CostModel::default();
        assert_eq!(c.cycles_to_micros(c.watch_memory_cycles), 2.0);
        assert_eq!(c.cycles_to_micros(c.disable_watch_cycles), 1.5);
        assert!((c.cycles_to_micros(c.mprotect_cycles) - 1.02).abs() < 1e-9);
    }

    #[test]
    fn deeper_levels_fall_back_to_last_latency() {
        let c = CostModel::default();
        assert_eq!(c.level_hit_cycles(0), 3);
        assert_eq!(c.level_hit_cycles(1), 14);
        assert_eq!(c.level_hit_cycles(7), 14);
    }

    #[test]
    fn memory_slower_than_any_cache() {
        let c = CostModel::default();
        for l in 0..c.level_hits.len() {
            assert!(c.memory_read_cycles > c.level_hit_cycles(l));
        }
    }

    #[test]
    fn ecc_watch_costlier_than_mprotect() {
        // Paper §6.1: the ECC calls are slightly costlier than mprotect
        // because they pin/unpin the page.
        let c = CostModel::default();
        assert!(c.watch_memory_cycles > c.mprotect_cycles);
        assert!(c.disable_watch_cycles > c.mprotect_cycles);
    }
}
