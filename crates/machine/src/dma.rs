//! A DMA engine: the "other background memory accesses" of paper §2.2.2.
//!
//! The paper locks the memory bus during the scramble sequence "to avoid
//! any other background memory accesses, such as those made by other
//! processors or DMAs, so that other memory locations are not affected".
//! This module makes that interaction concrete: a DMA engine performs
//! physical-to-physical copies in the background, one burst per step;
//! bursts stall while the bus is locked, and a DMA read that lands on an
//! armed (scrambled) line surfaces the ECC fault to the OS exactly like a
//! CPU access — devices must not read watched garbage silently.

use safemem_ecc::{EccController, EccFault};
use std::collections::VecDeque;

/// Bytes moved per DMA step (one burst).
pub const BURST_BYTES: u64 = 64;

/// One queued transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaTransfer {
    /// Source physical address.
    pub src: u64,
    /// Destination physical address.
    pub dst: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Outcome of one engine step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaStep {
    /// Nothing queued.
    Idle,
    /// The bus is locked; the burst waits.
    Stalled,
    /// One burst moved; the front transfer is still in flight.
    Progress,
    /// The front transfer finished with this burst.
    Completed(DmaTransfer),
    /// The burst's source read took an ECC fault; the transfer is aborted
    /// and the fault must be routed to the OS.
    Faulted(EccFault),
}

/// The DMA engine. Owns only its queue; memory belongs to the controller.
#[derive(Debug, Default)]
pub struct DmaEngine {
    queue: VecDeque<(DmaTransfer, u64)>, // (transfer, bytes done)
    completed: u64,
    faulted: u64,
    stalls: u64,
}

impl DmaEngine {
    /// Creates an idle engine.
    #[must_use]
    pub fn new() -> Self {
        DmaEngine::default()
    }

    /// Queues a copy.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn enqueue(&mut self, transfer: DmaTransfer) {
        assert!(transfer.len > 0, "zero-length DMA transfer");
        self.queue.push_back((transfer, 0));
    }

    /// Transfers still queued or in flight.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// (completed transfers, faulted transfers, stalled steps).
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.completed, self.faulted, self.stalls)
    }

    /// Runs one burst against the controller. DMA bypasses the CPU caches
    /// (the platform's caches are not coherent with device traffic in this
    /// model; the OS flushes buffers around DMA as real drivers do).
    pub fn step(&mut self, controller: &mut EccController) -> DmaStep {
        let Some((transfer, done)) = self.queue.front().copied() else {
            return DmaStep::Idle;
        };
        if controller.is_bus_locked() {
            self.stalls += 1;
            return DmaStep::Stalled;
        }
        let n = BURST_BYTES.min(transfer.len - done);
        let mut buf = vec![0u8; n as usize];
        match controller.read(transfer.src + done, &mut buf) {
            Ok(()) => {}
            Err(fault) => {
                self.queue.pop_front();
                self.faulted += 1;
                return DmaStep::Faulted(fault);
            }
        }
        controller.write(transfer.dst + done, &buf);
        let done = done + n;
        if done >= transfer.len {
            self.queue.pop_front();
            self.completed += 1;
            DmaStep::Completed(transfer)
        } else {
            self.queue.front_mut().expect("still queued").1 = done;
            DmaStep::Progress
        }
    }

    /// Drives the engine until the front transfer completes, faults, or
    /// `max_steps` elapse (stalls count as steps).
    pub fn run(&mut self, controller: &mut EccController, max_steps: u64) -> DmaStep {
        let mut last = DmaStep::Idle;
        for _ in 0..max_steps {
            last = self.step(controller);
            match last {
                DmaStep::Idle | DmaStep::Completed(_) | DmaStep::Faulted(_) => return last,
                DmaStep::Stalled | DmaStep::Progress => {}
            }
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safemem_ecc::ScrambleScheme;

    fn controller() -> EccController {
        EccController::new(1 << 16)
    }

    #[test]
    fn copies_data_in_bursts() {
        let mut ctl = controller();
        let data: Vec<u8> = (0..200u16).map(|i| i as u8).collect();
        ctl.write(0x1000, &data);
        let mut dma = DmaEngine::new();
        dma.enqueue(DmaTransfer {
            src: 0x1000,
            dst: 0x4000,
            len: 200,
        });
        // 200 bytes = 4 bursts.
        assert_eq!(dma.step(&mut ctl), DmaStep::Progress);
        assert_eq!(dma.step(&mut ctl), DmaStep::Progress);
        assert_eq!(dma.step(&mut ctl), DmaStep::Progress);
        assert!(matches!(dma.step(&mut ctl), DmaStep::Completed(_)));
        let mut buf = vec![0u8; 200];
        ctl.read(0x4000, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(dma.stats().0, 1);
    }

    #[test]
    fn bus_lock_stalls_the_engine() {
        let mut ctl = controller();
        ctl.write(0x1000, &[7u8; 64]);
        let mut dma = DmaEngine::new();
        dma.enqueue(DmaTransfer {
            src: 0x1000,
            dst: 0x2000,
            len: 64,
        });
        ctl.lock_bus();
        assert_eq!(dma.step(&mut ctl), DmaStep::Stalled);
        assert_eq!(dma.step(&mut ctl), DmaStep::Stalled);
        ctl.unlock_bus();
        assert!(matches!(dma.step(&mut ctl), DmaStep::Completed(_)));
        assert_eq!(dma.stats().2, 2, "two stalled steps");
    }

    #[test]
    fn scramble_under_bus_lock_is_invisible_to_dma() {
        // The §2.2.2 scenario: a DMA is in flight while the kernel arms a
        // watchpoint elsewhere. The bus lock serialises them; after the
        // sequence, the DMA copy completes with correct data and the
        // watchpoint is intact.
        let mut ctl = controller();
        ctl.write(0x1000, &[0xAB; 128]);
        ctl.write(0x3000, &0xFEED_u64.to_le_bytes()); // the future watchee
        let mut dma = DmaEngine::new();
        dma.enqueue(DmaTransfer {
            src: 0x1000,
            dst: 0x2000,
            len: 128,
        });
        dma.step(&mut ctl); // first burst moves

        // Kernel arms a watchpoint: bus locked for the critical section.
        let scheme = ScrambleScheme::default();
        ctl.lock_bus();
        assert_eq!(dma.step(&mut ctl), DmaStep::Stalled, "no interleaving");
        ctl.set_enabled(false);
        ctl.write(0x3000, &scheme.apply(0xFEED).to_le_bytes());
        ctl.set_enabled(true);
        ctl.unlock_bus();

        // DMA resumes and completes correctly.
        assert!(matches!(dma.run(&mut ctl, 10), DmaStep::Completed(_)));
        let mut buf = vec![0u8; 128];
        ctl.read(0x2000, &mut buf).unwrap();
        assert_eq!(buf, [0xAB; 128]);
        // And the watchpoint still fires.
        assert!(ctl.read(0x3000, &mut [0u8; 8]).is_err());
    }

    #[test]
    fn dma_read_of_watched_line_faults_and_aborts() {
        let mut ctl = controller();
        ctl.write(0x1000, &[1u8; 64]);
        let scheme = ScrambleScheme::default();
        ctl.set_enabled(false);
        ctl.write(0x1000, &scheme.apply(0x0101_0101_0101_0101).to_le_bytes());
        ctl.set_enabled(true);
        let mut dma = DmaEngine::new();
        dma.enqueue(DmaTransfer {
            src: 0x1000,
            dst: 0x2000,
            len: 64,
        });
        let step = dma.step(&mut ctl);
        assert!(matches!(step, DmaStep::Faulted(_)), "{step:?}");
        assert_eq!(dma.pending(), 0, "aborted transfer dequeued");
        assert_eq!(dma.stats().1, 1);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_length_rejected() {
        DmaEngine::new().enqueue(DmaTransfer {
            src: 0,
            dst: 0,
            len: 0,
        });
    }
}
