//! The simulated CPU clock.

/// A monotonically advancing cycle counter with nanosecond conversion.
///
/// All simulated time in the reproduction derives from this clock; overhead
/// percentages in the evaluation are ratios of cycle counts, which keeps the
/// results independent of host machine speed.
///
/// # Example
///
/// ```
/// use safemem_machine::Clock;
///
/// let mut clock = Clock::new(2_400_000_000); // 2.4 GHz, the paper's P4
/// clock.advance(4800);
/// assert_eq!(clock.nanos(), 2000); // 2.0 µs — the cost of WatchMemory
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clock {
    cycles: u64,
    hz: u64,
}

impl Clock {
    /// Creates a clock for a CPU running at `hz` cycles per second.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    #[must_use]
    pub fn new(hz: u64) -> Self {
        assert!(hz > 0, "CPU frequency must be non-zero");
        Clock { cycles: 0, hz }
    }

    /// Elapsed cycles since the clock was created.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The CPU frequency in Hz.
    #[must_use]
    pub fn hz(&self) -> u64 {
        self.hz
    }

    /// Elapsed simulated nanoseconds.
    #[must_use]
    pub fn nanos(&self) -> u64 {
        // cycles * 1e9 / hz, computed in u128 to avoid overflow.
        (u128::from(self.cycles) * 1_000_000_000 / u128::from(self.hz)) as u64
    }

    /// Elapsed simulated microseconds (fractional).
    #[must_use]
    pub fn micros_f64(&self) -> f64 {
        self.cycles as f64 / self.hz as f64 * 1e6
    }

    /// Advances the clock by `cycles`.
    pub fn advance(&mut self, cycles: u64) {
        self.cycles += cycles;
    }

    /// Converts a cycle count to nanoseconds at this clock's frequency.
    #[must_use]
    pub fn cycles_to_nanos(&self, cycles: u64) -> u64 {
        (u128::from(cycles) * 1_000_000_000 / u128::from(self.hz)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = Clock::new(1_000_000_000);
        assert_eq!(c.cycles(), 0);
        assert_eq!(c.nanos(), 0);
    }

    #[test]
    fn advance_accumulates() {
        let mut c = Clock::new(1_000_000_000);
        c.advance(10);
        c.advance(5);
        assert_eq!(c.cycles(), 15);
        assert_eq!(c.nanos(), 15);
    }

    #[test]
    fn nanos_at_2_4_ghz() {
        let mut c = Clock::new(2_400_000_000);
        c.advance(2448);
        assert_eq!(c.nanos(), 1020); // 1.02 µs — the cost of mprotect
    }

    #[test]
    fn micros_f64_matches_nanos() {
        let mut c = Clock::new(2_400_000_000);
        c.advance(3600);
        assert!((c.micros_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn no_overflow_for_large_counts() {
        let mut c = Clock::new(2_400_000_000);
        c.advance(u64::MAX / 2);
        let _ = c.nanos();
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_hz_rejected() {
        let _ = Clock::new(0);
    }
}
