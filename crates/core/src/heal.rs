//! Recovery: healing actions layered on the SafeMem fault handler.
//!
//! The paper stops at *detection* — §2.2.1 pauses for a debugger. Production
//! systems would rather keep serving traffic after the report, and the
//! related recovery literature (Selfie, MESH — PAPERS.md) shows the three
//! common corruption classes are survivable with bounded bookkeeping:
//!
//! * **Guard-padding overflow** → [`HealingAction::ClampSize`]: the
//!   overflowing store is confined to the guard padding (which holds no
//!   program data) and the padding is re-armed afterwards, so the overflow
//!   is effectively clamped to the allocation and later overflows of the
//!   same buffer are still caught.
//! * **Access to freed memory** → [`HealingAction::ServeFromQuarantine`]:
//!   the pre-free payload snapshot held in a generational
//!   [`QuarantineArena`] is written back under the disarmed watch, so the
//!   faulting read observes the bytes the program last owned; the freed
//!   watch is then re-armed.
//! * **Double free** → [`HealingAction::IgnoreDoubleFree`]: a `free` of an
//!   address whose block is still quarantined is dropped with an incident
//!   record instead of corrupting allocator state.
//!
//! Healing never changes *what is detected* — every healed fault still
//! produces its [`BugReport`](crate::BugReport) — only what happens after.
//! Incidents are recorded separately so detection counts are identical with
//! recovery on and off.

use safemem_alloc::QuarantineArena;
use safemem_os::Os;
use std::fmt;

/// Ground-truth classification of a corruption incident. Workloads that
/// plant deterministic corruption emit these as markers; the healer records
/// one per healed fault, and the campaign oracle compares the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum IncidentClass {
    /// A store past a live buffer's bounds.
    Overflow,
    /// A load or store to a freed, not-yet-reallocated buffer.
    UseAfterFree,
    /// A second `free` of an already-freed block.
    DoubleFree,
}

impl fmt::Display for IncidentClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IncidentClass::Overflow => write!(f, "overflow"),
            IncidentClass::UseAfterFree => write!(f, "use-after-free"),
            IncidentClass::DoubleFree => write!(f, "double-free"),
        }
    }
}

/// What the healer did about an incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum HealingAction {
    /// Overflow confined to the guard padding; padding re-armed.
    ClampSize,
    /// Freed-buffer access served from the quarantine snapshot; freed
    /// watch re-armed.
    ServeFromQuarantine,
    /// Redundant `free` dropped; quarantine entry left in place.
    IgnoreDoubleFree,
}

impl fmt::Display for HealingAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealingAction::ClampSize => write!(f, "clamp-size"),
            HealingAction::ServeFromQuarantine => write!(f, "serve-from-quarantine"),
            HealingAction::IgnoreDoubleFree => write!(f, "ignore-double-free"),
        }
    }
}

/// One healed incident: the detection lives in the
/// [`BugReport`](crate::BugReport) stream, this records the recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Incident {
    /// What happened.
    pub kind: IncidentClass,
    /// What the healer did.
    pub action: HealingAction,
    /// Payload address of the affected buffer.
    pub addr: u64,
    /// Whether the quarantine arena held the block (always `false` for
    /// overflows, which never consult the arena).
    pub quarantine_hit: bool,
}

/// Healer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HealStats {
    /// Overflows clamped to the guard padding.
    pub overflows_clamped: u64,
    /// Freed-buffer accesses served from quarantine snapshots.
    pub uaf_served: u64,
    /// Double frees dropped.
    pub double_frees_ignored: u64,
    /// Freed-buffer accesses whose block had already left the quarantine
    /// (evicted past the horizon): healed by re-arming only.
    pub quarantine_misses: u64,
    /// Free-time payload snapshots that could not be taken.
    pub snapshot_failures: u64,
}

/// Post-run survival summary a recovery-capable tool exposes through
/// [`MemTool::survival`](crate::MemTool::survival): the raw material for
/// the campaign oracle's survival-with-integrity dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SurvivalSummary {
    /// Overflows healed (clamped).
    pub healed_overflows: u64,
    /// Freed-buffer accesses healed (served or re-armed).
    pub healed_uafs: u64,
    /// Double frees healed (ignored).
    pub healed_double_frees: u64,
    /// Quarantine misses among the healed freed-buffer accesses.
    pub quarantine_misses: u64,
    /// Violated trailing canaries found by the post-run sweep.
    pub canary_violations: u64,
    /// Post-run heap walk found no overlapping or malformed placements.
    pub heap_intact: bool,
}

/// The recovery engine SafeMem consults when built with
/// [`recovery(true)`](crate::SafeMemBuilder::recovery).
#[derive(Debug)]
pub struct Healer {
    quarantine: QuarantineArena,
    incidents: Vec<Incident>,
    stats: HealStats,
}

impl Healer {
    /// Creates a healer whose quarantine retains `capacity` freed blocks.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Healer {
            quarantine: QuarantineArena::new(capacity),
            incidents: Vec::new(),
            stats: HealStats::default(),
        }
    }

    /// The quarantine arena.
    #[must_use]
    pub fn quarantine(&self) -> &QuarantineArena {
        &self.quarantine
    }

    /// Mutable access for the embedding tool.
    pub(crate) fn quarantine_mut(&mut self) -> &mut QuarantineArena {
        &mut self.quarantine
    }

    /// Every incident healed so far, in occurrence order.
    #[must_use]
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> HealStats {
        self.stats
    }

    /// Healed incidents of a given class.
    #[must_use]
    pub fn healed_count(&self, kind: IncidentClass) -> u64 {
        self.incidents.iter().filter(|i| i.kind == kind).count() as u64
    }

    /// Records a free-time snapshot failure.
    pub(crate) fn note_snapshot_failure(&mut self) {
        self.stats.snapshot_failures += 1;
    }

    /// Heals a detected overflow: the store was confined to the guard
    /// padding (no program data lives there), the caller re-arms the pad.
    pub(crate) fn on_overflow(&mut self, buffer_addr: u64) {
        self.stats.overflows_clamped += 1;
        self.incidents.push(Incident {
            kind: IncidentClass::Overflow,
            action: HealingAction::ClampSize,
            addr: buffer_addr,
            quarantine_hit: false,
        });
    }

    /// Heals a detected freed-buffer access: writes the quarantine snapshot
    /// back under the (just disarmed) watch so the faulting access observes
    /// pre-free contents. Returns whether the quarantine held the block.
    pub(crate) fn on_use_after_free(&mut self, os: &mut Os, buffer_addr: u64) -> bool {
        let hit = match self.quarantine.lookup(buffer_addr) {
            Some(entry) if !entry.is_empty() => os.vwrite(entry.addr, entry.payload()).is_ok(),
            Some(_) => true,
            None => false,
        };
        if hit {
            self.stats.uaf_served += 1;
        } else {
            self.stats.quarantine_misses += 1;
        }
        self.incidents.push(Incident {
            kind: IncidentClass::UseAfterFree,
            action: HealingAction::ServeFromQuarantine,
            addr: buffer_addr,
            quarantine_hit: hit,
        });
        hit
    }

    /// Heals a double free: the redundant `free` is dropped.
    pub(crate) fn on_double_free(&mut self, addr: u64) {
        self.stats.double_frees_ignored += 1;
        self.incidents.push(Incident {
            kind: IncidentClass::DoubleFree,
            action: HealingAction::IgnoreDoubleFree,
            addr,
            quarantine_hit: true,
        });
    }

    /// Builds the post-run survival summary.
    #[must_use]
    pub fn summary(&self, heap_intact: bool) -> SurvivalSummary {
        SurvivalSummary {
            healed_overflows: self.healed_count(IncidentClass::Overflow),
            healed_uafs: self.healed_count(IncidentClass::UseAfterFree),
            healed_double_frees: self.healed_count(IncidentClass::DoubleFree),
            quarantine_misses: self.stats.quarantine_misses,
            canary_violations: self.quarantine.verify_canaries() as u64,
            heap_intact,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healed_counts_split_by_class() {
        let mut h = Healer::new(4);
        h.on_overflow(0x1000);
        h.on_overflow(0x2000);
        h.on_double_free(0x3000);
        assert_eq!(h.healed_count(IncidentClass::Overflow), 2);
        assert_eq!(h.healed_count(IncidentClass::DoubleFree), 1);
        assert_eq!(h.healed_count(IncidentClass::UseAfterFree), 0);
        let s = h.summary(true);
        assert_eq!(s.healed_overflows, 2);
        assert_eq!(s.canary_violations, 0);
        assert!(s.heap_intact);
    }

    #[test]
    fn uaf_miss_counts_separately() {
        let mut os = Os::with_defaults(1 << 20);
        let mut h = Healer::new(2);
        assert!(!h.on_use_after_free(&mut os, 0xDEAD), "empty arena misses");
        assert_eq!(h.stats().quarantine_misses, 1);
        assert_eq!(h.healed_count(IncidentClass::UseAfterFree), 1);
    }
}
