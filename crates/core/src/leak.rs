//! Continuous-memory-leak detection (paper §3).
//!
//! Three steps, all performed only at allocation/deallocation time:
//!
//! 1. **Behaviour collection** — per-group lifetime and usage statistics
//!    ([`GroupStats`]).
//! 2. **Outlier detection** — ALeak groups (never freed, live count above
//!    threshold, still actively growing) and SLeak objects (alive longer
//!    than twice the group's stable maximal lifetime).
//! 3. **False-positive pruning with ECC** — suspects are watched with
//!    `WatchMemory`; the first access proves the object live and prunes it
//!    (also raising the group's expected maximal lifetime); a suspect that
//!    stays untouched past a threshold is reported as a leak.
//!
//! Host-side cost is kept off the allocation fast path by **epoch
//! batching** (in the style of DoubleTake's evidence-based dynamic
//! analysis): between detection passes the detector only appends the
//! touched group to an epoch evidence set, and all deadline recomputation
//! is settled once at the next epoch boundary (the pass itself). A group
//! that allocates ten thousand times inside one check period costs ten
//! thousand set inserts and a single reschedule instead of ten thousand
//! ordered-set edits. Observable behaviour — reports, counters, and
//! simulated cycle charges — is identical in both modes (differentially
//! tested per workload).

use crate::groups::GroupStats;
use crate::report::{BugReport, LeakKind};
use crate::signature::{CallStack, GroupKey};
use safemem_hashfx::{FxHashMap, FxHashSet};
use safemem_os::{Os, OsError};
use std::collections::BTreeSet;

/// Tuning parameters for the leak detector. All times are CPU cycles of the
/// monitored process (the paper measures lifetimes in CPU time, §3.1).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LeakConfig {
    /// Minimum CPU time between detection passes (the checking-period).
    pub check_period: u64,
    /// CPU time before the first detection pass (the warm-up period).
    pub warmup: u64,
    /// Fractional slack on the maximal lifetime before stability resets.
    pub tolerance: f64,
    /// ALeak: live-object count that makes a never-freed group suspicious.
    pub aleak_live_threshold: usize,
    /// ALeak: the group must have allocated within this window to count as
    /// "still growing".
    pub aleak_recent_window: u64,
    /// ALeak: how many of the oldest objects to watch per suspicious group.
    pub aleak_sample: usize,
    /// SLeak: lifetime multiple of the stable maximum that flags an object.
    pub sleak_factor: f64,
    /// SLeak: required `stable_time` before outliers are trusted.
    pub sleak_stable_threshold: u64,
    /// SLeak: how many of the oldest live objects to examine per pass.
    pub sleak_sample: usize,
    /// A watched suspect untouched for this long is reported as a leak.
    pub report_after: u64,
    /// After a pruned false positive, leave the group alone this long.
    pub prune_cooldown: u64,
    /// `true` — the paper's design: suspects are ECC-watched and pruned on
    /// access. `false` — report at suspicion time (the "before pruning"
    /// column of Table 5).
    pub prune_with_ecc: bool,
    /// Bookkeeping cycles charged per wrapped allocation/deallocation
    /// (group lookup + stats update — the paper's "information collection").
    pub update_cycles: u64,
    /// Cycles charged per group examined in a detection pass.
    pub check_group_cycles: u64,
    /// `true` — detection passes consult a deadline schedule and examine
    /// only groups that could cross an ALeak/SLeak threshold. `false` —
    /// rescan every group each pass (the differential reference). Both
    /// modes produce byte-identical reports, statistics, and simulated
    /// cycle charges; the schedule saves host time only.
    pub incremental_check: bool,
    /// `true` — allocation/deallocation/prune events only record the
    /// touched group as epoch evidence; deadline recomputation settles
    /// once per group at the next detection pass (the epoch boundary).
    /// `false` — every event reschedules its group eagerly (the
    /// differential reference). Both modes produce identical observable
    /// detections; batching saves host time only.
    ///
    /// Deferral is sound because a group's deadline is a pure function of
    /// statistics that change only on alloc/free/prune events, and every
    /// such event marks the group pending: a group whose schedule entry is
    /// stale can never *fire* stale, because the settle at pass entry
    /// refreshes every touched group before candidates are gathered, and
    /// an untouched group's old entry is still valid.
    pub epoch_batch: bool,
}

impl Default for LeakConfig {
    fn default() -> Self {
        // Calibrated for workloads whose requests take tens of microseconds
        // of simulated CPU time (cycles at 2.4 GHz).
        LeakConfig {
            check_period: 1_200_000, // 0.5 ms
            warmup: 2_400_000,       // 1 ms
            tolerance: 0.3,
            aleak_live_threshold: 64,
            aleak_recent_window: 4_800_000, // 2 ms
            aleak_sample: 4,
            sleak_factor: 2.0,
            sleak_stable_threshold: 2_400_000, // 1 ms
            sleak_sample: 4,
            report_after: 24_000_000,   // 10 ms
            prune_cooldown: 12_000_000, // 5 ms
            prune_with_ecc: true,
            update_cycles: 150,
            check_group_cycles: 40,
            incremental_check: true,
            epoch_batch: true,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct ObjectInfo {
    group: GroupKey,
    size: u64,
}

#[derive(Debug, Clone, Copy)]
struct Suspect {
    addr: u64,
    size: u64,
    group: GroupKey,
    kind: LeakKind,
    watched_at: u64,
    /// Allocation time when the object became a suspect (for raising the
    /// group maximum after a prune).
    alloc_time: u64,
}

/// Leak-detector counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LeakStats {
    /// Detection passes executed.
    pub checks: u64,
    /// Suspects flagged (pre-pruning).
    pub suspects_flagged: u64,
    /// Suspects pruned by an ECC-detected access (false positives avoided).
    pub suspects_pruned: u64,
    /// Leaks reported.
    pub leaks_reported: u64,
}

/// The SafeMem memory-leak detector.
#[derive(Debug)]
pub struct LeakDetector {
    config: LeakConfig,
    line: u64,
    groups: FxHashMap<GroupKey, GroupStats>,
    objects: FxHashMap<u64, ObjectInfo>,
    /// Watched suspects keyed by watch-region start.
    suspects: FxHashMap<u64, Suspect>,
    suspect_region_by_addr: FxHashMap<u64, u64>,
    reported_groups: FxHashSet<GroupKey>,
    reports: Vec<BugReport>,
    last_check: u64,
    stats: LeakStats,
    /// Incremental-check schedule: `(deadline, group)` ordered by the
    /// earliest CPU time a detection pass could flag a candidate from that
    /// group. Groups without an entry cannot fire until a stat-changing
    /// event (alloc/free/prune) reschedules them.
    schedule: BTreeSet<(u64, GroupKey)>,
    /// Current schedule entry per group, for O(log n) replacement.
    deadlines: FxHashMap<GroupKey, u64>,
    /// Epoch evidence: groups touched by an alloc/free/prune since the
    /// last detection pass, awaiting one settle-time reschedule each.
    epoch_pending: FxHashSet<GroupKey>,
}

impl LeakDetector {
    /// Creates a detector for a machine with `line` -byte cache lines.
    #[must_use]
    pub fn new(config: LeakConfig, line: u64) -> Self {
        LeakDetector {
            config,
            line,
            groups: FxHashMap::default(),
            objects: FxHashMap::default(),
            suspects: FxHashMap::default(),
            suspect_region_by_addr: FxHashMap::default(),
            reported_groups: FxHashSet::default(),
            reports: Vec::new(),
            last_check: 0,
            stats: LeakStats::default(),
            schedule: BTreeSet::new(),
            deadlines: FxHashMap::default(),
            epoch_pending: FxHashSet::default(),
        }
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> LeakStats {
        self.stats
    }

    /// Reports accumulated so far.
    #[must_use]
    pub fn reports(&self) -> &[BugReport] {
        &self.reports
    }

    /// Iterates over groups and their statistics (drives Figure 3).
    pub fn groups(&self) -> impl Iterator<Item = (&GroupKey, &GroupStats)> {
        self.groups.iter()
    }

    /// A heap-profiler view of the collected §3.2.1 usage statistics: the
    /// `top` groups by live bytes, as
    /// `(group, live objects, live bytes, max lifetime)`.
    #[must_use]
    pub fn usage_snapshot(&self, top: usize) -> Vec<(GroupKey, usize, u64, u64)> {
        let mut rows: Vec<(GroupKey, usize, u64, u64)> = self
            .groups
            .iter()
            .map(|(k, g)| (*k, g.live_count(), g.live_bytes, g.max_lifetime))
            .collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        rows.truncate(top);
        rows
    }

    /// The watchable line-aligned region inside an object, if any.
    fn watch_region(&self, addr: u64, size: u64) -> Option<(u64, u64)> {
        let start = addr.div_ceil(self.line) * self.line;
        let end = (addr + size.max(1)).div_ceil(self.line) * self.line;
        // Line-aligned layouts guarantee the rounded region stays inside the
        // placement stride; for natural layouts only full interior lines are
        // safe, so require the object to start aligned.
        if !addr.is_multiple_of(self.line) || end <= start {
            None
        } else {
            Some((start, end - start))
        }
    }

    /// The earliest CPU time a detection pass could flag a candidate from
    /// `group`, or `None` if no future pass can until an alloc/free/prune
    /// changes the statistics (every such event reschedules).
    ///
    /// The bound is conservative: examining a group whose condition does
    /// not actually hold is side-effect-free (the per-group check simply
    /// produces no candidates), so a stale-but-early deadline costs host
    /// time, never correctness. What must hold — and does, case by case —
    /// is that whenever the naive scan would produce a candidate at time
    /// `t`, this group's schedule entry satisfies `deadline <= t`.
    fn deadline_of(group: &GroupStats, config: &LeakConfig, now: u64) -> Option<u64> {
        if !group.has_freed() {
            // ALeak fires while live_count > threshold (changes only on
            // alloc/free) and the group allocated within the recency
            // window: t ∈ [cooldown_until, last_alloc_time + window].
            if group.live_count() <= config.aleak_live_threshold {
                return None;
            }
            let window_end = group
                .last_alloc_time
                .saturating_add(config.aleak_recent_window);
            if window_end < now || group.cooldown_until > window_end {
                return None; // window already closed (or fully cooled down)
            }
            Some(group.cooldown_until)
        } else {
            // SLeak needs a trusted lifetime profile (changes only on
            // free/prune) and fires once the oldest live object's age
            // strictly exceeds the limit.
            if group.stable_time < config.sleak_stable_threshold || group.max_lifetime == 0 {
                return None;
            }
            let oldest = group.oldest_alloc_time()?;
            let limit = (group.max_lifetime as f64 * config.sleak_factor) as u64;
            Some(
                oldest
                    .saturating_add(limit)
                    .saturating_add(1)
                    .max(group.cooldown_until),
            )
        }
    }

    /// Records a stat-changing event on `key`: batched mode appends epoch
    /// evidence, eager mode reschedules immediately.
    fn note_event(&mut self, key: GroupKey, now: u64) {
        if self.config.epoch_batch {
            self.epoch_pending.insert(key);
        } else {
            self.reschedule(key, now);
        }
    }

    /// Recomputes `key`'s deadline and replaces its schedule entry.
    fn reschedule(&mut self, key: GroupKey, now: u64) {
        let deadline = self
            .groups
            .get(&key)
            .and_then(|g| Self::deadline_of(g, &self.config, now));
        if let Some(old) = self.deadlines.remove(&key) {
            self.schedule.remove(&(old, key));
        }
        if let Some(d) = deadline {
            self.deadlines.insert(key, d);
            self.schedule.insert((d, key));
        }
    }

    /// The per-group half of a detection pass (paper §3.2.2), shared
    /// verbatim by the naive scan and the incremental schedule so the two
    /// modes cannot diverge.
    fn collect_candidates(
        group: &GroupStats,
        config: &LeakConfig,
        now: u64,
        candidates: &mut Vec<(u64, LeakKind)>,
    ) {
        if now < group.cooldown_until {
            return;
        }
        if !group.has_freed() {
            // ALeak: many live objects and still actively growing.
            let growing = now.saturating_sub(group.last_alloc_time) <= config.aleak_recent_window;
            if group.live_count() > config.aleak_live_threshold && growing {
                for (_, addr) in group.oldest_live(config.aleak_sample) {
                    candidates.push((addr, LeakKind::ALeak));
                }
            }
        } else if group.stable_time >= config.sleak_stable_threshold && group.max_lifetime > 0 {
            // SLeak: objects alive far beyond the stable maximum.
            let limit = (group.max_lifetime as f64 * config.sleak_factor) as u64;
            for (alloc_time, addr) in group.oldest_live(config.sleak_sample) {
                if now.saturating_sub(alloc_time) > limit {
                    candidates.push((addr, LeakKind::SLeak));
                } else {
                    break; // allocation-ordered: the rest are younger
                }
            }
        }
    }

    /// Records an allocation (wraps `malloc`/`calloc`, paper §3.2.1).
    pub fn on_alloc(&mut self, os: &mut Os, addr: u64, size: u64, stack: &CallStack) {
        os.compute(self.config.update_cycles);
        let now = os.cpu_cycles();
        let group = GroupKey::new(size, stack);
        self.groups
            .entry(group)
            .or_default()
            .on_alloc(addr, size, now);
        self.objects.insert(addr, ObjectInfo { group, size });
        self.note_event(group, now);
        self.maybe_check(os);
    }

    /// Records a deallocation (wraps `free`).
    pub fn on_free(&mut self, os: &mut Os, addr: u64) {
        os.compute(self.config.update_cycles);
        let Some(info) = self.objects.remove(&addr) else {
            return;
        };
        // A watched suspect that gets freed is trivially not a leak.
        if let Some(region) = self.suspect_region_by_addr.remove(&addr) {
            self.suspects.remove(&region);
            let _ = os.disable_watch_memory(region);
        }
        let now = os.cpu_cycles();
        let tolerance = self.config.tolerance;
        let group = self
            .groups
            .get_mut(&info.group)
            .expect("group exists for live object");
        let first_free = !group.has_freed();
        group.on_free(addr, info.size, now, tolerance);
        if first_free {
            // The group just demonstrated a deallocation path: the ALeak
            // premise ("never freed on any path", §3.2.2) no longer holds,
            // so retire its ALeak suspects unreported. The group is judged
            // by the SLeak procedure from now on.
            let stale: Vec<u64> = self
                .suspects
                .iter()
                .filter(|(_, s)| s.group == info.group && s.kind == LeakKind::ALeak)
                .map(|(&region, _)| region)
                .collect();
            for region in stale {
                let suspect = self.suspects.remove(&region).expect("listed");
                self.suspect_region_by_addr.remove(&suspect.addr);
                let _ = os.disable_watch_memory(region);
                self.stats.suspects_flagged -= 1;
            }
        }
        self.note_event(info.group, now);
        self.maybe_check(os);
    }

    fn maybe_check(&mut self, os: &mut Os) {
        let now = os.cpu_cycles();
        if now < self.config.warmup
            || now.saturating_sub(self.last_check) < self.config.check_period
        {
            return;
        }
        self.run_check(os);
    }

    /// Runs one detection pass (paper §3.2.2) immediately.
    ///
    /// The simulated charge is `groups × check_group_cycles` in both check
    /// modes — it models what the paper's detector pays, and the
    /// incremental schedule is a host-side shortcut, not a change to the
    /// modelled cost.
    pub fn run_check(&mut self, os: &mut Os) {
        os.compute(self.groups.len() as u64 * self.config.check_group_cycles);
        let now = os.cpu_cycles();
        self.last_check = now;
        self.stats.checks += 1;

        // Epoch boundary: settle the accumulated evidence. Each touched
        // group gets exactly one deadline recomputation, however many
        // events it logged during the epoch. Must happen before the due
        // set is read so freshly-eligible groups are examined this pass.
        if !self.epoch_pending.is_empty() {
            let pending: Vec<GroupKey> = self.epoch_pending.drain().collect();
            for key in pending {
                self.reschedule(key, now);
            }
        }

        // Gather candidates first (borrow discipline), then act.
        let mut candidates: Vec<(u64, LeakKind)> = Vec::new();
        if self.config.incremental_check {
            // Only groups whose deadline has arrived can produce a
            // candidate; examine those with the shared per-group check and
            // refresh their deadlines.
            let due: Vec<GroupKey> = self
                .schedule
                .iter()
                .take_while(|&&(deadline, _)| deadline <= now)
                .map(|&(_, key)| key)
                .collect();
            for key in due {
                let group = &self.groups[&key];
                Self::collect_candidates(group, &self.config, now, &mut candidates);
                self.reschedule(key, now);
            }
        } else {
            for (_, group) in self.groups.iter() {
                Self::collect_candidates(group, &self.config, now, &mut candidates);
            }
        }
        for (addr, kind) in candidates {
            self.suspect(os, addr, kind);
        }

        // Report watched suspects that have stayed untouched long enough.
        let expired: Vec<u64> = self
            .suspects
            .iter()
            .filter(|(_, s)| now.saturating_sub(s.watched_at) >= self.config.report_after)
            .map(|(&region, _)| region)
            .collect();
        for region in expired {
            let suspect = self.suspects.remove(&region).expect("listed");
            self.suspect_region_by_addr.remove(&suspect.addr);
            let _ = os.disable_watch_memory(region);
            self.report(suspect, now);
        }
    }

    fn report(&mut self, suspect: Suspect, now: u64) {
        if !self.reported_groups.insert(suspect.group) {
            return; // one report per group keeps the programmer-facing list short
        }
        self.stats.leaks_reported += 1;
        self.reports.push(BugReport::Leak {
            addr: suspect.addr,
            size: suspect.size,
            group: suspect.group,
            kind: suspect.kind,
            at_cpu_cycles: now,
        });
    }

    fn suspect(&mut self, os: &mut Os, addr: u64, kind: LeakKind) {
        if self.suspect_region_by_addr.contains_key(&addr) {
            return;
        }
        let Some(&info) = self.objects.get(&addr) else {
            return;
        };
        if self.reported_groups.contains(&info.group) {
            return;
        }
        let now = os.cpu_cycles();
        let alloc_time = self.groups[&info.group]
            .alloc_time_of(addr)
            .expect("live object has an allocation time");
        let suspect = Suspect {
            addr,
            size: info.size,
            group: info.group,
            kind,
            watched_at: now,
            alloc_time,
        };
        self.stats.suspects_flagged += 1;

        if !self.config.prune_with_ecc {
            // No ECC pruning available: every suspect becomes a report.
            self.report(suspect, now);
            return;
        }
        let Some((start, len)) = self.watch_region(addr, info.size) else {
            // Cannot watch (misaligned object): fall back to reporting.
            self.report(suspect, now);
            return;
        };
        match os.watch_memory(start, len) {
            Ok(()) => {
                self.suspects.insert(start, suspect);
                self.suspect_region_by_addr.insert(addr, start);
            }
            // Overlap with another watched region (e.g. an uninitialised-
            // read watch) or pinned-memory pressure: skip this round.
            Err(OsError::AlreadyWatched { .. } | OsError::OutOfMemory) => {
                self.stats.suspects_flagged -= 1;
            }
            Err(e) => panic!("unexpected watch failure: {e}"),
        }
    }

    /// Handles an ECC fault whose region start is `region`: if it belongs to
    /// a leak suspect, prunes the false positive (paper §3.2.3) and returns
    /// `true`.
    pub fn handle_fault(&mut self, os: &mut Os, region: u64) -> bool {
        let Some(suspect) = self.suspects.remove(&region) else {
            return false;
        };
        self.suspect_region_by_addr.remove(&suspect.addr);
        os.disable_watch_memory(region)
            .expect("suspect region was watched");
        let now = os.cpu_cycles();
        self.stats.suspects_pruned += 1;
        let group = self
            .groups
            .get_mut(&suspect.group)
            .expect("group of live suspect");
        // The suspect proved live: raise the expected maximal lifetime to
        // its observed age, restart its clock, and back off the group.
        group.raise_max_lifetime(now.saturating_sub(suspect.alloc_time), now);
        group.reset_alloc_time(suspect.addr, now);
        group.cooldown_until = now + self.config.prune_cooldown;
        self.note_event(suspect.group, now);
        true
    }

    /// Final pass at program end: one more check so long-watched suspects
    /// are reported even if the program stops allocating.
    pub fn finish(&mut self, os: &mut Os) {
        self.run_check(os);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safemem_os::OsFault;

    const LINE: u64 = 64;

    fn quick_config() -> LeakConfig {
        LeakConfig {
            check_period: 1_000,
            warmup: 0,
            aleak_live_threshold: 8,
            aleak_recent_window: 1_000_000,
            sleak_stable_threshold: 1_000,
            report_after: 1_000_000,
            prune_cooldown: 50_000,
            ..LeakConfig::default()
        }
    }

    fn os() -> Os {
        let mut os = Os::with_defaults(1 << 22);
        os.register_ecc_fault_handler();
        os
    }

    fn stack(site: u64) -> CallStack {
        CallStack::new(&[0x400_000, site])
    }

    /// Allocate line-aligned addresses by hand (the tests drive the detector
    /// directly, without the full SafeMem tool).
    fn addr_of(i: u64) -> u64 {
        safemem_os::HEAP_BASE + i * 128
    }

    #[test]
    fn aleak_group_gets_watched_then_reported() {
        let mut os = os();
        let mut det = LeakDetector::new(quick_config(), LINE);
        // A never-freed group that keeps growing.
        for i in 0..32 {
            os.compute(500);
            det.on_alloc(&mut os, addr_of(i), 64, &stack(0xA));
        }
        assert!(det.stats().suspects_flagged > 0, "ALeak suspects flagged");
        assert!(os.watched_region_count() > 0, "suspects are ECC-watched");
        // Let the report threshold pass with no accesses.
        os.compute(2_000_000);
        det.on_alloc(&mut os, addr_of(99), 64, &stack(0xA));
        assert_eq!(det.stats().leaks_reported, 1, "one report per group");
        assert!(matches!(
            det.reports()[0],
            BugReport::Leak {
                kind: LeakKind::ALeak,
                ..
            }
        ));
    }

    #[test]
    fn sleak_outlier_detected_after_stability() {
        let mut os = os();
        let mut det = LeakDetector::new(quick_config(), LINE);
        let leaked = addr_of(1000);
        det.on_alloc(&mut os, leaked, 64, &stack(0xB)); // will never be freed
                                                        // Many normal alloc/free pairs with ~2k-cycle lifetimes.
        for i in 0..64 {
            det.on_alloc(&mut os, addr_of(i), 64, &stack(0xB));
            os.compute(2_000);
            det.on_free(&mut os, addr_of(i));
        }
        os.compute(2_000_000);
        det.on_alloc(&mut os, addr_of(2000), 64, &stack(0xB));
        det.run_check(&mut os);
        assert!(
            det.reports().iter().any(|r| matches!(r, BugReport::Leak { addr, kind: LeakKind::SLeak, .. } if *addr == leaked)),
            "leaked object reported: {:?}",
            det.reports()
        );
    }

    #[test]
    fn accessed_suspect_is_pruned_not_reported() {
        let mut os = os();
        let mut det = LeakDetector::new(quick_config(), LINE);
        let idle = addr_of(500);
        os.vwrite(idle, &[7u8; 64]).unwrap();
        det.on_alloc(&mut os, idle, 64, &stack(0xC));
        for i in 0..64 {
            det.on_alloc(&mut os, addr_of(i), 64, &stack(0xC));
            os.compute(2_000);
            det.on_free(&mut os, addr_of(i));
        }
        os.compute(50_000);
        det.run_check(&mut os);
        assert!(
            det.stats().suspects_flagged > 0,
            "idle object becomes a suspect"
        );

        // The program touches the suspect: ECC fault → prune.
        let mut buf = [0u8; 8];
        let fault = os.vread(idle, &mut buf).unwrap_err();
        let OsFault::Ecc(user) = fault else {
            panic!("expected ECC fault")
        };
        assert!(det.handle_fault(&mut os, user.region_vaddr));
        assert_eq!(det.stats().suspects_pruned, 1);

        // Retried access now sees the data.
        os.vread(idle, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 8]);

        // Even long after, the pruned object is not reported.
        os.compute(500_000);
        det.run_check(&mut os);
        assert_eq!(det.stats().leaks_reported, 0);
    }

    #[test]
    fn without_ecc_pruning_suspects_become_reports() {
        let mut os = os();
        let mut cfg = quick_config();
        cfg.prune_with_ecc = false;
        let mut det = LeakDetector::new(cfg, LINE);
        let idle = addr_of(500);
        det.on_alloc(&mut os, idle, 64, &stack(0xD));
        for i in 0..64 {
            det.on_alloc(&mut os, addr_of(i), 64, &stack(0xD));
            os.compute(2_000);
            det.on_free(&mut os, addr_of(i));
        }
        os.compute(50_000);
        det.run_check(&mut os);
        assert_eq!(
            det.stats().leaks_reported,
            1,
            "reported immediately, no watch"
        );
        assert_eq!(os.watched_region_count(), 0);
    }

    #[test]
    fn freed_suspect_is_unwatched_and_cleared() {
        let mut os = os();
        let mut det = LeakDetector::new(quick_config(), LINE);
        let idle = addr_of(500);
        det.on_alloc(&mut os, idle, 64, &stack(0xE));
        for i in 0..64 {
            det.on_alloc(&mut os, addr_of(i), 64, &stack(0xE));
            os.compute(2_000);
            det.on_free(&mut os, addr_of(i));
        }
        os.compute(50_000);
        det.run_check(&mut os);
        assert!(os.watched_region_count() > 0);
        det.on_free(&mut os, idle);
        assert_eq!(os.watched_region_count(), 0);
        os.compute(500_000);
        det.run_check(&mut os);
        assert_eq!(det.stats().leaks_reported, 0);
    }

    #[test]
    fn quiescent_group_is_not_an_aleak() {
        let mut os = os();
        let mut cfg = quick_config();
        cfg.aleak_recent_window = 10_000;
        // The warm-up period (paper §3.2.2) keeps init-phase allocation
        // bursts from being mistaken for growth.
        cfg.warmup = 100_000;
        let mut det = LeakDetector::new(cfg, LINE);
        // Init-time allocations that stop growing (e.g. startup tables).
        for i in 0..32 {
            det.on_alloc(&mut os, addr_of(i), 64, &stack(0xF));
        }
        os.compute(1_000_000); // long quiet period
        det.run_check(&mut os);
        assert_eq!(det.stats().suspects_flagged, 0, "not growing → not a leak");
    }

    #[test]
    fn usage_snapshot_ranks_by_live_bytes() {
        let mut os = os();
        let mut det = LeakDetector::new(quick_config(), LINE);
        for i in 0..4 {
            det.on_alloc(&mut os, addr_of(i), 64, &stack(0xAA));
        }
        det.on_alloc(&mut os, addr_of(10), 1024, &stack(0xBB));
        let snap = det.usage_snapshot(2);
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].2, 1024, "heaviest group first");
        assert_eq!(snap[1].1, 4, "four live objects in the smaller group");
        assert_eq!(det.usage_snapshot(10).len(), 2, "truncation only");
    }

    #[test]
    fn empty_group_after_full_churn_is_inert() {
        // Boundary: a group whose every object has been freed. It stays in
        // the statistics (lifetime histogram, max lifetime) but a detection
        // pass must find nothing to sample, watch, or report.
        let mut os = os();
        let mut det = LeakDetector::new(quick_config(), LINE);
        for i in 0..16 {
            det.on_alloc(&mut os, addr_of(i), 64, &stack(0x10));
            os.compute(2_000);
            det.on_free(&mut os, addr_of(i));
        }
        os.compute(2_000_000);
        det.run_check(&mut os);
        assert_eq!(det.stats().suspects_flagged, 0, "nothing live to suspect");
        assert_eq!(det.stats().leaks_reported, 0);
        assert_eq!(os.watched_region_count(), 0);
        let (_, group) = det.groups().next().expect("group statistics persist");
        assert_eq!(group.live_count(), 0);
        assert!(group.has_freed());
    }

    #[test]
    fn single_allocation_group_is_not_suspected() {
        // Boundary: one object, never freed. The ALeak rule needs a live
        // count *above* the threshold and the SLeak rule needs a free-path
        // lifetime history, so a lone long-lived object (a singleton, say)
        // must never be flagged no matter how long it sits.
        let mut os = os();
        let mut det = LeakDetector::new(quick_config(), LINE);
        det.on_alloc(&mut os, addr_of(0), 64, &stack(0x11));
        for _ in 0..8 {
            os.compute(5_000_000);
            det.run_check(&mut os);
        }
        assert_eq!(det.stats().suspects_flagged, 0);
        assert_eq!(det.stats().leaks_reported, 0);
        assert!(det.stats().checks >= 8, "passes actually ran");
    }

    #[test]
    fn lifetime_exactly_at_the_sleak_limit_is_not_an_outlier() {
        // Boundary: the SLeak rule flags objects *strictly older* than
        // sleak_factor x the stable maximal lifetime. An object exactly at
        // the limit is still within expectation; one cycle past it is not.
        let mut os = os();
        let mut det = LeakDetector::new(quick_config(), LINE);
        // Establish a stable lifetime profile first.
        for i in 0..64 {
            det.on_alloc(&mut os, addr_of(i), 64, &stack(0x12));
            os.compute(2_000);
            det.on_free(&mut os, addr_of(i));
        }
        let victim = addr_of(500);
        det.on_alloc(&mut os, victim, 64, &stack(0x12));
        let (max_lifetime, alloc_time, stable_time) = {
            let (_, g) = det.groups().next().expect("one group");
            (
                g.max_lifetime,
                g.alloc_time_of(victim).expect("victim is live"),
                g.stable_time,
            )
        };
        let cfg = quick_config();
        assert!(
            stable_time >= cfg.sleak_stable_threshold,
            "profile is stable ({stable_time} cycles)"
        );
        let limit = (max_lifetime as f64 * cfg.sleak_factor) as u64;

        // run_check charges check_group_cycles per group *before* reading
        // the clock; compensate so `now` lands exactly on alloc_time+limit.
        let overhead = cfg.check_group_cycles; // one group
        let target_pre = alloc_time + limit - overhead;
        os.compute(target_pre - os.cpu_cycles());
        det.run_check(&mut os);
        assert_eq!(os.cpu_cycles(), alloc_time + limit, "clock math holds");
        assert_eq!(
            det.stats().suspects_flagged,
            0,
            "age == limit is within expectation"
        );

        // The next pass advances the clock past the limit: now a suspect.
        det.run_check(&mut os);
        assert!(os.cpu_cycles() > alloc_time + limit);
        assert_eq!(det.stats().suspects_flagged, 1, "age > limit is an outlier");
    }

    #[test]
    fn sub_threshold_stability_gates_sleak_outliers() {
        // Boundary: an obvious outlier must NOT be flagged while the group's
        // stable_time is still below sleak_stable_threshold — the lifetime
        // estimate is not trusted yet.
        let mut os = os();
        let mut cfg = quick_config();
        cfg.sleak_stable_threshold = 1_000_000_000; // never reached here
        let mut det = LeakDetector::new(cfg, LINE);
        let victim = addr_of(500);
        det.on_alloc(&mut os, victim, 64, &stack(0x13));
        for i in 0..64 {
            det.on_alloc(&mut os, addr_of(i), 64, &stack(0x13));
            os.compute(2_000);
            det.on_free(&mut os, addr_of(i));
        }
        os.compute(2_000_000);
        det.run_check(&mut os);
        assert_eq!(
            det.stats().suspects_flagged,
            0,
            "unstable profile must not produce suspects"
        );
    }

    #[test]
    fn incremental_and_naive_checks_are_byte_identical() {
        // Drive two detectors — one per check mode — through the same
        // scripted mixture of ALeak growth, SLeak churn with planted
        // leaks, quiescent groups, and forced passes. Reports, counters,
        // watched regions, and the simulated clock must all agree.
        let run = |incremental: bool| {
            let mut os = os();
            let mut cfg = quick_config();
            cfg.incremental_check = incremental;
            let mut det = LeakDetector::new(cfg, LINE);
            // Growing never-freed group (ALeak).
            for i in 0..32 {
                os.compute(500);
                det.on_alloc(&mut os, addr_of(i), 64, &stack(0xA1));
            }
            // Churn group with two planted leaks (SLeak).
            det.on_alloc(&mut os, addr_of(600), 64, &stack(0xA2));
            det.on_alloc(&mut os, addr_of(601), 64, &stack(0xA2));
            for i in 100..164 {
                det.on_alloc(&mut os, addr_of(i), 64, &stack(0xA2));
                os.compute(2_000);
                det.on_free(&mut os, addr_of(i));
            }
            // Quiescent group that must never fire.
            for i in 200..208 {
                det.on_alloc(&mut os, addr_of(i), 32, &stack(0xA3));
            }
            os.compute(2_000_000);
            det.run_check(&mut os);
            os.compute(2_000_000);
            det.on_alloc(&mut os, addr_of(900), 64, &stack(0xA1));
            det.run_check(&mut os);
            det.finish(&mut os);
            // Which address of a multi-suspect group gets the (single)
            // report depends on the suspects HashMap's per-instance hash
            // seed — nondeterministic even between two *naive* detectors.
            // Compare the order-insensitive observables the campaign layer
            // consumes: the (group, kind, time) set, counters, watch count,
            // and the simulated clock.
            let mut leaks: Vec<(GroupKey, LeakKind, u64)> = det
                .reports()
                .iter()
                .filter_map(|r| match r {
                    BugReport::Leak {
                        group,
                        kind,
                        at_cpu_cycles,
                        ..
                    } => Some((*group, *kind, *at_cpu_cycles)),
                    _ => None,
                })
                .collect();
            leaks.sort_unstable();
            (
                leaks,
                det.stats(),
                os.watched_region_count(),
                os.cpu_cycles(),
            )
        };
        assert_eq!(run(true), run(false));
        let (leaks, stats, _, _) = run(true);
        assert!(stats.leaks_reported > 0, "the script actually detects");
        assert!(!leaks.is_empty());
    }

    #[test]
    fn warmup_gates_detection() {
        let mut os = os();
        let mut cfg = quick_config();
        cfg.warmup = 1_000_000_000;
        let mut det = LeakDetector::new(cfg, LINE);
        for i in 0..32 {
            os.compute(500);
            det.on_alloc(&mut os, addr_of(i), 64, &stack(0xA));
        }
        assert_eq!(det.stats().checks, 0);
    }
}
