//! Per-group memory-usage behaviour statistics (paper §3.2.1).
//!
//! For every memory object group SafeMem records *lifetime information* (the
//! current maximal lifetime and how long it has been stable) and *memory
//! usage information* (live object count, last allocation time, total bytes),
//! plus an allocation-ordered index of live objects so the oldest few can be
//! checked cheaply at detection time.

use safemem_hashfx::FxHashMap;
use std::collections::BTreeSet;

/// Statistics for one memory object group.
#[derive(Debug, Clone)]
pub struct GroupStats {
    /// Largest observed lifetime of any freed object (CPU cycles).
    pub max_lifetime: u64,
    /// Accumulated CPU time since `max_lifetime` last grew beyond tolerance.
    pub stable_time: u64,
    /// CPU time of the most recent allocation in this group.
    pub last_alloc_time: u64,
    /// CPU time when `max_lifetime` last changed — the group's WarmUpTime
    /// once it stops changing (drives Figure 3).
    pub max_changed_at: u64,
    /// Total allocations ever made in this group.
    pub total_allocs: u64,
    /// Total frees ever made in this group.
    pub total_frees: u64,
    /// Current live payload bytes in this group.
    pub live_bytes: u64,
    /// Suppress re-suspecting this group until this CPU time (set after an
    /// ECC prune showed a false positive).
    pub cooldown_until: u64,
    /// Log₂-bucketed histogram of observed lifetimes (bucket *i* counts
    /// frees with lifetime in `[2^i, 2^(i+1))` cycles; bucket 0 includes 0).
    histogram: [u64; 48],
    /// CPU time when the stability bookkeeping was last updated.
    last_update: u64,
    /// Live objects ordered by allocation time: (alloc_time, addr).
    live: BTreeSet<(u64, u64)>,
    /// addr → alloc_time for the live objects.
    alloc_times: FxHashMap<u64, u64>,
}

impl Default for GroupStats {
    fn default() -> Self {
        GroupStats {
            max_lifetime: 0,
            stable_time: 0,
            last_alloc_time: 0,
            max_changed_at: 0,
            total_allocs: 0,
            total_frees: 0,
            live_bytes: 0,
            cooldown_until: 0,
            histogram: [0; 48],
            last_update: 0,
            live: BTreeSet::new(),
            alloc_times: FxHashMap::default(),
        }
    }
}

impl GroupStats {
    /// Whether any object of this group has ever been freed — the switch
    /// between ALeak and SLeak detection (paper §3.2.2).
    #[must_use]
    pub fn has_freed(&self) -> bool {
        self.total_frees > 0
    }

    /// Number of live objects.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// The oldest live objects, as `(alloc_time, addr)`, up to `n`.
    #[must_use]
    pub fn oldest_live(&self, n: usize) -> Vec<(u64, u64)> {
        self.live.iter().take(n).copied().collect()
    }

    /// The allocation time of a live object, if it belongs to this group.
    #[must_use]
    pub fn alloc_time_of(&self, addr: u64) -> Option<u64> {
        self.alloc_times.get(&addr).copied()
    }

    /// Allocation time of the oldest live object, if any — the object the
    /// SLeak rule would age-test first (drives the incremental check
    /// scheduler's deadline computation).
    #[must_use]
    pub fn oldest_alloc_time(&self) -> Option<u64> {
        self.live.iter().next().map(|&(t, _)| t)
    }

    /// Records an allocation at CPU time `now`.
    pub fn on_alloc(&mut self, addr: u64, size: u64, now: u64) {
        self.total_allocs += 1;
        self.live_bytes += size;
        self.last_alloc_time = now;
        self.live.insert((now, addr));
        self.alloc_times.insert(addr, now);
    }

    /// Records a free at CPU time `now`, updating the maximal-lifetime
    /// stability bookkeeping. `tolerance` is the fraction by which a
    /// lifetime may exceed the current maximum without resetting stability.
    ///
    /// Returns the freed object's lifetime.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a live object of this group (the caller
    /// routes frees by group).
    pub fn on_free(&mut self, addr: u64, size: u64, now: u64, tolerance: f64) -> u64 {
        let alloc_time = self
            .alloc_times
            .remove(&addr)
            .expect("free routed to the owning group");
        self.live.remove(&(alloc_time, addr));
        self.total_frees += 1;
        self.live_bytes = self.live_bytes.saturating_sub(size);
        let lifetime = now - alloc_time;
        let bucket = (64 - lifetime.max(1).leading_zeros() - 1).min(47) as usize;
        self.histogram[bucket] += 1;
        let tolerated = (self.max_lifetime as f64 * (1.0 + tolerance)) as u64;
        if lifetime <= tolerated.max(self.max_lifetime) {
            // Within expectation: stability grows by the elapsed CPU time.
            self.stable_time += now - self.last_update;
        } else {
            self.max_lifetime = lifetime;
            self.stable_time = 0;
            self.max_changed_at = now;
        }
        self.last_update = now;
        lifetime
    }

    /// Raises the expected maximal lifetime after a pruned false positive
    /// (paper §3.2.3): the suspect lived `observed` and was then accessed,
    /// so similar lifetimes must no longer look anomalous.
    pub fn raise_max_lifetime(&mut self, observed: u64, now: u64) {
        if observed > self.max_lifetime {
            self.max_lifetime = observed;
            self.max_changed_at = now;
            self.stable_time = 0;
            self.last_update = now;
        }
    }

    /// The log₂-bucketed lifetime histogram (bucket *i* counts lifetimes in
    /// `[2^i, 2^(i+1))` cycles).
    #[must_use]
    pub fn lifetime_histogram(&self) -> &[u64; 48] {
        &self.histogram
    }

    /// An upper bound on the `p`-th percentile lifetime (0 < p ≤ 100): the
    /// top of the histogram bucket containing that rank. `None` before any
    /// free.
    #[must_use]
    pub fn lifetime_percentile(&self, p: f64) -> Option<u64> {
        let total: u64 = self.histogram.iter().sum();
        if total == 0 || !(0.0..=100.0).contains(&p) || p <= 0.0 {
            return None;
        }
        let rank = ((p / 100.0 * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &count) in self.histogram.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(1u64 << (i + 1));
            }
        }
        None
    }

    /// Removes a live object without lifetime bookkeeping (used when an
    /// object is retired for reasons other than `free`, e.g. program end).
    pub fn forget(&mut self, addr: u64) {
        if let Some(t) = self.alloc_times.remove(&addr) {
            self.live.remove(&(t, addr));
        }
    }

    /// Resets a live object's allocation time to `now` (applied when a leak
    /// suspect turns out to be live — paper §3.2.3).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not live in this group.
    pub fn reset_alloc_time(&mut self, addr: u64, now: u64) {
        let old = self
            .alloc_times
            .insert(addr, now)
            .expect("suspect is a live object");
        self.live.remove(&(old, addr));
        self.live.insert((now, addr));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_lifecycle() {
        let mut g = GroupStats::default();
        g.on_alloc(0x100, 32, 1000);
        g.on_alloc(0x200, 32, 2000);
        assert_eq!(g.live_count(), 2);
        assert_eq!(g.live_bytes, 64);
        assert!(!g.has_freed());
        let lifetime = g.on_free(0x100, 32, 5000, 0.2);
        assert_eq!(lifetime, 4000);
        assert!(g.has_freed());
        assert_eq!(g.max_lifetime, 4000);
        assert_eq!(g.live_count(), 1);
    }

    #[test]
    fn stability_grows_within_tolerance_resets_beyond() {
        let mut g = GroupStats::default();
        g.on_alloc(1, 8, 0);
        g.on_free(1, 8, 100, 0.2); // max = 100
        assert_eq!(g.stable_time, 0);
        g.on_alloc(2, 8, 200);
        g.on_free(2, 8, 310, 0.2); // lifetime 110 <= 120 tolerated
        assert_eq!(g.max_lifetime, 100);
        assert_eq!(g.stable_time, 210);
        g.on_alloc(3, 8, 400);
        g.on_free(3, 8, 700, 0.2); // lifetime 300 > tolerated
        assert_eq!(g.max_lifetime, 300);
        assert_eq!(g.stable_time, 0);
        assert_eq!(g.max_changed_at, 700);
    }

    #[test]
    fn oldest_live_is_allocation_ordered() {
        let mut g = GroupStats::default();
        g.on_alloc(0xB, 8, 20);
        g.on_alloc(0xA, 8, 10);
        g.on_alloc(0xC, 8, 30);
        assert_eq!(g.oldest_live(2), vec![(10, 0xA), (20, 0xB)]);
    }

    #[test]
    fn reset_alloc_time_moves_object_to_youngest() {
        let mut g = GroupStats::default();
        g.on_alloc(0xA, 8, 10);
        g.on_alloc(0xB, 8, 20);
        g.reset_alloc_time(0xA, 99);
        assert_eq!(g.oldest_live(1), vec![(20, 0xB)]);
        assert_eq!(g.alloc_time_of(0xA), Some(99));
    }

    #[test]
    fn raise_max_lifetime_only_raises() {
        let mut g = GroupStats::default();
        g.on_alloc(1, 8, 0);
        g.on_free(1, 8, 500, 0.0);
        g.raise_max_lifetime(300, 600);
        assert_eq!(g.max_lifetime, 500, "must not lower");
        g.raise_max_lifetime(900, 700);
        assert_eq!(g.max_lifetime, 900);
        assert_eq!(g.stable_time, 0);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut g = GroupStats::default();
        // Lifetimes: 100 (bucket 6), 1000 (bucket 9), 1000, 100_000 (16).
        let mut t = 0;
        for lifetime in [100u64, 1000, 1000, 100_000] {
            g.on_alloc(0xA, 8, t);
            g.on_free(0xA, 8, t + lifetime, 0.0);
            t += lifetime + 1;
        }
        let h = g.lifetime_histogram();
        assert_eq!(h[6], 1);
        assert_eq!(h[9], 2);
        assert_eq!(h[16], 1);
        assert_eq!(h.iter().sum::<u64>(), 4);
        // p50 falls in the 1000-bucket; p100 in the 100k one.
        assert_eq!(g.lifetime_percentile(50.0), Some(1 << 10));
        assert_eq!(g.lifetime_percentile(100.0), Some(1 << 17));
        assert_eq!(g.lifetime_percentile(0.0), None);
        assert_eq!(GroupStats::default().lifetime_percentile(50.0), None);
    }

    #[test]
    fn forget_drops_without_stats() {
        let mut g = GroupStats::default();
        g.on_alloc(1, 8, 0);
        g.forget(1);
        assert_eq!(g.live_count(), 0);
        assert_eq!(g.total_frees, 0);
    }
}
