//! # SafeMem — ECC-memory-based detection of leaks and corruption
//!
//! This crate is the core of the reproduction of *"SafeMem: Exploiting
//! ECC-Memory for Detecting Memory Leaks and Memory Corruption During
//! Production Runs"* (Qin, Lu, Zhou — HPCA 2005): a low-overhead,
//! production-run bug detector that repurposes commodity ECC memory as a
//! cache-line-granularity watchpoint mechanism.
//!
//! ## How it works
//!
//! * **Memory-leak detection** ([`leak`]): memory objects are grouped by
//!   `(size, call-site signature)`; each group's *maximal lifetime*
//!   stabilises quickly (Figure 3 of the paper), so objects that outlive it
//!   by 2× are leak suspects. Suspects are ECC-watched: the first access
//!   prunes a false positive, prolonged silence confirms the leak.
//! * **Memory-corruption detection** ([`corruption`]): buffers are padded
//!   with watched guard lines (overflow) and watched after free
//!   (use-after-free). ECC's cache-line granularity wastes 64–74× less
//!   memory than page-protection guards (Table 4).
//! * Both rely on the OS/hardware substrate in the `safemem-os`,
//!   `safemem-machine`, `safemem-cache` and `safemem-ecc` crates: the
//!   scramble trick arms a line, the first memory access raises an
//!   uncorrectable ECC fault, and a user-level handler dispatches it.
//!
//! ## Quick start
//!
//! ```
//! use safemem_core::{CallStack, MemTool, SafeMem};
//! use safemem_os::Os;
//!
//! let mut os = Os::with_defaults(1 << 22);
//! let mut tool = SafeMem::builder().build(&mut os);
//!
//! let site = CallStack::new(&[0x401000]);
//! let buf = tool.malloc(&mut os, 100, &site);
//! tool.write(&mut os, buf, &[0u8; 100]);
//!
//! // Walking off the end lands in the watched padding — caught.
//! tool.write(&mut os, buf + 126, &[1, 2, 3, 4]);
//! assert!(tool.all_reports().iter().any(|r| r.is_corruption()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corruption;
pub mod diagnose;
pub mod groups;
pub mod heal;
pub mod leak;
pub mod null_tool;
pub mod report;
pub mod safemem_tool;
pub mod sampling;
pub mod signature;
pub mod tool;

pub use corruption::{CorruptionConfig, CorruptionDetector, CorruptionStats};
pub use diagnose::{Diagnosis, Finding, Severity};
pub use groups::GroupStats;
pub use heal::{HealStats, Healer, HealingAction, Incident, IncidentClass, SurvivalSummary};
pub use leak::{LeakConfig, LeakDetector, LeakStats};
pub use null_tool::NullTool;
pub use report::{BugReport, LeakKind, OverflowSide};
pub use safemem_tool::{SafeMem, SafeMemBuilder};
pub use sampling::{SamplingPlan, SamplingSummary, PPM};
pub use signature::{CallStack, GroupKey};
pub use tool::MemTool;
