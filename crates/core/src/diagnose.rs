//! Programmer-facing diagnosis of a run's bug reports.
//!
//! The paper motivates precise, actionable output ("allow programmers to
//! attach an interactive debugger…", "provide programmers with precise
//! information regarding the occurred bugs", §2.2.1/§2.2.3). This module
//! turns a raw report stream into that output: reports are de-duplicated,
//! grouped by allocation site, ranked by severity, and rendered as a
//! summary a human can act on.

use crate::report::{BugReport, LeakKind, OverflowSide};
use crate::signature::GroupKey;
use std::collections::BTreeMap;
use std::fmt;

/// Severity ranking used to order the summary (most urgent first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Writes past buffer bounds: the classic exploitable class.
    Critical,
    /// Reads of stale/foreign memory: wrong behaviour, possible info leak.
    High,
    /// Continuous leaks: eventual resource exhaustion.
    Medium,
    /// Hygiene issues (wild frees, uninitialised reads).
    Low,
    /// Not a software bug (hardware error on a watched line).
    Informational,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Critical => write!(f, "CRITICAL"),
            Severity::High => write!(f, "HIGH"),
            Severity::Medium => write!(f, "MEDIUM"),
            Severity::Low => write!(f, "LOW"),
            Severity::Informational => write!(f, "INFO"),
        }
    }
}

/// Classifies one report.
#[must_use]
pub fn severity_of(report: &BugReport) -> Severity {
    match report {
        BugReport::Overflow {
            access: safemem_os::AccessKind::Write,
            ..
        } => Severity::Critical,
        BugReport::UseAfterFree {
            access: safemem_os::AccessKind::Write,
            ..
        } => Severity::Critical,
        BugReport::Overflow { .. } | BugReport::UseAfterFree { .. } => Severity::High,
        BugReport::DoubleFree { .. } => Severity::High,
        BugReport::Leak { .. } => Severity::Medium,
        BugReport::UninitRead { .. } | BugReport::WildFree { .. } => Severity::Low,
        BugReport::HardwareError { .. } => Severity::Informational,
    }
}

/// One line of actionable advice per report class.
#[must_use]
pub fn advice_for(report: &BugReport) -> &'static str {
    match report {
        BugReport::Overflow { side: OverflowSide::After, .. } => {
            "check the length computation guarding writes/reads at this site; the access ran past the buffer end"
        }
        BugReport::Overflow { side: OverflowSide::Before, .. } => {
            "check for negative indices or pointer arithmetic stepping before the buffer start"
        }
        BugReport::UseAfterFree { .. } => {
            "a reference outlived free(); audit ownership on the path that freed this buffer"
        }
        BugReport::Leak { kind: LeakKind::ALeak, .. } => {
            "no execution path frees this group; add the missing free (or confirm the growth is intended and bounded)"
        }
        BugReport::Leak { kind: LeakKind::SLeak, .. } => {
            "some execution path skips the free; audit early returns and error paths after this allocation site"
        }
        BugReport::UninitRead { .. } => "the buffer is read before any write; initialise it or fix the fill logic",
        BugReport::WildFree { .. } => "free() of a pointer that is not a live allocation (double free or stray pointer)",
        BugReport::DoubleFree { .. } => {
            "free() of an already-freed block; audit ownership on the paths that both free this buffer"
        }
        BugReport::HardwareError { .. } => {
            "a genuine memory hardware error was detected and contained; no code change needed"
        }
    }
}

/// Aggregated findings for one bucket (allocation site or address).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Severity of the bucket (the max over its reports).
    pub severity: Severity,
    /// A representative report.
    pub example: BugReport,
    /// How many raw reports collapsed into this finding.
    pub occurrences: usize,
    /// The allocation-site group, when the report class carries one.
    pub group: Option<GroupKey>,
}

/// A run's diagnosis: de-duplicated, ranked findings.
#[derive(Debug, Clone, Default)]
pub struct Diagnosis {
    findings: Vec<Finding>,
}

impl Diagnosis {
    /// Builds a diagnosis from a raw report stream.
    #[must_use]
    pub fn from_reports(reports: &[BugReport]) -> Self {
        // Bucket key: distinguish classes, then the buffer/site involved.
        #[derive(PartialEq, Eq, PartialOrd, Ord)]
        enum Key {
            Leak(GroupKey),
            Overflow(u64),
            UseAfterFree(u64),
            UninitRead(u64),
            WildFree(u64),
            DoubleFree(u64),
            Hardware(u64),
        }
        let mut buckets: BTreeMap<Key, Finding> = BTreeMap::new();
        for report in reports {
            let (key, group) = match report {
                BugReport::Leak { group, .. } => (Key::Leak(*group), Some(*group)),
                BugReport::Overflow { buffer_addr, .. } => (Key::Overflow(*buffer_addr), None),
                BugReport::UseAfterFree { buffer_addr, .. } => {
                    (Key::UseAfterFree(*buffer_addr), None)
                }
                BugReport::UninitRead { buffer_addr, .. } => (Key::UninitRead(*buffer_addr), None),
                BugReport::WildFree { addr } => (Key::WildFree(*addr), None),
                BugReport::DoubleFree { addr } => (Key::DoubleFree(*addr), None),
                BugReport::HardwareError { line_vaddr } => (Key::Hardware(*line_vaddr), None),
            };
            let severity = severity_of(report);
            buckets
                .entry(key)
                .and_modify(|f| {
                    f.occurrences += 1;
                    if severity < f.severity {
                        f.severity = severity;
                        f.example = *report;
                    }
                })
                .or_insert(Finding {
                    severity,
                    example: *report,
                    occurrences: 1,
                    group,
                });
        }
        let mut findings: Vec<Finding> = buckets.into_values().collect();
        findings.sort_by_key(|f| f.severity);
        Diagnosis { findings }
    }

    /// The ranked findings (most severe first).
    #[must_use]
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// Findings at or above a severity.
    #[must_use]
    pub fn at_least(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity <= severity)
            .count()
    }

    /// Renders the human-readable summary.
    #[must_use]
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        if self.findings.is_empty() {
            let _ = writeln!(out, "no findings: the run was clean");
            return out;
        }
        let _ = writeln!(out, "{} finding(s):", self.findings.len());
        for (i, f) in self.findings.iter().enumerate() {
            let _ = writeln!(out, "\n#{} [{}] ×{}", i + 1, f.severity, f.occurrences);
            let _ = writeln!(out, "   {}", f.example);
            if let Some(group) = f.group {
                let _ = writeln!(out, "   allocation site: {group}");
            }
            let _ = writeln!(out, "   advice: {}", advice_for(&f.example));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safemem_os::AccessKind;

    fn overflow(addr: u64, access: AccessKind) -> BugReport {
        BugReport::Overflow {
            buffer_addr: addr,
            buffer_size: 64,
            access_vaddr: addr + 64,
            access,
            side: OverflowSide::After,
        }
    }

    #[test]
    fn severity_ordering_is_sane() {
        assert!(Severity::Critical < Severity::High);
        assert_eq!(
            severity_of(&overflow(0x10, AccessKind::Write)),
            Severity::Critical
        );
        assert_eq!(
            severity_of(&overflow(0x10, AccessKind::Read)),
            Severity::High
        );
        assert_eq!(
            severity_of(&BugReport::HardwareError { line_vaddr: 0 }),
            Severity::Informational
        );
    }

    #[test]
    fn duplicate_reports_collapse_with_counts() {
        let reports = vec![
            overflow(0x100, AccessKind::Read),
            overflow(0x100, AccessKind::Read),
            overflow(0x200, AccessKind::Write),
        ];
        let d = Diagnosis::from_reports(&reports);
        assert_eq!(d.findings().len(), 2);
        // Most severe first: the write overflow at 0x200.
        assert_eq!(d.findings()[0].severity, Severity::Critical);
        assert_eq!(d.findings()[1].occurrences, 2);
    }

    #[test]
    fn escalation_within_a_bucket() {
        // A read then a write on the same buffer: the bucket escalates.
        let reports = vec![
            overflow(0x100, AccessKind::Read),
            overflow(0x100, AccessKind::Write),
        ];
        let d = Diagnosis::from_reports(&reports);
        assert_eq!(d.findings().len(), 1);
        assert_eq!(d.findings()[0].severity, Severity::Critical);
        assert_eq!(d.findings()[0].occurrences, 2);
    }

    #[test]
    fn render_contains_advice_and_sites() {
        let reports = vec![BugReport::Leak {
            addr: 0x50,
            size: 96,
            group: GroupKey {
                size: 96,
                signature: 0xBEEF,
            },
            kind: LeakKind::SLeak,
            at_cpu_cycles: 42,
        }];
        let text = Diagnosis::from_reports(&reports).render();
        assert!(text.contains("MEDIUM"), "{text}");
        assert!(text.contains("0xbeef"), "{text}");
        assert!(text.contains("error paths"), "{text}");
    }

    #[test]
    fn empty_run_is_clean() {
        let d = Diagnosis::from_reports(&[]);
        assert!(d.render().contains("clean"));
        assert_eq!(d.at_least(Severity::Informational), 0);
    }

    #[test]
    fn at_least_counts_thresholds() {
        let reports = vec![
            overflow(0x1, AccessKind::Write),
            overflow(0x2, AccessKind::Read),
            BugReport::WildFree { addr: 0x3 },
        ];
        let d = Diagnosis::from_reports(&reports);
        assert_eq!(d.at_least(Severity::Critical), 1);
        assert_eq!(d.at_least(Severity::High), 2);
        assert_eq!(d.at_least(Severity::Low), 3);
    }
}
