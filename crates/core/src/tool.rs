//! The interface between workloads and memory tools.
//!
//! A [`MemTool`] stands where the C library and the monitoring tool meet:
//! workloads allocate, free, and access memory exclusively through it. The
//! uninstrumented baseline, SafeMem, and the comparison tools (Purify-like,
//! page-guard) all implement this trait, so the benchmark harness can run
//! identical workloads under each and compare simulated CPU time — exactly
//! the methodology of the paper's Table 3.

use crate::heal::{IncidentClass, SurvivalSummary};
use crate::report::BugReport;
use crate::sampling::SamplingSummary;
use crate::signature::CallStack;
use safemem_alloc::Heap;
use safemem_os::Os;

/// A memory-monitoring tool wrapping the allocator and all memory accesses.
///
/// Buggy accesses (overflows, use-after-free) are *recorded*, not panicked
/// on: production-run tools must let the program continue so the run can be
/// observed end to end (the paper's SafeMem pauses for a debugger; the
/// simulation records and resumes).
pub trait MemTool {
    /// Short human-readable tool name ("none", "safemem", "purify", ...).
    fn name(&self) -> &'static str;

    /// The tool's heap (placement records and space statistics — Table 4).
    fn heap(&self) -> &Heap;

    /// `malloc(size)` at the given call stack. Returns the payload address.
    fn malloc(&mut self, os: &mut Os, size: u64, stack: &CallStack) -> u64;

    /// `calloc(size)`: allocate and zero.
    fn calloc(&mut self, os: &mut Os, size: u64, stack: &CallStack) -> u64 {
        let addr = self.malloc(os, size, stack);
        let zeros = vec![0u8; size.max(1) as usize];
        self.write(os, addr, &zeros);
        addr
    }

    /// `free(addr)`.
    fn free(&mut self, os: &mut Os, addr: u64);

    /// `realloc(addr, new_size)`. Returns the new payload address.
    fn realloc(&mut self, os: &mut Os, addr: u64, new_size: u64, stack: &CallStack) -> u64;

    /// An application load of `buf.len()` bytes.
    fn read(&mut self, os: &mut Os, addr: u64, buf: &mut [u8]);

    /// An application store of `data`.
    fn write(&mut self, os: &mut Os, addr: u64, data: &[u8]);

    /// Models application CPU work: `cycles` of computation containing
    /// `mem_accesses` memory instructions (loads/stores to registers,
    /// stack, globals — the instruction stream, not the explicit buffer
    /// operations above).
    ///
    /// SafeMem and the baseline run this at native speed; a Purify-class
    /// tool instruments *every* memory access and charges per-access
    /// checking here — the source of its orders-of-magnitude slowdown
    /// (paper §5, Table 3).
    fn compute(&mut self, os: &mut Os, cycles: u64, mem_accesses: u64) {
        let _ = mem_accesses;
        os.compute(cycles);
    }

    /// Called once when the workload completes (final leak pass, etc.).
    fn finish(&mut self, os: &mut Os);

    /// All bugs recorded so far.
    fn reports(&self) -> Vec<BugReport>;

    /// A ground-truth incident marker from a workload that *knows* it just
    /// planted a corruption. Metadata, not a memory operation: the default
    /// ignores it; the trace recorder persists it so the campaign oracle
    /// can score incident attribution. Tools must not detect bugs from it.
    fn mark_incident(&mut self, kind: IncidentClass) {
        let _ = kind;
    }

    /// Post-run survival summary, for tools with a recovery layer. `None`
    /// (the default) means the tool makes no survival claims.
    fn survival(&self) -> Option<SurvivalSummary> {
        None
    }

    /// Post-run sampling accounting, for tools that instrument only a
    /// sampled subset of allocations. `None` (the default) means the tool
    /// does not sample.
    fn sampling(&self) -> Option<SamplingSummary> {
        None
    }
}

/// Retry budget for access loops: a single access can fault at most once per
/// watched line it spans, so anything past this is a handler bug.
pub(crate) const MAX_FAULT_RETRIES: usize = 1024;
