//! Bug reports emitted by the detection tools.

use crate::signature::GroupKey;
use safemem_os::AccessKind;
use std::fmt;

/// Which continuous-leak class a leak report belongs to (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LeakKind {
    /// "Always leak": the group is never freed on any path.
    ALeak,
    /// "Sometimes leak": some paths free, some leak.
    SLeak,
}

impl fmt::Display for LeakKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeakKind::ALeak => write!(f, "always-leak"),
            LeakKind::SLeak => write!(f, "sometimes-leak"),
        }
    }
}

/// Which side of a buffer an overflow touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum OverflowSide {
    /// Underflow: the padding before the buffer.
    Before,
    /// Overflow: the padding after the buffer.
    After,
}

impl fmt::Display for OverflowSide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverflowSide::Before => write!(f, "before (underflow)"),
            OverflowSide::After => write!(f, "after (overflow)"),
        }
    }
}

/// A bug found by a tool during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BugReport {
    /// A memory object outlived every expectation and was never accessed
    /// while watched: a continuous memory leak (paper §3).
    Leak {
        /// Payload address of the leaked object.
        addr: u64,
        /// Requested size of the leaked object.
        size: u64,
        /// The object group it belongs to.
        group: GroupKey,
        /// ALeak or SLeak.
        kind: LeakKind,
        /// Process CPU time (cycles) when reported.
        at_cpu_cycles: u64,
    },
    /// An access hit the guard padding of a live buffer (paper §4).
    Overflow {
        /// Payload address of the buffer whose padding was hit.
        buffer_addr: u64,
        /// Requested size of that buffer.
        buffer_size: u64,
        /// The faulting virtual address.
        access_vaddr: u64,
        /// Load or store.
        access: AccessKind,
        /// Which side of the buffer.
        side: OverflowSide,
    },
    /// An access hit a freed buffer before it was reallocated (paper §4).
    UseAfterFree {
        /// Payload address of the freed buffer.
        buffer_addr: u64,
        /// Its size when freed.
        buffer_size: u64,
        /// The faulting virtual address.
        access_vaddr: u64,
        /// Load or store.
        access: AccessKind,
    },
    /// A read from a buffer that was never written (the §4 extension).
    UninitRead {
        /// Payload address of the buffer.
        buffer_addr: u64,
        /// The faulting virtual address.
        access_vaddr: u64,
    },
    /// `free` of an address that is not a live allocation.
    WildFree {
        /// The address passed to `free`.
        addr: u64,
    },
    /// `free` of an address whose block is already freed and still held in
    /// the recovery quarantine — distinguishable from a wild free only when
    /// the tool keeps free-history (recovery mode).
    DoubleFree {
        /// The address passed to `free`.
        addr: u64,
    },
    /// A genuine hardware memory error detected on a watched line (the
    /// scramble signature did not match — paper §2.2.2 differentiation).
    HardwareError {
        /// The affected virtual line address.
        line_vaddr: u64,
    },
}

impl BugReport {
    /// `true` for the leak variant.
    #[must_use]
    pub fn is_leak(&self) -> bool {
        matches!(self, BugReport::Leak { .. })
    }

    /// `true` for the memory-corruption variants (overflow, use-after-free,
    /// uninitialised read, double free).
    #[must_use]
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            BugReport::Overflow { .. }
                | BugReport::UseAfterFree { .. }
                | BugReport::UninitRead { .. }
                | BugReport::DoubleFree { .. }
        )
    }
}

impl fmt::Display for BugReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BugReport::Leak { addr, size, group, kind, .. } => write!(
                f,
                "{kind} leak: object {addr:#x} ({size} B) of group (size={}, callsite={:#x})",
                group.size, group.signature
            ),
            BugReport::Overflow { buffer_addr, buffer_size, access_vaddr, access, side } => write!(
                f,
                "buffer overflow: {access} at {access_vaddr:#x}, {side} buffer {buffer_addr:#x} ({buffer_size} B)"
            ),
            BugReport::UseAfterFree { buffer_addr, buffer_size, access_vaddr, access } => write!(
                f,
                "access to freed memory: {access} at {access_vaddr:#x} in freed buffer {buffer_addr:#x} ({buffer_size} B)"
            ),
            BugReport::UninitRead { buffer_addr, access_vaddr } => write!(
                f,
                "read of uninitialised memory at {access_vaddr:#x} in buffer {buffer_addr:#x}"
            ),
            BugReport::WildFree { addr } => write!(f, "free of non-allocated address {addr:#x}"),
            BugReport::DoubleFree { addr } => {
                write!(f, "double free of quarantined address {addr:#x}")
            }
            BugReport::HardwareError { line_vaddr } => {
                write!(f, "hardware memory error on line {line_vaddr:#x}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::GroupKey;

    #[test]
    fn classification_helpers() {
        let leak = BugReport::Leak {
            addr: 0x10,
            size: 8,
            group: GroupKey {
                size: 8,
                signature: 0xABC,
            },
            kind: LeakKind::ALeak,
            at_cpu_cycles: 0,
        };
        assert!(leak.is_leak());
        assert!(!leak.is_corruption());
        let overflow = BugReport::Overflow {
            buffer_addr: 0x20,
            buffer_size: 64,
            access_vaddr: 0x60,
            access: AccessKind::Write,
            side: OverflowSide::After,
        };
        assert!(overflow.is_corruption());
        assert!(!overflow.is_leak());
    }

    #[test]
    fn displays_mention_addresses() {
        let uaf = BugReport::UseAfterFree {
            buffer_addr: 0x1000,
            buffer_size: 32,
            access_vaddr: 0x1008,
            access: AccessKind::Read,
        };
        let s = uaf.to_string();
        assert!(s.contains("0x1000") && s.contains("freed"));
    }
}
