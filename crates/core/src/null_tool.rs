//! The uninstrumented baseline tool.

use crate::report::BugReport;
use crate::signature::CallStack;
use crate::tool::MemTool;
use safemem_alloc::{Heap, LayoutPolicy};
use safemem_os::Os;

/// No monitoring at all: a plain allocator and raw accesses. This is the
/// denominator of every overhead figure in Table 3.
///
/// Buggy accesses do what they do on real unprotected hardware: silently
/// read or corrupt neighbouring memory.
#[derive(Debug)]
pub struct NullTool {
    heap: Heap,
    reports: Vec<BugReport>,
}

impl NullTool {
    /// Creates the baseline tool.
    #[must_use]
    pub fn new() -> Self {
        NullTool {
            heap: Heap::new(LayoutPolicy::Natural),
            reports: Vec::new(),
        }
    }
}

impl Default for NullTool {
    fn default() -> Self {
        NullTool::new()
    }
}

impl MemTool for NullTool {
    fn name(&self) -> &'static str {
        "none"
    }

    fn heap(&self) -> &Heap {
        &self.heap
    }

    fn malloc(&mut self, os: &mut Os, size: u64, _stack: &CallStack) -> u64 {
        self.heap.alloc(os, size).expect("heap exhausted").addr
    }

    fn free(&mut self, os: &mut Os, addr: u64) {
        // Real free() on a wild pointer corrupts the heap; the baseline just
        // ignores it, as the bug is invisible without a tool.
        let _ = self.heap.free(os, addr);
    }

    fn realloc(&mut self, os: &mut Os, addr: u64, new_size: u64, _stack: &CallStack) -> u64 {
        match self.heap.realloc(os, addr, new_size) {
            Ok((_, new)) => new.addr,
            Err(_) => self.heap.alloc(os, new_size).expect("heap exhausted").addr,
        }
    }

    fn read(&mut self, os: &mut Os, addr: u64, buf: &mut [u8]) {
        os.vread(addr, buf).expect("baseline access cannot fault");
    }

    fn write(&mut self, os: &mut Os, addr: u64, data: &[u8]) {
        os.vwrite(addr, data).expect("baseline access cannot fault");
    }

    fn finish(&mut self, _os: &mut Os) {}

    fn reports(&self) -> Vec<BugReport> {
        self.reports.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_allocates_and_accesses() {
        let mut os = Os::with_defaults(1 << 22);
        let mut tool = NullTool::new();
        let stack = CallStack::default();
        let a = tool.malloc(&mut os, 100, &stack);
        tool.write(&mut os, a, &[1u8; 100]);
        let mut buf = [0u8; 100];
        tool.read(&mut os, a, &mut buf);
        assert_eq!(buf, [1u8; 100]);
        tool.free(&mut os, a);
        assert!(tool.reports().is_empty());
    }

    #[test]
    fn baseline_overflow_is_silent() {
        let mut os = Os::with_defaults(1 << 22);
        let mut tool = NullTool::new();
        let stack = CallStack::default();
        let a = tool.malloc(&mut os, 16, &stack);
        let b = tool.malloc(&mut os, 16, &stack);
        // Overflow a into b: silently corrupts, exactly like real life.
        tool.write(&mut os, a, &[0xEE; 40]);
        let mut buf = [0u8; 1];
        tool.read(&mut os, b, &mut buf);
        assert!(tool.reports().is_empty(), "no tool, no report");
    }
}
