//! Per-allocation sampling of SafeMem's instrumentation.
//!
//! The paper's production story depends on keeping steady-state cost
//! negligible; GWP-ASan showed the deployable form of heap protection is
//! *sampled* — only a random subset of allocations carries guards, trading
//! detection probability for near-zero overhead. A [`SamplingPlan`] makes
//! that decision per allocation as a pure function of `(seed, allocation
//! index)`, so a campaign replaying the same recorded trace under different
//! thread counts or trace-sharing modes always samples the same set.
//!
//! Two properties matter for the overhead-vs-detection frontier:
//!
//! 1. **Determinism** — `samples(i)` depends only on the plan's seed and
//!    `i`. No global state, no wall clock.
//! 2. **Nesting across rates** — the decision hashes `(seed, i)` once and
//!    compares against a threshold derived from the rate, so the sampled
//!    set at a lower rate is a strict subset of the set at any higher rate
//!    (same seed). Detection probability is therefore monotone
//!    non-decreasing in the rate, which the frontier test layer pins.

/// Sampling rates are expressed in parts-per-million: `1_000_000` = every
/// allocation instrumented (today's always-on SafeMem), `10_000` = 1%.
pub const PPM: u32 = 1_000_000;

/// SplitMix64 finalizer: a high-quality 64-bit mix with no state.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The per-allocation sampling decision function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SamplingPlan {
    rate_ppm: u32,
    seed: u64,
}

impl Default for SamplingPlan {
    fn default() -> Self {
        SamplingPlan::always()
    }
}

impl SamplingPlan {
    /// A plan sampling at `rate_ppm` parts-per-million, keyed by `seed`
    /// (derive the seed from the campaign's keyed RNG with a dedicated
    /// stream so it never correlates with fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `rate_ppm` exceeds [`PPM`].
    #[must_use]
    pub fn new(rate_ppm: u32, seed: u64) -> Self {
        assert!(rate_ppm <= PPM, "sampling rate {rate_ppm} > {PPM} ppm");
        SamplingPlan { rate_ppm, seed }
    }

    /// The always-on plan: every allocation instrumented, exactly today's
    /// SafeMem. This is the default, so existing configurations are
    /// untouched.
    #[must_use]
    pub fn always() -> Self {
        SamplingPlan {
            rate_ppm: PPM,
            seed: 0,
        }
    }

    /// The configured rate in parts-per-million.
    #[must_use]
    pub fn rate_ppm(&self) -> u32 {
        self.rate_ppm
    }

    /// Whether the `index`-th allocation of the run (0-based, counted in
    /// `malloc` order) gets the full instrumentation treatment.
    ///
    /// The hash is evaluated per `(seed, index)` and compared against
    /// `rate_ppm / PPM` scaled to the full 64-bit range, so for a fixed
    /// seed the sampled sets nest across rates.
    #[must_use]
    pub fn samples(&self, index: u64) -> bool {
        if self.rate_ppm >= PPM {
            return true;
        }
        if self.rate_ppm == 0 {
            return false;
        }
        // SplitMix64 stream positioned at `index`: golden-ratio increment
        // then finalize. Identical to SmRng::new(seed).nth(index) without
        // materialising the sequence.
        let h = mix(self
            .seed
            .wrapping_add((index.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let threshold = (u128::from(self.rate_ppm) << 64) / u128::from(PPM);
        u128::from(h) < threshold
    }
}

/// End-of-run sampling accounting, surfaced through
/// [`MemTool::sampling`](crate::MemTool::sampling) so the campaign oracle
/// can score effective coverage against the binomial expectation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SamplingSummary {
    /// The configured rate in parts-per-million.
    pub rate_ppm: u32,
    /// Allocations seen by the tool.
    pub total_allocs: u64,
    /// Allocations that drew the full instrumentation treatment.
    pub sampled_allocs: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_plan_samples_everything() {
        let plan = SamplingPlan::always();
        assert!((0..10_000).all(|i| plan.samples(i)));
    }

    #[test]
    fn zero_rate_samples_nothing() {
        let plan = SamplingPlan::new(0, 0xDEAD_BEEF);
        assert!((0..10_000).all(|i| !plan.samples(i)));
    }

    #[test]
    fn decisions_are_deterministic_per_seed_and_index() {
        let a = SamplingPlan::new(250_000, 42);
        let b = SamplingPlan::new(250_000, 42);
        let c = SamplingPlan::new(250_000, 43);
        let decisions_a: Vec<bool> = (0..4096).map(|i| a.samples(i)).collect();
        let decisions_b: Vec<bool> = (0..4096).map(|i| b.samples(i)).collect();
        let decisions_c: Vec<bool> = (0..4096).map(|i| c.samples(i)).collect();
        assert_eq!(decisions_a, decisions_b);
        assert_ne!(decisions_a, decisions_c, "seed must matter");
    }

    #[test]
    fn sampled_sets_nest_across_rates() {
        // Same seed, increasing rates: each sampled set contains the last.
        let rates = [10_000u32, 20_000, 100_000, 200_000, 500_000, PPM];
        for seed in [0u64, 1, 0x1234_5678_9ABC_DEF0] {
            for pair in rates.windows(2) {
                let low = SamplingPlan::new(pair[0], seed);
                let high = SamplingPlan::new(pair[1], seed);
                for i in 0..8192 {
                    if low.samples(i) {
                        assert!(high.samples(i), "nesting broken at index {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn empirical_rate_tracks_the_configured_rate() {
        // 6-sigma binomial band over n = 100_000 draws.
        for &rate in &[10_000u32, 100_000, 500_000] {
            let plan = SamplingPlan::new(rate, 7);
            let n = 100_000u64;
            let hits = (0..n).filter(|&i| plan.samples(i)).count() as f64;
            let p = f64::from(rate) / f64::from(PPM);
            let mean = n as f64 * p;
            let sigma = (n as f64 * p * (1.0 - p)).sqrt();
            assert!(
                (hits - mean).abs() <= 6.0 * sigma,
                "rate {rate}: {hits} hits vs mean {mean} (sigma {sigma})"
            );
        }
    }
}
