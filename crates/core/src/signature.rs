//! Call-stack signatures and memory-object group keys.
//!
//! SafeMem groups memory objects by the tuple `(size, call-stack signature)`
//! where the signature is computed "by individually applying the
//! exclusive-or and rotate functions to the return addresses of the most
//! recent four functions in the current stack" (paper §3, footnote 1).

/// A (simulated) call stack at an allocation site.
///
/// Workloads push synthetic return addresses that identify their allocation
/// sites, exactly the information a real stack walk would provide.
///
/// # Example
///
/// ```
/// use safemem_core::CallStack;
///
/// let stack = CallStack::new(&[0x40_1000, 0x40_2340, 0x40_5678]);
/// let same = CallStack::new(&[0x40_1000, 0x40_2340, 0x40_5678]);
/// assert_eq!(stack.signature(), same.signature());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CallStack {
    frames: Vec<u64>,
}

impl CallStack {
    /// Builds a call stack from return addresses, oldest first.
    #[must_use]
    pub fn new(frames: &[u64]) -> Self {
        CallStack {
            frames: frames.to_vec(),
        }
    }

    /// Pushes a callee's return address (entering a function).
    pub fn push(&mut self, return_addr: u64) {
        self.frames.push(return_addr);
    }

    /// Pops the most recent frame (returning from a function).
    pub fn pop(&mut self) -> Option<u64> {
        self.frames.pop()
    }

    /// The return addresses, oldest first.
    #[must_use]
    pub fn frames(&self) -> &[u64] {
        &self.frames
    }

    /// The paper's signature: XOR-and-rotate over the most recent four
    /// return addresses.
    #[must_use]
    pub fn signature(&self) -> u64 {
        let start = self.frames.len().saturating_sub(4);
        self.frames[start..]
            .iter()
            .fold(0u64, |sig, &addr| sig.rotate_left(13) ^ addr)
    }
}

impl From<&[u64]> for CallStack {
    fn from(frames: &[u64]) -> Self {
        CallStack::new(frames)
    }
}

/// The key identifying a memory object group: `(size, signature)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GroupKey {
    /// Requested object size in bytes.
    pub size: u64,
    /// Call-stack signature of the allocation site.
    pub signature: u64,
}

impl GroupKey {
    /// Builds the key for an allocation of `size` bytes at `stack`.
    #[must_use]
    pub fn new(size: u64, stack: &CallStack) -> Self {
        GroupKey {
            size,
            signature: stack.signature(),
        }
    }
}

impl std::fmt::Display for GroupKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(size={}, callsite={:#x})", self.size, self.signature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_uses_only_last_four_frames() {
        let a = CallStack::new(&[1, 2, 3, 4, 5]);
        let b = CallStack::new(&[99, 2, 3, 4, 5]);
        assert_eq!(
            a.signature(),
            b.signature(),
            "5th-oldest frame must not matter"
        );
        let c = CallStack::new(&[1, 2, 3, 4, 6]);
        assert_ne!(a.signature(), c.signature());
    }

    #[test]
    fn signature_is_order_sensitive() {
        let a = CallStack::new(&[10, 20]);
        let b = CallStack::new(&[20, 10]);
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn push_pop_roundtrip() {
        let mut stack = CallStack::new(&[1, 2]);
        let before = stack.signature();
        stack.push(3);
        assert_ne!(stack.signature(), before);
        assert_eq!(stack.pop(), Some(3));
        assert_eq!(stack.signature(), before);
    }

    #[test]
    fn empty_stack_has_stable_signature() {
        assert_eq!(CallStack::default().signature(), 0);
    }

    #[test]
    fn group_key_distinguishes_size_and_site() {
        let stack = CallStack::new(&[0x100]);
        let a = GroupKey::new(32, &stack);
        let b = GroupKey::new(64, &stack);
        assert_ne!(a, b);
        let other = CallStack::new(&[0x200]);
        assert_ne!(a, GroupKey::new(32, &other));
        assert_eq!(a, GroupKey::new(32, &CallStack::new(&[0x100])));
    }
}
