//! The SafeMem tool: the paper's contribution assembled.
//!
//! Combines the [`LeakDetector`] (§3) and [`CorruptionDetector`] (§4) behind
//! the [`MemTool`] interface, wiring ECC faults delivered by the OS to the
//! right detector. Leak and corruption detection can be enabled
//! independently — Table 3 measures "only ML", "only MC", and "ML + MC".

use crate::corruption::{CorruptionConfig, CorruptionDetector};
use crate::heal::{Healer, SurvivalSummary};
use crate::leak::{LeakConfig, LeakDetector, LeakStats};
use crate::report::BugReport;
use crate::sampling::{SamplingPlan, SamplingSummary};
use crate::signature::CallStack;
use crate::tool::{MemTool, MAX_FAULT_RETRIES};
use safemem_alloc::{Heap, LayoutPolicy};
use safemem_os::{Os, OsFault, UserEccFault};
use std::collections::HashSet;

/// Builder for a [`SafeMem`] instance.
///
/// # Example
///
/// ```
/// use safemem_core::SafeMem;
/// use safemem_os::Os;
///
/// let mut os = Os::with_defaults(1 << 22);
/// let mut tool = SafeMem::builder()
///     .leak_detection(true)
///     .corruption_detection(true)
///     .build(&mut os);
/// assert_eq!(tool.name(), "safemem");
/// # use safemem_core::MemTool;
/// ```
#[derive(Debug, Clone)]
pub struct SafeMemBuilder {
    leak: bool,
    corruption: bool,
    uninit_reads: bool,
    pad_lines: u64,
    leak_config: LeakConfig,
    recovery: bool,
    quarantine_capacity: usize,
    sampling: SamplingPlan,
}

impl Default for SafeMemBuilder {
    fn default() -> Self {
        SafeMemBuilder {
            leak: true,
            corruption: true,
            uninit_reads: false,
            pad_lines: 1,
            leak_config: LeakConfig::default(),
            recovery: false,
            quarantine_capacity: 64,
            sampling: SamplingPlan::always(),
        }
    }
}

impl SafeMemBuilder {
    /// Enables or disables memory-leak detection (default on).
    #[must_use]
    pub fn leak_detection(mut self, on: bool) -> Self {
        self.leak = on;
        self
    }

    /// Enables or disables memory-corruption detection (default on).
    #[must_use]
    pub fn corruption_detection(mut self, on: bool) -> Self {
        self.corruption = on;
        self
    }

    /// Enables the uninitialised-read extension (default off).
    #[must_use]
    pub fn uninit_detection(mut self, on: bool) -> Self {
        self.uninit_reads = on;
        self
    }

    /// Overrides the leak-detector tuning.
    #[must_use]
    pub fn leak_config(mut self, config: LeakConfig) -> Self {
        self.leak_config = config;
        self
    }

    /// Number of guard lines per buffer side (default 1; the paper notes
    /// longer paddings are possible — the padding-width ablation).
    ///
    /// # Panics
    ///
    /// Panics at `build` time if 0.
    #[must_use]
    pub fn pad_lines(mut self, n: u64) -> Self {
        self.pad_lines = n;
        self
    }

    /// Enables the recovery layer (default **off**): detected corruption is
    /// healed — overflows clamped to the padding, freed accesses served
    /// from a quarantine snapshot, double frees ignored — and the disarmed
    /// watch is re-armed so later bugs are still caught. Detection itself
    /// is unchanged: every healed fault still produces its report.
    #[must_use]
    pub fn recovery(mut self, on: bool) -> Self {
        self.recovery = on;
        self
    }

    /// Quarantine capacity horizon in blocks (default 64; oldest snapshots
    /// are evicted first). Only meaningful with [`recovery`](Self::recovery).
    #[must_use]
    pub fn quarantine_capacity(mut self, blocks: usize) -> Self {
        self.quarantine_capacity = blocks;
        self
    }

    /// Samples the instrumentation per allocation (default: every
    /// allocation, i.e. today's always-on SafeMem). Unsampled allocations
    /// get the plain line-aligned layout with no guard pads, no
    /// leak-group tracking, and no freed-buffer watching or quarantine
    /// snapshot — zero instrumentation cost beyond the allocator itself.
    /// Sampled allocations behave exactly as under the always-on tool.
    #[must_use]
    pub fn sampling(mut self, plan: SamplingPlan) -> Self {
        self.sampling = plan;
        self
    }

    /// Builds the tool, registering the ECC fault handler with the OS.
    #[must_use]
    pub fn build(self, os: &mut Os) -> SafeMem {
        os.register_ecc_fault_handler();
        // Corruption detection needs guard paddings; leak-only detection
        // needs line alignment so suspects can be watched without false
        // sharing (paper §2.2.3 discussion).
        let layout = if self.corruption {
            LayoutPolicy::LinePadded
        } else {
            LayoutPolicy::LineAligned
        };
        SafeMem {
            heap: Heap::with_options(layout, os.line_size(), self.pad_lines),
            leak: self
                .leak
                .then(|| LeakDetector::new(self.leak_config, os.line_size())),
            corruption: self.corruption.then(|| {
                let mut det = CorruptionDetector::new(
                    CorruptionConfig {
                        uninit_reads: self.uninit_reads,
                    },
                    os.line_size(),
                );
                det.set_recovery(self.recovery);
                det
            }),
            heal: self.recovery.then(|| Healer::new(self.quarantine_capacity)),
            reports: Vec::new(),
            breakpoint: None,
            sampling: self.sampling,
            alloc_index: 0,
            sampled_allocs: 0,
            unsampled_live: HashSet::new(),
        }
    }
}

/// The SafeMem production-run bug detector.
#[derive(Debug)]
pub struct SafeMem {
    heap: Heap,
    leak: Option<LeakDetector>,
    corruption: Option<CorruptionDetector>,
    /// The recovery engine, present only when built with `recovery(true)`.
    heal: Option<Healer>,
    /// Tool-level reports (wild frees, hardware errors); detector reports
    /// live in the detectors and are concatenated on demand.
    reports: Vec<BugReport>,
    /// The first corruption bug observed, frozen for debugger attachment.
    breakpoint: Option<BugReport>,
    /// Per-allocation instrumentation sampling (always-on by default).
    sampling: SamplingPlan,
    /// Allocations seen so far: the index fed to the sampling decision.
    alloc_index: u64,
    /// How many of them drew the full instrumentation treatment.
    sampled_allocs: u64,
    /// Live payload addresses that skipped instrumentation, so `free` can
    /// skip the matching teardown. Empty under the always-on plan.
    unsampled_live: HashSet<u64>,
}

impl SafeMem {
    /// Starts building a SafeMem instance.
    #[must_use]
    pub fn builder() -> SafeMemBuilder {
        SafeMemBuilder::default()
    }

    /// Leak-detector statistics, if leak detection is enabled.
    #[must_use]
    pub fn leak_stats(&self) -> Option<LeakStats> {
        self.leak.as_ref().map(LeakDetector::stats)
    }

    /// The leak detector, if enabled (exposes per-group statistics for the
    /// Figure 3 experiment).
    #[must_use]
    pub fn leak_detector(&self) -> Option<&LeakDetector> {
        self.leak.as_ref()
    }

    /// The corruption detector, if enabled.
    #[must_use]
    pub fn corruption_detector(&self) -> Option<&CorruptionDetector> {
        self.corruption.as_ref()
    }

    /// The recovery engine, if built with `recovery(true)` — exposes the
    /// healed-incident log and quarantine arena.
    #[must_use]
    pub fn healer(&self) -> Option<&Healer> {
        self.heal.as_ref()
    }

    /// The first memory-corruption bug observed this run, if any — where
    /// the paper's prototype would pause for `gdb` (§2.2.1).
    #[must_use]
    pub fn breakpoint(&self) -> Option<&BugReport> {
        self.breakpoint.as_ref()
    }

    /// All reports from the tool and both detectors.
    #[must_use]
    pub fn all_reports(&self) -> Vec<BugReport> {
        let mut all = self.reports.clone();
        if let Some(leak) = &self.leak {
            all.extend_from_slice(leak.reports());
        }
        if let Some(corruption) = &self.corruption {
            all.extend_from_slice(corruption.reports());
        }
        all
    }

    /// The user-level ECC fault handler (paper §2.2.1): identify the watched
    /// region, check the scramble signature, and dispatch to the detector
    /// that owns the region.
    fn handle_ecc_fault(&mut self, os: &mut Os, fault: &UserEccFault) {
        if !fault.signature_ok {
            // The stored bits differ from original ⊕ mask: a genuine
            // hardware error hit a watched line. Record it; the line's data
            // was never critical (it is padding or a leak suspect whose
            // original is saved), so disable the watch and continue.
            self.reports.push(BugReport::HardwareError {
                line_vaddr: fault.line_vaddr,
            });
        }
        let region = fault.region_vaddr;
        if let Some(leak) = &mut self.leak {
            if leak.handle_fault(os, region) {
                return;
            }
        }
        let mut detected = None;
        if let Some(corruption) = &mut self.corruption {
            if corruption.handle_fault(os, fault) {
                detected = corruption.reports().last().copied();
            }
        }
        if let Some(report) = detected {
            // Paper §2.2.1: on a corruption hit SafeMem "pauses program
            // execution to allow programmers to attach an interactive
            // debugger". The simulation freezes the first such report as
            // a breakpoint the embedding program can inspect, then
            // resumes so the run can be observed end to end.
            if self.breakpoint.is_none() {
                self.breakpoint = Some(report);
            }
            if let Some(healer) = &mut self.heal {
                match report {
                    BugReport::Overflow { buffer_addr, .. } => healer.on_overflow(buffer_addr),
                    BugReport::UseAfterFree { buffer_addr, .. } => {
                        // Restore the pre-free snapshot under the watch the
                        // detector just disarmed, so the retried access is
                        // served from the quarantine copy.
                        healer.on_use_after_free(os, buffer_addr);
                    }
                    _ => {}
                }
            }
            return;
        }
        // Unowned watched region: disable it so execution can continue.
        let _ = os.disable_watch_memory(region);
    }

    /// Completes queued heals once an access retry loop has finished:
    /// re-syncs the quarantine snapshot of a healed freed buffer with
    /// post-access memory (a use-after-free *store* is absorbed into the
    /// copy rather than lost), then re-arms the disarmed watches. Re-arming
    /// inside the fault handler would make the retried access fault
    /// forever; doing it here keeps the guard live for the *next* bug.
    fn drain_heals(&mut self, os: &mut Os) {
        if self.heal.is_none() {
            return;
        }
        let Some(corruption) = &mut self.corruption else {
            return;
        };
        for heal in corruption.take_pending_heals() {
            if heal.is_freed() {
                if let Some(healer) = &mut self.heal {
                    if let Some(entry) = healer.quarantine_mut().lookup_mut(heal.buffer_addr()) {
                        let mut bytes = vec![0u8; entry.len()];
                        if !bytes.is_empty() && os.vread(entry.addr, &mut bytes).is_ok() {
                            entry.absorb_write(0, &bytes);
                        }
                    }
                }
            }
            corruption.rearm(os, heal);
        }
    }

    fn run_with_retries<T>(
        &mut self,
        os: &mut Os,
        mut attempt: impl FnMut(&mut Os) -> Result<T, OsFault>,
    ) -> T {
        for _ in 0..MAX_FAULT_RETRIES {
            match attempt(os) {
                Ok(value) => return value,
                Err(OsFault::Ecc(fault)) => self.handle_ecc_fault(os, &fault),
                Err(fault) => panic!("unexpected fault under SafeMem: {fault}"),
            }
        }
        panic!("ECC fault retry limit exceeded: handler failed to disarm");
    }
}

impl MemTool for SafeMem {
    fn name(&self) -> &'static str {
        "safemem"
    }

    fn heap(&self) -> &Heap {
        &self.heap
    }

    fn malloc(&mut self, os: &mut Os, size: u64, stack: &CallStack) -> u64 {
        let sampled = self.sampling.samples(self.alloc_index);
        self.alloc_index += 1;
        let allocation = if sampled {
            self.sampled_allocs += 1;
            self.heap.alloc(os, size).expect("heap exhausted")
        } else {
            // Unsampled allocations take the uninstrumented line-aligned
            // layout: no guard pads to arm, nothing to watch. The
            // (stride, offset) free-list keying in the heap keeps them
            // from reusing a sampled placement's base (whose payload
            // address could still be quarantine-watched).
            self.heap
                .alloc_with_policy(os, size, LayoutPolicy::LineAligned)
                .expect("heap exhausted")
        };
        if let Some(healer) = &mut self.heal {
            // The address is live again: drop its snapshot so no live
            // allocation ever aliases a quarantined generation.
            healer.quarantine_mut().release(allocation.addr);
        }
        if sampled {
            if let Some(corruption) = &mut self.corruption {
                corruption.on_alloc(os, &allocation);
            }
            if let Some(leak) = &mut self.leak {
                leak.on_alloc(os, allocation.addr, allocation.payload, stack);
            }
        } else {
            self.unsampled_live.insert(allocation.addr);
        }
        allocation.addr
    }

    fn free(&mut self, os: &mut Os, addr: u64) {
        if self.heap.allocation_at(addr).is_none() {
            // With free-history (recovery mode), a free of a block still in
            // quarantine is a *double* free — heal by dropping it. Without
            // history it is indistinguishable from a wild free.
            let quarantined = self
                .heal
                .as_ref()
                .is_some_and(|h| h.quarantine().entry_at(addr).is_some());
            if quarantined {
                let report = BugReport::DoubleFree { addr };
                self.reports.push(report);
                if self.breakpoint.is_none() {
                    self.breakpoint = Some(report);
                }
                self.heal
                    .as_mut()
                    .expect("checked quarantined above")
                    .on_double_free(addr);
            } else {
                self.reports.push(BugReport::WildFree { addr });
            }
            return;
        }
        if self.unsampled_live.remove(&addr) {
            // An unsampled allocation carried no instrumentation, so its
            // free tears none down: no leak bookkeeping, no quarantine
            // snapshot, no freed-buffer watch.
            self.heap.free(os, addr).expect("checked live above");
            return;
        }
        if let Some(leak) = &mut self.leak {
            leak.on_free(os, addr);
        }
        // Recovery snapshots the payload before the allocator retires it.
        // Safe to read plainly here: `on_free` above disarmed any leak
        // suspect watch, and the freed watch is not yet armed. (Pending
        // uninit watches can still fault the read — then the snapshot is
        // skipped and counted.)
        let snapshot = if self.heal.is_some() {
            let payload = self
                .heap
                .allocation_at(addr)
                .expect("checked live above")
                .payload as usize;
            let mut bytes = vec![0u8; payload];
            (payload == 0 || os.vread(addr, &mut bytes).is_ok()).then_some(bytes)
        } else {
            None
        };
        let record = self.heap.free(os, addr).expect("checked live above");
        if let Some(corruption) = &mut self.corruption {
            corruption.on_free(os, &record);
        }
        if let Some(healer) = &mut self.heal {
            match snapshot {
                Some(bytes) => {
                    healer.quarantine_mut().quarantine(addr, bytes);
                }
                None => healer.note_snapshot_failure(),
            }
        }
    }

    fn realloc(&mut self, os: &mut Os, addr: u64, new_size: u64, stack: &CallStack) -> u64 {
        let old = match self.heap.allocation_at(addr) {
            Some(a) => *a,
            None => {
                self.reports.push(BugReport::WildFree { addr });
                return self.malloc(os, new_size, stack);
            }
        };
        let new_addr = self.malloc(os, new_size, stack);
        let keep = old.payload.min(new_size.max(1)) as usize;
        let mut data = vec![0u8; keep];
        self.read(os, old.addr, &mut data);
        self.write(os, new_addr, &data);
        self.free(os, addr);
        new_addr
    }

    fn read(&mut self, os: &mut Os, addr: u64, buf: &mut [u8]) {
        // The borrow checker will not let the closure capture `buf` while
        // `self` is borrowed; loop manually instead.
        for _ in 0..MAX_FAULT_RETRIES {
            match os.vread(addr, buf) {
                Ok(()) => {
                    self.drain_heals(os);
                    return;
                }
                Err(OsFault::Ecc(fault)) => self.handle_ecc_fault(os, &fault),
                Err(fault) => panic!("unexpected fault under SafeMem: {fault}"),
            }
        }
        panic!("ECC fault retry limit exceeded on read");
    }

    fn write(&mut self, os: &mut Os, addr: u64, data: &[u8]) {
        self.run_with_retries(os, |os| os.vwrite(addr, data));
        self.drain_heals(os);
    }

    fn finish(&mut self, os: &mut Os) {
        if let Some(leak) = &mut self.leak {
            leak.finish(os);
        }
    }

    fn reports(&self) -> Vec<BugReport> {
        self.all_reports()
    }

    fn survival(&self) -> Option<SurvivalSummary> {
        self.heal
            .as_ref()
            .map(|h| h.summary(self.heap.verify_integrity()))
    }

    fn sampling(&self) -> Option<SamplingSummary> {
        Some(SamplingSummary {
            rate_ppm: self.sampling.rate_ppm(),
            total_allocs: self.alloc_index,
            sampled_allocs: self.sampled_allocs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{LeakKind, OverflowSide};

    fn os() -> Os {
        Os::with_defaults(1 << 23)
    }

    fn stack(site: u64) -> CallStack {
        CallStack::new(&[0x400_000, site])
    }

    #[test]
    fn end_to_end_overflow_detection() {
        let mut os = os();
        let mut tool = SafeMem::builder().leak_detection(false).build(&mut os);
        let a = tool.malloc(&mut os, 100, &stack(1));
        tool.write(&mut os, a, &[1u8; 100]);
        // Overflow: write 40 bytes starting 90 bytes in (spills past 128).
        tool.write(&mut os, a + 90, &[2u8; 40]);
        let reports = tool.all_reports();
        assert!(
            reports.iter().any(|r| matches!(
                r,
                BugReport::Overflow { side: OverflowSide::After, buffer_addr, .. } if *buffer_addr == a
            )),
            "overflow not detected: {reports:?}"
        );
    }

    #[test]
    fn end_to_end_use_after_free() {
        let mut os = os();
        let mut tool = SafeMem::builder().leak_detection(false).build(&mut os);
        let a = tool.malloc(&mut os, 64, &stack(2));
        tool.write(&mut os, a, &[7u8; 64]);
        tool.free(&mut os, a);
        let mut buf = [0u8; 8];
        tool.read(&mut os, a, &mut buf);
        assert!(tool.all_reports().iter().any(
            |r| matches!(r, BugReport::UseAfterFree { buffer_addr, .. } if *buffer_addr == a)
        ));
    }

    #[test]
    fn end_to_end_sleak_with_pruning() {
        let mut os = os();
        let mut config = LeakConfig {
            check_period: 1_000,
            warmup: 0,
            sleak_stable_threshold: 1_000,
            report_after: 2_000_000,
            ..LeakConfig::default()
        };
        config.prune_cooldown = 10_000;
        let mut tool = SafeMem::builder()
            .corruption_detection(false)
            .leak_config(config)
            .build(&mut os);

        // One object leaks; one long-lived object is idle but later used.
        let leaked = tool.malloc(&mut os, 64, &stack(3));
        let idle = tool.malloc(&mut os, 64, &stack(4));
        tool.write(&mut os, idle, &[1u8; 64]);
        for _ in 0..100 {
            let x = tool.malloc(&mut os, 64, &stack(3));
            let y = tool.malloc(&mut os, 64, &stack(4));
            os.compute(2_000);
            tool.free(&mut os, x);
            tool.free(&mut os, y);
        }
        os.compute(50_000);
        // Trigger checks; the idle object gets watched, then accessed.
        let t = tool.malloc(&mut os, 64, &stack(3));
        tool.free(&mut os, t);
        let mut buf = [0u8; 8];
        tool.read(&mut os, idle, &mut buf); // prunes the false positive
        assert_eq!(buf, [1u8; 8]);

        // Let the report threshold pass for the genuinely leaked object.
        os.compute(4_000_000);
        let t = tool.malloc(&mut os, 64, &stack(3));
        tool.free(&mut os, t);
        tool.finish(&mut os);

        let reports = tool.all_reports();
        let leaks: Vec<_> = reports.iter().filter(|r| r.is_leak()).collect();
        assert!(
            leaks.iter().any(|r| matches!(r, BugReport::Leak { addr, kind: LeakKind::SLeak, .. } if *addr == leaked)),
            "true leak must be reported: {reports:?}"
        );
        assert!(
            !leaks
                .iter()
                .any(|r| matches!(r, BugReport::Leak { addr, .. } if *addr == idle)),
            "pruned false positive must not be reported: {reports:?}"
        );
        assert_eq!(tool.leak_stats().unwrap().suspects_pruned, 1);
    }

    #[test]
    fn breakpoint_freezes_the_first_corruption() {
        let mut os = os();
        let mut tool = SafeMem::builder().leak_detection(false).build(&mut os);
        assert!(tool.breakpoint().is_none());
        let a = tool.malloc(&mut os, 64, &stack(8));
        tool.write(&mut os, a + 64, &[1]); // overflow #1
        let first = tool.breakpoint().copied().expect("breakpoint set");
        let b = tool.malloc(&mut os, 64, &stack(8));
        tool.write(&mut os, b + 64, &[1]); // overflow #2
        assert_eq!(
            tool.breakpoint().copied(),
            Some(first),
            "first bug stays frozen"
        );
        assert_eq!(
            tool.all_reports()
                .iter()
                .filter(|r| r.is_corruption())
                .count(),
            2
        );
    }

    #[test]
    fn wild_free_is_recorded_not_fatal() {
        let mut os = os();
        let mut tool = SafeMem::builder().build(&mut os);
        tool.free(&mut os, 0xDEAD_0000);
        assert!(matches!(
            tool.reports()[0],
            BugReport::WildFree { addr: 0xDEAD_0000 }
        ));
    }

    #[test]
    fn realloc_routes_through_detectors() {
        let mut os = os();
        let mut tool = SafeMem::builder().leak_detection(false).build(&mut os);
        let a = tool.malloc(&mut os, 64, &stack(5));
        tool.write(&mut os, a, &[9u8; 64]);
        let b = tool.realloc(&mut os, a, 256, &stack(5));
        let mut buf = [0u8; 64];
        tool.read(&mut os, b, &mut buf);
        assert_eq!(buf, [9u8; 64]);
        // The old placement is freed and watched; touching it is a bug.
        tool.read(&mut os, a, &mut [0u8; 4]);
        assert!(tool.all_reports().iter().any(|r| r.is_corruption()));
    }

    #[test]
    fn hardware_error_on_watched_pad_recorded_and_survived() {
        let mut os = os();
        let mut tool = SafeMem::builder().leak_detection(false).build(&mut os);
        let a = tool.malloc(&mut os, 64, &stack(6));
        // Corrupt the (watched, scrambled) front pad with extra flips so the
        // signature no longer matches.
        let pad_vaddr = a - 64;
        let phys = {
            // The pad page is pinned and resident; find its frame.
            os.vm().translate_resident(pad_vaddr).expect("pad resident")
        };
        os.machine_mut()
            .controller_mut()
            .inject_multi_bit_error(phys);
        // Touching the pad now reports a hardware error AND an overflow
        // (the access itself is still an overflow).
        tool.read(&mut os, pad_vaddr, &mut [0u8; 4]);
        let reports = tool.all_reports();
        assert!(reports
            .iter()
            .any(|r| matches!(r, BugReport::HardwareError { .. })));
    }

    #[test]
    fn recovery_serves_uaf_reads_from_the_quarantine_snapshot() {
        let mut os = os();
        let mut tool = SafeMem::builder()
            .leak_detection(false)
            .recovery(true)
            .build(&mut os);
        let a = tool.malloc(&mut os, 64, &stack(2));
        tool.write(&mut os, a, &[0x5A; 64]);
        tool.free(&mut os, a);
        let mut buf = [0u8; 64];
        tool.read(&mut os, a, &mut buf);
        assert_eq!(buf, [0x5A; 64], "read served from the pre-free snapshot");
        // Detection is unchanged by healing.
        assert!(tool.all_reports().iter().any(
            |r| matches!(r, BugReport::UseAfterFree { buffer_addr, .. } if *buffer_addr == a)
        ));
        let healer = tool.healer().unwrap();
        assert_eq!(healer.stats().uaf_served, 1);
        // The freed watch was re-armed: a second touch faults again.
        tool.read(&mut os, a, &mut buf);
        assert_eq!(tool.healer().unwrap().stats().uaf_served, 2);
    }

    #[test]
    fn recovery_clamps_overflows_and_rearms_the_pad() {
        let mut os = os();
        let mut tool = SafeMem::builder()
            .leak_detection(false)
            .recovery(true)
            .build(&mut os);
        let a = tool.malloc(&mut os, 100, &stack(3));
        tool.write(&mut os, a, &[1u8; 100]);
        tool.write(&mut os, a + 90, &[2u8; 40]); // spills past 128
        tool.write(&mut os, a + 90, &[3u8; 40]); // pad re-armed: caught again
        let overflows = tool
            .all_reports()
            .iter()
            .filter(|r| matches!(r, BugReport::Overflow { .. }))
            .count();
        assert_eq!(overflows, 2, "healing keeps the guard live");
        assert_eq!(tool.healer().unwrap().stats().overflows_clamped, 2);
        // In-bounds contents survived the clamps.
        let mut buf = [0u8; 90];
        tool.read(&mut os, a, &mut buf);
        assert_eq!(buf[..89], [1u8; 89][..]);
        assert!(tool.survival().unwrap().heap_intact);
    }

    #[test]
    fn double_free_of_the_last_live_block_is_healed() {
        let mut os = os();
        let mut tool = SafeMem::builder()
            .leak_detection(false)
            .recovery(true)
            .build(&mut os);
        let a = tool.malloc(&mut os, 64, &stack(4));
        tool.write(&mut os, a, &[9u8; 64]);
        tool.free(&mut os, a);
        assert_eq!(tool.heap().live_count(), 0, "that was the last live block");
        tool.free(&mut os, a); // double free with an empty heap
        assert!(matches!(
            tool.reports()[0],
            BugReport::DoubleFree { addr } if addr == a
        ));
        let healer = tool.healer().unwrap();
        assert_eq!(healer.stats().double_frees_ignored, 1);
        assert_eq!(
            healer.quarantine().entry_at(a).unwrap().payload(),
            &[9u8; 64][..],
            "the ignored free left the snapshot in place"
        );
        // Without recovery the same sequence is a wild free, not a panic.
        let mut plain = SafeMem::builder().leak_detection(false).build(&mut os);
        let b = plain.malloc(&mut os, 64, &stack(4));
        plain.free(&mut os, b);
        plain.free(&mut os, b);
        assert!(matches!(plain.reports()[0], BugReport::WildFree { .. }));
    }

    #[test]
    fn zero_length_overflow_is_clamped_to_nothing() {
        // A store landing *entirely* in the padding: the in-bounds part of
        // the clamped write is zero bytes long, and the payload must be
        // untouched after healing.
        let mut os = os();
        let mut tool = SafeMem::builder()
            .leak_detection(false)
            .recovery(true)
            .build(&mut os);
        let a = tool.malloc(&mut os, 64, &stack(5));
        tool.write(&mut os, a, &[4u8; 64]);
        tool.write(&mut os, a + 64, &[0xFF; 4]); // wholly out of bounds
        assert_eq!(tool.healer().unwrap().stats().overflows_clamped, 1);
        let mut buf = [0u8; 64];
        tool.read(&mut os, a, &mut buf);
        assert_eq!(buf, [4u8; 64], "no payload byte changed");
        assert!(tool.survival().unwrap().heap_intact);
    }

    #[test]
    fn uaf_read_exactly_at_the_quarantine_eviction_horizon() {
        let mut os = os();
        let mut tool = SafeMem::builder()
            .leak_detection(false)
            .recovery(true)
            .quarantine_capacity(2)
            .build(&mut os);
        // Fill the horizon, then push one more: the oldest is evicted.
        let a = tool.malloc(&mut os, 64, &stack(6));
        let b = tool.malloc(&mut os, 64, &stack(6));
        let c = tool.malloc(&mut os, 64, &stack(6));
        tool.write(&mut os, a, &[0xA1; 64]);
        tool.write(&mut os, b, &[0xB2; 64]);
        tool.free(&mut os, a);
        tool.free(&mut os, b);
        tool.free(&mut os, c); // evicts a's snapshot
        let mut buf = [0u8; 8];
        tool.read(&mut os, a, &mut buf); // exactly past the horizon: miss
        tool.read(&mut os, b, &mut buf); // exactly at the horizon: hit
        assert_eq!(buf, [0xB2; 8], "survivor still serves pre-free bytes");
        let stats = tool.healer().unwrap().stats();
        assert_eq!(stats.quarantine_misses, 1);
        assert_eq!(stats.uaf_served, 1);
        // Both accesses were detected and healed either way.
        let summary = tool.survival().unwrap();
        assert_eq!(summary.healed_uafs, 2);
        assert_eq!(summary.canary_violations, 0);
    }

    #[test]
    fn uaf_store_is_absorbed_into_the_snapshot() {
        let mut os = os();
        let mut tool = SafeMem::builder()
            .leak_detection(false)
            .recovery(true)
            .build(&mut os);
        let a = tool.malloc(&mut os, 64, &stack(7));
        tool.write(&mut os, a, &[1u8; 64]);
        tool.free(&mut os, a);
        tool.write(&mut os, a, &[2u8; 8]); // UAF store, healed
        let mut buf = [0u8; 64];
        tool.read(&mut os, a, &mut buf); // UAF read, served
        assert_eq!(buf[..8], [2u8; 8][..], "store visible through the copy");
        assert_eq!(buf[8..], [1u8; 56][..], "rest still pre-free contents");
        assert_eq!(tool.healer().unwrap().stats().uaf_served, 2);
    }

    #[test]
    fn reused_address_never_aliases_the_quarantine() {
        let mut os = os();
        let mut tool = SafeMem::builder()
            .leak_detection(false)
            .recovery(true)
            .build(&mut os);
        let a = tool.malloc(&mut os, 64, &stack(8));
        tool.free(&mut os, a);
        let b = tool.malloc(&mut os, 64, &stack(8));
        assert_eq!(a, b, "free-list reuse expected");
        assert!(
            tool.healer().unwrap().quarantine().entry_at(b).is_none(),
            "snapshot released on reallocation"
        );
        // A free of the reused block is a legitimate free, not a double free.
        tool.free(&mut os, b);
        assert!(tool.reports().iter().all(|r| !r.is_corruption()));
    }

    #[test]
    fn unsampled_allocations_are_unguarded_and_silent() {
        use crate::sampling::SamplingPlan;
        let mut os = os();
        let mut tool = SafeMem::builder()
            .leak_detection(false)
            .sampling(SamplingPlan::new(0, 99))
            .build(&mut os);
        let watched_before = os.watched_region_count();
        let a = tool.malloc(&mut os, 64, &stack(1));
        let alloc = *tool.heap().allocation_at(a).unwrap();
        assert_eq!(alloc.pad_before(), 0, "no guard pads when unsampled");
        assert_eq!(os.watched_region_count(), watched_before, "nothing armed");
        // Overflowing and touching after free go undetected — the cost of
        // sampling out — but nothing crashes and nothing is misreported.
        tool.write(&mut os, a + 64, &[1u8; 8]);
        tool.free(&mut os, a);
        tool.read(&mut os, a, &mut [0u8; 8]);
        assert!(tool.all_reports().is_empty(), "{:?}", tool.all_reports());
        let summary = tool.sampling().unwrap();
        assert_eq!((summary.total_allocs, summary.sampled_allocs), (1, 0));
    }

    #[test]
    fn full_rate_sampling_matches_the_default_tool() {
        use crate::sampling::{SamplingPlan, PPM};
        let mut os_a = os();
        let mut os_b = os();
        let mut plain = SafeMem::builder().leak_detection(false).build(&mut os_a);
        let mut full = SafeMem::builder()
            .leak_detection(false)
            .sampling(SamplingPlan::new(PPM, 1234))
            .build(&mut os_b);
        for tool_os in [(&mut plain, &mut os_a), (&mut full, &mut os_b)] {
            let (tool, os) = tool_os;
            let a = tool.malloc(os, 100, &stack(2));
            tool.write(os, a, &[5u8; 100]);
            tool.write(os, a + 90, &[6u8; 40]); // overflow
            tool.free(os, a);
            tool.read(os, a, &mut [0u8; 4]); // use after free
        }
        assert_eq!(plain.all_reports(), full.all_reports());
        assert_eq!(plain.heap().stats(), full.heap().stats());
        assert_eq!(os_a.cpu_cycles(), os_b.cpu_cycles());
    }

    #[test]
    fn mixed_population_frees_do_not_cross_detectors() {
        use crate::sampling::SamplingPlan;
        let mut os = os();
        // Seed chosen arbitrarily; at 50% both populations appear quickly.
        let plan = SamplingPlan::new(500_000, 0xABCD);
        let mut tool = SafeMem::builder()
            .leak_detection(false)
            .recovery(true)
            .sampling(plan)
            .build(&mut os);
        let addrs: Vec<u64> = (0..32)
            .map(|i| tool.malloc(&mut os, 64, &stack(i)))
            .collect();
        let sampled: Vec<bool> = (0..32).map(|i| plan.samples(i)).collect();
        assert!(sampled.iter().any(|&s| s) && sampled.iter().any(|&s| !s));
        for &a in &addrs {
            tool.free(&mut os, a);
        }
        // Fresh allocations reusing freed space never trip a stale freed
        // watch or quarantine entry from the other population.
        for i in 0..32u64 {
            let b = tool.malloc(&mut os, 64, &stack(100 + i));
            tool.write(&mut os, b, &[7u8; 64]);
        }
        assert!(
            tool.all_reports().is_empty(),
            "spurious reports from cross-population reuse: {:?}",
            tool.all_reports()
        );
    }

    #[test]
    fn leak_only_layout_is_line_aligned_not_padded() {
        let mut os = os();
        let mut tool = SafeMem::builder()
            .corruption_detection(false)
            .build(&mut os);
        let a = tool.malloc(&mut os, 10, &stack(7));
        assert_eq!(a % 64, 0);
        let alloc = *tool.heap().allocation_at(a).unwrap();
        assert_eq!(alloc.pad_before(), 0, "no guard pads in leak-only mode");
    }
}
