//! Memory-corruption detection (paper §4).
//!
//! Two mechanisms, both built on ECC watchpoints:
//!
//! * **Buffer overflow** — every allocated buffer is padded with one watched
//!   cache line at each end (the allocator's
//!   [`LinePadded`](safemem_alloc::LayoutPolicy::LinePadded) layout); any
//!   access to a padding is a bug.
//! * **Access to freed memory** — a freed buffer is watched until it is
//!   reallocated; any access in between is a bug.
//!
//! Plus the extension sketched at the end of §4: **reads of uninitialised
//! buffers**, by watching fresh allocations until their first write.

use crate::report::{BugReport, OverflowSide};
use safemem_alloc::Allocation;
use safemem_hashfx::FxHashMap;
use safemem_os::{AccessKind, Os, OsError, UserEccFault};

/// Configuration for the corruption detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CorruptionConfig {
    /// Also detect reads of never-written buffers (the §4 extension).
    pub uninit_reads: bool,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct PadInfo {
    buffer_addr: u64,
    buffer_size: u64,
    side: OverflowSide,
    len: u64,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct FreedInfo {
    buffer_addr: u64,
    buffer_size: u64,
    base: u64,
    len: u64,
}

/// A watch disarmed by a fault that recovery mode wants re-armed once the
/// faulting access has completed. Queued by [`CorruptionDetector::handle_fault`]
/// and drained by the embedding tool *after* its access retry loop — re-arming
/// inside the handler would make the retried access fault forever.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PendingHeal {
    /// A guard padding hit by an overflow.
    Pad { region: u64, info: PadInfo },
    /// A freed region hit by a use-after-free.
    Freed { region: u64, info: FreedInfo },
}

impl PendingHeal {
    /// Payload address of the buffer the healed watch guards.
    pub(crate) fn buffer_addr(&self) -> u64 {
        match self {
            PendingHeal::Pad { info, .. } => info.buffer_addr,
            PendingHeal::Freed { info, .. } => info.buffer_addr,
        }
    }

    /// `true` for the freed-region variant.
    pub(crate) fn is_freed(&self) -> bool {
        matches!(self, PendingHeal::Freed { .. })
    }
}

/// Corruption-detector counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CorruptionStats {
    /// Pad regions currently watched.
    pub pads_watched: u64,
    /// Freed regions currently watched.
    pub freed_watched: u64,
    /// Overflows reported.
    pub overflows: u64,
    /// Use-after-free reported.
    pub use_after_free: u64,
    /// Uninitialised reads reported.
    pub uninit_reads: u64,
    /// Regions that could not be watched (pinned-memory exhaustion under
    /// the paper's pinning policy — §2.2.2 "this method limits the total
    /// amount of monitored memory"). Those buffers run unguarded.
    pub unguarded: u64,
}

/// The SafeMem memory-corruption detector.
#[derive(Debug)]
pub struct CorruptionDetector {
    config: CorruptionConfig,
    /// Cache-line size of the machine (watch granularity).
    line: u64,
    /// Watched pad regions keyed by region start.
    pads: FxHashMap<u64, PadInfo>,
    /// Watched freed buffers keyed by region start.
    freed: FxHashMap<u64, FreedInfo>,
    /// Placement base → freed watch-region start (for reallocation).
    freed_by_base: FxHashMap<u64, u64>,
    /// Watched not-yet-written buffers keyed by region start.
    uninit: FxHashMap<u64, u64>,
    reports: Vec<BugReport>,
    stats: CorruptionStats,
    /// Recovery mode: faults queue a [`PendingHeal`] so the disarmed watch
    /// is re-armed after the access completes. Off by default.
    recovery: bool,
    pending: Vec<PendingHeal>,
}

impl CorruptionDetector {
    /// Creates a detector for a machine with `line`-byte cache lines.
    #[must_use]
    pub fn new(config: CorruptionConfig, line: u64) -> Self {
        CorruptionDetector {
            config,
            line,
            pads: FxHashMap::default(),
            freed: FxHashMap::default(),
            freed_by_base: FxHashMap::default(),
            uninit: FxHashMap::default(),
            reports: Vec::new(),
            stats: CorruptionStats::default(),
            recovery: false,
            pending: Vec::new(),
        }
    }

    /// Enables recovery mode: faults queue re-arms instead of permanently
    /// retiring the watch.
    pub(crate) fn set_recovery(&mut self, on: bool) {
        self.recovery = on;
    }

    /// Drains the queued re-arms (empty unless recovery mode is on and a
    /// fault just fired).
    pub(crate) fn take_pending_heals(&mut self) -> Vec<PendingHeal> {
        std::mem::take(&mut self.pending)
    }

    /// Re-arms a healed watch and restores its bookkeeping. Degrades
    /// gracefully under pinned-memory pressure like any other arm.
    pub(crate) fn rearm(&mut self, os: &mut Os, heal: PendingHeal) {
        match heal {
            PendingHeal::Pad { region, info } => {
                if self.watch_or_degrade(os, region, info.len) {
                    self.pads.insert(region, info);
                    self.stats.pads_watched += 1;
                }
            }
            PendingHeal::Freed { region, info } => {
                if self.watch_or_degrade(os, region, info.len) {
                    self.freed.insert(region, info);
                    self.freed_by_base.insert(info.base, region);
                    self.stats.freed_watched += 1;
                }
            }
        }
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> CorruptionStats {
        self.stats
    }

    /// Reports accumulated so far.
    #[must_use]
    pub fn reports(&self) -> &[BugReport] {
        &self.reports
    }

    /// Wraps `malloc`: un-watches a reused freed block, then arms the two
    /// guard paddings (and the uninitialised-read watch if configured).
    ///
    /// Requires the allocation to come from a
    /// [`LinePadded`](safemem_alloc::LayoutPolicy::LinePadded) heap.
    ///
    /// # Panics
    ///
    /// Panics if the allocation has no paddings (wrong layout policy).
    pub fn on_alloc(&mut self, os: &mut Os, allocation: &Allocation) {
        assert!(
            allocation.pad_before() > 0 && allocation.pad_after() > 0,
            "corruption detection requires the LinePadded layout"
        );
        // Reallocation of a watched freed block disables its watch.
        if let Some(region) = self.freed_by_base.remove(&allocation.base) {
            self.freed.remove(&region);
            os.disable_watch_memory(region)
                .expect("freed region was watched");
            self.stats.freed_watched -= 1;
        }
        let (front, front_len, back, back_len) = self.pad_regions(allocation);
        for (start, len, side) in [
            (front, front_len, OverflowSide::Before),
            (back, back_len, OverflowSide::After),
        ] {
            if self.watch_or_degrade(os, start, len) {
                self.pads.insert(
                    start,
                    PadInfo {
                        buffer_addr: allocation.addr,
                        buffer_size: allocation.payload,
                        side,
                        len,
                    },
                );
                self.stats.pads_watched += 1;
            }
        }

        if self.config.uninit_reads {
            // Per-line watches: a write initialises only the lines it
            // touches; reads of other never-written lines still trap.
            let (start, len) = self.payload_region(allocation);
            let mut line_addr = start;
            while line_addr < start + len {
                if os.watch_memory(line_addr, self.line).is_ok() {
                    self.uninit.insert(line_addr, allocation.addr);
                }
                line_addr += self.line;
            }
        }
    }

    /// Wraps `free`: disarms the paddings and watches the freed payload
    /// until reallocation.
    pub fn on_free(&mut self, os: &mut Os, allocation: &Allocation) {
        let (front, _, back, _) = self.pad_regions(allocation);
        for region in [front, back] {
            if self.pads.remove(&region).is_some() {
                os.disable_watch_memory(region).expect("pad was watched");
                self.stats.pads_watched -= 1;
            }
        }
        let (start, len) = self.payload_region(allocation);
        // Pending uninitialised-read watches are replaced by the freed watch.
        let mut line_addr = start;
        while line_addr < start + len {
            if self.uninit.remove(&line_addr).is_some() {
                os.disable_watch_memory(line_addr)
                    .expect("uninit line was watched");
            }
            line_addr += self.line;
        }
        if self.watch_or_degrade(os, start, len) {
            self.freed.insert(
                start,
                FreedInfo {
                    buffer_addr: allocation.addr,
                    buffer_size: allocation.payload,
                    base: allocation.base,
                    len,
                },
            );
            self.freed_by_base.insert(allocation.base, start);
            self.stats.freed_watched += 1;
        }
    }

    /// Arms a watch region, degrading gracefully when pinned memory runs
    /// out (the buffer goes unguarded and is counted). Other failures are
    /// tool bugs and panic.
    fn watch_or_degrade(&mut self, os: &mut Os, start: u64, len: u64) -> bool {
        match os.watch_memory(start, len) {
            Ok(()) => true,
            Err(OsError::OutOfMemory | OsError::AlreadyWatched { .. }) => {
                self.stats.unguarded += 1;
                false
            }
            Err(e) => panic!("unexpected watch failure: {e}"),
        }
    }

    fn pad_regions(&self, allocation: &Allocation) -> (u64, u64, u64, u64) {
        let front = allocation.base;
        let front_len = allocation.pad_before();
        let back_len = allocation.pad_after() - self.payload_rounding(allocation);
        let back = allocation.base + allocation.stride - back_len;
        (front, front_len, back, back_len)
    }

    /// Bytes between the payload end and the back pad (line rounding).
    fn payload_rounding(&self, allocation: &Allocation) -> u64 {
        allocation.payload.div_ceil(self.line) * self.line - allocation.payload
    }

    /// The line-rounded payload region (for freed/uninit watches).
    fn payload_region(&self, allocation: &Allocation) -> (u64, u64) {
        (
            allocation.addr,
            allocation.payload.div_ceil(self.line) * self.line,
        )
    }

    /// Handles an ECC fault whose watched region starts at
    /// `fault.region_vaddr`. Returns `true` if the region belonged to this
    /// detector (a bug was recorded and the watch disabled so execution can
    /// continue — the simulated analogue of pausing for the debugger).
    pub fn handle_fault(&mut self, os: &mut Os, fault: &UserEccFault) -> bool {
        let region = fault.region_vaddr;
        if let Some(pad) = self.pads.remove(&region) {
            os.disable_watch_memory(region).expect("pad was watched");
            self.stats.pads_watched -= 1;
            self.stats.overflows += 1;
            self.reports.push(BugReport::Overflow {
                buffer_addr: pad.buffer_addr,
                buffer_size: pad.buffer_size,
                access_vaddr: fault.access_vaddr,
                access: fault.access,
                side: pad.side,
            });
            if self.recovery {
                self.pending.push(PendingHeal::Pad { region, info: pad });
            }
            return true;
        }
        if let Some(freed) = self.freed.remove(&region) {
            self.freed_by_base.remove(&freed.base);
            os.disable_watch_memory(region)
                .expect("freed region was watched");
            self.stats.freed_watched -= 1;
            self.stats.use_after_free += 1;
            self.reports.push(BugReport::UseAfterFree {
                buffer_addr: freed.buffer_addr,
                buffer_size: freed.buffer_size,
                access_vaddr: fault.access_vaddr,
                access: fault.access,
            });
            if self.recovery {
                self.pending.push(PendingHeal::Freed {
                    region,
                    info: freed,
                });
            }
            return true;
        }
        if let Some(buffer_addr) = self.uninit.remove(&region) {
            os.disable_watch_memory(region)
                .expect("uninit region was watched");
            // First write is initialisation; first read is the bug.
            if fault.access == AccessKind::Read {
                self.stats.uninit_reads += 1;
                self.reports.push(BugReport::UninitRead {
                    buffer_addr,
                    access_vaddr: fault.access_vaddr,
                });
            }
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safemem_alloc::{Heap, LayoutPolicy};
    use safemem_os::OsFault;

    fn setup() -> (Os, Heap, CorruptionDetector) {
        let mut os = Os::with_defaults(1 << 22);
        os.register_ecc_fault_handler();
        let heap = Heap::new(LayoutPolicy::LinePadded);
        let det = CorruptionDetector::new(CorruptionConfig::default(), 64);
        (os, heap, det)
    }

    fn expect_ecc(fault: OsFault) -> UserEccFault {
        match fault {
            OsFault::Ecc(user) => user,
            other => panic!("expected ECC fault, got {other:?}"),
        }
    }

    #[test]
    fn overflow_past_end_is_reported() {
        let (mut os, mut heap, mut det) = setup();
        let a = heap.alloc(&mut os, 100).unwrap();
        det.on_alloc(&mut os, &a);
        // In-bounds accesses are free of faults.
        os.vwrite(a.addr, &[1u8; 100]).unwrap();
        // One byte past the line-rounded end lands in the back pad.
        let over = a.addr + 128;
        let fault = expect_ecc(os.vwrite(over, &[9]).unwrap_err());
        assert!(det.handle_fault(&mut os, &fault));
        assert!(matches!(
            det.reports()[0],
            BugReport::Overflow { side: OverflowSide::After, buffer_addr, .. } if buffer_addr == a.addr
        ));
        // Execution continues after the report.
        os.vwrite(over, &[9]).unwrap();
    }

    #[test]
    fn underflow_before_start_is_reported() {
        let (mut os, mut heap, mut det) = setup();
        let a = heap.alloc(&mut os, 64).unwrap();
        det.on_alloc(&mut os, &a);
        let under = a.addr - 8;
        let fault = expect_ecc(os.vread(under, &mut [0u8; 4]).unwrap_err());
        assert!(det.handle_fault(&mut os, &fault));
        assert!(matches!(
            det.reports()[0],
            BugReport::Overflow {
                side: OverflowSide::Before,
                ..
            }
        ));
    }

    #[test]
    fn use_after_free_is_reported_until_reallocation() {
        let (mut os, mut heap, mut det) = setup();
        let a = heap.alloc(&mut os, 64).unwrap();
        det.on_alloc(&mut os, &a);
        os.vwrite(a.addr, &[5u8; 64]).unwrap();
        let record = heap.free(&mut os, a.addr).unwrap();
        det.on_free(&mut os, &record);
        let fault = expect_ecc(os.vread(a.addr, &mut [0u8; 8]).unwrap_err());
        assert!(det.handle_fault(&mut os, &fault));
        assert!(matches!(det.reports()[0], BugReport::UseAfterFree { .. }));
    }

    #[test]
    fn reallocation_disables_freed_watch() {
        let (mut os, mut heap, mut det) = setup();
        let a = heap.alloc(&mut os, 64).unwrap();
        det.on_alloc(&mut os, &a);
        let record = heap.free(&mut os, a.addr).unwrap();
        det.on_free(&mut os, &record);
        // Reallocate the same block: the freed watch must be disabled so the
        // new owner can use it fault-free.
        let b = heap.alloc(&mut os, 64).unwrap();
        assert_eq!(b.base, a.base, "free-list reuse expected");
        det.on_alloc(&mut os, &b);
        os.vwrite(b.addr, &[1u8; 64]).unwrap();
        os.vread(b.addr, &mut [0u8; 64]).unwrap();
        assert!(det.reports().is_empty());
    }

    #[test]
    fn frees_disarm_pads() {
        let (mut os, mut heap, mut det) = setup();
        let a = heap.alloc(&mut os, 64).unwrap();
        det.on_alloc(&mut os, &a);
        let watched_before = os.watched_region_count();
        let record = heap.free(&mut os, a.addr).unwrap();
        det.on_free(&mut os, &record);
        // 2 pads disarmed, 1 freed-region watch armed.
        assert_eq!(os.watched_region_count(), watched_before - 1);
    }

    #[test]
    fn uninit_read_extension() {
        let mut os = Os::with_defaults(1 << 22);
        os.register_ecc_fault_handler();
        let mut heap = Heap::new(LayoutPolicy::LinePadded);
        let mut det = CorruptionDetector::new(CorruptionConfig { uninit_reads: true }, 64);
        // Buffer A: read before any write → bug.
        let a = heap.alloc(&mut os, 64).unwrap();
        det.on_alloc(&mut os, &a);
        let fault = expect_ecc(os.vread(a.addr, &mut [0u8; 8]).unwrap_err());
        assert!(det.handle_fault(&mut os, &fault));
        assert_eq!(det.stats().uninit_reads, 1);
        // Buffer B: write first → no bug, watch silently cleared.
        let b = heap.alloc(&mut os, 64).unwrap();
        det.on_alloc(&mut os, &b);
        let fault = expect_ecc(os.vwrite(b.addr, &[1u8; 8]).unwrap_err());
        assert!(det.handle_fault(&mut os, &fault));
        os.vwrite(b.addr, &[1u8; 8]).unwrap();
        let mut buf = [0u8; 8];
        os.vread(b.addr, &mut buf).unwrap();
        assert_eq!(det.stats().uninit_reads, 1, "no new report for buffer B");
    }

    #[test]
    fn multi_line_buffers_pad_correctly() {
        let (mut os, mut heap, mut det) = setup();
        let a = heap.alloc(&mut os, 300).unwrap(); // rounds to 320? no: 5 lines = 320
        det.on_alloc(&mut os, &a);
        // Whole rounded payload accessible.
        os.vwrite(a.addr, &[3u8; 300]).unwrap();
        let mut buf = [0u8; 300];
        os.vread(a.addr, &mut buf).unwrap();
        // Past the rounded end faults.
        let rounded = 300u64.div_ceil(64) * 64;
        assert!(os.vread(a.addr + rounded, &mut [0u8; 1]).is_err());
    }

    #[test]
    fn pinned_memory_exhaustion_degrades_gracefully() {
        // Tiny physical memory under the pinning policy: most buffers
        // cannot be guarded, but nothing panics and guarded buffers still
        // detect overflows.
        let mut os = Os::with_defaults(6 * 4096);
        os.register_ecc_fault_handler();
        let mut heap = Heap::new(LayoutPolicy::LinePadded);
        let mut det = CorruptionDetector::new(CorruptionConfig::default(), 64);
        let mut allocs = Vec::new();
        for _ in 0..64 {
            let a = heap.alloc(&mut os, 4096).unwrap();
            det.on_alloc(&mut os, &a);
            allocs.push(a);
        }
        assert!(det.stats().unguarded > 0, "pressure must bite");
        assert!(det.stats().pads_watched > 0, "early buffers are guarded");
    }

    #[test]
    #[should_panic(expected = "LinePadded")]
    fn wrong_layout_is_rejected() {
        let mut os = Os::with_defaults(1 << 22);
        let mut heap = Heap::new(LayoutPolicy::Natural);
        let mut det = CorruptionDetector::new(CorruptionConfig::default(), 64);
        let a = heap.alloc(&mut os, 64).unwrap();
        det.on_alloc(&mut os, &a);
    }
}
