//! Property tests for the detectors: soundness invariants of leak and
//! corruption detection that must hold for any workload.

use proptest::prelude::*;
use safemem_alloc::{Heap, LayoutPolicy};
use safemem_core::{
    BugReport, CallStack, CorruptionConfig, CorruptionDetector, LeakConfig, LeakDetector, MemTool,
    SafeMem,
};
use safemem_os::{Os, OsFault};

fn quick_leak_config() -> LeakConfig {
    LeakConfig {
        check_period: 2_000,
        warmup: 0,
        aleak_live_threshold: 10,
        sleak_stable_threshold: 2_000,
        report_after: 300_000,
        prune_cooldown: 50_000,
        ..LeakConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Soundness of the freed-object rule: an object that is eventually
    /// freed is NEVER reported as a leak, no matter how long it lived or
    /// how suspicious it looked in between.
    #[test]
    fn prop_freed_objects_never_reported(
        lifetimes in proptest::collection::vec(1_000u64..500_000, 4..24),
    ) {
        let mut os = Os::with_defaults(1 << 23);
        os.register_ecc_fault_handler();
        let mut det = LeakDetector::new(quick_leak_config(), 64);
        let stack = CallStack::new(&[0x1]);

        // Objects with wildly varying lifetimes, all eventually freed.
        let mut live: Vec<(u64, u64)> = Vec::new(); // (addr, free_at)
        for (i, &lifetime) in lifetimes.iter().enumerate() {
            let addr = safemem_os::HEAP_BASE + (i as u64) * 128;
            det.on_alloc(&mut os, addr, 64, &stack);
            live.push((addr, os.cpu_cycles() + lifetime));
        }
        // March time forward, freeing on schedule.
        let mut remaining = live;
        while !remaining.is_empty() {
            os.compute(10_000);
            let now = os.cpu_cycles();
            let (due, rest): (Vec<_>, Vec<_>) = remaining.into_iter().partition(|&(_, t)| t <= now);
            for (addr, _) in due {
                det.on_free(&mut os, addr);
            }
            remaining = rest;
        }
        os.compute(1_000_000);
        det.finish(&mut os);
        prop_assert!(
            det.reports().is_empty(),
            "freed objects misreported: {:?}",
            det.reports()
        );
    }

    /// Soundness of pruning: an object that is touched at least once per
    /// interval shorter than `report_after` is never reported, while a
    /// never-touched immortal object from the same group eventually is.
    #[test]
    fn prop_touched_objects_survive_detection(touch_period in 20u64..60) {
        let mut os = Os::with_defaults(1 << 23);
        os.register_ecc_fault_handler();
        let mut det = LeakDetector::new(quick_leak_config(), 64);
        let stack = CallStack::new(&[0x2]);
        let touched = safemem_os::HEAP_BASE;
        let immortal = safemem_os::HEAP_BASE + 128;
        os.vwrite(touched, &[1u8; 64]).unwrap();
        det.on_alloc(&mut os, touched, 64, &stack);
        det.on_alloc(&mut os, immortal, 64, &stack);

        for round in 0..600u64 {
            let addr = safemem_os::HEAP_BASE + 4096 + (round % 32) * 128;
            det.on_alloc(&mut os, addr, 64, &stack);
            os.compute(3_000);
            det.on_free(&mut os, addr);
            if round % touch_period == 0 {
                // The live object is used; a watchpoint hit prunes it.
                let mut buf = [0u8; 8];
                match os.vread(touched, &mut buf) {
                    Ok(()) => {}
                    Err(OsFault::Ecc(user)) => {
                        prop_assert!(det.handle_fault(&mut os, user.region_vaddr));
                        os.vread(touched, &mut buf).expect("clean after prune");
                    }
                    Err(other) => panic!("unexpected fault {other:?}"),
                }
            }
        }
        det.finish(&mut os);
        let reported: Vec<u64> = det
            .reports()
            .iter()
            .filter_map(|r| match r {
                BugReport::Leak { addr, .. } => Some(*addr),
                _ => None,
            })
            .collect();
        prop_assert!(!reported.contains(&touched), "live object misreported");
        prop_assert!(reported.contains(&immortal), "immortal object missed: {reported:?}");
    }

    /// Corruption detector completeness + soundness over random in-bounds /
    /// out-of-bounds accesses: a report appears iff the access left the
    /// line-rounded payload.
    #[test]
    fn prop_corruption_iff_out_of_bounds(
        size in 1u64..1500,
        offsets in proptest::collection::vec(0u64..2000, 1..16),
    ) {
        let mut os = Os::with_defaults(1 << 23);
        os.register_ecc_fault_handler();
        let mut heap = Heap::new(LayoutPolicy::LinePadded);
        let mut det = CorruptionDetector::new(CorruptionConfig::default(), 64);
        let a = heap.alloc(&mut os, size).unwrap();
        det.on_alloc(&mut os, &a);
        let rounded = size.div_ceil(64) * 64;

        let mut expected_reports = 0usize;
        let mut disarmed_front = false;
        let mut disarmed_back = false;
        for &off in &offsets {
            let addr = a.addr + off;
            let out_back = off >= rounded && off < rounded + 64;
            match os.vwrite(addr, &[1]) {
                Ok(()) => {
                    // In bounds, or a pad already disarmed by an earlier hit.
                    prop_assert!(
                        off < rounded || (out_back && disarmed_back) || off >= rounded + 64,
                        "unexpected clean store at offset {off} (size {size})"
                    );
                }
                Err(OsFault::Ecc(user)) => {
                    prop_assert!(det.handle_fault(&mut os, &user), "unowned fault");
                    expected_reports += 1;
                    if out_back {
                        disarmed_back = true;
                    } else {
                        disarmed_front = true;
                    }
                    os.vwrite(addr, &[1]).expect("clean after report");
                }
                Err(other) => panic!("unexpected fault {other:?}"),
            }
        }
        let _ = disarmed_front;
        prop_assert_eq!(det.reports().len(), expected_reports);
        prop_assert!(det.reports().iter().all(|r| r.is_corruption()));
    }

    /// SafeMem's allocator behaviour matches the baseline bit-for-bit: the
    /// same program stores and reloads identical data under both tools.
    #[test]
    fn prop_safemem_and_baseline_agree_on_data(
        writes in proptest::collection::vec((1u64..500, any::<u8>()), 1..20),
    ) {
        let run = |tool: &mut dyn MemTool| {
            let mut os = Os::with_defaults(1 << 23);
            let stack = CallStack::new(&[0x3]);
            let mut out = Vec::new();
            for &(size, fill) in &writes {
                let addr = tool.malloc(&mut os, size, &stack);
                tool.write(&mut os, addr, &vec![fill; size as usize]);
                let mut buf = vec![0u8; size as usize];
                tool.read(&mut os, addr, &mut buf);
                out.push(buf);
            }
            out
        };
        let mut os_tmp = Os::with_defaults(1 << 20);
        let mut safemem = SafeMem::builder().build(&mut os_tmp);
        let mut baseline = safemem_core::NullTool::new();
        prop_assert_eq!(run(&mut safemem), run(&mut baseline));
    }
}
