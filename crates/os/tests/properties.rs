//! Property tests for the OS layer: watch/unwatch/access sequences against
//! a reference model, paging transparency, and protection enforcement.

use proptest::prelude::*;
use safemem_os::{Os, OsConfig, OsFault, Prot, SwapPolicy, HEAP_BASE, PAGE_BYTES};
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone)]
enum Op {
    Write { slot: u64, fill: u8 },
    Read { slot: u64 },
    Watch { slot: u64 },
    Unwatch { slot: u64 },
}

const SLOTS: u64 = 48;

fn slot_addr(slot: u64) -> u64 {
    HEAP_BASE + slot * 64
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0..SLOTS), any::<u8>()).prop_map(|(slot, fill)| Op::Write { slot, fill }),
        (0..SLOTS).prop_map(|slot| Op::Read { slot }),
        (0..SLOTS).prop_map(|slot| Op::Watch { slot }),
        (0..SLOTS).prop_map(|slot| Op::Unwatch { slot }),
    ]
}

/// Runs a random op sequence under a given OS configuration, maintaining a
/// reference model: contents per slot and the watched set. Invariants:
/// an access to a watched slot faults with the right region and a valid
/// signature; after handling it (unwatch), the retried access sees exactly
/// the reference contents; unwatched slots never fault.
fn check(os: &mut Os, ops: &[Op]) {
    os.register_ecc_fault_handler();
    let mut contents: HashMap<u64, u8> = HashMap::new();
    let mut watched: HashSet<u64> = HashSet::new();

    for op in ops {
        match *op {
            Op::Write { slot, fill } => {
                let addr = slot_addr(slot);
                match os.vwrite(addr, &[fill; 64]) {
                    Ok(()) => {
                        assert!(!watched.contains(&slot), "watched write must fault first");
                        contents.insert(slot, fill);
                    }
                    Err(OsFault::Ecc(user)) => {
                        assert!(watched.contains(&slot));
                        assert!(user.signature_ok);
                        assert_eq!(user.region_vaddr, addr);
                        os.disable_watch_memory(addr).expect("watched");
                        watched.remove(&slot);
                        os.vwrite(addr, &[fill; 64]).expect("retry clean");
                        contents.insert(slot, fill);
                    }
                    Err(other) => panic!("unexpected fault: {other:?}"),
                }
            }
            Op::Read { slot } => {
                let addr = slot_addr(slot);
                let mut buf = [0u8; 64];
                match os.vread(addr, &mut buf) {
                    Ok(()) => {
                        assert!(!watched.contains(&slot), "watched read must fault first");
                        let expected = contents.get(&slot).copied().unwrap_or(0);
                        assert_eq!(buf, [expected; 64], "slot {slot}");
                    }
                    Err(OsFault::Ecc(user)) => {
                        assert!(watched.contains(&slot));
                        assert!(user.signature_ok);
                        os.disable_watch_memory(addr).expect("watched");
                        watched.remove(&slot);
                        os.vread(addr, &mut buf).expect("retry clean");
                        let expected = contents.get(&slot).copied().unwrap_or(0);
                        assert_eq!(buf, [expected; 64], "slot {slot} after unwatch");
                    }
                    Err(other) => panic!("unexpected fault: {other:?}"),
                }
            }
            Op::Watch { slot } => {
                let addr = slot_addr(slot);
                if watched.contains(&slot) {
                    assert!(os.watch_memory(addr, 64).is_err(), "double watch rejected");
                } else if os.watch_memory(addr, 64).is_ok() {
                    watched.insert(slot);
                }
            }
            Op::Unwatch { slot } => {
                let addr = slot_addr(slot);
                if watched.remove(&slot) {
                    os.disable_watch_memory(addr).expect("was watched");
                } else {
                    assert!(os.disable_watch_memory(addr).is_err());
                }
            }
        }
    }

    // Teardown: unwatch everything, verify all contents.
    for slot in watched {
        os.disable_watch_memory(slot_addr(slot)).expect("watched");
    }
    for (slot, fill) in contents {
        let mut buf = [0u8; 64];
        os.vread(slot_addr(slot), &mut buf)
            .expect("clean after teardown");
        assert_eq!(buf, [fill; 64]);
    }
    assert_eq!(os.watched_region_count(), 0);
    assert_eq!(
        os.stats().hardware_panics,
        0,
        "no kernel panics in a clean run"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The watchpoint state machine is correct under arbitrary interleaving
    /// of watches, unwatches, reads and writes (pinning policy).
    #[test]
    fn prop_watch_state_machine(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut os = Os::with_defaults(1 << 22);
        check(&mut os, &ops);
    }

    /// Same invariants with the swap-aware policy under real paging
    /// pressure (physical memory smaller than the working set).
    #[test]
    fn prop_watch_state_machine_swap_aware(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut os = Os::new(OsConfig {
            // The slots live on one page; add pressure from elsewhere.
            phys_bytes: 8 * PAGE_BYTES,
            swap_policy: SwapPolicy::SwapAware,
            ..OsConfig::default()
        });
        os.register_ecc_fault_handler();
        // Interleave background traffic to force evictions.
        for i in 0..16u64 {
            os.vwrite(HEAP_BASE + (i + 8) * PAGE_BYTES, &[i as u8; 32]).unwrap();
        }
        check(&mut os, &ops);
    }

    /// mprotect is enforced exactly: reads/writes conform to the protection
    /// of the page they land on, for arbitrary protection layouts.
    #[test]
    fn prop_mprotect_enforced(
        prots in proptest::collection::vec(0u8..3, 8),
        accesses in proptest::collection::vec(((0u64..8), any::<bool>()), 1..40),
    ) {
        let mut os = Os::with_defaults(1 << 22);
        let to_prot = |p: u8| match p {
            0 => Prot::NONE,
            1 => Prot::READ,
            _ => Prot::READ_WRITE,
        };
        for (i, &p) in prots.iter().enumerate() {
            os.mprotect(HEAP_BASE + i as u64 * PAGE_BYTES, PAGE_BYTES, to_prot(p)).unwrap();
        }
        for (page, is_write) in accesses {
            let addr = HEAP_BASE + page * PAGE_BYTES + 128;
            let prot = to_prot(prots[page as usize]);
            let result = if is_write {
                os.vwrite(addr, &[1])
            } else {
                os.vread(addr, &mut [0u8; 1])
            };
            let allowed = if is_write { prot.write } else { prot.read };
            prop_assert_eq!(result.is_ok(), allowed, "page {} write={}", page, is_write);
        }
    }
}
