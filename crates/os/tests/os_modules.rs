//! Integration coverage for the OS crate's support modules — `procfs`
//! rendering, `vm` paging/statistics, and the `watch` registry — driven
//! through the public `Os` API the way the detectors and the fleet
//! scheduler consume them.

use safemem_os::procfs;
use safemem_os::{
    Os, OsConfig, OsFault, SwapPolicy, UserEccFault, WatchRegistry, WatchedLine, HEAP_BASE,
    PAGE_BYTES,
};

fn os_with(phys_bytes: u64) -> Os {
    let mut os = Os::with_defaults(phys_bytes);
    os.register_ecc_fault_handler();
    os
}

#[test]
fn procfs_meminfo_tracks_paging() {
    let mut os = os_with(1 << 22);
    os.vwrite(HEAP_BASE, &[1u8; 3 * PAGE_BYTES as usize])
        .unwrap();
    let info = procfs::meminfo(&os);
    assert!(info.contains("MemTotal:"), "{info}");
    assert!(os.vm().stats().resident_pages >= 3);
    assert!(os.vm().stats().page_faults >= 3);
    // The rendered counters are the VM's counters.
    assert!(
        info.contains(&format!("{}", os.vm().stats().page_faults)),
        "{info}"
    );
}

#[test]
fn procfs_watchlist_is_sorted_by_address() {
    let mut os = os_with(1 << 22);
    // Insert out of address order; the listing must come back sorted.
    os.watch_memory(HEAP_BASE + 4096, 64).unwrap();
    os.watch_memory(HEAP_BASE, 128).unwrap();
    let list = procfs::watchlist(&os);
    assert!(list.contains("2 watched region(s), 3 line(s)"), "{list}");
    let low = list.find(&format!("{HEAP_BASE:#012x} +128")).unwrap();
    let high = list
        .find(&format!("{:#012x} +64", HEAP_BASE + 4096))
        .unwrap();
    assert!(low < high, "regions listed in address order:\n{list}");
}

#[test]
fn procfs_eccinfo_reflects_controller_and_kernel_counters() {
    let mut os = os_with(1 << 22);
    os.vwrite(HEAP_BASE, &[9u8; 64]).unwrap();
    let phys = os.vm().translate_resident(HEAP_BASE).unwrap();
    os.machine_mut().flush_range(phys, 64);
    os.machine_mut().controller_mut().inject_data_error(phys, 4);
    os.vread(HEAP_BASE, &mut [0u8; 64]).unwrap();

    os.watch_memory(HEAP_BASE + PAGE_BYTES, 64).unwrap();
    let _ = os.vread(HEAP_BASE + PAGE_BYTES, &mut [0u8; 1]);

    let info = procfs::eccinfo(&os);
    assert!(info.contains("Mode:              CorrectError"), "{info}");
    assert!(
        os.machine().controller().stats().corrected_single_bit >= 1,
        "{info}"
    );
    assert!(info.contains("WatchCalls:"), "{info}");
    assert_eq!(os.stats().watch_calls, 1);
    assert_eq!(os.stats().ecc_faults_delivered, 1);
    assert_eq!(os.stats().hardware_panics, 0);
}

#[test]
fn procfs_timeinfo_separates_cpu_from_wall() {
    let mut os = os_with(1 << 22);
    os.compute(50_000);
    os.io_wait_ns(2_000_000);
    let info = procfs::timeinfo(&os);
    assert!(info.contains("TotalCycles:"), "{info}");
    assert!(info.contains(&format!("{}", os.cpu_cycles())), "{info}");
    assert!(os.total_cycles() > os.cpu_cycles(), "I/O wait excluded");
    // The full snapshot stitches all four sections together.
    let snap = procfs::snapshot(&os);
    for section in [
        "--- meminfo ---",
        "--- watchpoints ---",
        "--- ecc ---",
        "--- time ---",
    ] {
        assert!(snap.contains(section), "{snap}");
    }
}

#[test]
fn vm_swaps_under_pressure_and_counts_it() {
    // Eight physical pages and a working set far larger: the VM must evict
    // to swap and fault pages back in, and the stats must say so.
    let mut os = Os::new(OsConfig {
        phys_bytes: 8 * PAGE_BYTES,
        swap_policy: SwapPolicy::SwapAware,
        ..OsConfig::default()
    });
    os.register_ecc_fault_handler();
    for i in 0..24u64 {
        os.vwrite(HEAP_BASE + i * PAGE_BYTES, &[i as u8; 64])
            .unwrap();
    }
    assert!(os.vm().stats().swap_outs > 0, "{:?}", os.vm().stats());
    assert!(!os.vm().is_resident(HEAP_BASE), "first page evicted");

    // Faulting the first page back preserves its contents and counts a
    // swap-in; the charged I/O wait stays out of CPU time.
    let cpu_before = os.cpu_cycles();
    let mut buf = [0u8; 64];
    os.vread(HEAP_BASE, &mut buf).unwrap();
    assert_eq!(buf, [0u8; 64]);
    assert!(os.vm().stats().swap_ins > 0);
    assert!(os.vm().is_resident(HEAP_BASE));
    assert!(
        os.total_cycles() - os.cpu_cycles() > 0,
        "swap-in I/O excluded from CPU time (before: {cpu_before})"
    );
}

#[test]
fn vm_translate_resident_never_faults_pages_in() {
    let os = os_with(1 << 22);
    assert_eq!(os.vm().translate_resident(HEAP_BASE), None);
    assert!(!os.vm().is_resident(HEAP_BASE));
}

#[test]
fn watch_registry_bookkeeping() {
    let mut reg = WatchRegistry::new();
    reg.insert_region(HEAP_BASE, 128);
    reg.insert_line(WatchedLine {
        region_vaddr: HEAP_BASE,
        vline: HEAP_BASE,
        phys_line: Some(0x1000),
        original: vec![0xAA; 64],
        codes: None,
    });
    reg.insert_line(WatchedLine {
        region_vaddr: HEAP_BASE,
        vline: HEAP_BASE + 64,
        phys_line: Some(0x1040),
        original: vec![0xBB; 64],
        codes: None,
    });

    assert_eq!(reg.region_count(), 1);
    assert_eq!(reg.line_count(), 2);
    assert_eq!(reg.region_at(HEAP_BASE), Some(128));
    assert_eq!(
        reg.region_containing(HEAP_BASE + 100),
        Some((HEAP_BASE, 128))
    );
    assert_eq!(reg.overlapping_region(HEAP_BASE + 64, 64), Some(HEAP_BASE));
    assert_eq!(reg.overlapping_region(HEAP_BASE + 128, 64), None);
    assert_eq!(reg.line_by_phys(0x1040).unwrap().vline, HEAP_BASE + 64);

    // Swap-aware retirement: evicting the page clears the physical
    // placement; the line stays registered by virtual address.
    let vpn = HEAP_BASE / PAGE_BYTES;
    let in_page = reg.vlines_in_page(vpn, PAGE_BYTES);
    assert_eq!(in_page.len(), 2);
    for vline in in_page {
        reg.set_line_phys(vline, None);
    }
    assert!(reg.line_by_phys(0x1000).is_none());
    assert!(reg.line_by_vaddr(HEAP_BASE).unwrap().phys_line.is_none());
    assert_eq!(reg.lines().count(), 2);

    let (size, lines) = reg.remove_region(HEAP_BASE).unwrap();
    assert_eq!(size, 128);
    assert_eq!(lines.len(), 2);
    assert_eq!(reg.region_count(), 0);
    assert_eq!(reg.line_count(), 0);
}

#[test]
fn watch_faults_report_the_exact_access_address() {
    // The registry's line lookup feeds fault classification: the reported
    // access address must be the faulting byte's virtual address even deep
    // inside a multi-line region.
    let mut os = os_with(1 << 22);
    os.vwrite(HEAP_BASE, &[1u8; 256]).unwrap();
    os.watch_memory(HEAP_BASE, 256).unwrap();
    let fault = os.vread(HEAP_BASE + 200, &mut [0u8; 1]).unwrap_err();
    let OsFault::Ecc(UserEccFault {
        region_vaddr,
        line_vaddr,
        access_vaddr,
        ..
    }) = fault
    else {
        panic!("expected ECC fault, got {fault:?}")
    };
    assert_eq!(region_vaddr, HEAP_BASE);
    assert_eq!(line_vaddr, HEAP_BASE + 192, "line 3 of 4");
    assert_eq!(access_vaddr, HEAP_BASE + 192, "group holding byte 200");
}
