//! Conformance suite for the machine/OS boundary: the OS stack must behave
//! identically over a [`Machine`] it owns outright and over a
//! [`SlotBackend`] window onto a shared machine — same bytes, same fault
//! classifications, same counters, same charged CPU time. The one
//! deliberate divergence is the clock: a slot reports a per-process
//! virtual clock that skips time other processes spent on the shared
//! hardware, which the isolation tests pin.

use safemem_machine::{Machine, SlotBackend};
use safemem_os::{AccessKind, Os, OsConfig, OsFault, Prot, HEAP_BASE, PAGE_BYTES};

const PHYS: u64 = 1 << 22;

fn machine_backed() -> Os {
    let mut os = Os::with_defaults(PHYS);
    os.register_ecc_fault_handler();
    os
}

/// An `Os` over a slot with a fresh shared machine installed for the whole
/// run — observably a single-process machine, which is exactly the claim.
fn slot_backed() -> Os {
    let machine = Machine::with_defaults(PHYS);
    let mut slot = SlotBackend::vacant(machine.clock().hz());
    slot.install(machine);
    let mut os = Os::with_backend(
        Box::new(slot),
        OsConfig {
            phys_bytes: PHYS,
            ..OsConfig::default()
        },
    );
    os.register_ecc_fault_handler();
    os
}

/// Drives one OS instance through the shared script and records every
/// observable outcome as text. Conformance = identical transcripts.
fn transcript(os: &mut Os) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();

    // Plain paged read/write, crossing a page boundary.
    let data: Vec<u8> = (0..300u32).map(|i| (i % 251) as u8).collect();
    os.vwrite(HEAP_BASE + PAGE_BYTES - 100, &data).unwrap();
    let mut buf = vec![0u8; data.len()];
    os.vread(HEAP_BASE + PAGE_BYTES - 100, &mut buf).unwrap();
    let _ = writeln!(out, "roundtrip_ok={}", buf == data);

    // Watch → access fault → unwatch → restored data.
    os.vwrite(HEAP_BASE, &[0xAB; 128]).unwrap();
    os.watch_memory(HEAP_BASE, 128).unwrap();
    let fault = os.vread(HEAP_BASE + 70, &mut [0u8; 4]).unwrap_err();
    let _ = writeln!(out, "watch_fault={fault:?}");
    os.disable_watch_memory(HEAP_BASE).unwrap();
    let mut restored = [0u8; 128];
    os.vread(HEAP_BASE, &mut restored).unwrap();
    let _ = writeln!(out, "restored_ok={}", restored == [0xAB; 128]);

    // mprotect enforcement.
    let page = (HEAP_BASE + 4 * PAGE_BYTES) & !(PAGE_BYTES - 1);
    os.vwrite(page, &[7]).unwrap();
    os.mprotect(page, PAGE_BYTES, Prot::READ).unwrap();
    let denied = os.vwrite(page, &[8]).unwrap_err();
    let _ = writeln!(out, "mprotect_denied={denied:?}");
    os.mprotect(page, PAGE_BYTES, Prot::READ_WRITE).unwrap();

    // A corrected single-bit hardware error stays invisible.
    let phys = os.vm().translate_resident(page).unwrap();
    os.machine_mut().flush_range(phys, 64);
    os.machine_mut().controller_mut().inject_data_error(phys, 3);
    let mut b = [0u8; 1];
    os.vread(page, &mut b).unwrap();
    let _ = writeln!(out, "corrected_read={b:?}");

    // Scrub coordination under the scrubbing mode.
    os.machine_mut()
        .controller_mut()
        .set_mode(safemem_ecc::EccMode::CorrectAndScrub);
    os.run_scrub_cycle();

    // CPU accounting: compute charged, I/O wait excluded.
    os.compute(10_000);
    os.io_wait_ns(1_000_000);

    let _ = writeln!(out, "stats={:?}", os.stats());
    let _ = writeln!(out, "vm={:?}", os.vm().stats());
    let _ = writeln!(out, "ecc={:?}", os.machine().controller().stats());
    let _ = writeln!(out, "cpu_cycles={}", os.cpu_cycles());
    let _ = writeln!(out, "total_cycles={}", os.total_cycles());
    out.push_str(&safemem_os::procfs::snapshot(os));
    out
}

#[test]
fn both_backends_produce_identical_transcripts() {
    let mut owned = machine_backed();
    let mut shared = slot_backed();
    let a = transcript(&mut owned);
    let b = transcript(&mut shared);
    assert_eq!(a, b, "the slot backend must be observably a machine");
    assert!(a.contains("roundtrip_ok=true"), "{a}");
    assert!(a.contains("restored_ok=true"), "{a}");
    assert!(a.contains("signature_ok: true"), "{a}");
}

#[test]
fn slot_clock_skips_foreign_machine_time() {
    // Time another process spent on the shared machine before this
    // process's turn must not appear in this process's CPU accounting.
    let mut machine = Machine::with_defaults(PHYS);
    machine.compute(123_456);
    let mut slot = SlotBackend::vacant(machine.clock().hz());
    slot.install(machine);
    let mut os = Os::with_backend(
        Box::new(slot),
        OsConfig {
            phys_bytes: PHYS,
            ..OsConfig::default()
        },
    );
    assert_eq!(os.total_cycles(), 0, "foreign time skipped");
    os.compute(500);
    assert_eq!(os.cpu_cycles(), 500);

    // A scheduler turn for someone else: take the machine out through the
    // downcast hook, advance it, give it back. Still invisible here.
    let backend = os
        .machine_mut()
        .as_any_mut()
        .downcast_mut::<SlotBackend>()
        .expect("slot-backed OS");
    let mut machine = backend.take();
    machine.compute(999_999);
    let backend = os
        .machine_mut()
        .as_any_mut()
        .downcast_mut::<SlotBackend>()
        .expect("slot-backed OS");
    backend.install(machine);
    assert_eq!(os.cpu_cycles(), 500, "other turns never accrue");
    os.compute(250);
    assert_eq!(os.cpu_cycles(), 750);
}

#[test]
fn backends_downcast_to_their_substrate() {
    let owned = machine_backed();
    assert!(owned.machine().as_any().downcast_ref::<Machine>().is_some());
    assert!(owned
        .machine()
        .as_any()
        .downcast_ref::<SlotBackend>()
        .is_none());

    let shared = slot_backed();
    assert!(shared
        .machine()
        .as_any()
        .downcast_ref::<SlotBackend>()
        .is_some());
    assert!(shared
        .machine()
        .as_any()
        .downcast_ref::<Machine>()
        .is_none());
}

#[test]
fn watchpoints_fire_identically_through_a_shared_window() {
    // The fleet-critical path: an armed line behind the slot backend
    // faults with a valid signature, and a genuine multi-bit error on the
    // same line fails the signature — hardware attribution survives the
    // backend boundary.
    let mut os = slot_backed();
    os.vwrite(HEAP_BASE, &[5; 64]).unwrap();
    os.watch_memory(HEAP_BASE, 64).unwrap();
    let phys = os.vm().translate_resident(HEAP_BASE).unwrap();
    os.machine_mut()
        .controller_mut()
        .inject_multi_bit_error(phys);
    let fault = os.vread(HEAP_BASE, &mut [0u8; 8]).unwrap_err();
    let OsFault::Ecc(user) = fault else {
        panic!("expected a routed fault, got {fault:?}")
    };
    assert!(!user.signature_ok, "classified as hardware error");
    assert_eq!(user.access, AccessKind::Read);
}
