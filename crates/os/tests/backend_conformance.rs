//! Conformance suite for the machine/OS boundary: the OS stack must behave
//! identically over a [`Machine`] it owns outright and over a
//! [`SlotBackend`] window onto a shared machine — same bytes, same fault
//! classifications, same counters, same charged CPU time. The one
//! deliberate divergence is the clock: a slot reports a per-process
//! virtual clock that skips time other processes spent on the shared
//! hardware, which the isolation tests pin.

use safemem_machine::{Machine, SlotBackend};
use safemem_os::{AccessKind, Os, OsConfig, OsFault, Prot, HEAP_BASE, PAGE_BYTES};

const PHYS: u64 = 1 << 22;

fn machine_backed() -> Os {
    let mut os = Os::with_defaults(PHYS);
    os.register_ecc_fault_handler();
    os
}

/// An `Os` over a slot with a fresh shared machine installed for the whole
/// run — observably a single-process machine, which is exactly the claim.
fn slot_backed() -> Os {
    let machine = Machine::with_defaults(PHYS);
    let mut slot = SlotBackend::vacant(machine.clock().hz());
    slot.install(machine);
    let mut os = Os::with_backend(
        Box::new(slot),
        OsConfig {
            phys_bytes: PHYS,
            ..OsConfig::default()
        },
    );
    os.register_ecc_fault_handler();
    os
}

/// Drives one OS instance through the shared script and records every
/// observable outcome as text. Conformance = identical transcripts.
fn transcript(os: &mut Os) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();

    // Plain paged read/write, crossing a page boundary.
    let data: Vec<u8> = (0..300u32).map(|i| (i % 251) as u8).collect();
    os.vwrite(HEAP_BASE + PAGE_BYTES - 100, &data).unwrap();
    let mut buf = vec![0u8; data.len()];
    os.vread(HEAP_BASE + PAGE_BYTES - 100, &mut buf).unwrap();
    let _ = writeln!(out, "roundtrip_ok={}", buf == data);

    // Watch → access fault → unwatch → restored data.
    os.vwrite(HEAP_BASE, &[0xAB; 128]).unwrap();
    os.watch_memory(HEAP_BASE, 128).unwrap();
    let fault = os.vread(HEAP_BASE + 70, &mut [0u8; 4]).unwrap_err();
    let _ = writeln!(out, "watch_fault={fault:?}");
    os.disable_watch_memory(HEAP_BASE).unwrap();
    let mut restored = [0u8; 128];
    os.vread(HEAP_BASE, &mut restored).unwrap();
    let _ = writeln!(out, "restored_ok={}", restored == [0xAB; 128]);

    // mprotect enforcement.
    let page = (HEAP_BASE + 4 * PAGE_BYTES) & !(PAGE_BYTES - 1);
    os.vwrite(page, &[7]).unwrap();
    os.mprotect(page, PAGE_BYTES, Prot::READ).unwrap();
    let denied = os.vwrite(page, &[8]).unwrap_err();
    let _ = writeln!(out, "mprotect_denied={denied:?}");
    os.mprotect(page, PAGE_BYTES, Prot::READ_WRITE).unwrap();

    // A corrected single-bit hardware error stays invisible.
    let phys = os.vm().translate_resident(page).unwrap();
    os.machine_mut().flush_range(phys, 64);
    os.machine_mut().controller_mut().inject_data_error(phys, 3);
    let mut b = [0u8; 1];
    os.vread(page, &mut b).unwrap();
    let _ = writeln!(out, "corrected_read={b:?}");

    // Scrub coordination under the scrubbing mode.
    os.machine_mut()
        .controller_mut()
        .set_mode(safemem_ecc::EccMode::CorrectAndScrub);
    os.run_scrub_cycle();

    // CPU accounting: compute charged, I/O wait excluded.
    os.compute(10_000);
    os.io_wait_ns(1_000_000);

    let _ = writeln!(out, "stats={:?}", os.stats());
    let _ = writeln!(out, "vm={:?}", os.vm().stats());
    let _ = writeln!(out, "ecc={:?}", os.machine().controller().stats());
    let _ = writeln!(out, "cpu_cycles={}", os.cpu_cycles());
    let _ = writeln!(out, "total_cycles={}", os.total_cycles());
    out.push_str(&safemem_os::procfs::snapshot(os));
    out
}

#[test]
fn both_backends_produce_identical_transcripts() {
    let mut owned = machine_backed();
    let mut shared = slot_backed();
    let a = transcript(&mut owned);
    let b = transcript(&mut shared);
    assert_eq!(a, b, "the slot backend must be observably a machine");
    assert!(a.contains("roundtrip_ok=true"), "{a}");
    assert!(a.contains("restored_ok=true"), "{a}");
    assert!(a.contains("signature_ok: true"), "{a}");
}

#[test]
fn slot_clock_skips_foreign_machine_time() {
    // Time another process spent on the shared machine before this
    // process's turn must not appear in this process's CPU accounting.
    let mut machine = Machine::with_defaults(PHYS);
    machine.compute(123_456);
    let mut slot = SlotBackend::vacant(machine.clock().hz());
    slot.install(machine);
    let mut os = Os::with_backend(
        Box::new(slot),
        OsConfig {
            phys_bytes: PHYS,
            ..OsConfig::default()
        },
    );
    assert_eq!(os.total_cycles(), 0, "foreign time skipped");
    os.compute(500);
    assert_eq!(os.cpu_cycles(), 500);

    // A scheduler turn for someone else: take the machine out through the
    // downcast hook, advance it, give it back. Still invisible here.
    let backend = os
        .machine_mut()
        .as_any_mut()
        .downcast_mut::<SlotBackend>()
        .expect("slot-backed OS");
    let mut machine = backend.take();
    machine.compute(999_999);
    let backend = os
        .machine_mut()
        .as_any_mut()
        .downcast_mut::<SlotBackend>()
        .expect("slot-backed OS");
    backend.install(machine);
    assert_eq!(os.cpu_cycles(), 500, "other turns never accrue");
    os.compute(250);
    assert_eq!(os.cpu_cycles(), 750);
}

#[test]
fn backends_downcast_to_their_substrate() {
    let owned = machine_backed();
    assert!(owned.machine().as_any().downcast_ref::<Machine>().is_some());
    assert!(owned
        .machine()
        .as_any()
        .downcast_ref::<SlotBackend>()
        .is_none());

    let shared = slot_backed();
    assert!(shared
        .machine()
        .as_any()
        .downcast_ref::<SlotBackend>()
        .is_some());
    assert!(shared
        .machine()
        .as_any()
        .downcast_ref::<Machine>()
        .is_none());
}

/// One scheduler turn with the fleet's discipline: install the shared
/// machine into the process's slot, run the ops, take the machine back and
/// flush the caches. The flush is the determinism barrier — every turn
/// starts from an empty cache, so a process's hit/miss behaviour cannot
/// depend on what its co-residents touched.
fn fleet_turn<R>(machine: &mut Option<Machine>, os: &mut Os, f: impl FnOnce(&mut Os) -> R) -> R {
    let backend = os
        .machine_mut()
        .as_any_mut()
        .downcast_mut::<SlotBackend>()
        .expect("slot-backed OS");
    backend.install(machine.take().expect("machine parked"));
    let result = f(os);
    let backend = os
        .machine_mut()
        .as_any_mut()
        .downcast_mut::<SlotBackend>()
        .expect("slot-backed OS");
    let mut m = backend.take();
    m.flush_all_caches();
    *machine = Some(m);
    result
}

/// Runs a fixed per-turn script for a "subject" process that shares its
/// machine with `neighbors` churning co-residents, and returns the
/// subject's observable transcript. The subject owns the *last* frame
/// window, so with neighbors present its physical base moves too — the
/// transcript must not care.
fn co_resident_transcript(neighbors: u64) -> String {
    use std::fmt::Write as _;
    const WINDOW: u64 = 32 * PAGE_BYTES;
    let shared = Machine::with_defaults(WINDOW * (neighbors + 1));
    let hz = shared.clock().hz();
    let mut machine = Some(shared);
    let boot = |phys_base: u64| {
        let mut os = Os::with_backend(
            Box::new(SlotBackend::vacant(hz)),
            OsConfig {
                phys_bytes: WINDOW,
                phys_base,
                ..OsConfig::default()
            },
        );
        os.register_ecc_fault_handler();
        os
    };
    let mut others: Vec<Os> = (0..neighbors).map(|i| boot(i * WINDOW)).collect();
    let mut subject = boot(neighbors * WINDOW);

    let mut out = String::new();
    for round in 0..6u64 {
        // Co-residents churn their own windows between the subject's turns.
        for (i, os) in others.iter_mut().enumerate() {
            fleet_turn(&mut machine, os, |os| {
                let addr = HEAP_BASE + ((round + i as u64) % 4) * PAGE_BYTES;
                os.vwrite(addr, &[round as u8; 256]).unwrap();
                let mut buf = [0u8; 256];
                os.vread(addr, &mut buf).unwrap();
                os.compute(1_000);
            });
        }
        // The subject's deterministic script, observables recorded.
        fleet_turn(&mut machine, &mut subject, |os| {
            let addr = HEAP_BASE + (round % 3) * PAGE_BYTES;
            os.vwrite(addr, &[0xC5; 192]).unwrap();
            let mut buf = [0u8; 192];
            os.vread(addr, &mut buf).unwrap();
            let _ = writeln!(out, "r{round} roundtrip_ok={}", buf == [0xC5; 192]);
            if round == 2 {
                os.watch_memory(addr, 64).unwrap();
                let fault = os.vread(addr, &mut [0u8; 4]).unwrap_err();
                let _ = writeln!(out, "r{round} watch_fault={fault:?}");
                os.disable_watch_memory(addr).unwrap();
            }
            os.compute(500);
            let _ = writeln!(
                out,
                "r{round} cpu={} vm={:?}",
                os.cpu_cycles(),
                os.vm().stats()
            );
        });
    }
    fleet_turn(&mut machine, &mut subject, |os| {
        let _ = writeln!(out, "final stats={:?}", os.stats());
        let _ = writeln!(out, "final cpu_cycles={}", os.cpu_cycles());
    });
    out
}

#[test]
fn transcript_is_byte_identical_whatever_the_shard_holds() {
    // The shard-composition contract at the backend level: a process's
    // whole observable behaviour — data, faults, counters, charged cycles —
    // is the same whether its shard's machine holds it alone or packs it
    // behind three churning co-residents (at a different physical base, on
    // a machine three windows larger).
    let alone = co_resident_transcript(0);
    let crowded = co_resident_transcript(3);
    assert!(alone.contains("roundtrip_ok=true"), "{alone}");
    assert!(alone.contains("watch_fault="), "{alone}");
    assert_eq!(
        alone, crowded,
        "co-residents leaked into the process's transcript"
    );
}

#[test]
fn watchpoints_fire_identically_through_a_shared_window() {
    // The fleet-critical path: an armed line behind the slot backend
    // faults with a valid signature, and a genuine multi-bit error on the
    // same line fails the signature — hardware attribution survives the
    // backend boundary.
    let mut os = slot_backed();
    os.vwrite(HEAP_BASE, &[5; 64]).unwrap();
    os.watch_memory(HEAP_BASE, 64).unwrap();
    let phys = os.vm().translate_resident(HEAP_BASE).unwrap();
    os.machine_mut()
        .controller_mut()
        .inject_multi_bit_error(phys);
    let fault = os.vread(HEAP_BASE, &mut [0u8; 8]).unwrap_err();
    let OsFault::Ecc(user) = fault else {
        panic!("expected a routed fault, got {fault:?}")
    };
    assert!(!user.signature_ok, "classified as hardware error");
    assert_eq!(user.access, AccessKind::Read);
}
