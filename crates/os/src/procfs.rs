//! `/proc`-style textual introspection of the simulated kernel.
//!
//! Renders the state a SafeMem operator would want to inspect on a live
//! system: memory/frames/swap, the watchpoint list, time accounting, and
//! the event counters. Consumed by the CLI's `--stats` flag and by tests
//! that assert on kernel state without reaching into private fields.

use crate::Os;
use std::fmt::Write as _;

/// Renders a `/proc/meminfo`-style summary.
#[must_use]
pub fn meminfo(os: &Os) -> String {
    let vm = os.vm().stats();
    let phys = os.machine().controller().size();
    let mut out = String::new();
    let _ = writeln!(out, "MemTotal:       {:>12} B", phys);
    let _ = writeln!(out, "Resident:       {:>12} pages", vm.resident_pages);
    let _ = writeln!(out, "Pinned:         {:>12} pages", vm.pinned_pages);
    let _ = writeln!(out, "PageFaults:     {:>12}", vm.page_faults);
    let _ = writeln!(out, "SwapIns:        {:>12}", vm.swap_ins);
    let _ = writeln!(out, "SwapOuts:       {:>12}", vm.swap_outs);
    out
}

/// Renders the watchpoint table (`/proc/safemem/watch`-style).
#[must_use]
pub fn watchlist(os: &Os) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} watched region(s), {} line(s):",
        os.watched_region_count(),
        os.watched_line_count()
    );
    let mut starts = os.watch_registry_region_starts();
    starts.sort_unstable();
    for start in starts {
        if let Some((vaddr, size)) = os.watched_region_containing(start) {
            let _ = writeln!(out, "  {vaddr:#012x} +{size}");
        }
    }
    out
}

/// Renders the ECC controller counters (`/proc/safemem/ecc`-style).
#[must_use]
pub fn eccinfo(os: &Os) -> String {
    let c = os.machine().controller().stats();
    let s = os.stats();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Mode:              {:?}",
        os.machine().controller().mode()
    );
    let _ = writeln!(out, "GroupsVerified:    {:>12}", c.groups_verified);
    let _ = writeln!(out, "CorrectedSingle:   {:>12}", c.corrected_single_bit);
    let _ = writeln!(out, "Uncorrectable:     {:>12}", c.uncorrectable);
    let _ = writeln!(out, "ScrubbedGroups:    {:>12}", c.scrubbed_groups);
    let _ = writeln!(out, "WatchCalls:        {:>12}", s.watch_calls);
    let _ = writeln!(out, "DisableCalls:      {:>12}", s.disable_calls);
    let _ = writeln!(out, "FaultsDelivered:   {:>12}", s.ecc_faults_delivered);
    let _ = writeln!(out, "KernelPanics:      {:>12}", s.hardware_panics);
    out
}

/// Renders time accounting (`/proc/<pid>/stat`-style).
#[must_use]
pub fn timeinfo(os: &Os) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "TotalCycles:    {:>14}", os.total_cycles());
    let _ = writeln!(out, "CpuCycles:      {:>14}", os.cpu_cycles());
    let _ = writeln!(out, "CpuTime:        {:>11.3} ms", os.cpu_ns() as f64 / 1e6);
    out
}

/// The full snapshot: everything above concatenated.
#[must_use]
pub fn snapshot(os: &Os) -> String {
    format!(
        "--- meminfo ---\n{}--- watchpoints ---\n{}--- ecc ---\n{}--- time ---\n{}",
        meminfo(os),
        watchlist(os),
        eccinfo(os),
        timeinfo(os),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::HEAP_BASE;

    #[test]
    fn snapshot_reflects_kernel_state() {
        let mut os = Os::with_defaults(1 << 22);
        os.register_ecc_fault_handler();
        os.vwrite(HEAP_BASE, &[1u8; 128]).unwrap();
        os.watch_memory(HEAP_BASE, 128).unwrap();
        let snap = snapshot(&os);
        assert!(snap.contains("1 watched region(s), 2 line(s)"), "{snap}");
        assert!(snap.contains(&format!("{HEAP_BASE:#012x} +128")), "{snap}");
        assert!(snap.contains("WatchCalls:"), "{snap}");
        assert!(snap.contains("CpuTime:"), "{snap}");

        os.disable_watch_memory(HEAP_BASE).unwrap();
        let snap = snapshot(&os);
        assert!(snap.contains("0 watched region(s)"), "{snap}");
    }

    #[test]
    fn meminfo_counts_pages() {
        let mut os = Os::with_defaults(1 << 22);
        os.vwrite(HEAP_BASE, &[1u8; 4096 * 3]).unwrap();
        let info = meminfo(&os);
        assert!(info.contains("PageFaults:"), "{info}");
        assert!(os.vm().stats().resident_pages >= 3);
    }
}
