//! Virtual memory: page tables, demand paging, swap, pinning, protection.
//!
//! A single simulated process owns a flat virtual address space backed by
//! physical frames on demand. Pages are replaced LRU; **pinned** pages are
//! never evicted — the mechanism SafeMem uses to keep watched lines at a
//! stable physical address (paper §2.2.2, "Dealing with Page Swapping").

use crate::error::{AccessKind, OsError};
use safemem_hashfx::FxHashMap;
use safemem_machine::MachineBackend;

/// Page size in bytes.
pub const PAGE_BYTES: u64 = 4096;
/// Size of the virtual address space (1 GiB, like the paper platform's RAM).
pub const VA_LIMIT: u64 = 1 << 30;
/// Base of the conventional heap region used by the allocator crate.
pub const HEAP_BASE: u64 = 0x1000_0000;
/// Base of a small static/global region used by workloads for roots.
pub const STATIC_BASE: u64 = 0x0800_0000;

/// Page protection bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Prot {
    /// Loads allowed.
    pub read: bool,
    /// Stores allowed.
    pub write: bool,
}

impl Prot {
    /// No access (guard page).
    pub const NONE: Prot = Prot {
        read: false,
        write: false,
    };
    /// Read-only.
    pub const READ: Prot = Prot {
        read: true,
        write: false,
    };
    /// Read-write (the default).
    pub const READ_WRITE: Prot = Prot {
        read: true,
        write: true,
    };

    /// Whether an access of `kind` is permitted.
    #[must_use]
    pub fn allows(&self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.read,
            AccessKind::Write => self.write,
        }
    }
}

impl Default for Prot {
    fn default() -> Self {
        Prot::READ_WRITE
    }
}

#[derive(Debug, Clone)]
struct PageEntry {
    frame: Option<u64>,
    prot: Prot,
    pinned: u32,
    last_use: u64,
}

impl Default for PageEntry {
    fn default() -> Self {
        PageEntry {
            frame: None,
            prot: Prot::READ_WRITE,
            pinned: 0,
            last_use: 0,
        }
    }
}

/// Virtual-memory statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VmStats {
    /// Demand-zero or swap-in page faults taken.
    pub page_faults: u64,
    /// Pages read back from swap.
    pub swap_ins: u64,
    /// Pages evicted to swap.
    pub swap_outs: u64,
    /// Pages currently pinned.
    pub pinned_pages: u64,
    /// Pages currently resident.
    pub resident_pages: u64,
}

/// What servicing a translation required (drives time/IO accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslateOutcome {
    /// Page was already resident.
    Hit,
    /// A fresh zero page was mapped.
    ZeroFill,
    /// The page was read back from swap (costs I/O wait).
    SwapIn,
}

/// The per-process virtual memory manager.
///
/// All methods that move data take the machine backend explicitly: the VM
/// layer owns mappings and policy, the [`MachineBackend`] owns bytes and
/// time. A VM may manage a *sub-range* of physical memory (see
/// [`VirtualMemory::with_range`]) so many processes can share one machine
/// with disjoint frame windows — no address translation is needed at the
/// backend layer.
#[derive(Debug)]
pub struct VirtualMemory {
    pages: FxHashMap<u64, PageEntry>,
    free_frames: Vec<u64>,
    swap: FxHashMap<u64, Vec<u8>>,
    /// Cap on simultaneously pinned pages (the RLIMIT_MEMLOCK analogue):
    /// pinning everything would leave no frames for ordinary paging.
    max_pinned: u64,
    tick: u64,
    stats: VmStats,
    /// Virtual page numbers evicted since the last [`take_evictions`] call
    /// (consumed by the swap-aware watch extension in the OS layer).
    ///
    /// [`take_evictions`]: VirtualMemory::take_evictions
    pending_evictions: Vec<u64>,
}

impl VirtualMemory {
    /// Creates a VM over a machine with `phys_bytes` of physical memory.
    #[must_use]
    pub fn new(phys_bytes: u64) -> Self {
        Self::with_range(0, phys_bytes)
    }

    /// Creates a VM over the physical window `[phys_base, phys_base +
    /// phys_bytes)` of a (possibly larger, possibly shared) machine. Frames
    /// are handed out from within the window only, so several processes with
    /// disjoint windows can share one machine without interfering.
    ///
    /// # Panics
    ///
    /// Panics if `phys_base` is not page-aligned.
    #[must_use]
    pub fn with_range(phys_base: u64, phys_bytes: u64) -> Self {
        assert!(
            phys_base.is_multiple_of(PAGE_BYTES),
            "phys_base {phys_base:#x} must be page-aligned"
        );
        let frames = phys_bytes / PAGE_BYTES;
        VirtualMemory {
            pages: FxHashMap::default(),
            // Reverse order so low frames are handed out first.
            free_frames: (0..frames)
                .rev()
                .map(|f| phys_base + f * PAGE_BYTES)
                .collect(),
            swap: FxHashMap::default(),
            // Default cap: three quarters of physical memory may be pinned.
            max_pinned: (frames * 3 / 4).max(1),
            tick: 0,
            stats: VmStats::default(),
            pending_evictions: Vec::new(),
        }
    }

    /// Current statistics.
    #[must_use]
    pub fn stats(&self) -> VmStats {
        let mut s = self.stats;
        s.pinned_pages = self.pages.values().filter(|p| p.pinned > 0).count() as u64;
        s.resident_pages = self.pages.values().filter(|p| p.frame.is_some()).count() as u64;
        s
    }

    fn vpn(vaddr: u64) -> u64 {
        vaddr / PAGE_BYTES
    }

    /// Returns the protection of the page containing `vaddr`.
    #[must_use]
    pub fn prot_of(&self, vaddr: u64) -> Prot {
        self.pages
            .get(&Self::vpn(vaddr))
            .map_or(Prot::READ_WRITE, |p| p.prot)
    }

    /// Sets protection on whole pages covering `[vaddr, vaddr + len)` —
    /// the simulated `mprotect`.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::Misaligned`] if `vaddr` is not page-aligned, or
    /// [`OsError::OutOfRange`] if the range leaves the address space.
    pub fn set_prot(&mut self, vaddr: u64, len: u64, prot: Prot) -> Result<(), OsError> {
        if !vaddr.is_multiple_of(PAGE_BYTES) {
            return Err(OsError::Misaligned {
                value: vaddr,
                required: PAGE_BYTES,
            });
        }
        if vaddr + len > VA_LIMIT {
            return Err(OsError::OutOfRange { vaddr: vaddr + len });
        }
        let pages = len.div_ceil(PAGE_BYTES);
        for i in 0..pages {
            self.pages.entry(Self::vpn(vaddr) + i).or_default().prot = prot;
        }
        Ok(())
    }

    /// Pins the page containing `vaddr` (refcounted). A pinned page is made
    /// resident immediately and is never evicted.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::OutOfMemory`] if the page cannot be made resident
    /// or the pinned-page cap (the `RLIMIT_MEMLOCK` analogue) is reached.
    pub fn pin(&mut self, machine: &mut dyn MachineBackend, vaddr: u64) -> Result<(), OsError> {
        let newly_pinned = !self.is_pinned(vaddr);
        if newly_pinned && self.stats().pinned_pages >= self.max_pinned {
            return Err(OsError::OutOfMemory);
        }
        self.translate(machine, vaddr)?;
        let entry = self.pages.entry(Self::vpn(vaddr)).or_default();
        entry.pinned += 1;
        Ok(())
    }

    /// Overrides the pinned-page cap.
    pub fn set_max_pinned(&mut self, pages: u64) {
        self.max_pinned = pages.max(1);
    }

    /// Unpins the page containing `vaddr`.
    ///
    /// # Panics
    ///
    /// Panics if the page is not pinned (an unbalanced unpin is a tool bug).
    pub fn unpin(&mut self, vaddr: u64) {
        let entry = self
            .pages
            .get_mut(&Self::vpn(vaddr))
            .expect("unpin of unmapped page");
        assert!(
            entry.pinned > 0,
            "unbalanced unpin of page {:#x}",
            vaddr / PAGE_BYTES
        );
        entry.pinned -= 1;
    }

    /// Whether the page containing `vaddr` is currently pinned.
    #[must_use]
    pub fn is_pinned(&self, vaddr: u64) -> bool {
        self.pages
            .get(&Self::vpn(vaddr))
            .is_some_and(|p| p.pinned > 0)
    }

    /// Whether the page containing `vaddr` is resident.
    #[must_use]
    pub fn is_resident(&self, vaddr: u64) -> bool {
        self.pages
            .get(&Self::vpn(vaddr))
            .is_some_and(|p| p.frame.is_some())
    }

    /// Evicts the least-recently-used unpinned resident page, writing its
    /// contents to swap. Returns the freed frame.
    fn evict_one(&mut self, machine: &mut dyn MachineBackend) -> Result<u64, OsError> {
        let victim_vpn = self
            .pages
            .iter()
            .filter(|(_, p)| p.frame.is_some() && p.pinned == 0)
            .min_by_key(|(_, p)| p.last_use)
            .map(|(vpn, _)| *vpn)
            .ok_or(OsError::OutOfMemory)?;
        let entry = self.pages.get_mut(&victim_vpn).expect("victim exists");
        let frame = entry.frame.take().expect("victim resident");
        // Push any cached dirty lines of the frame back to memory first,
        // then copy the frame out to swap.
        machine.flush_range(frame, PAGE_BYTES);
        let contents = machine.peek(frame, PAGE_BYTES as usize);
        self.swap.insert(victim_vpn, contents);
        self.stats.swap_outs += 1;
        self.pending_evictions.push(victim_vpn);
        Ok(frame)
    }

    /// Ensures the page containing `vaddr` is resident and returns the
    /// physical address corresponding to `vaddr`, along with what the
    /// translation required.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::OutOfRange`] for addresses beyond [`VA_LIMIT`] and
    /// [`OsError::OutOfMemory`] when no frame can be freed.
    pub fn translate(
        &mut self,
        machine: &mut dyn MachineBackend,
        vaddr: u64,
    ) -> Result<(u64, TranslateOutcome), OsError> {
        if vaddr >= VA_LIMIT {
            return Err(OsError::OutOfRange { vaddr });
        }
        self.tick += 1;
        let tick = self.tick;
        let vpn = Self::vpn(vaddr);
        if let Some(entry) = self.pages.get_mut(&vpn) {
            if let Some(frame) = entry.frame {
                entry.last_use = tick;
                return Ok((frame + vaddr % PAGE_BYTES, TranslateOutcome::Hit));
            }
        }
        // Page fault: find a frame.
        self.stats.page_faults += 1;
        let frame = match self.free_frames.pop() {
            Some(f) => f,
            None => self.evict_one(machine)?,
        };
        // Fill it: from swap if the page was evicted before, else zeros.
        let outcome = if let Some(contents) = self.swap.remove(&vpn) {
            machine.write_uncached(frame, &contents);
            self.stats.swap_ins += 1;
            TranslateOutcome::SwapIn
        } else {
            static ZERO_PAGE: [u8; PAGE_BYTES as usize] = [0; PAGE_BYTES as usize];
            machine.write_uncached(frame, &ZERO_PAGE);
            TranslateOutcome::ZeroFill
        };
        let entry = self.pages.entry(vpn).or_default();
        entry.frame = Some(frame);
        entry.last_use = tick;
        Ok((frame + vaddr % PAGE_BYTES, outcome))
    }

    /// Drains the list of virtual page numbers evicted since the last call.
    /// The swap-aware watch extension uses this to retire stale physical
    /// mappings of watched lines.
    pub fn take_evictions(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.pending_evictions)
    }

    /// Returns the physical address for `vaddr` if (and only if) the page is
    /// resident, without faulting anything in.
    #[must_use]
    pub fn translate_resident(&self, vaddr: u64) -> Option<u64> {
        self.pages
            .get(&Self::vpn(vaddr))
            .and_then(|p| p.frame)
            .map(|frame| frame + vaddr % PAGE_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safemem_machine::Machine;

    fn machine() -> Machine {
        Machine::with_defaults(16 * PAGE_BYTES)
    }

    #[test]
    fn demand_zero_then_hit() {
        let mut m = machine();
        let mut vm = VirtualMemory::new(16 * PAGE_BYTES);
        let (p1, o1) = vm.translate(&mut m, HEAP_BASE + 10).unwrap();
        assert_eq!(o1, TranslateOutcome::ZeroFill);
        let (p2, o2) = vm.translate(&mut m, HEAP_BASE + 20).unwrap();
        assert_eq!(o2, TranslateOutcome::Hit);
        assert_eq!(p1 - 10, p2 - 20, "same page, same frame");
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        let mut m = machine();
        let mut vm = VirtualMemory::new(16 * PAGE_BYTES);
        let (p1, _) = vm.translate(&mut m, HEAP_BASE).unwrap();
        let (p2, _) = vm.translate(&mut m, HEAP_BASE + PAGE_BYTES).unwrap();
        assert_ne!(p1 / PAGE_BYTES, p2 / PAGE_BYTES);
    }

    #[test]
    fn swap_roundtrip_preserves_contents() {
        let mut m = machine();
        // Only 2 frames: the third page evicts the first.
        let mut vm = VirtualMemory::new(2 * PAGE_BYTES);
        let (p0, _) = vm.translate(&mut m, HEAP_BASE).unwrap();
        m.write(p0, &[0xCD; 64]).unwrap();
        vm.translate(&mut m, HEAP_BASE + PAGE_BYTES).unwrap();
        vm.translate(&mut m, HEAP_BASE + 2 * PAGE_BYTES).unwrap();
        assert!(!vm.is_resident(HEAP_BASE), "LRU page evicted");
        assert_eq!(vm.stats().swap_outs, 1);
        // Touch it again: swapped back in with contents intact.
        let (p0b, o) = vm.translate(&mut m, HEAP_BASE).unwrap();
        assert_eq!(o, TranslateOutcome::SwapIn);
        let mut buf = [0u8; 64];
        m.read(p0b, &mut buf).unwrap();
        assert_eq!(buf, [0xCD; 64]);
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let mut m = machine();
        let mut vm = VirtualMemory::new(2 * PAGE_BYTES);
        vm.pin(&mut m, HEAP_BASE).unwrap();
        vm.translate(&mut m, HEAP_BASE + PAGE_BYTES).unwrap();
        vm.translate(&mut m, HEAP_BASE + 2 * PAGE_BYTES).unwrap();
        assert!(vm.is_resident(HEAP_BASE), "pinned page must not be evicted");
    }

    #[test]
    fn pin_cap_is_enforced() {
        let mut m = machine();
        let mut vm = VirtualMemory::new(4 * PAGE_BYTES);
        // Cap of 3 pinned pages (3/4 of 4 frames).
        vm.pin(&mut m, HEAP_BASE).unwrap();
        vm.pin(&mut m, HEAP_BASE + PAGE_BYTES).unwrap();
        vm.pin(&mut m, HEAP_BASE + 2 * PAGE_BYTES).unwrap();
        assert_eq!(
            vm.pin(&mut m, HEAP_BASE + 3 * PAGE_BYTES),
            Err(OsError::OutOfMemory),
            "cap reached"
        );
        // Re-pinning an already-pinned page is always allowed.
        vm.pin(&mut m, HEAP_BASE).unwrap();
        // Ordinary accesses still work: one frame stays evictable.
        vm.translate(&mut m, HEAP_BASE + 5 * PAGE_BYTES).unwrap();
    }

    #[test]
    fn pin_is_refcounted() {
        let mut m = machine();
        let mut vm = VirtualMemory::new(4 * PAGE_BYTES);
        vm.pin(&mut m, HEAP_BASE).unwrap();
        vm.pin(&mut m, HEAP_BASE + 64).unwrap(); // same page
        vm.unpin(HEAP_BASE);
        assert!(vm.is_pinned(HEAP_BASE));
        vm.unpin(HEAP_BASE);
        assert!(!vm.is_pinned(HEAP_BASE));
    }

    #[test]
    #[should_panic(expected = "unbalanced unpin")]
    fn unbalanced_unpin_panics() {
        let mut m = machine();
        let mut vm = VirtualMemory::new(4 * PAGE_BYTES);
        vm.translate(&mut m, HEAP_BASE).unwrap();
        vm.unpin(HEAP_BASE);
    }

    #[test]
    fn prot_defaults_rw_and_set_prot_validates() {
        let mut vm = VirtualMemory::new(4 * PAGE_BYTES);
        assert_eq!(vm.prot_of(HEAP_BASE), Prot::READ_WRITE);
        vm.set_prot(HEAP_BASE, PAGE_BYTES, Prot::NONE).unwrap();
        assert_eq!(vm.prot_of(HEAP_BASE + 100), Prot::NONE);
        assert_eq!(vm.prot_of(HEAP_BASE + PAGE_BYTES), Prot::READ_WRITE);
        assert!(matches!(
            vm.set_prot(HEAP_BASE + 1, 10, Prot::NONE),
            Err(OsError::Misaligned { .. })
        ));
    }

    #[test]
    fn reused_frames_are_zeroed() {
        let mut m = machine();
        let mut vm = VirtualMemory::new(2 * PAGE_BYTES);
        let (p0, _) = vm.translate(&mut m, HEAP_BASE).unwrap();
        m.write(p0, &[0xFF; 64]).unwrap();
        // Force eviction of HEAP_BASE, then map a brand new page that reuses
        // its frame: the new page must read zero, not 0xFF.
        vm.translate(&mut m, HEAP_BASE + PAGE_BYTES).unwrap();
        let (p2, o) = vm.translate(&mut m, HEAP_BASE + 2 * PAGE_BYTES).unwrap();
        assert_eq!(o, TranslateOutcome::ZeroFill);
        let mut buf = [0u8; 64];
        m.read(p2, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 64]);
    }

    #[test]
    fn lru_eviction_order() {
        let mut m = machine();
        let mut vm = VirtualMemory::new(3 * PAGE_BYTES);
        vm.translate(&mut m, HEAP_BASE).unwrap();
        vm.translate(&mut m, HEAP_BASE + PAGE_BYTES).unwrap();
        vm.translate(&mut m, HEAP_BASE + 2 * PAGE_BYTES).unwrap();
        // Touch page 0 so page 1 is the least recently used.
        vm.translate(&mut m, HEAP_BASE).unwrap();
        vm.translate(&mut m, HEAP_BASE + 3 * PAGE_BYTES).unwrap();
        assert!(vm.is_resident(HEAP_BASE), "recently used survives");
        assert!(
            !vm.is_resident(HEAP_BASE + PAGE_BYTES),
            "LRU victim evicted"
        );
    }

    #[test]
    fn protection_survives_swap_roundtrip() {
        let mut m = machine();
        let mut vm = VirtualMemory::new(2 * PAGE_BYTES);
        vm.translate(&mut m, HEAP_BASE).unwrap();
        vm.set_prot(HEAP_BASE, PAGE_BYTES, Prot::READ).unwrap();
        // Evict and bring back.
        vm.translate(&mut m, HEAP_BASE + PAGE_BYTES).unwrap();
        vm.translate(&mut m, HEAP_BASE + 2 * PAGE_BYTES).unwrap();
        assert!(!vm.is_resident(HEAP_BASE));
        vm.translate(&mut m, HEAP_BASE).unwrap();
        assert_eq!(
            vm.prot_of(HEAP_BASE),
            Prot::READ,
            "prot is per-VMA, not per-frame"
        );
    }

    #[test]
    fn take_evictions_reports_each_once() {
        let mut m = machine();
        let mut vm = VirtualMemory::new(2 * PAGE_BYTES);
        vm.translate(&mut m, HEAP_BASE).unwrap();
        vm.translate(&mut m, HEAP_BASE + PAGE_BYTES).unwrap();
        vm.translate(&mut m, HEAP_BASE + 2 * PAGE_BYTES).unwrap();
        let ev = vm.take_evictions();
        assert_eq!(ev, vec![HEAP_BASE / PAGE_BYTES]);
        assert!(vm.take_evictions().is_empty(), "drained");
    }

    #[test]
    fn out_of_range_rejected() {
        let mut m = machine();
        let mut vm = VirtualMemory::new(4 * PAGE_BYTES);
        assert!(matches!(
            vm.translate(&mut m, VA_LIMIT),
            Err(OsError::OutOfRange { .. })
        ));
    }
}
