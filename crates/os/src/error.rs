//! OS-level errors and fault descriptions.

use std::error::Error;
use std::fmt;

/// Whether a faulting access was a load or a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// An ECC fault routed to the registered user-level handler — the payload of
/// the paper's `RegisterECCFaultHandler` callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UserEccFault {
    /// Start address of the watched region the fault falls in.
    pub region_vaddr: u64,
    /// The watched (line-aligned) virtual address that faulted.
    pub line_vaddr: u64,
    /// The virtual address the program was accessing when the fault hit.
    pub access_vaddr: u64,
    /// Load or store.
    pub access: AccessKind,
    /// `true` when the faulted line matches the scramble signature, i.e.
    /// this is an access fault to a watched location; `false` means the data
    /// differs from `original ⊕ mask`, i.e. a genuine hardware error
    /// corrupted a watched line (paper §2.2.2 differentiation).
    pub signature_ok: bool,
}

impl fmt::Display for UserEccFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ECC {} fault at {:#x} (watched line {:#x}, region {:#x}, signature {})",
            self.access,
            self.access_vaddr,
            self.line_vaddr,
            self.region_vaddr,
            if self.signature_ok {
                "matched"
            } else {
                "MISMATCH: hardware error"
            }
        )
    }
}

/// A fault raised by a virtual memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum OsFault {
    /// An uncorrectable ECC error on a *watched* line: delivered to the
    /// user-level handler registered with `RegisterECCFaultHandler`.
    Ecc(UserEccFault),
    /// A page-protection violation (the page-guard baseline's signal).
    Segv {
        /// The faulting virtual address.
        vaddr: u64,
        /// Load or store.
        access: AccessKind,
    },
    /// An uncorrectable ECC error on an *unwatched* line. A stock kernel
    /// panics here (paper §2.1); the simulation surfaces it instead.
    HardwareError {
        /// The faulting virtual address.
        vaddr: u64,
        /// The faulting physical group address.
        group_addr: u64,
    },
}

impl fmt::Display for OsFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsFault::Ecc(fault) => write!(f, "{fault}"),
            OsFault::Segv { vaddr, access } => {
                write!(f, "segmentation fault: {access} at {vaddr:#x}")
            }
            OsFault::HardwareError { vaddr, group_addr } => write!(
                f,
                "kernel panic: uncorrectable memory error at {vaddr:#x} (phys group {group_addr:#x})"
            ),
        }
    }
}

impl Error for OsFault {}

/// Errors returned by OS services (syscalls, memory management).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum OsError {
    /// Address or size not aligned as the call requires (watched regions
    /// must be cache-line aligned; protections page-aligned).
    Misaligned {
        /// The offending address or size.
        value: u64,
        /// The required alignment.
        required: u64,
    },
    /// Address range outside the virtual address space.
    OutOfRange {
        /// The offending virtual address.
        vaddr: u64,
    },
    /// No physical frame available and nothing evictable (everything pinned).
    OutOfMemory,
    /// The region overlaps an already-watched region.
    AlreadyWatched {
        /// Start of the conflicting existing region.
        existing: u64,
    },
    /// `DisableWatchMemory` on an address that is not a watched region start.
    NotWatched {
        /// The address passed in.
        vaddr: u64,
    },
}

impl fmt::Display for OsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsError::Misaligned { value, required } => {
                write!(f, "value {value:#x} not aligned to {required} bytes")
            }
            OsError::OutOfRange { vaddr } => write!(f, "address {vaddr:#x} out of range"),
            OsError::OutOfMemory => write!(f, "out of physical memory (all pages pinned)"),
            OsError::AlreadyWatched { existing } => {
                write!(f, "region overlaps watched region at {existing:#x}")
            }
            OsError::NotWatched { vaddr } => {
                write!(f, "no watched region starts at {vaddr:#x}")
            }
        }
    }
}

impl Error for OsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let fault = OsFault::Segv {
            vaddr: 0x1234,
            access: AccessKind::Write,
        };
        assert!(fault.to_string().contains("0x1234"));
        let err = OsError::Misaligned {
            value: 0x7,
            required: 64,
        };
        assert!(err.to_string().contains("64"));
        let hw = OsFault::HardwareError {
            vaddr: 0x10,
            group_addr: 0x20,
        };
        assert!(hw.to_string().contains("panic"));
    }

    #[test]
    fn user_fault_display_flags_hardware_errors() {
        let fault = UserEccFault {
            region_vaddr: 0x100,
            line_vaddr: 0x140,
            access_vaddr: 0x148,
            access: AccessKind::Read,
            signature_ok: false,
        };
        assert!(fault.to_string().contains("hardware error"));
    }
}
