//! Bookkeeping for ECC-watched memory regions.
//!
//! The kernel half of SafeMem keeps, for every watched cache line, the
//! original data (to differentiate access faults from hardware errors and to
//! restore the line on unwatch) and the current physical placement (to route
//! ECC faults back to virtual addresses). The arm/disarm *sequences* live in
//! the [`Os`](crate::Os) layer; this module is pure bookkeeping.

use safemem_hashfx::FxHashMap;
use std::collections::BTreeMap;

/// One watched cache line.
#[derive(Debug, Clone)]
pub struct WatchedLine {
    /// Start of the watched region this line belongs to.
    pub region_vaddr: u64,
    /// Line-aligned virtual address.
    pub vline: u64,
    /// Current line-aligned physical address (`None` while the page is
    /// swapped out under the swap-aware extension).
    pub phys_line: Option<u64>,
    /// The original (unscrambled) contents, saved in SafeMem's private
    /// memory (paper §2.2.2).
    pub original: Vec<u8>,
    /// The ECC check codes of `original`, computed once at arm time so
    /// every disarm (unwatch and each scrub cycle) restores the line
    /// without re-encoding. `None` for exotic line sizes the precoded
    /// fast path does not cover.
    pub codes: Option<[u8; 8]>,
}

/// Registry of watched regions and their lines.
#[derive(Debug, Default)]
pub struct WatchRegistry {
    /// Region start → size, ordered so overlap and containment queries are
    /// a single neighbour probe (regions are disjoint by construction, so
    /// the region with the greatest start below a query bound is the only
    /// candidate).
    regions: BTreeMap<u64, u64>,
    /// Line-aligned vaddr → line record.
    lines: FxHashMap<u64, WatchedLine>,
    /// Line-aligned physical addr → vline (for fault routing).
    by_phys: FxHashMap<u64, u64>,
    /// Region start → its armed vlines, so unwatching a region never scans
    /// the whole line table.
    by_region: FxHashMap<u64, Vec<u64>>,
}

impl WatchRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of watched regions.
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Number of watched lines.
    #[must_use]
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }

    /// Returns the start of an existing region overlapping
    /// `[vaddr, vaddr + size)`, if any.
    #[must_use]
    pub fn overlapping_region(&self, vaddr: u64, size: u64) -> Option<u64> {
        // Disjoint regions: only the one starting closest below the query's
        // end can overlap it.
        self.regions
            .range(..vaddr + size)
            .next_back()
            .filter(|&(&start, &len)| start < vaddr + size && vaddr < start + len)
            .map(|(&start, _)| start)
    }

    /// The region `(start, size)` containing `vaddr`, if any.
    #[must_use]
    pub fn region_containing(&self, vaddr: u64) -> Option<(u64, u64)> {
        self.regions
            .range(..=vaddr)
            .next_back()
            .filter(|&(&start, &len)| (start..start + len).contains(&vaddr))
            .map(|(&start, &len)| (start, len))
    }

    /// The size of the region starting exactly at `vaddr`, if any.
    #[must_use]
    pub fn region_at(&self, vaddr: u64) -> Option<u64> {
        self.regions.get(&vaddr).copied()
    }

    /// All region starts (unspecified order).
    #[must_use]
    pub fn region_starts(&self) -> Vec<u64> {
        self.regions.keys().copied().collect()
    }

    /// Records a region (the caller has validated alignment and overlap).
    pub fn insert_region(&mut self, vaddr: u64, size: u64) {
        let prev = self.regions.insert(vaddr, size);
        debug_assert!(prev.is_none(), "caller must check overlap first");
    }

    /// Records one armed line.
    pub fn insert_line(&mut self, line: WatchedLine) {
        if let Some(phys) = line.phys_line {
            self.by_phys.insert(phys, line.vline);
        }
        self.by_region
            .entry(line.region_vaddr)
            .or_default()
            .push(line.vline);
        self.lines.insert(line.vline, line);
    }

    /// Removes a region and returns its line records.
    pub fn remove_region(&mut self, vaddr: u64) -> Option<(u64, Vec<WatchedLine>)> {
        let size = self.regions.remove(&vaddr)?;
        let vlines = self.by_region.remove(&vaddr).unwrap_or_default();
        let mut removed = Vec::with_capacity(vlines.len());
        for vline in vlines {
            let line = self.lines.remove(&vline).expect("line listed");
            if let Some(phys) = line.phys_line {
                self.by_phys.remove(&phys);
            }
            removed.push(line);
        }
        Some((size, removed))
    }

    /// Looks up the watched line covering physical address `phys_line`.
    #[must_use]
    pub fn line_by_phys(&self, phys_line: u64) -> Option<&WatchedLine> {
        self.by_phys.get(&phys_line).and_then(|v| self.lines.get(v))
    }

    /// Looks up a watched line by its virtual address.
    #[must_use]
    pub fn line_by_vaddr(&self, vline: u64) -> Option<&WatchedLine> {
        self.lines.get(&vline)
    }

    /// All watched lines whose virtual page number is `vpn` (used by the
    /// swap-aware extension when a page moves).
    #[must_use]
    pub fn vlines_in_page(&self, vpn: u64, page_bytes: u64) -> Vec<u64> {
        self.lines
            .keys()
            .filter(|&&v| v / page_bytes == vpn)
            .copied()
            .collect()
    }

    /// Updates a line's physical placement (swap-aware extension: `None`
    /// when its page is evicted, `Some(new)` when it returns).
    ///
    /// # Panics
    ///
    /// Panics if the line is not registered.
    pub fn set_line_phys(&mut self, vline: u64, phys_line: Option<u64>) {
        let line = self.lines.get_mut(&vline).expect("line registered");
        if let Some(old) = line.phys_line.take() {
            self.by_phys.remove(&old);
        }
        line.phys_line = phys_line;
        if let Some(new) = phys_line {
            self.by_phys.insert(new, vline);
        }
    }

    /// Iterates over all watched lines.
    pub fn lines(&self) -> impl Iterator<Item = &WatchedLine> {
        self.lines.values()
    }

    /// Moves a line's saved original data out (leaving it empty), so a
    /// caller holding `&mut self` can use the bytes while calling other
    /// `&mut` methods. Pair with [`put_original`](Self::put_original).
    ///
    /// # Panics
    ///
    /// Panics if the line is not registered.
    pub fn take_original(&mut self, vline: u64) -> Vec<u8> {
        std::mem::take(
            &mut self
                .lines
                .get_mut(&vline)
                .expect("line registered")
                .original,
        )
    }

    /// Returns original data taken with [`take_original`](Self::take_original).
    ///
    /// # Panics
    ///
    /// Panics if the line is not registered.
    pub fn put_original(&mut self, vline: u64, original: Vec<u8>) {
        self.lines
            .get_mut(&vline)
            .expect("line registered")
            .original = original;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(region: u64, vline: u64, phys: u64) -> WatchedLine {
        WatchedLine {
            region_vaddr: region,
            vline,
            phys_line: Some(phys),
            original: vec![0; 64],
            codes: None,
        }
    }

    #[test]
    fn region_lifecycle() {
        let mut reg = WatchRegistry::new();
        reg.insert_region(0x1000, 128);
        reg.insert_line(line(0x1000, 0x1000, 0x8000));
        reg.insert_line(line(0x1000, 0x1040, 0x8040));
        assert_eq!(reg.region_count(), 1);
        assert_eq!(reg.line_count(), 2);
        assert_eq!(reg.region_containing(0x1050), Some((0x1000, 128)));
        assert_eq!(reg.region_containing(0x1080), None);
        let (size, lines) = reg.remove_region(0x1000).unwrap();
        assert_eq!(size, 128);
        assert_eq!(lines.len(), 2);
        assert_eq!(reg.line_count(), 0);
        assert!(reg.line_by_phys(0x8000).is_none());
    }

    #[test]
    fn overlap_detection() {
        let mut reg = WatchRegistry::new();
        reg.insert_region(0x1000, 128);
        assert_eq!(reg.overlapping_region(0x1040, 64), Some(0x1000));
        assert_eq!(reg.overlapping_region(0x1080, 64), None);
        assert_eq!(reg.overlapping_region(0x0FC0, 64), None);
        assert_eq!(reg.overlapping_region(0x0FC0, 65), Some(0x1000));
    }

    #[test]
    fn phys_routing_follows_placement_updates() {
        let mut reg = WatchRegistry::new();
        reg.insert_region(0x2000, 64);
        reg.insert_line(line(0x2000, 0x2000, 0x9000));
        assert_eq!(reg.line_by_phys(0x9000).unwrap().vline, 0x2000);
        reg.set_line_phys(0x2000, None);
        assert!(reg.line_by_phys(0x9000).is_none());
        reg.set_line_phys(0x2000, Some(0xA000));
        assert_eq!(reg.line_by_phys(0xA000).unwrap().vline, 0x2000);
    }

    #[test]
    fn vlines_in_page_filters_by_vpn() {
        let mut reg = WatchRegistry::new();
        reg.insert_region(0x1000, 0x2000);
        reg.insert_line(line(0x1000, 0x1000, 0x8000));
        reg.insert_line(line(0x1000, 0x1FC0, 0x8FC0));
        reg.insert_line(line(0x1000, 0x2000, 0x9000));
        let mut v = reg.vlines_in_page(1, 4096);
        v.sort_unstable();
        assert_eq!(v, vec![0x1000, 0x1FC0]);
    }
}
