//! A kernel event log (dmesg-style ring buffer).
//!
//! The paper notes that with a software-friendly ECC interface "SafeMem
//! could provide programmers with precise information regarding the
//! occurred bugs" (§2.2.3). The simulated kernel keeps that record: every
//! watch/unwatch, delivered fault, hardware panic, scrub cycle and swap
//! event is timestamped and kept in a bounded ring, inspectable by tools,
//! tests and the CLI.

use std::collections::VecDeque;
use std::fmt;

/// One kernel log event.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum KernelEvent {
    /// `WatchMemory` armed a region.
    Watched {
        /// Region start (virtual).
        vaddr: u64,
        /// Region size.
        size: u64,
    },
    /// `DisableWatchMemory` disarmed a region.
    Unwatched {
        /// Region start (virtual).
        vaddr: u64,
    },
    /// An ECC fault was delivered to the user-level handler.
    FaultDelivered {
        /// Faulting virtual address.
        vaddr: u64,
        /// Whether the scramble signature matched (access fault) or not
        /// (hardware error on a watched line).
        signature_ok: bool,
    },
    /// An uncorrectable error hit unwatched memory (stock-kernel panic).
    Panic {
        /// Faulting physical group.
        group_addr: u64,
    },
    /// A coordinated scrub cycle ran.
    ScrubCycle {
        /// Watched lines that were disarmed/re-armed around the scan.
        watched_lines: u64,
    },
    /// A page was evicted to swap.
    SwapOut {
        /// Virtual page number.
        vpn: u64,
    },
    /// A page returned from swap.
    SwapIn {
        /// Virtual page number.
        vpn: u64,
    },
}

impl fmt::Display for KernelEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelEvent::Watched { vaddr, size } => {
                write!(f, "ecc: watch region {vaddr:#x} (+{size})")
            }
            KernelEvent::Unwatched { vaddr } => write!(f, "ecc: unwatch region {vaddr:#x}"),
            KernelEvent::FaultDelivered {
                vaddr,
                signature_ok,
            } => write!(
                f,
                "ecc: fault at {vaddr:#x} → user handler ({})",
                if *signature_ok { "access" } else { "hardware" }
            ),
            KernelEvent::Panic { group_addr } => {
                write!(
                    f,
                    "panic: uncorrectable memory error at group {group_addr:#x}"
                )
            }
            KernelEvent::ScrubCycle { watched_lines } => {
                write!(
                    f,
                    "ecc: scrub cycle ({watched_lines} watched lines coordinated)"
                )
            }
            KernelEvent::SwapOut { vpn } => write!(f, "vm: page {vpn:#x} → swap"),
            KernelEvent::SwapIn { vpn } => write!(f, "vm: page {vpn:#x} ← swap"),
        }
    }
}

/// A timestamped log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LogEntry {
    /// Simulated cycle count when the event occurred.
    pub cycles: u64,
    /// The event.
    pub event: KernelEvent,
}

impl fmt::Display for LogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>14}] {}", self.cycles, self.event)
    }
}

/// A bounded ring of kernel events.
#[derive(Debug, Clone)]
pub struct KernelLog {
    entries: VecDeque<LogEntry>,
    capacity: usize,
    dropped: u64,
}

impl Default for KernelLog {
    fn default() -> Self {
        KernelLog::with_capacity(4096)
    }
}

impl KernelLog {
    /// Creates a log holding at most `capacity` entries (older entries are
    /// dropped, counted in [`KernelLog::dropped`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "log capacity must be non-zero");
        KernelLog {
            entries: VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event at simulated time `cycles`.
    pub fn push(&mut self, cycles: u64, event: KernelEvent) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(LogEntry { cycles, event });
    }

    /// Entries currently retained, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted due to the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the whole log, dmesg-style.
    #[must_use]
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(out, "... {} earlier events dropped ...", self.dropped);
        }
        for entry in &self.entries {
            let _ = writeln!(out, "{entry}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest() {
        let mut log = KernelLog::with_capacity(2);
        log.push(1, KernelEvent::SwapOut { vpn: 1 });
        log.push(2, KernelEvent::SwapOut { vpn: 2 });
        log.push(3, KernelEvent::SwapOut { vpn: 3 });
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 1);
        let vpns: Vec<u64> = log
            .entries()
            .map(|e| match e.event {
                KernelEvent::SwapOut { vpn } => vpn,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(vpns, vec![2, 3]);
    }

    #[test]
    fn render_is_dmesg_like() {
        let mut log = KernelLog::default();
        log.push(
            12345,
            KernelEvent::Watched {
                vaddr: 0x1000,
                size: 64,
            },
        );
        log.push(
            23456,
            KernelEvent::FaultDelivered {
                vaddr: 0x1008,
                signature_ok: true,
            },
        );
        let text = log.render();
        assert!(text.contains("watch region 0x1000"));
        assert!(text.contains("access"));
        assert!(text.contains("12345"));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = KernelLog::with_capacity(0);
    }
}
