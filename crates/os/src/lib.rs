//! The simulated operating system layer for the SafeMem reproduction.
//!
//! Models the paper's patched Linux kernel (§2.2.2 and §5.1): a single
//! process with demand-paged virtual memory over a pluggable
//! [`MachineBackend`] — a simulated [`Machine`] owned outright by default,
//! or a window onto a machine shared by a whole fleet of processes (see
//! [`Os::with_backend`]) — plus the three new system calls
//! SafeMem adds —
//!
//! * [`Os::watch_memory`] — arm ECC watchpoints on a cache-line-aligned
//!   region (pin pages → save originals → bus-lock → flush lines → ECC off →
//!   scramble → ECC on);
//! * [`Os::disable_watch_memory`] — restore the original data and unpin;
//! * [`Os::register_ecc_fault_handler`] — route watched-line ECC faults to
//!   the user level instead of panicking.
//!
//! It also provides stock `mprotect` page protection (used by the
//! page-guard baseline), scrub coordination, CPU-time accounting that
//! excludes I/O wait (§3), and the swap-aware watch extension the paper
//! describes as the "better solution" to page swapping.
//!
//! [`Machine`]: safemem_machine::Machine
//! [`MachineBackend`]: safemem_machine::MachineBackend
//!
//! # Example: a watchpoint end to end
//!
//! ```
//! use safemem_os::{Os, OsFault, vm::HEAP_BASE};
//!
//! let mut os = Os::with_defaults(1 << 22);
//! os.register_ecc_fault_handler();
//!
//! // Put data somewhere and watch its cache line.
//! os.vwrite(HEAP_BASE, &[42u8; 64]).unwrap();
//! os.watch_memory(HEAP_BASE, 64).unwrap();
//!
//! // The first access faults and is delivered to user level.
//! let mut buf = [0u8; 8];
//! let fault = os.vread(HEAP_BASE, &mut buf).unwrap_err();
//! let OsFault::Ecc(user) = fault else { panic!("expected ECC fault") };
//! assert!(user.signature_ok, "access fault, not a hardware error");
//!
//! // The handler disables the watch; the retried access then succeeds and
//! // sees the original data.
//! os.disable_watch_memory(HEAP_BASE).unwrap();
//! os.vread(HEAP_BASE, &mut buf).unwrap();
//! assert_eq!(buf, [42u8; 8]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod klog;
pub mod procfs;
pub mod vm;
pub mod watch;

pub use error::{AccessKind, OsError, OsFault, UserEccFault};
pub use klog::{KernelEvent, KernelLog, LogEntry};
pub use vm::{Prot, VirtualMemory, HEAP_BASE, PAGE_BYTES, STATIC_BASE, VA_LIMIT};
pub use watch::{WatchRegistry, WatchedLine};

use safemem_cache::CacheConfig;
use safemem_machine::{CostModel, Machine, MachineBackend};
use vm::TranslateOutcome;

/// How watched pages interact with page replacement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SwapPolicy {
    /// Pin every page holding a watched line (the paper's implemented
    /// method; limits total watchable memory).
    #[default]
    PinWatchedPages,
    /// Let watched pages swap; the kernel unarms lines on eviction and
    /// re-arms them on swap-in (the paper's proposed "better solution").
    SwapAware,
}

/// Configuration for the simulated OS + machine stack.
#[derive(Debug, Clone)]
pub struct OsConfig {
    /// Physical memory size in bytes (with [`Os::with_backend`], the size
    /// of this process's frame window).
    pub phys_bytes: u64,
    /// Base physical address of this process's frame window. Only
    /// meaningful with [`Os::with_backend`] over a shared machine; must be
    /// page-aligned. The default `0` preserves the single-process layout.
    pub phys_base: u64,
    /// Cache geometry (index 0 = L1).
    pub caches: Vec<CacheConfig>,
    /// Cycle cost calibration.
    pub cost: CostModel,
    /// Watched-page swap policy.
    pub swap_policy: SwapPolicy,
    /// Simulated disk latency charged (as I/O wait) per swap-in.
    pub swap_io_ns: u64,
    /// Automatic scrub scheduling: run a coordinated scrub cycle whenever
    /// this much simulated time has elapsed since the last one (`None` =
    /// only explicit [`Os::run_scrub_cycle`] calls). Takes effect only when
    /// the controller is in [`CorrectAndScrub`](safemem_ecc::EccMode)
    /// mode, like real chipset scrub timers.
    pub scrub_interval_cycles: Option<u64>,
}

impl Default for OsConfig {
    fn default() -> Self {
        OsConfig {
            phys_bytes: 1 << 24,
            phys_base: 0,
            caches: safemem_cache::default_two_level(),
            cost: CostModel::default(),
            swap_policy: SwapPolicy::PinWatchedPages,
            swap_io_ns: 100_000,
            scrub_interval_cycles: None,
        }
    }
}

/// OS-level event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OsStats {
    /// `WatchMemory` calls served.
    pub watch_calls: u64,
    /// `DisableWatchMemory` calls served.
    pub disable_calls: u64,
    /// `mprotect` calls served.
    pub mprotect_calls: u64,
    /// ECC faults delivered to the user handler.
    pub ecc_faults_delivered: u64,
    /// Uncorrectable errors on unwatched memory (stock-kernel panics).
    pub hardware_panics: u64,
    /// Page-protection violations delivered.
    pub segv_delivered: u64,
    /// Scrub cycles coordinated.
    pub scrub_cycles: u64,
}

/// The simulated OS: machine backend + virtual memory + SafeMem kernel
/// extensions.
pub struct Os {
    machine: Box<dyn MachineBackend>,
    vm: VirtualMemory,
    watch: WatchRegistry,
    handler_registered: bool,
    swap_policy: SwapPolicy,
    swap_io_ns: u64,
    scrub_interval: Option<u64>,
    last_scrub: u64,
    klog: KernelLog,
    io_wait_cycles: u64,
    background_cycles: u64,
    stats: OsStats,
    /// Recycled `original`-data buffers for watched lines: arming a line
    /// pops one, disarming pushes it back, so steady-state watch churn
    /// allocates nothing.
    line_pool: Vec<Vec<u8>>,
}

impl std::fmt::Debug for Os {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Os")
            .field("cpu_cycles", &self.cpu_cycles())
            .field("watched_regions", &self.watch.region_count())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Os {
    /// Builds the OS stack from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (zero memory, bad caches).
    #[must_use]
    pub fn new(config: OsConfig) -> Self {
        let machine = Machine::new(
            config.phys_base + config.phys_bytes,
            config.caches.clone(),
            config.cost.clone(),
        );
        Os::with_backend(Box::new(machine), config)
    }

    /// Builds the OS stack over an externally constructed machine backend.
    ///
    /// This is the fleet entry point: every process of a fleet gets its own
    /// `Os` over a backend window onto one shared machine, with
    /// `config.phys_base` / `config.phys_bytes` carving out a disjoint frame
    /// range per process. `config.caches` and `config.cost` are ignored on
    /// this path — the backend already owns its geometry and calibration.
    ///
    /// # Panics
    ///
    /// Panics if `config.phys_base` is not page-aligned.
    #[must_use]
    pub fn with_backend(backend: Box<dyn MachineBackend>, config: OsConfig) -> Self {
        Os {
            machine: backend,
            vm: VirtualMemory::with_range(config.phys_base, config.phys_bytes),
            watch: WatchRegistry::new(),
            handler_registered: false,
            swap_policy: config.swap_policy,
            swap_io_ns: config.swap_io_ns,
            scrub_interval: config.scrub_interval_cycles,
            last_scrub: 0,
            klog: KernelLog::default(),
            line_pool: Vec::new(),
            io_wait_cycles: 0,
            background_cycles: 0,
            stats: OsStats::default(),
        }
    }

    /// Builds the OS with default caches and cost model over `phys_bytes`
    /// of physical memory.
    ///
    /// # Panics
    ///
    /// Panics if `phys_bytes` is zero.
    #[must_use]
    pub fn with_defaults(phys_bytes: u64) -> Self {
        Os::new(OsConfig {
            phys_bytes,
            ..OsConfig::default()
        })
    }

    /// The underlying machine backend (read access).
    #[must_use]
    pub fn machine(&self) -> &dyn MachineBackend {
        &*self.machine
    }

    /// The underlying machine backend (mutable; for error injection, mode
    /// configuration, and fleet-scheduler downcasts).
    #[must_use]
    pub fn machine_mut(&mut self) -> &mut dyn MachineBackend {
        &mut *self.machine
    }

    /// The virtual memory manager (read access).
    #[must_use]
    pub fn vm(&self) -> &VirtualMemory {
        &self.vm
    }

    /// Overrides the pinned-page cap (the `RLIMIT_MEMLOCK` analogue).
    pub fn vm_set_max_pinned(&mut self, pages: u64) {
        self.vm.set_max_pinned(pages);
    }

    /// Cache line size, which is also the watch granularity.
    #[must_use]
    pub fn line_size(&self) -> u64 {
        self.machine.line_size()
    }

    /// OS event counters.
    #[must_use]
    pub fn stats(&self) -> OsStats {
        self.stats
    }

    /// The kernel event log (dmesg-style).
    #[must_use]
    pub fn kernel_log(&self) -> &KernelLog {
        &self.klog
    }

    // ------------------------------------------------------------------
    // Time accounting
    // ------------------------------------------------------------------

    /// Total simulated cycles elapsed (all causes).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.machine.clock().cycles()
    }

    /// CPU cycles charged to the monitored process: total time minus I/O
    /// wait and background (scrub) work, per the paper's §3 definition.
    #[must_use]
    pub fn cpu_cycles(&self) -> u64 {
        self.machine
            .clock()
            .cycles()
            .saturating_sub(self.io_wait_cycles + self.background_cycles)
    }

    /// Process CPU time in nanoseconds.
    #[must_use]
    pub fn cpu_ns(&self) -> u64 {
        self.machine.clock().cycles_to_nanos(self.cpu_cycles())
    }

    /// Models blocking I/O: the clock advances but the time is excluded
    /// from process CPU time.
    pub fn io_wait_ns(&mut self, ns: u64) {
        let cycles = ns.saturating_mul(self.machine.clock().hz()) / 1_000_000_000;
        self.machine.compute(cycles);
        self.io_wait_cycles += cycles;
    }

    /// Models CPU-bound application work.
    pub fn compute(&mut self, cycles: u64) {
        self.machine.compute(cycles);
    }

    // ------------------------------------------------------------------
    // Virtual memory access
    // ------------------------------------------------------------------

    /// After any translation, retire stale physical mappings of watched
    /// lines whose pages were evicted (swap-aware policy only).
    fn drain_evictions(&mut self) {
        let now = self.machine.clock().cycles();
        for vpn in self.vm.take_evictions() {
            self.klog.push(now, KernelEvent::SwapOut { vpn });
            for vline in self.watch.vlines_in_page(vpn, PAGE_BYTES) {
                self.watch.set_line_phys(vline, None);
            }
        }
    }

    /// Re-arms watched lines of a page that just became resident
    /// (swap-aware policy only).
    fn rearm_page(&mut self, vpn: u64) {
        let vlines = self.watch.vlines_in_page(vpn, PAGE_BYTES);
        for vline in vlines {
            let line = self.watch.line_by_vaddr(vline).expect("line registered");
            if line.phys_line.is_some() {
                continue; // still armed at a valid location
            }
            let original = line.original.clone();
            let codes = line.codes;
            let phys = self
                .vm
                .translate_resident(vline)
                .expect("page just became resident");
            // The swapped-in copy holds the scrambled bytes under freshly
            // consistent codes; restore the original first (ECC on) so the
            // scramble recreates the stale-code mismatch.
            self.disarm_line_at(phys, &original, codes);
            self.arm_line_at(phys, &original);
            self.watch.set_line_phys(vline, Some(phys));
        }
    }

    /// Performs the hardware scramble sequence on an already-flushed,
    /// resident physical line (paper Figure 2).
    fn arm_line_at(&mut self, phys_line: u64, original: &[u8]) {
        Self::arm_line_on(&mut *self.machine, phys_line, original);
    }

    /// [`Os::arm_line_at`] against a borrowed backend, so the scrub cycle
    /// can walk the watch registry and the machine side by side without
    /// moving originals in and out of the registry.
    fn arm_line_on(machine: &mut dyn MachineBackend, phys_line: u64, original: &[u8]) {
        let scheme = machine.scramble();
        let ctl = machine.controller_mut();
        ctl.lock_bus();
        ctl.set_enabled(false);
        // Scramble into a stack buffer for ordinary line sizes; the heap
        // fallback only fires for exotic configurations with lines > 64 B.
        let mut stack = [0u8; 64];
        let mut heap = Vec::new();
        let scrambled: &mut [u8] = if original.len() <= stack.len() {
            &mut stack[..original.len()]
        } else {
            heap.resize(original.len(), 0u8);
            &mut heap
        };
        for (i, chunk) in original.chunks_exact(8).enumerate() {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            scrambled[i * 8..(i + 1) * 8].copy_from_slice(&scheme.apply(word).to_le_bytes());
        }
        machine.write_uncached(phys_line, scrambled);
        let ctl = machine.controller_mut();
        ctl.set_enabled(true);
        ctl.unlock_bus();
    }

    /// Restores the original data of a line (ECC enabled, so codes become
    /// consistent again). When the line's codes were precomputed at arm
    /// time, the stored codes are restored directly instead of re-encoded —
    /// byte-identical state, no per-group encode.
    fn disarm_line_at(&mut self, phys_line: u64, original: &[u8], codes: Option<[u8; 8]>) {
        Self::disarm_line_on(&mut *self.machine, phys_line, original, codes);
    }

    /// [`Os::disarm_line_at`] against a borrowed backend (see
    /// [`Os::arm_line_on`]).
    fn disarm_line_on(
        machine: &mut dyn MachineBackend,
        phys_line: u64,
        original: &[u8],
        codes: Option<[u8; 8]>,
    ) {
        match (codes, <&[u8; 64]>::try_from(original)) {
            (Some(c), Ok(data)) => machine.write_uncached_precoded(phys_line, data, &c),
            _ => machine.write_uncached(phys_line, original),
        }
    }

    fn translate_checked(&mut self, vaddr: u64, kind: AccessKind) -> Result<u64, OsFault> {
        if !self.vm.prot_of(vaddr).allows(kind) {
            self.stats.segv_delivered += 1;
            return Err(OsFault::Segv {
                vaddr,
                access: kind,
            });
        }
        let outcome = self.vm.translate(&mut *self.machine, vaddr);
        self.drain_evictions();
        match outcome {
            Ok((phys, TranslateOutcome::Hit)) => Ok(phys),
            Ok((phys, TranslateOutcome::ZeroFill)) => {
                let cycles = self.machine.cost().page_fault_cycles;
                self.machine.compute(cycles);
                Ok(phys)
            }
            Ok((phys, TranslateOutcome::SwapIn)) => {
                let now = self.machine.clock().cycles();
                self.klog.push(
                    now,
                    KernelEvent::SwapIn {
                        vpn: vaddr / PAGE_BYTES,
                    },
                );
                let cycles = self.machine.cost().page_fault_cycles;
                self.machine.compute(cycles);
                self.io_wait_ns(self.swap_io_ns);
                if self.swap_policy == SwapPolicy::SwapAware {
                    self.rearm_page(vaddr / PAGE_BYTES);
                }
                Ok(phys)
            }
            Err(OsError::OutOfRange { .. }) => {
                self.stats.segv_delivered += 1;
                Err(OsFault::Segv {
                    vaddr,
                    access: kind,
                })
            }
            Err(e) => panic!("physical memory exhausted during access: {e}"),
        }
    }

    /// Classifies an ECC fault raised by a physical access at `phys_group`,
    /// reached through virtual address `vaddr`.
    fn classify_ecc_fault(&mut self, vaddr: u64, kind: AccessKind, group_addr: u64) -> OsFault {
        let ls = self.line_size();
        let phys_line = group_addr & !(ls - 1);
        let Some(line) = self.watch.line_by_phys(phys_line) else {
            self.stats.hardware_panics += 1;
            self.klog.push(
                self.machine.clock().cycles(),
                KernelEvent::Panic { group_addr },
            );
            return OsFault::HardwareError { vaddr, group_addr };
        };
        if !self.handler_registered {
            self.stats.hardware_panics += 1;
            self.klog.push(
                self.machine.clock().cycles(),
                KernelEvent::Panic { group_addr },
            );
            return OsFault::HardwareError { vaddr, group_addr };
        }
        // Differentiate access fault from hardware error: the stored data
        // must equal original ⊕ scramble-mask for every group in the line.
        let scheme = self.machine.scramble();
        let current = self.machine.peek(phys_line, ls as usize);
        let signature_ok = line
            .original
            .chunks_exact(8)
            .zip(current.chunks_exact(8))
            .all(|(orig, cur)| {
                let o = u64::from_le_bytes(orig.try_into().expect("8"));
                let c = u64::from_le_bytes(cur.try_into().expect("8"));
                scheme.matches(o, c)
            });
        let user = UserEccFault {
            region_vaddr: line.region_vaddr,
            line_vaddr: line.vline,
            access_vaddr: line.vline + (group_addr - phys_line),
            access: kind,
            signature_ok,
        };
        let dispatch = self.machine.cost().fault_dispatch_cycles;
        self.machine.compute(dispatch);
        self.stats.ecc_faults_delivered += 1;
        self.klog.push(
            self.machine.clock().cycles(),
            KernelEvent::FaultDelivered {
                vaddr: user.access_vaddr,
                signature_ok,
            },
        );
        OsFault::Ecc(user)
    }

    /// Reads `buf.len()` bytes of virtual memory at `vaddr`.
    ///
    /// # Errors
    ///
    /// * [`OsFault::Segv`] on a protection violation or unmapped range;
    /// * [`OsFault::Ecc`] when the access touches a watched line and a
    ///   handler is registered (handle, then retry — the operation is
    ///   idempotent);
    /// * [`OsFault::HardwareError`] for uncorrectable errors elsewhere.
    pub fn vread(&mut self, vaddr: u64, buf: &mut [u8]) -> Result<(), OsFault> {
        self.maybe_scrub();
        let mut done = 0usize;
        while done < buf.len() {
            let cur = vaddr + done as u64;
            let in_page = (PAGE_BYTES - cur % PAGE_BYTES) as usize;
            let chunk = in_page.min(buf.len() - done);
            let phys = self.translate_checked(cur, AccessKind::Read)?;
            if let Err(fault) = self.machine.read(phys, &mut buf[done..done + chunk]) {
                return Err(self.classify_ecc_fault(cur, AccessKind::Read, fault.group_addr));
            }
            done += chunk;
        }
        Ok(())
    }

    /// Writes `buf` to virtual memory at `vaddr`.
    ///
    /// # Errors
    ///
    /// As for [`Os::vread`]; stores to watched lines fault through the
    /// write-allocate refill.
    pub fn vwrite(&mut self, vaddr: u64, buf: &[u8]) -> Result<(), OsFault> {
        self.maybe_scrub();
        let mut done = 0usize;
        while done < buf.len() {
            let cur = vaddr + done as u64;
            let in_page = (PAGE_BYTES - cur % PAGE_BYTES) as usize;
            let chunk = in_page.min(buf.len() - done);
            let phys = self.translate_checked(cur, AccessKind::Write)?;
            if let Err(fault) = self.machine.write(phys, &buf[done..done + chunk]) {
                return Err(self.classify_ecc_fault(cur, AccessKind::Write, fault.group_addr));
            }
            done += chunk;
        }
        Ok(())
    }

    /// Convenience: reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// As for [`Os::vread`].
    pub fn read_u64(&mut self, vaddr: u64) -> Result<u64, OsFault> {
        let mut buf = [0u8; 8];
        self.vread(vaddr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Convenience: writes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// As for [`Os::vwrite`].
    pub fn write_u64(&mut self, vaddr: u64, value: u64) -> Result<(), OsFault> {
        self.vwrite(vaddr, &value.to_le_bytes())
    }

    // ------------------------------------------------------------------
    // Stock syscalls
    // ------------------------------------------------------------------

    /// The stock `mprotect` syscall: page-granularity protection, costed per
    /// Table 2 (1.02 µs).
    ///
    /// # Errors
    ///
    /// Returns [`OsError::Misaligned`] / [`OsError::OutOfRange`] for invalid
    /// arguments.
    pub fn mprotect(&mut self, vaddr: u64, len: u64, prot: Prot) -> Result<(), OsError> {
        let cycles = self.machine.cost().mprotect_cycles;
        self.machine.compute(cycles);
        self.stats.mprotect_calls += 1;
        self.vm.set_prot(vaddr, len, prot)
    }

    // ------------------------------------------------------------------
    // The three SafeMem syscalls (paper §2.2.1)
    // ------------------------------------------------------------------

    /// `RegisterECCFaultHandler`: route watched-line ECC faults to user
    /// level. Without this, any uncorrectable error — including SafeMem's
    /// own scrambled lines — panics the kernel, as stock kernels do.
    pub fn register_ecc_fault_handler(&mut self) {
        self.handler_registered = true;
    }

    /// Whether a user-level ECC fault handler is registered.
    #[must_use]
    pub fn has_ecc_fault_handler(&self) -> bool {
        self.handler_registered
    }

    /// `WatchMemory(address, size)`: arms ECC watchpoints over the region.
    ///
    /// Per the paper the region and size must be cache-line aligned. The
    /// sequence per line: pin its page (under [`SwapPolicy::PinWatchedPages`]),
    /// flush the line, save the original data in kernel-private memory, then
    /// bus-lock → ECC off → write scrambled data → ECC on.
    ///
    /// # Errors
    ///
    /// * [`OsError::Misaligned`] if `vaddr` or `size` is not line-aligned;
    /// * [`OsError::AlreadyWatched`] on overlap with an existing region;
    /// * [`OsError::OutOfMemory`] if pages cannot be pinned;
    /// * [`OsError::OutOfRange`] if the region leaves the address space.
    pub fn watch_memory(&mut self, vaddr: u64, size: u64) -> Result<(), OsError> {
        let ls = self.line_size();
        if !vaddr.is_multiple_of(ls) {
            return Err(OsError::Misaligned {
                value: vaddr,
                required: ls,
            });
        }
        if size == 0 || !size.is_multiple_of(ls) {
            return Err(OsError::Misaligned {
                value: size,
                required: ls,
            });
        }
        if vaddr + size > VA_LIMIT {
            return Err(OsError::OutOfRange {
                vaddr: vaddr + size,
            });
        }
        if let Some(existing) = self.watch.overlapping_region(vaddr, size) {
            return Err(OsError::AlreadyWatched { existing });
        }

        let start_cycles = self.machine.clock().cycles();
        self.watch.insert_region(vaddr, size);
        let lines = size / ls;
        for i in 0..lines {
            let vline = vaddr + i * ls;
            if self.swap_policy == SwapPolicy::PinWatchedPages {
                if let Err(e) = self.vm.pin(&mut *self.machine, vline) {
                    // Roll back the partially armed region: disarm the lines
                    // already scrambled, unpin their pages, drop the region.
                    let (_, armed) = self
                        .watch
                        .remove_region(vaddr)
                        .expect("region was just inserted");
                    for line in armed {
                        if let Some(phys) = line.phys_line {
                            self.disarm_line_at(phys, &line.original, line.codes);
                        }
                        self.vm.unpin(line.vline);
                    }
                    return Err(e);
                }
            }
            let (phys, _) = self
                .vm
                .translate(&mut *self.machine, vline)
                .expect("page pinned or just resident");
            self.drain_evictions();
            let phys_line = phys & !(ls - 1);
            // Authoritative data may be dirty in cache: flush first, then
            // read the original from memory.
            self.machine.flush_range(phys_line, ls);
            let mut original = self.line_pool.pop().unwrap_or_default();
            original.resize(ls as usize, 0);
            self.machine.peek_into(phys_line, &mut original);
            // The disarm fast path needs the ECC codes of `original`. A line
            // whose dirty bit is clear already stores exactly those codes
            // (clean means code == encode(data)); only lines carrying stale
            // or injected codes pay for a fresh encode.
            let codes = <&[u8; 64]>::try_from(original.as_slice()).ok().map(|data| {
                let ctl = self.machine.controller();
                ctl.line_codes_if_clean(phys_line)
                    .unwrap_or_else(|| ctl.encode_line(data))
            });
            self.arm_line_at(phys_line, &original);
            self.watch.insert_line(WatchedLine {
                region_vaddr: vaddr,
                vline,
                phys_line: Some(phys_line),
                original,
                codes,
            });
        }
        self.stats.watch_calls += 1;
        self.klog.push(
            self.machine.clock().cycles(),
            KernelEvent::Watched { vaddr, size },
        );
        // Top up to the calibrated syscall cost (Table 2: 2.0 µs for a
        // one-line region; later lines cost only the marginal kernel work).
        let budget = self.machine.cost().watch_memory_cycles
            + (lines - 1) * self.machine.cost().watch_extra_line_cycles;
        let spent = self.machine.clock().cycles() - start_cycles;
        self.machine.compute(budget.saturating_sub(spent));
        Ok(())
    }

    /// `DisableWatchMemory(address)`: disarms the watched region starting at
    /// `vaddr`, restoring original data and unpinning pages.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::NotWatched`] if no region starts at `vaddr`.
    pub fn disable_watch_memory(&mut self, vaddr: u64) -> Result<(), OsError> {
        let start_cycles = self.machine.clock().cycles();
        let (_, lines) = self
            .watch
            .remove_region(vaddr)
            .ok_or(OsError::NotWatched { vaddr })?;
        let n = lines.len() as u64;
        for line in lines {
            if let Some(phys) = line.phys_line {
                self.disarm_line_at(phys, &line.original, line.codes);
            }
            // Swapped-out armed lines (swap-aware policy) hold scrambled
            // data in swap; restore it lazily by rewriting through the VM.
            else {
                // Fault the page in *without* re-arming (the region is
                // already removed from the registry), then restore.
                let (phys, _) = self
                    .vm
                    .translate(&mut *self.machine, line.vline)
                    .expect("swap-in for unwatch");
                self.drain_evictions();
                let ls = self.line_size();
                self.disarm_line_at(phys & !(ls - 1), &line.original, line.codes);
            }
            if self.swap_policy == SwapPolicy::PinWatchedPages {
                self.vm.unpin(line.vline);
            }
            if self.line_pool.len() < 1024 {
                self.line_pool.push(line.original);
            }
        }
        self.stats.disable_calls += 1;
        self.klog.push(
            self.machine.clock().cycles(),
            KernelEvent::Unwatched { vaddr },
        );
        let budget = self.machine.cost().disable_watch_cycles
            + n.saturating_sub(1) * self.machine.cost().disable_extra_line_cycles;
        let spent = self.machine.clock().cycles() - start_cycles;
        self.machine.compute(budget.saturating_sub(spent));
        Ok(())
    }

    /// The watched region `(start, size)` containing `vaddr`, if any.
    #[must_use]
    pub fn watched_region_containing(&self, vaddr: u64) -> Option<(u64, u64)> {
        self.watch.region_containing(vaddr)
    }

    /// Number of currently watched regions.
    #[must_use]
    pub fn watched_region_count(&self) -> usize {
        self.watch.region_count()
    }

    /// Number of currently watched cache lines.
    #[must_use]
    pub fn watched_line_count(&self) -> usize {
        self.watch.line_count()
    }

    /// Starts of all watched regions (unspecified order; used by
    /// [`procfs::watchlist`]).
    #[must_use]
    pub fn watch_registry_region_starts(&self) -> Vec<u64> {
        self.watch.region_starts()
    }

    // ------------------------------------------------------------------
    // Scrub coordination (paper §2.2.2, "Dealing with ECC Memory Scrubbing")
    // ------------------------------------------------------------------

    /// Runs a scheduled scrub cycle if the configured interval has elapsed.
    fn maybe_scrub(&mut self) {
        let Some(interval) = self.scrub_interval else {
            return;
        };
        let now = self.machine.clock().cycles();
        if now.saturating_sub(self.last_scrub) >= interval {
            self.run_scrub_cycle();
        }
    }

    /// Coordinates one full scrub pass: temporarily disarms every watched
    /// line, blocks the program while the controller scrubs all resident
    /// memory, then re-arms. No-op unless the controller mode scrubs.
    ///
    /// The scan itself is background work (excluded from process CPU time);
    /// the disarm/re-arm sequences are charged to the process, since it is
    /// blocked while the kernel performs them.
    pub fn run_scrub_cycle(&mut self) {
        if !self.machine.controller().mode().scrubs() {
            return;
        }
        // Disarm all lines (program blocked; CPU-charged). The registry and
        // the machine are walked side by side — no per-line lookups, no
        // copies of the saved originals.
        let mut watched_lines = 0u64;
        {
            let machine = &mut *self.machine;
            for line in self.watch.lines() {
                watched_lines += 1;
                if let Some(p) = line.phys_line {
                    Self::disarm_line_on(machine, p, &line.original, line.codes);
                }
            }
        }
        // Scrub everything resident (background).
        let groups = self.machine.controller().memory().resident_frames() as u64
            * (PAGE_BYTES / safemem_ecc::GROUP_BYTES);
        let before = self.machine.clock().cycles();
        self.machine.scrub_step(groups);
        let scan_cycles = groups * self.machine.cost().scrub_group_cycles;
        self.machine.compute(scan_cycles);
        self.background_cycles += self.machine.clock().cycles() - before;
        // Re-arm (CPU-charged).
        {
            let machine = &mut *self.machine;
            for line in self.watch.lines() {
                if let Some(p) = line.phys_line {
                    Self::arm_line_on(machine, p, &line.original);
                }
            }
        }
        self.stats.scrub_cycles += 1;
        self.last_scrub = self.machine.clock().cycles();
        self.klog
            .push(self.last_scrub, KernelEvent::ScrubCycle { watched_lines });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safemem_ecc::{EccMode, FaultKind};

    fn os() -> Os {
        let mut os = Os::with_defaults(1 << 22);
        os.register_ecc_fault_handler();
        os
    }

    #[test]
    fn virtual_rw_roundtrip_across_pages() {
        let mut os = os();
        let data: Vec<u8> = (0..9000).map(|i| (i % 251) as u8).collect();
        os.vwrite(HEAP_BASE + 100, &data).unwrap();
        let mut buf = vec![0u8; data.len()];
        os.vread(HEAP_BASE + 100, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn prot_none_segfaults() {
        let mut os = os();
        os.vwrite(HEAP_BASE, &[1]).unwrap();
        os.mprotect(HEAP_BASE & !(PAGE_BYTES - 1), PAGE_BYTES, Prot::NONE)
            .unwrap();
        assert!(matches!(
            os.vread(HEAP_BASE, &mut [0u8; 1]),
            Err(OsFault::Segv {
                access: AccessKind::Read,
                ..
            })
        ));
        assert!(matches!(
            os.vwrite(HEAP_BASE, &[1]),
            Err(OsFault::Segv {
                access: AccessKind::Write,
                ..
            })
        ));
        os.mprotect(HEAP_BASE & !(PAGE_BYTES - 1), PAGE_BYTES, Prot::READ_WRITE)
            .unwrap();
        os.vread(HEAP_BASE, &mut [0u8; 1]).unwrap();
    }

    #[test]
    fn read_only_allows_reads_blocks_writes() {
        let mut os = os();
        os.vwrite(HEAP_BASE, &[7]).unwrap();
        os.mprotect(HEAP_BASE & !(PAGE_BYTES - 1), PAGE_BYTES, Prot::READ)
            .unwrap();
        let mut b = [0u8; 1];
        os.vread(HEAP_BASE, &mut b).unwrap();
        assert_eq!(b, [7]);
        assert!(os.vwrite(HEAP_BASE, &[8]).is_err());
    }

    #[test]
    fn watch_alignment_validated() {
        let mut os = os();
        assert!(matches!(
            os.watch_memory(HEAP_BASE + 1, 64),
            Err(OsError::Misaligned { .. })
        ));
        assert!(matches!(
            os.watch_memory(HEAP_BASE, 63),
            Err(OsError::Misaligned { .. })
        ));
        assert!(matches!(
            os.watch_memory(HEAP_BASE, 0),
            Err(OsError::Misaligned { .. })
        ));
    }

    #[test]
    fn watch_overlap_rejected() {
        let mut os = os();
        os.watch_memory(HEAP_BASE, 128).unwrap();
        assert_eq!(
            os.watch_memory(HEAP_BASE + 64, 64),
            Err(OsError::AlreadyWatched {
                existing: HEAP_BASE
            })
        );
    }

    #[test]
    fn first_read_faults_and_unwatch_restores() {
        let mut os = os();
        os.vwrite(HEAP_BASE, &[0xAB; 128]).unwrap();
        os.watch_memory(HEAP_BASE, 128).unwrap();
        assert!(os.vm().is_pinned(HEAP_BASE), "watched pages are pinned");

        let fault = os.vread(HEAP_BASE + 70, &mut [0u8; 4]).unwrap_err();
        let OsFault::Ecc(user) = fault else {
            panic!("expected ECC fault, got {fault:?}")
        };
        assert!(user.signature_ok);
        assert_eq!(user.region_vaddr, HEAP_BASE);
        assert_eq!(user.line_vaddr, HEAP_BASE + 64);
        assert_eq!(user.access, AccessKind::Read);

        os.disable_watch_memory(HEAP_BASE).unwrap();
        assert!(!os.vm().is_pinned(HEAP_BASE));
        let mut buf = [0u8; 128];
        os.vread(HEAP_BASE, &mut buf).unwrap();
        assert_eq!(buf, [0xAB; 128]);
    }

    #[test]
    fn store_to_watched_line_faults() {
        let mut os = os();
        os.watch_memory(HEAP_BASE, 64).unwrap();
        let fault = os.vwrite(HEAP_BASE + 8, &[1, 2]).unwrap_err();
        assert!(matches!(
            fault,
            OsFault::Ecc(UserEccFault {
                access: AccessKind::Write,
                ..
            })
        ));
    }

    #[test]
    fn unwatched_hardware_error_panics_kernel() {
        let mut os = os();
        os.vwrite(HEAP_BASE, &[1; 64]).unwrap();
        // Find the physical placement, flush, and corrupt two bits.
        let phys = os.vm.translate_resident(HEAP_BASE).unwrap();
        os.machine_mut().flush_range(phys, 64);
        os.machine_mut()
            .controller_mut()
            .inject_multi_bit_error(phys);
        let fault = os.vread(HEAP_BASE, &mut [0u8; 8]).unwrap_err();
        assert!(matches!(fault, OsFault::HardwareError { .. }));
        assert_eq!(os.stats().hardware_panics, 1);
    }

    #[test]
    fn hardware_error_on_watched_line_fails_signature() {
        let mut os = os();
        os.vwrite(HEAP_BASE, &[5; 64]).unwrap();
        os.watch_memory(HEAP_BASE, 64).unwrap();
        // A real hardware error lands on the scrambled line: flip two MORE
        // bits so the content is scramble-mask ⊕ extra-bits ≠ signature.
        let phys = os.vm.translate_resident(HEAP_BASE).unwrap();
        os.machine_mut()
            .controller_mut()
            .inject_multi_bit_error(phys);
        let fault = os.vread(HEAP_BASE, &mut [0u8; 8]).unwrap_err();
        let OsFault::Ecc(user) = fault else {
            panic!("expected routed fault")
        };
        assert!(!user.signature_ok, "must be classified as hardware error");
    }

    #[test]
    fn without_handler_watched_fault_is_a_panic() {
        let mut os = Os::with_defaults(1 << 22);
        os.watch_memory(HEAP_BASE, 64).unwrap();
        let fault = os.vread(HEAP_BASE, &mut [0u8; 1]).unwrap_err();
        assert!(matches!(fault, OsFault::HardwareError { .. }));
    }

    #[test]
    fn single_bit_hardware_errors_invisible_to_program() {
        let mut os = os();
        os.vwrite(HEAP_BASE, &[9; 64]).unwrap();
        let phys = os.vm.translate_resident(HEAP_BASE).unwrap();
        os.machine_mut().flush_range(phys, 64);
        os.machine_mut()
            .controller_mut()
            .inject_data_error(phys, 12);
        let mut buf = [0u8; 64];
        os.vread(HEAP_BASE, &mut buf).unwrap();
        assert_eq!(buf, [9; 64], "corrected transparently");
        assert_eq!(os.machine().controller().stats().corrected_single_bit, 1);
    }

    #[test]
    fn watch_costs_the_calibrated_syscall_time() {
        let mut os = os();
        os.vwrite(HEAP_BASE, &[1; 64]).unwrap();
        let t0 = os.total_cycles();
        os.watch_memory(HEAP_BASE, 64).unwrap();
        let spent = os.total_cycles() - t0;
        assert_eq!(spent, os.machine().cost().watch_memory_cycles);
    }

    #[test]
    fn io_wait_excluded_from_cpu_time() {
        let mut os = os();
        os.compute(1000);
        os.io_wait_ns(1_000_000);
        assert_eq!(os.cpu_cycles(), 1000);
        assert!(os.total_cycles() > 1000);
    }

    #[test]
    fn scrub_cycle_preserves_watchpoints() {
        let mut os = os();
        os.machine_mut()
            .controller_mut()
            .set_mode(safemem_ecc::EccMode::CorrectAndScrub);
        os.vwrite(HEAP_BASE, &[3; 64]).unwrap();
        os.watch_memory(HEAP_BASE, 64).unwrap();
        os.run_scrub_cycle();
        assert_eq!(os.stats().scrub_cycles, 1);
        // Scrubbing repaired nothing and did not fire the watchpoint; the
        // first program access still faults.
        assert!(matches!(
            os.vread(HEAP_BASE, &mut [0u8; 1]),
            Err(OsFault::Ecc(UserEccFault {
                signature_ok: true,
                ..
            }))
        ));
        // And after unwatching, the data is intact.
        os.disable_watch_memory(HEAP_BASE).unwrap();
        let mut buf = [0u8; 64];
        os.vread(HEAP_BASE, &mut buf).unwrap();
        assert_eq!(buf, [3; 64]);
    }

    #[test]
    fn scrub_scan_does_not_count_as_cpu_time() {
        let mut os = os();
        os.machine_mut()
            .controller_mut()
            .set_mode(safemem_ecc::EccMode::CorrectAndScrub);
        os.vwrite(HEAP_BASE, &[3; 64]).unwrap();
        let cpu_before = os.cpu_cycles();
        os.run_scrub_cycle();
        assert_eq!(
            os.cpu_cycles(),
            cpu_before,
            "no watched lines → pure background"
        );
    }

    #[test]
    fn scheduled_scrubbing_runs_and_preserves_watchpoints() {
        let mut os = Os::new(OsConfig {
            phys_bytes: 1 << 22,
            scrub_interval_cycles: Some(200_000),
            ..OsConfig::default()
        });
        os.register_ecc_fault_handler();
        os.machine_mut()
            .controller_mut()
            .set_mode(safemem_ecc::EccMode::CorrectAndScrub);
        os.vwrite(HEAP_BASE, &[9u8; 64]).unwrap();
        os.watch_memory(HEAP_BASE, 64).unwrap();
        // Inject a latent hardware error the scrubber should repair.
        os.vwrite(HEAP_BASE + 4096, &[1u8; 64]).unwrap();
        let phys = os.vm().translate_resident(HEAP_BASE + 4096).unwrap();
        os.machine_mut().flush_range(phys, 64);
        os.machine_mut().controller_mut().inject_data_error(phys, 2);
        // Plenty of activity: the scheduled scrubs fire along the way.
        for i in 0..64u64 {
            os.compute(50_000);
            os.vwrite(HEAP_BASE + 8192 + i * 64, &[i as u8; 64])
                .unwrap();
        }
        assert!(
            os.stats().scrub_cycles >= 5,
            "scrubs ran: {}",
            os.stats().scrub_cycles
        );
        assert!(
            os.machine().controller().stats().scrub_corrections >= 1,
            "the latent error was repaired by scrubbing"
        );
        // The watchpoint survived every scrub cycle.
        assert!(matches!(
            os.vread(HEAP_BASE, &mut [0u8; 1]),
            Err(OsFault::Ecc(UserEccFault {
                signature_ok: true,
                ..
            }))
        ));
    }

    #[test]
    fn swap_aware_policy_survives_eviction() {
        let mut config = OsConfig {
            phys_bytes: 8 * PAGE_BYTES,
            swap_policy: SwapPolicy::SwapAware,
            ..OsConfig::default()
        };
        config.cost.cpu_hz = 2_400_000_000;
        let mut os = Os::new(config);
        os.register_ecc_fault_handler();
        os.vwrite(HEAP_BASE, &[0x77; 64]).unwrap();
        os.watch_memory(HEAP_BASE, 64).unwrap();
        assert!(!os.vm().is_pinned(HEAP_BASE), "swap-aware does not pin");

        // Blow through physical memory so the watched page gets evicted.
        for i in 0..32u64 {
            os.vwrite(HEAP_BASE + (i + 4) * PAGE_BYTES, &[i as u8; 32])
                .unwrap();
        }
        assert!(!os.vm().is_resident(HEAP_BASE), "watched page evicted");

        // Touching the watched data swaps the page in, re-arms, and faults.
        let fault = os.vread(HEAP_BASE, &mut [0u8; 4]).unwrap_err();
        assert!(matches!(
            fault,
            OsFault::Ecc(UserEccFault {
                signature_ok: true,
                ..
            })
        ));

        // Unwatch and verify contents survived the round trip.
        os.disable_watch_memory(HEAP_BASE).unwrap();
        let mut buf = [0u8; 64];
        os.vread(HEAP_BASE, &mut buf).unwrap();
        assert_eq!(buf, [0x77; 64]);
    }

    #[test]
    fn pinned_policy_limits_watchable_memory() {
        let mut os = Os::with_defaults(4 * PAGE_BYTES);
        os.register_ecc_fault_handler();
        // Watch one line in each of 5 pages: the 5th pin must fail.
        let mut failed = false;
        for i in 0..5u64 {
            if os.watch_memory(HEAP_BASE + i * PAGE_BYTES, 64).is_err() {
                failed = true;
            }
        }
        assert!(failed, "pinning policy must run out of pinnable pages");
    }

    #[test]
    fn failed_multi_line_watch_rolls_back_completely() {
        // A region spanning two pages where only the first page can be
        // pinned: the call must fail without leaving a half-armed region.
        let mut os = Os::with_defaults(8 * PAGE_BYTES);
        os.register_ecc_fault_handler();
        let region = HEAP_BASE + PAGE_BYTES - 64; // straddles a page boundary
        os.vwrite(region, &[0x77; 128]).unwrap();
        // Allow exactly one more pinned page.
        let already = os.vm().stats().pinned_pages;
        os.vm_set_max_pinned(already + 1);
        let err = os.watch_memory(region, 128).unwrap_err();
        assert_eq!(err, OsError::OutOfMemory);
        assert_eq!(os.watched_region_count(), 0, "no residual region");
        assert!(!os.vm().is_pinned(region), "first page unpinned again");
        // The data is intact and unwatched: accesses are clean.
        let mut buf = [0u8; 128];
        os.vread(region, &mut buf).unwrap();
        assert_eq!(buf, [0x77; 128]);
    }

    #[test]
    fn disable_watch_of_unknown_region_errors() {
        let mut os = os();
        assert_eq!(
            os.disable_watch_memory(HEAP_BASE),
            Err(OsError::NotWatched { vaddr: HEAP_BASE })
        );
    }

    #[test]
    fn scramble_fault_kind_is_multibit() {
        // End-to-end sanity: the fault the controller raises for a watched
        // line is an uncorrectable multi-bit fault, not a corrected single.
        let mut os = os();
        os.watch_memory(HEAP_BASE, 64).unwrap();
        let _ = os.vread(HEAP_BASE, &mut [0u8; 1]);
        let faults = os.machine_mut().take_faults();
        assert!(!faults.is_empty());
        assert!(faults
            .iter()
            .all(|f| f.kind == FaultKind::UncorrectableData));
    }

    #[test]
    fn kernel_log_records_the_story() {
        let mut os = os();
        os.vwrite(HEAP_BASE, &[1u8; 64]).unwrap();
        os.watch_memory(HEAP_BASE, 64).unwrap();
        let _ = os.vread(HEAP_BASE, &mut [0u8; 1]);
        os.disable_watch_memory(HEAP_BASE).unwrap();
        let text = os.kernel_log().render();
        assert!(text.contains("watch region"), "{text}");
        assert!(text.contains("→ user handler (access)"), "{text}");
        assert!(text.contains("unwatch region"), "{text}");
    }

    #[test]
    fn mode_queries() {
        let os = os();
        assert_eq!(os.machine().controller().mode(), EccMode::CorrectError);
        assert_eq!(os.line_size(), 64);
        assert_eq!(os.watched_region_count(), 0);
    }
}
