//! Property-based tests for the ECC substrate.

use proptest::prelude::*;
use safemem_ecc::codec::{Codec, Decoded};
use safemem_ecc::{EccController, EccMode, ScrambleScheme};

proptest! {
    /// Encoding then decoding any word is clean.
    #[test]
    fn prop_roundtrip_clean(data: u64) {
        let codec = Codec::new();
        prop_assert_eq!(codec.decode(data, codec.encode(data)), Decoded::Clean);
    }

    /// Any single flipped data bit is corrected back to the original word.
    #[test]
    fn prop_single_data_bit_corrected(data: u64, bit in 0u8..64) {
        let codec = Codec::new();
        let code = codec.encode(data);
        prop_assert_eq!(
            codec.decode(data ^ (1u64 << bit), code),
            Decoded::CorrectedData { data, bit }
        );
    }

    /// Any double data-bit flip is detected as uncorrectable (never silently
    /// miscorrected).
    #[test]
    fn prop_double_data_bits_detected(data: u64, a in 0u8..64, b in 0u8..64) {
        prop_assume!(a != b);
        let codec = Codec::new();
        let code = codec.encode(data);
        let damaged = data ^ (1u64 << a) ^ (1u64 << b);
        prop_assert!(codec.decode(damaged, code).is_uncorrectable());
    }

    /// A data flip plus a check flip is detected as uncorrectable.
    #[test]
    fn prop_mixed_double_detected(data: u64, a in 0u8..64, b in 0u8..8) {
        let codec = Codec::new();
        let code = codec.encode(data);
        let decoded = codec.decode(data ^ (1u64 << a), code ^ (1u8 << b));
        prop_assert!(decoded.is_uncorrectable());
    }

    /// The default scramble faults with its fixed signature for every word.
    #[test]
    fn prop_scramble_always_uncorrectable(data: u64) {
        let codec = Codec::new();
        let scheme = ScrambleScheme::default();
        let decoded = codec.decode(scheme.apply(data), codec.encode(data));
        prop_assert_eq!(decoded, Decoded::Uncorrectable { syndrome: scheme.syndrome() });
    }

    /// Controller read returns exactly what was last written, for arbitrary
    /// (addr, payload) pairs, including unaligned group-straddling spans.
    #[test]
    fn prop_controller_roundtrip(addr in 0u64..60_000, payload in proptest::collection::vec(any::<u8>(), 1..200)) {
        let mut c = EccController::new(1 << 16);
        c.write(addr, &payload);
        let mut buf = vec![0u8; payload.len()];
        c.read(addr, &mut buf).unwrap();
        prop_assert_eq!(buf, payload);
    }

    /// Overlapping writes behave like a plain byte array (last write wins per
    /// byte), regardless of ECC bookkeeping.
    #[test]
    fn prop_controller_matches_shadow_array(
        writes in proptest::collection::vec(
            (0u64..4000, proptest::collection::vec(any::<u8>(), 1..64)),
            1..20
        )
    ) {
        let mut c = EccController::new(1 << 16);
        let mut shadow = vec![0u8; 8192];
        for (addr, data) in &writes {
            c.write(*addr, data);
            shadow[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
        }
        let mut buf = vec![0u8; 8192];
        c.read(0, &mut buf).unwrap();
        prop_assert_eq!(buf, shadow);
    }

    /// A random single-bit hardware error anywhere in a written region is
    /// transparently healed by a read in CorrectError mode.
    #[test]
    fn prop_hardware_single_bit_healed(word: u64, bit in 0u8..64, group in 0u64..64) {
        let mut c = EccController::new(1 << 16);
        let addr = group * 8;
        c.write(addr, &word.to_le_bytes());
        c.inject_data_error(addr, bit);
        let mut buf = [0u8; 8];
        c.read(addr, &mut buf).unwrap();
        prop_assert_eq!(u64::from_le_bytes(buf), word);
    }

    /// Scrubbing an arbitrary set of damaged groups repairs all of them
    /// within one full pass, in CorrectAndScrub mode.
    #[test]
    fn prop_scrub_heals_everything(damage in proptest::collection::btree_set(0u64..512, 1..20)) {
        let mut c = EccController::new(4096);
        c.set_mode(EccMode::CorrectAndScrub);
        for g in &damage {
            c.write(g * 8, &0xABCDu64.to_le_bytes());
            c.inject_data_error(g * 8, (g % 64) as u8);
        }
        c.scrub_step(512);
        for g in &damage {
            prop_assert_eq!(c.memory().read_group(g * 8).0, 0xABCD);
        }
    }
}
