//! Property tests for the SafeMem scramble trick (paper §2.2.2, Figure 2).
//!
//! The trick's whole contract, end to end: for *any* stored data word at
//! *any* group address, rewriting the word with the scheme's 3 fixed bits
//! flipped **while ECC is disabled** leaves a stale code that decodes as an
//! uncorrectable multi-bit error on the next verified read — never a
//! silently-corrected single-bit error — with exactly the scheme's fixed
//! syndrome signature; and unscrambling (the same 3-bit flip, ECC still
//! disabled) restores the original word to a clean, readable group.

use proptest::prelude::*;
use safemem_ecc::{Codec, Decoded, EccController, FaultKind, ScrambleScheme, GROUP_BYTES};

/// Controller size used by the address-sweeping properties.
const MEM_BYTES: u64 = 1 << 16;

/// A group-aligned physical address strategy covering the whole controller.
fn group_addr() -> impl Strategy<Value = u64> {
    (0..MEM_BYTES / GROUP_BYTES).prop_map(|g| g * GROUP_BYTES)
}

/// Any valid 3-bit scramble triple, not just the canonical default: the
/// drawn positions are deterministically repaired to the nearest valid
/// triple (distinct positions whose syndrome the controller cannot
/// correct), so every case still lands on a different scheme.
fn valid_scheme() -> impl Strategy<Value = ScrambleScheme> {
    (0u8..64, 0u8..64, 0u8..64).prop_map(|(a, b, c)| {
        for step in 0u8..64 {
            let candidate = [
                a,
                b.wrapping_add(step) % 64,
                c.wrapping_add(step.wrapping_mul(2)).wrapping_add(1) % 64,
            ];
            if let Ok(scheme) = ScrambleScheme::new(candidate) {
                return scheme;
            }
        }
        ScrambleScheme::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Codec level: a scrambled word against its stale code is always an
    /// uncorrectable syndrome — the scheme's own fixed signature — and the
    /// scramble is an involution that restores the original word.
    #[test]
    fn scramble_always_decodes_uncorrectable_and_unscramble_restores(data: u64) {
        let codec = Codec::new();
        let scheme = ScrambleScheme::default();
        let stale_code = codec.encode(data);
        let scrambled = scheme.apply(data);
        prop_assert_eq!(scrambled.count_ones().abs_diff(data.count_ones()) % 2, 1,
            "3 flips always change parity");
        match codec.decode(scrambled, stale_code) {
            Decoded::Uncorrectable { syndrome } => {
                prop_assert_eq!(syndrome, scheme.syndrome(), "fixed signature");
            }
            other => return Err(TestCaseError::fail(format!(
                "scrambled word decoded as {other:?} — the controller would hide the watchpoint"
            ))),
        }
        let restored = scheme.apply(scrambled);
        prop_assert_eq!(restored, data, "involution");
        prop_assert!(matches!(codec.decode(restored, stale_code), Decoded::Clean),
            "the stale code is the *original* code, so the restored word is clean");
    }

    /// The same holds for every valid triple, not just the canonical one —
    /// the validity check in `ScrambleScheme::new` is exactly what makes the
    /// trick sound.
    #[test]
    fn every_valid_triple_is_a_sound_scramble(data: u64, scheme in valid_scheme()) {
        let codec = Codec::new();
        let stale_code = codec.encode(data);
        match codec.decode(scheme.apply(data), stale_code) {
            Decoded::Uncorrectable { syndrome } => {
                prop_assert_eq!(syndrome, scheme.syndrome());
            }
            other => return Err(TestCaseError::fail(format!("decoded as {other:?}"))),
        }
        prop_assert!(scheme.matches(data, scheme.apply(data)));
        prop_assert_eq!(scheme.apply(scheme.apply(data)), data);
    }

    /// Controller level, arbitrary data at an arbitrary group address: the
    /// full arm / trip / disarm sequence through the ECC-disable window.
    #[test]
    fn armed_group_faults_on_next_read_then_unscrambling_restores(
        data: u64,
        addr in group_addr(),
    ) {
        let scheme = ScrambleScheme::default();
        let mut ctl = EccController::new(MEM_BYTES);

        // Store the word normally: data and matching code.
        ctl.write(addr, &data.to_le_bytes());

        // Arm: flip the 3 scramble bits while ECC is disabled — the stored
        // code goes stale on purpose.
        ctl.set_enabled(false);
        ctl.write(addr, &scheme.apply(data).to_le_bytes());
        ctl.set_enabled(true);

        // The next verified read must raise an uncorrectable fault carrying
        // the scheme's signature, at exactly this group.
        let mut buf = [0u8; GROUP_BYTES as usize];
        let fault = ctl.read(addr, &mut buf).expect_err("armed group must fault");
        prop_assert_eq!(fault.kind, FaultKind::UncorrectableData);
        prop_assert_eq!(fault.group_addr, addr);
        prop_assert_eq!(fault.syndrome, scheme.syndrome());
        // Hardware delivers the raw (scrambled) bytes with the fault, and
        // the handler can verify the signature from them.
        let delivered = u64::from_le_bytes(buf);
        prop_assert!(scheme.matches(data, delivered), "signature check identifies the watchpoint");

        // Disarm: flip the same 3 bits back while ECC is disabled. The stale
        // code was never rewritten, so the group is clean again.
        ctl.set_enabled(false);
        ctl.write(addr, &scheme.apply(delivered).to_le_bytes());
        ctl.set_enabled(true);
        let mut restored = [0u8; GROUP_BYTES as usize];
        ctl.read(addr, &mut restored).expect("disarmed group reads clean");
        prop_assert_eq!(u64::from_le_bytes(restored), data, "original word restored");
    }
}
