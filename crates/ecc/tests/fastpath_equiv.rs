//! Differential equivalence suite for the fast-path memory pipeline.
//!
//! The controller/memory/codec rewrite (table-driven codec, dense frames,
//! bulk ranges, cached scrub plan) must be *byte-identical* in observable
//! behaviour to the original per-group implementation. This suite retains
//! that original implementation — `HashMap` frames, masked-popcount encode,
//! linear column-scan decode, one `read_group`/`write_group` round trip per
//! group — as a naive reference model, then drives both through random
//! operation sequences: unaligned reads and writes, error injections,
//! scrub steps, mode and enable toggles, and full scramble arm/fault/restore
//! sequences. After every operation the returned data and faults must match;
//! at the end, `ControllerStats`, the drained fault sequences, and the raw
//! stored bytes + codes of every group must match.

use std::collections::HashMap;

use proptest::prelude::*;
use safemem_ecc::codec::{COLUMNS, ROW_MASKS};
use safemem_ecc::{
    ControllerStats, EccController, EccFault, EccMode, FaultKind, ScrambleScheme, GROUP_BYTES,
};

const MEM_BYTES: u64 = 1 << 15; // 8 frames
const FRAME_BYTES: u64 = 4096;

// ---------------------------------------------------------------------------
// Naive reference: the pre-fast-path implementation, preserved verbatim in
// structure (per-group loops, hash-probed frames, popcount codec).
// ---------------------------------------------------------------------------

fn ref_encode(data: u64) -> u8 {
    let mut code = 0u8;
    for (j, mask) in ROW_MASKS.iter().enumerate() {
        let parity = (data & mask).count_ones() & 1;
        code |= (parity as u8) << j;
    }
    code
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefDecoded {
    Clean,
    CorrectedData { data: u64, bit: u8 },
    CorrectedCheck,
    Uncorrectable { syndrome: u8 },
}

fn ref_decode(data: u64, code: u8) -> RefDecoded {
    let syndrome = ref_encode(data) ^ code;
    if syndrome == 0 {
        return RefDecoded::Clean;
    }
    if syndrome.count_ones().is_multiple_of(2) {
        return RefDecoded::Uncorrectable { syndrome };
    }
    if syndrome.count_ones() == 1 {
        return RefDecoded::CorrectedCheck;
    }
    match COLUMNS.iter().position(|&c| c == syndrome) {
        Some(bit) => RefDecoded::CorrectedData {
            data: data ^ (1u64 << bit),
            bit: bit as u8,
        },
        None => RefDecoded::Uncorrectable { syndrome },
    }
}

struct RefMemory {
    frames: HashMap<u64, (Vec<u8>, Vec<u8>)>,
    size: u64,
}

impl RefMemory {
    fn new(size: u64) -> Self {
        RefMemory {
            frames: HashMap::new(),
            size: size.div_ceil(FRAME_BYTES) * FRAME_BYTES,
        }
    }

    fn check_range(&self, addr: u64, len: u64) {
        assert!(
            addr.checked_add(len).is_some_and(|end| end <= self.size),
            "physical access out of range: addr={addr:#x} len={len}"
        );
    }

    fn read_group(&self, addr: u64) -> (u64, u8) {
        let group_addr = addr & !(GROUP_BYTES - 1);
        self.check_range(group_addr, GROUP_BYTES);
        let frame_addr = group_addr & !(FRAME_BYTES - 1);
        match self.frames.get(&frame_addr) {
            None => (0, 0),
            Some((data, codes)) => {
                let off = (group_addr - frame_addr) as usize;
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&data[off..off + 8]);
                (u64::from_le_bytes(bytes), codes[off / 8])
            }
        }
    }

    fn write_group(&mut self, addr: u64, data: u64, code: u8) {
        let group_addr = addr & !(GROUP_BYTES - 1);
        self.check_range(group_addr, GROUP_BYTES);
        let frame_addr = group_addr & !(FRAME_BYTES - 1);
        let (fdata, fcodes) = self
            .frames
            .entry(frame_addr)
            .or_insert_with(|| (vec![0u8; FRAME_BYTES as usize], vec![0u8; 512]));
        let off = (group_addr - frame_addr) as usize;
        fdata[off..off + 8].copy_from_slice(&data.to_le_bytes());
        fcodes[off / 8] = code;
    }

    fn resident_frame_addrs(&self) -> Vec<u64> {
        self.frames.keys().copied().collect()
    }
}

struct RefController {
    mem: RefMemory,
    mode: EccMode,
    enabled: bool,
    bus_locked: bool,
    scrub_cursor: u64,
    stats: ControllerStats,
    outbox: Vec<EccFault>,
}

impl RefController {
    fn new(size: u64) -> Self {
        RefController {
            mem: RefMemory::new(size),
            mode: EccMode::CorrectError,
            enabled: true,
            bus_locked: false,
            scrub_cursor: 0,
            stats: ControllerStats::default(),
            outbox: Vec::new(),
        }
    }

    fn effective_checks(&self) -> bool {
        self.enabled && self.mode.checks()
    }

    fn effective_corrects(&self) -> bool {
        self.enabled && self.mode.corrects()
    }

    fn verify_group(&mut self, group_addr: u64, during_scrub: bool) -> Result<u64, EccFault> {
        let (data, code) = self.mem.read_group(group_addr);
        self.stats.groups_verified += 1;
        match ref_decode(data, code) {
            RefDecoded::Clean => Ok(data),
            RefDecoded::CorrectedData { data: fixed, .. } => {
                if self.effective_corrects() {
                    self.mem.write_group(group_addr, fixed, ref_encode(fixed));
                    self.stats.corrected_single_bit += 1;
                    if during_scrub {
                        self.stats.scrub_corrections += 1;
                    }
                    Ok(fixed)
                } else {
                    self.stats.reported_single_bit += 1;
                    self.outbox.push(EccFault {
                        group_addr,
                        syndrome: ref_encode(data) ^ code,
                        kind: FaultKind::UnrepairedSingleBit,
                    });
                    Ok(data)
                }
            }
            RefDecoded::CorrectedCheck => {
                if self.effective_corrects() {
                    self.mem.write_group(group_addr, data, ref_encode(data));
                    self.stats.corrected_single_bit += 1;
                    if during_scrub {
                        self.stats.scrub_corrections += 1;
                    }
                } else {
                    self.stats.reported_single_bit += 1;
                }
                Ok(data)
            }
            RefDecoded::Uncorrectable { syndrome } => {
                self.stats.uncorrectable += 1;
                let fault = EccFault {
                    group_addr,
                    syndrome,
                    kind: FaultKind::UncorrectableData,
                };
                self.outbox.push(fault);
                Err(fault)
            }
        }
    }

    fn read(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), EccFault> {
        if buf.is_empty() {
            return Ok(());
        }
        self.mem.check_range(addr, buf.len() as u64);
        let mut first_fault = None;
        let end = addr + buf.len() as u64;
        let mut group = addr & !(GROUP_BYTES - 1);
        while group < end {
            let word = if self.effective_checks() {
                match self.verify_group(group, false) {
                    Ok(w) => w,
                    Err(f) => {
                        first_fault.get_or_insert(f);
                        self.mem.read_group(group).0
                    }
                }
            } else {
                self.mem.read_group(group).0
            };
            let bytes = word.to_le_bytes();
            let lo = group.max(addr);
            let hi = (group + GROUP_BYTES).min(end);
            for a in lo..hi {
                buf[(a - addr) as usize] = bytes[(a - group) as usize];
            }
            group += GROUP_BYTES;
        }
        match first_fault {
            None => Ok(()),
            Some(f) => Err(f),
        }
    }

    fn write(&mut self, addr: u64, buf: &[u8]) {
        if buf.is_empty() {
            return;
        }
        self.mem.check_range(addr, buf.len() as u64);
        let end = addr + buf.len() as u64;
        let mut group = addr & !(GROUP_BYTES - 1);
        while group < end {
            let (old, old_code) = self.mem.read_group(group);
            let mut bytes = old.to_le_bytes();
            let lo = group.max(addr);
            let hi = (group + GROUP_BYTES).min(end);
            for a in lo..hi {
                bytes[(a - group) as usize] = buf[(a - addr) as usize];
            }
            let word = u64::from_le_bytes(bytes);
            if self.enabled && self.mode.checks() {
                self.mem.write_group(group, word, ref_encode(word));
                self.stats.groups_encoded += 1;
            } else {
                self.mem.write_group(group, word, old_code);
            }
            group += GROUP_BYTES;
        }
    }

    fn peek(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        if len == 0 {
            return out;
        }
        self.mem.check_range(addr, len as u64);
        let end = addr + len as u64;
        let mut group = addr & !(GROUP_BYTES - 1);
        while group < end {
            let (word, _) = self.mem.read_group(group);
            let bytes = word.to_le_bytes();
            let lo = group.max(addr);
            let hi = (group + GROUP_BYTES).min(end);
            for a in lo..hi {
                out[(a - addr) as usize] = bytes[(a - group) as usize];
            }
            group += GROUP_BYTES;
        }
        out
    }

    fn inject_data_error(&mut self, addr: u64, bit: u8) {
        self.stats.injected_data_bits += 1;
        let (data, code) = self.mem.read_group(addr);
        self.mem.write_group(addr, data ^ (1u64 << bit), code);
    }

    fn inject_code_error(&mut self, addr: u64, bit: u8) {
        self.stats.injected_code_bits += 1;
        let (data, code) = self.mem.read_group(addr);
        self.mem.write_group(addr, data, code ^ (1u8 << bit));
    }

    fn inject_multi_bit_error(&mut self, addr: u64) {
        self.stats.injected_multi_bit += 1;
        let (data, code) = self.mem.read_group(addr);
        self.mem.write_group(addr, data ^ 0b11, code);
    }

    fn scrub_step(&mut self, max_groups: u64) -> u64 {
        if !self.enabled || !self.mode.scrubs() || self.bus_locked {
            return 0;
        }
        let mut frames = self.mem.resident_frame_addrs();
        if frames.is_empty() {
            return 0;
        }
        frames.sort_unstable();
        let groups_per_frame = FRAME_BYTES / GROUP_BYTES;
        let total_groups = frames.len() as u64 * groups_per_frame;
        let mut done = 0;
        while done < max_groups {
            if self.scrub_cursor >= total_groups {
                self.scrub_cursor = 0;
                self.stats.scrub_passes += 1;
            }
            let frame = frames[(self.scrub_cursor / groups_per_frame) as usize];
            let group_addr = frame + (self.scrub_cursor % groups_per_frame) * GROUP_BYTES;
            let _ = self.verify_group(group_addr, true);
            self.stats.scrubbed_groups += 1;
            self.scrub_cursor += 1;
            done += 1;
        }
        done
    }
}

// ---------------------------------------------------------------------------
// Operation language and strategies
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Write {
        addr: u64,
        seed: u8,
        len: usize,
    },
    Read {
        addr: u64,
        len: usize,
    },
    Peek {
        addr: u64,
        len: usize,
    },
    InjectData {
        addr: u64,
        bit: u8,
    },
    InjectCode {
        addr: u64,
        bit: u8,
    },
    InjectMulti {
        addr: u64,
    },
    Scrub {
        max_groups: u64,
    },
    SetMode(EccMode),
    SetEnabled(bool),
    /// The full kernel WatchMemory sequence: lock bus, ECC off, rewrite the
    /// watched word scrambled, ECC on, unlock.
    ScrambleArm {
        addr: u64,
    },
    /// Un-watch: restore the scrambled word's de-scrambled value with ECC on.
    ScrambleRestore {
        addr: u64,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let addr = 0u64..MEM_BYTES - 256;
    let group = (0u64..(MEM_BYTES / GROUP_BYTES) - 1).prop_map(|g| g * GROUP_BYTES);
    prop_oneof![
        (addr.clone(), any::<u8>(), 1usize..128).prop_map(|(addr, seed, len)| Op::Write {
            addr,
            seed,
            len
        }),
        (addr.clone(), 1usize..128).prop_map(|(addr, len)| Op::Read { addr, len }),
        (addr, 1usize..128).prop_map(|(addr, len)| Op::Peek { addr, len }),
        (group.clone(), 0u8..64).prop_map(|(addr, bit)| Op::InjectData { addr, bit }),
        (group.clone(), 0u8..8).prop_map(|(addr, bit)| Op::InjectCode { addr, bit }),
        group.clone().prop_map(|addr| Op::InjectMulti { addr }),
        (1u64..600).prop_map(|max_groups| Op::Scrub { max_groups }),
        prop_oneof![
            Just(EccMode::Disabled),
            Just(EccMode::CheckOnly),
            Just(EccMode::CorrectError),
            Just(EccMode::CorrectAndScrub),
        ]
        .prop_map(Op::SetMode),
        any::<bool>().prop_map(Op::SetEnabled),
        group.clone().prop_map(|addr| Op::ScrambleArm { addr }),
        group.prop_map(|addr| Op::ScrambleRestore { addr }),
    ]
}

/// Deterministic fill pattern so writes carry varied bytes without hauling
/// whole vectors through the strategy.
fn pattern(seed: u8, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| seed.wrapping_add((i as u8).wrapping_mul(167)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random op sequences drive the fast controller and the naive reference
    /// in lockstep; every observable — returned data, per-op faults, final
    /// stats, drained fault log, and raw stored state — must be identical.
    #[test]
    fn fast_path_is_byte_identical_to_naive_reference(
        ops in proptest::collection::vec(op_strategy(), 1..80)
    ) {
        let scheme = ScrambleScheme::default();
        let mut fast = EccController::new(MEM_BYTES);
        let mut naive = RefController::new(MEM_BYTES);
        for op in &ops {
            match *op {
                Op::Write { addr, seed, len } => {
                    let buf = pattern(seed, len);
                    fast.write(addr, &buf);
                    naive.write(addr, &buf);
                }
                Op::Read { addr, len } => {
                    let mut fb = vec![0u8; len];
                    let mut nb = vec![0u8; len];
                    let fr = fast.read(addr, &mut fb);
                    let nr = naive.read(addr, &mut nb);
                    prop_assert_eq!(fr, nr, "read fault mismatch at {:#x}", addr);
                    prop_assert_eq!(&fb, &nb, "read data mismatch at {:#x}", addr);
                }
                Op::Peek { addr, len } => {
                    prop_assert_eq!(fast.peek(addr, len), naive.peek(addr, len));
                }
                Op::InjectData { addr, bit } => {
                    fast.inject_data_error(addr, bit);
                    naive.inject_data_error(addr, bit);
                }
                Op::InjectCode { addr, bit } => {
                    fast.inject_code_error(addr, bit);
                    naive.inject_code_error(addr, bit);
                }
                Op::InjectMulti { addr } => {
                    fast.inject_multi_bit_error(addr);
                    naive.inject_multi_bit_error(addr);
                }
                Op::Scrub { max_groups } => {
                    prop_assert_eq!(fast.scrub_step(max_groups), naive.scrub_step(max_groups));
                }
                Op::SetMode(mode) => {
                    fast.set_mode(mode);
                    naive.mode = mode;
                }
                Op::SetEnabled(enabled) => {
                    fast.set_enabled(enabled);
                    naive.enabled = enabled;
                }
                Op::ScrambleArm { addr } => {
                    // Arm both models from their (identical) current value.
                    let word = u64::from_le_bytes(fast.peek(addr, 8).try_into().unwrap());
                    let scrambled = scheme.apply(word).to_le_bytes();
                    let was_enabled = fast.is_enabled();
                    fast.lock_bus();
                    fast.set_enabled(false);
                    fast.write(addr, &scrambled);
                    fast.set_enabled(was_enabled);
                    fast.unlock_bus();
                    naive.bus_locked = true;
                    naive.enabled = false;
                    naive.write(addr, &scrambled);
                    naive.enabled = was_enabled;
                    naive.bus_locked = false;
                }
                Op::ScrambleRestore { addr } => {
                    let word = u64::from_le_bytes(fast.peek(addr, 8).try_into().unwrap());
                    let restored = scheme.apply(word).to_le_bytes(); // involution
                    fast.write(addr, &restored);
                    naive.write(addr, &restored);
                }
            }
            prop_assert_eq!(
                fast.stats(), naive.stats,
                "stats diverged after {:?}", op
            );
        }
        // Fault sequences must match in content *and order*.
        prop_assert_eq!(fast.take_faults(), std::mem::take(&mut naive.outbox));
        // Raw stored state: every group's data word and stored code.
        for group in (0..MEM_BYTES).step_by(GROUP_BYTES as usize) {
            prop_assert_eq!(
                fast.memory().read_group(group),
                naive.mem.read_group(group),
                "stored group {:#x} diverged", group
            );
        }
    }
}
