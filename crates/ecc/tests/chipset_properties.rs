//! Property test: the chipset register facade always agrees with a shadow
//! model of its architectural state under random register programs.

use proptest::prelude::*;
use safemem_ecc::chipset::{Chipset, Register};
use safemem_ecc::EccMode;

#[derive(Debug, Clone, Copy)]
enum RegOp {
    WriteMode(u64),
    WriteScrub(u64),
    WriteConfig(u64),
    ReadMode,
    ReadScrub,
    ReadConfig,
    ClearStatus,
}

fn ops() -> impl Strategy<Value = Vec<RegOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..4).prop_map(RegOp::WriteMode),
            (0u64..2).prop_map(RegOp::WriteScrub),
            (0u64..4).prop_map(RegOp::WriteConfig),
            Just(RegOp::ReadMode),
            Just(RegOp::ReadScrub),
            Just(RegOp::ReadConfig),
            Just(RegOp::ClearStatus),
        ],
        1..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_registers_track_architectural_state(ops in ops()) {
        let mut chip = Chipset::new(1 << 14);
        // Shadow model.
        let mut mode = 2u64; // CorrectError reset value
        let mut enabled = true;
        let mut locked = false;

        for op in ops {
            match op {
                RegOp::WriteMode(v) => {
                    chip.write_register(Register::ModeControl, v);
                    mode = v & 0b11;
                }
                RegOp::WriteScrub(v) => {
                    chip.write_register(Register::ScrubControl, v);
                    if v & 1 != 0 {
                        mode = 3;
                    } else if mode == 3 {
                        mode = 2;
                    }
                }
                RegOp::WriteConfig(v) => {
                    chip.write_register(Register::GlobalConfig, v);
                    enabled = v & 1 != 0;
                    locked = v & 2 != 0;
                }
                RegOp::ReadMode => {
                    prop_assert_eq!(chip.read_register(Register::ModeControl), mode);
                }
                RegOp::ReadScrub => {
                    prop_assert_eq!(chip.read_register(Register::ScrubControl), u64::from(mode == 3));
                }
                RegOp::ReadConfig => {
                    let v = chip.read_register(Register::GlobalConfig);
                    prop_assert_eq!(v & 1 != 0, enabled);
                    prop_assert_eq!(v & 2 != 0, locked);
                }
                RegOp::ClearStatus => {
                    chip.write_register(Register::ErrorStatus, u64::MAX);
                    prop_assert_eq!(chip.read_register(Register::ErrorStatus), 0);
                }
            }
            // The underlying controller always agrees with the shadow.
            let expected_mode = match mode {
                0 => EccMode::Disabled,
                1 => EccMode::CheckOnly,
                2 => EccMode::CorrectError,
                _ => EccMode::CorrectAndScrub,
            };
            prop_assert_eq!(chip.controller().mode(), expected_mode);
            prop_assert_eq!(chip.controller().is_enabled(), enabled);
            prop_assert_eq!(chip.controller().is_bus_locked(), locked);
        }
    }
}
