//! Cross-checks of the table-driven codec fast path against the defining
//! `ROW_MASKS`/`COLUMNS` matrices.
//!
//! The encode LUT and the syndrome-classification table are *derived* forms
//! of the H matrix; these tests re-derive every entry the slow way — masked
//! popcounts for encoding, the popcount/column-scan decision procedure for
//! classification — over all 64 data bits, all 8 check bits, and all 256
//! syndromes, so any drift between the tables and the matrices fails here
//! rather than deep inside a campaign.

use proptest::prelude::*;
use safemem_ecc::codec::{COLUMNS, ENCODE_LUT, ROW_MASKS, SYNDROME_TABLE};
use safemem_ecc::{Codec, Decoded, SyndromeClass};

/// The original bit-serial encoder: one masked popcount per check bit.
fn encode_by_row_masks(data: u64) -> u8 {
    let mut code = 0u8;
    for (j, mask) in ROW_MASKS.iter().enumerate() {
        let parity = (data & mask).count_ones() & 1;
        code |= (parity as u8) << j;
    }
    code
}

/// The original per-syndrome decision procedure, straight from the Hsiao
/// construction: zero → clean, even weight → uncorrectable, weight 1 → check
/// bit, other odd weight → data bit iff some column matches.
fn classify_by_columns(syndrome: u8) -> SyndromeClass {
    if syndrome == 0 {
        return SyndromeClass::Clean;
    }
    if syndrome.count_ones().is_multiple_of(2) {
        return SyndromeClass::Uncorrectable;
    }
    if syndrome.count_ones() == 1 {
        return SyndromeClass::Check(syndrome.trailing_zeros() as u8);
    }
    match COLUMNS.iter().position(|&c| c == syndrome) {
        Some(bit) => SyndromeClass::Data(bit as u8),
        None => SyndromeClass::Uncorrectable,
    }
}

#[test]
fn encode_lut_matches_row_masks_for_every_data_bit() {
    let codec = Codec::new();
    for bit in 0..64u32 {
        let word = 1u64 << bit;
        assert_eq!(
            codec.encode(word),
            encode_by_row_masks(word),
            "LUT and ROW_MASKS disagree on data bit {bit}"
        );
        // A single data bit's code is its H-matrix column by definition.
        assert_eq!(codec.encode(word), COLUMNS[bit as usize], "bit {bit}");
    }
}

#[test]
fn encode_lut_entries_are_column_xors() {
    for (byte, table) in ENCODE_LUT.iter().enumerate() {
        for (v, &entry) in table.iter().enumerate() {
            let mut expect = 0u8;
            for b in 0..8 {
                if v & (1 << b) != 0 {
                    expect ^= COLUMNS[byte * 8 + b];
                }
            }
            assert_eq!(entry, expect, "ENCODE_LUT[{byte}][{v:#04x}]");
        }
    }
}

#[test]
fn syndrome_table_matches_column_scan_for_all_256_syndromes() {
    for s in 0..=255u8 {
        assert_eq!(
            SYNDROME_TABLE[s as usize],
            classify_by_columns(s),
            "syndrome {s:#04x}"
        );
    }
}

#[test]
fn syndrome_table_covers_every_check_bit() {
    for bit in 0..8u8 {
        assert_eq!(
            SYNDROME_TABLE[(1u8 << bit) as usize],
            SyndromeClass::Check(bit),
            "check bit {bit}"
        );
    }
}

#[test]
fn decode_agrees_with_syndrome_table_for_all_syndromes() {
    // Damaging a clean all-zero word's code by `s` produces syndrome `s`,
    // so decode must land exactly where the table points.
    let codec = Codec::new();
    for s in 0..=255u8 {
        let decoded = codec.decode(0, s);
        let expected = match SYNDROME_TABLE[s as usize] {
            SyndromeClass::Clean => Decoded::Clean,
            SyndromeClass::Data(bit) => Decoded::CorrectedData {
                data: 1u64 << bit,
                bit,
            },
            SyndromeClass::Check(bit) => Decoded::CorrectedCheck { bit },
            SyndromeClass::Uncorrectable => Decoded::Uncorrectable { syndrome: s },
        };
        assert_eq!(decoded, expected, "syndrome {s:#04x}");
    }
}

/// Every bit-plane line code equals the LUT line code, and under either the
/// decoder corrects all 72 single-bit flips and rejects all 2556 double-bit
/// flips per group — the full syndrome space of the (72,64) code, exercised
/// on a patterned line rather than a lucky constant.
#[test]
fn line_codes_agree_and_classify_every_one_and_two_bit_syndrome() {
    let codec = Codec::new();
    let mut line = [0u8; 64];
    for (i, b) in line.iter_mut().enumerate() {
        *b = (i as u8).wrapping_mul(0x9d) ^ 0x5a;
    }
    let via_lut = codec.encode_line(&line);
    let via_planes = codec.encode_line_planes(&line);
    assert_eq!(via_lut, via_planes, "bit-plane batch drifted from the LUT");

    for (g, chunk) in line.chunks_exact(8).enumerate() {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let code = via_planes[g];
        assert_eq!(codec.decode(word, code), Decoded::Clean, "group {g}");

        // All 72 single-bit flips decode back to the original word.
        for pos in 0..72u32 {
            let (d, c) = flip72(word, code, pos);
            let decoded = codec.decode(d, c);
            match decoded {
                Decoded::CorrectedData { data, bit } => {
                    assert!(pos < 64, "group {g}: check flip {pos} read as data");
                    assert_eq!(data, word, "group {g} pos {pos}");
                    assert_eq!(u32::from(bit), pos, "group {g}");
                }
                Decoded::CorrectedCheck { bit } => {
                    assert!(pos >= 64, "group {g}: data flip {pos} read as check");
                    assert_eq!(u32::from(bit), pos - 64, "group {g}");
                }
                other => panic!("group {g} pos {pos}: {other:?}"),
            }
        }

        // All 2556 double-bit flips land on an uncorrectable syndrome.
        for a in 0..72u32 {
            for b in (a + 1)..72u32 {
                let (d, c) = flip72(word, code, a);
                let (d, c) = flip72(d, c, b);
                assert!(
                    matches!(codec.decode(d, c), Decoded::Uncorrectable { .. }),
                    "group {g}: double flip ({a}, {b}) not flagged"
                );
            }
        }
    }
}

/// A (72,64) code word with one bit flipped: data bit `pos` for `pos < 64`,
/// check bit `pos - 64` otherwise.
fn flip72(data: u64, code: u8, pos: u32) -> (u64, u8) {
    if pos < 64 {
        (data ^ (1u64 << pos), code)
    } else {
        (data, code ^ (1u8 << (pos - 64)))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The LUT encoder and the masked-popcount encoder agree on random words.
    #[test]
    fn encode_lut_matches_row_masks_on_random_words(data: u64) {
        let codec = Codec::new();
        prop_assert_eq!(codec.encode(data), encode_by_row_masks(data));
        prop_assert_eq!(codec.encode_bytes(&data.to_le_bytes()), encode_by_row_masks(data));
    }

    /// Byte-slice and word syndromes agree for arbitrary (data, code) pairs.
    #[test]
    fn syndrome_bytes_matches_syndrome(data: u64, code: u8) {
        let codec = Codec::new();
        prop_assert_eq!(
            codec.syndrome_bytes(&data.to_le_bytes(), code),
            codec.syndrome(data, code)
        );
    }
}
