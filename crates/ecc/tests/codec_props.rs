//! Property tests for the Hsiao SEC-DED codecs.
//!
//! The SEC-DED contract is exhaustive by nature: *every* single-bit flip —
//! at any of the 72 positions of a (72,64) code word, or any of the 39
//! positions of a (39,32) word — must be corrected, and *every* double-bit
//! flip must be detected as uncorrectable. Each property therefore iterates
//! all positions / position pairs for each randomly drawn data word, so a
//! run covers the full position space many times over.

use proptest::prelude::*;
use safemem_ecc::codec::{CHECK_BITS, DATA_BITS};
use safemem_ecc::codec32::{CHECK_BITS_32, DATA_BITS_32};
use safemem_ecc::{Codec, Codec32, Decoded, Decoded32};

/// A (72,64) code word with one bit flipped: data bit `pos` for `pos < 64`,
/// check bit `pos - 64` otherwise.
fn flip64(data: u64, code: u8, pos: u32) -> (u64, u8) {
    if pos < DATA_BITS {
        (data ^ (1u64 << pos), code)
    } else {
        (data, code ^ (1u8 << (pos - DATA_BITS)))
    }
}

/// A (39,32) code word with one bit flipped, same layout.
fn flip32(data: u32, code: u8, pos: u32) -> (u32, u8) {
    if pos < DATA_BITS_32 {
        (data ^ (1u32 << pos), code)
    } else {
        (data, code ^ (1u8 << (pos - DATA_BITS_32)))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lossless roundtrip: a freshly encoded word decodes clean.
    #[test]
    fn codec64_roundtrip_is_clean(data: u64) {
        let codec = Codec::new();
        let code = codec.encode(data);
        prop_assert!(matches!(codec.decode(data, code), Decoded::Clean));
        prop_assert_eq!(codec.syndrome(data, code), 0);
    }

    /// Every one of the 72 single-bit flips is corrected back to the
    /// original data word.
    #[test]
    fn codec64_corrects_every_single_bit_position(data: u64) {
        let codec = Codec::new();
        let code = codec.encode(data);
        for pos in 0..(DATA_BITS + CHECK_BITS) {
            let (d, c) = flip64(data, code, pos);
            match codec.decode(d, c) {
                Decoded::CorrectedData { data: fixed, bit } => {
                    prop_assert!(pos < DATA_BITS, "check-bit flip at {pos} decoded as data");
                    prop_assert_eq!(fixed, data);
                    prop_assert_eq!(u32::from(bit), pos);
                }
                Decoded::CorrectedCheck { bit } => {
                    prop_assert!(pos >= DATA_BITS, "data flip at {pos} decoded as check");
                    prop_assert_eq!(u32::from(bit), pos - DATA_BITS);
                }
                other => {
                    return Err(TestCaseError::fail(format!(
                        "flip at {pos} not corrected: {other:?}"
                    )));
                }
            }
        }
    }

    /// Every one of the C(72,2) double-bit flips is detected as
    /// uncorrectable — never miscorrected into wrong data.
    #[test]
    fn codec64_detects_every_double_bit_pair(data: u64) {
        let codec = Codec::new();
        let code = codec.encode(data);
        let total = DATA_BITS + CHECK_BITS;
        for a in 0..total {
            for b in (a + 1)..total {
                let (d, c) = flip64(data, code, a);
                let (d, c) = flip64(d, c, b);
                prop_assert!(
                    codec.decode(d, c).is_uncorrectable(),
                    "double flip ({a},{b}) not flagged: {:?}",
                    codec.decode(d, c)
                );
            }
        }
    }

    /// (39,32) roundtrip.
    #[test]
    fn codec32_roundtrip_is_clean(data: u32) {
        let codec = Codec32::new();
        let code = codec.encode(data);
        prop_assert!(matches!(codec.decode(data, code), Decoded32::Clean));
        prop_assert_eq!(codec.syndrome(data, code), 0);
    }

    /// All 39 single-bit flips of the (39,32) code are corrected.
    #[test]
    fn codec32_corrects_every_single_bit_position(data: u32) {
        let codec = Codec32::new();
        let code = codec.encode(data);
        for pos in 0..(DATA_BITS_32 + CHECK_BITS_32) {
            let (d, c) = flip32(data, code, pos);
            match codec.decode(d, c) {
                Decoded32::CorrectedData { data: fixed, bit } => {
                    prop_assert!(pos < DATA_BITS_32, "check-bit flip at {pos} decoded as data");
                    prop_assert_eq!(fixed, data);
                    prop_assert_eq!(u32::from(bit), pos);
                }
                Decoded32::CorrectedCheck { bit } => {
                    prop_assert!(pos >= DATA_BITS_32, "data flip at {pos} decoded as check");
                    prop_assert_eq!(u32::from(bit), pos - DATA_BITS_32);
                }
                other => {
                    return Err(TestCaseError::fail(format!(
                        "flip at {pos} not corrected: {other:?}"
                    )));
                }
            }
        }
    }

    /// All C(39,2) double-bit flips of the (39,32) code are detected.
    #[test]
    fn codec32_detects_every_double_bit_pair(data: u32) {
        let codec = Codec32::new();
        let code = codec.encode(data);
        let total = DATA_BITS_32 + CHECK_BITS_32;
        for a in 0..total {
            for b in (a + 1)..total {
                let (d, c) = flip32(data, code, a);
                let (d, c) = flip32(d, c, b);
                prop_assert!(
                    codec.decode(d, c).is_uncorrectable(),
                    "double flip ({a},{b}) not flagged: {:?}",
                    codec.decode(d, c)
                );
            }
        }
    }
}
