//! Dense physical memory with per-group ECC code storage.
//!
//! Memory is organised in 4 KiB *frames* allocated lazily, each holding 4096
//! data bytes and 512 stored check codes (one per 8-byte ECC group). Keeping
//! the stored codes separate from the data is what lets the simulation
//! reproduce the paper's scramble trick: writing data while ECC is disabled
//! leaves the *old* code in place, and a later verification observes the
//! mismatch.
//!
//! The frame table is a dense `Vec<Option<Box<Frame>>>` indexed by frame
//! number — the memory size is fixed at construction, so a frame lookup is
//! one bounds-checked index instead of a hash probe. An *allocation epoch*
//! counter increments whenever a frame is first touched; callers that derive
//! plans from the resident-frame set (the controller's scrubber) key their
//! caches on it.

use crate::codec::{Codec, LINE_BYTES, LINE_GROUPS};

/// Bytes per ECC group (64 data bits).
pub const GROUP_BYTES: u64 = 8;
/// Bytes per lazily-allocated physical frame.
pub const FRAME_BYTES: u64 = 4096;
const GROUPS_PER_FRAME: usize = (FRAME_BYTES / GROUP_BYTES) as usize;
/// Scan lines (of [`LINE_GROUPS`] groups) per frame — one bit each in the
/// frame's dirty-line bitmap.
pub(crate) const LINES_PER_FRAME: usize = GROUPS_PER_FRAME / LINE_GROUPS;

struct Frame {
    data: [u8; FRAME_BYTES as usize],
    codes: [u8; GROUPS_PER_FRAME],
    /// Conservative syndrome tracking at cache-line granularity: bit `L`
    /// clear guarantees every group of scan line `L` (groups `8L..8L+8`)
    /// decodes clean, so verification can skip the line outright. Bits are
    /// set on any operation that can leave a stored code inconsistent
    /// (fault injection, data-only writes, explicit-code writes) and
    /// cleared when a whole line is re-encoded or proven clean by the
    /// scrubber. A zero bitmap is the old frame-level `maybe_dirty =
    /// false` guarantee.
    dirty_lines: u64,
}

impl Frame {
    fn new_boxed() -> Box<Self> {
        // A zero word encodes to a zero check code, so fresh frames are clean.
        Box::new(Frame {
            data: [0u8; FRAME_BYTES as usize],
            codes: [0u8; GROUPS_PER_FRAME],
            dirty_lines: 0,
        })
    }

    /// Flags the scan line holding the group at byte offset `off` dirty.
    #[inline]
    fn mark_line_dirty(&mut self, off: usize) {
        self.dirty_lines |= 1u64 << (off / LINE_BYTES);
    }
}

/// Byte-accurate lazily-populated physical memory with stored ECC codes.
///
/// This type is deliberately "dumb": it stores exactly what it is told and
/// never verifies. Policy (when to encode, when to verify, what to do on a
/// mismatch) lives in [`EccController`](crate::EccController).
///
/// # Example
///
/// ```
/// use safemem_ecc::memory::EccMemory;
///
/// let mut mem = EccMemory::new(1 << 16);
/// mem.write_group(0x38, 7, 0x12);
/// assert_eq!(mem.read_group(0x38), (7, 0x12));
/// ```
pub struct EccMemory {
    frames: Vec<Option<Box<Frame>>>,
    size: u64,
    resident: usize,
    epoch: u64,
    codec: Codec,
}

impl std::fmt::Debug for EccMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EccMemory")
            .field("size", &self.size)
            .field("resident_frames", &self.resident)
            .field("allocation_epoch", &self.epoch)
            .finish()
    }
}

impl EccMemory {
    /// Creates a physical memory of `size` bytes (rounded up to a whole
    /// number of frames). Frames are allocated on first touch.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    #[must_use]
    pub fn new(size: u64) -> Self {
        assert!(size > 0, "physical memory size must be non-zero");
        let size = size.div_ceil(FRAME_BYTES) * FRAME_BYTES;
        let frame_count = (size / FRAME_BYTES) as usize;
        EccMemory {
            frames: (0..frame_count).map(|_| None).collect(),
            size,
            resident: 0,
            epoch: 0,
            codec: Codec::new(),
        }
    }

    /// Total addressable bytes.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Number of frames currently resident (touched at least once).
    #[must_use]
    pub fn resident_frames(&self) -> usize {
        self.resident
    }

    /// Monotonic counter that increments each time a frame becomes resident.
    /// Frames are never freed, so two equal epochs guarantee an identical
    /// resident-frame set — the controller keys its cached scrub plan on it.
    #[must_use]
    pub fn allocation_epoch(&self) -> u64 {
        self.epoch
    }

    /// Addresses of all resident frames, in ascending order. Used by the
    /// scrubber to avoid scanning untouched memory.
    #[must_use]
    pub fn resident_frame_addrs(&self) -> Vec<u64> {
        self.frames
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.as_ref().map(|_| i as u64 * FRAME_BYTES))
            .collect()
    }

    /// Panics with the physical-access message unless `[addr, addr+len)`
    /// lies within memory. Public so the controller can validate a whole
    /// span up front instead of wrapping at the group loop.
    ///
    /// # Panics
    ///
    /// Panics if the range overflows or exceeds physical memory.
    pub fn check_range(&self, addr: u64, len: u64) {
        assert!(
            addr.checked_add(len).is_some_and(|end| end <= self.size),
            "physical access out of range: addr={addr:#x} len={len}"
        );
    }

    #[inline]
    fn frame_index(addr: u64) -> usize {
        (addr / FRAME_BYTES) as usize
    }

    /// Returns the frame containing `addr`, allocating it on first touch.
    fn frame_mut(&mut self, addr: u64) -> &mut Frame {
        let slot = &mut self.frames[Self::frame_index(addr)];
        if slot.is_none() {
            *slot = Some(Frame::new_boxed());
            self.resident += 1;
            self.epoch += 1;
        }
        slot.as_mut().expect("slot populated above")
    }

    /// Data and code slices of the frame starting at `frame_addr`, or `None`
    /// if the frame has never been touched (all-zero, clean). The fast read
    /// path scans syndromes straight off these slices.
    pub(crate) fn frame_slices(&self, frame_addr: u64) -> Option<(&[u8], &[u8])> {
        self.frames[Self::frame_index(frame_addr)]
            .as_deref()
            .map(|f| (&f.data[..], &f.codes[..]))
    }

    /// Dirty-line bitmap of the frame containing `frame_addr`: bit `L` clear
    /// guarantees scan line `L` (groups `8L..8L+8`) decodes clean. Untouched
    /// frames are all-clean (zero).
    pub(crate) fn frame_dirty_lines(&self, frame_addr: u64) -> u64 {
        self.frames[Self::frame_index(frame_addr)]
            .as_deref()
            .map_or(0, |f| f.dirty_lines)
    }

    /// Returns the stored codes of the aligned line at `addr` when they are
    /// provably consistent — the line's dirty bit is clear, so every stored
    /// code equals `encode` of the stored data. Untouched frames hold
    /// all-zero data under all-zero codes, which are consistent by
    /// construction (`encode(0) == 0` for a Hsiao code).
    pub(crate) fn line_codes_if_clean(&self, addr: u64) -> Option<[u8; LINE_GROUPS]> {
        debug_assert!(addr.is_multiple_of(LINE_BYTES as u64), "line-aligned");
        let frame_addr = addr & !(FRAME_BYTES - 1);
        let Some(frame) = self.frames[Self::frame_index(frame_addr)].as_deref() else {
            return Some([0; LINE_GROUPS]);
        };
        let line = ((addr - frame_addr) as usize) / LINE_BYTES;
        if frame.dirty_lines & (1u64 << line) != 0 {
            return None;
        }
        Some(
            frame.codes[line * LINE_GROUPS..(line + 1) * LINE_GROUPS]
                .try_into()
                .expect("code slice"),
        )
    }

    /// Records that every group of the frame has been verified clean (the
    /// scrubber calls this after a full-frame pass found and repaired every
    /// inconsistency).
    pub(crate) fn mark_frame_clean(&mut self, frame_addr: u64) {
        if let Some(frame) = self.frames[Self::frame_index(frame_addr)].as_deref_mut() {
            frame.dirty_lines = 0;
        }
    }

    /// Clears the given lines of the frame's dirty bitmap — the scrubber
    /// calls this after proving (and where needed repairing) every group of
    /// those lines.
    pub(crate) fn clear_dirty_lines(&mut self, frame_addr: u64, mask: u64) {
        if let Some(frame) = self.frames[Self::frame_index(frame_addr)].as_deref_mut() {
            frame.dirty_lines &= !mask;
        }
    }

    /// Reads the data word and stored code of the group containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the group lies outside physical memory.
    #[must_use]
    pub fn read_group(&self, addr: u64) -> (u64, u8) {
        let group_addr = addr & !(GROUP_BYTES - 1);
        self.check_range(group_addr, GROUP_BYTES);
        match &self.frames[Self::frame_index(group_addr)] {
            None => (0, 0),
            Some(frame) => {
                let off = (group_addr % FRAME_BYTES) as usize;
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&frame.data[off..off + 8]);
                let code = frame.codes[off / GROUP_BYTES as usize];
                (u64::from_le_bytes(bytes), code)
            }
        }
    }

    /// Stores a data word together with an explicit code for the group
    /// containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the group lies outside physical memory.
    pub fn write_group(&mut self, addr: u64, data: u64, code: u8) {
        let group_addr = addr & !(GROUP_BYTES - 1);
        self.check_range(group_addr, GROUP_BYTES);
        let frame = self.frame_mut(group_addr);
        let off = (group_addr % FRAME_BYTES) as usize;
        frame.data[off..off + 8].copy_from_slice(&data.to_le_bytes());
        frame.codes[off / GROUP_BYTES as usize] = code;
        // The caller chose the code; it may not match the data.
        frame.mark_line_dirty(off);
    }

    /// Stores only the data word of a group, leaving the stored code
    /// untouched. This is what a write with ECC disabled does.
    ///
    /// # Panics
    ///
    /// Panics if the group lies outside physical memory.
    pub fn write_group_data_only(&mut self, addr: u64, data: u64) {
        let group_addr = addr & !(GROUP_BYTES - 1);
        self.check_range(group_addr, GROUP_BYTES);
        let frame = self.frame_mut(group_addr);
        let off = (group_addr % FRAME_BYTES) as usize;
        frame.data[off..off + 8].copy_from_slice(&data.to_le_bytes());
        frame.mark_line_dirty(off);
    }

    /// Recomputes and stores the correct code for a group from its current
    /// data (used when correcting, or when re-arming a group).
    ///
    /// # Panics
    ///
    /// Panics if the group lies outside physical memory.
    pub fn rewrite_code(&mut self, addr: u64) {
        let group_addr = addr & !(GROUP_BYTES - 1);
        self.check_range(group_addr, GROUP_BYTES);
        let codec = self.codec;
        let frame = self.frame_mut(group_addr);
        let off = (group_addr % FRAME_BYTES) as usize;
        let bytes: &[u8; 8] = frame.data[off..off + 8]
            .try_into()
            .expect("group is 8 bytes");
        frame.codes[off / GROUP_BYTES as usize] = codec.encode_bytes(bytes);
    }

    /// Flips a single stored *data* bit without touching the code — a
    /// hardware-fault injection hook for tests and experiments.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 64` or the group lies outside physical memory.
    pub fn flip_data_bit(&mut self, addr: u64, bit: u8) {
        assert!(bit < 64, "data bit out of range");
        let group_addr = addr & !(GROUP_BYTES - 1);
        self.check_range(group_addr, GROUP_BYTES);
        let frame = self.frame_mut(group_addr);
        let off = (group_addr % FRAME_BYTES) as usize + (bit / 8) as usize;
        frame.data[off] ^= 1u8 << (bit % 8);
        frame.mark_line_dirty(off);
    }

    /// Flips a single stored *check* bit without touching the data.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 8` or the group lies outside physical memory.
    pub fn flip_code_bit(&mut self, addr: u64, bit: u8) {
        assert!(bit < 8, "check bit out of range");
        let group_addr = addr & !(GROUP_BYTES - 1);
        self.check_range(group_addr, GROUP_BYTES);
        let frame = self.frame_mut(group_addr);
        let off = (group_addr % FRAME_BYTES) as usize;
        frame.codes[off / GROUP_BYTES as usize] ^= 1u8 << bit;
        frame.mark_line_dirty(off);
    }

    /// Copies `buf.len()` raw stored data bytes starting at `addr` into
    /// `buf`, frame by frame with slice copies. Untouched frames read as
    /// zeros. Stored codes are neither read nor checked.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds physical memory.
    pub fn read_range(&self, addr: u64, buf: &mut [u8]) {
        self.check_range(addr, buf.len() as u64);
        let end = addr + buf.len() as u64;
        let mut frame_addr = addr & !(FRAME_BYTES - 1);
        while frame_addr < end {
            let lo = frame_addr.max(addr);
            let hi = (frame_addr + FRAME_BYTES).min(end);
            let dst = &mut buf[(lo - addr) as usize..(hi - addr) as usize];
            match &self.frames[Self::frame_index(frame_addr)] {
                None => dst.fill(0),
                Some(frame) => {
                    let off = (lo - frame_addr) as usize;
                    dst.copy_from_slice(&frame.data[off..off + dst.len()]);
                }
            }
            frame_addr += FRAME_BYTES;
        }
    }

    /// Writes one aligned line with caller-supplied check codes, skipping
    /// the encode entirely — the watch-disarm shape, where the codes of the
    /// (unchanged) original data were computed once at arm time. The caller
    /// guarantees `codes == Codec::encode_line(data)`; stored state is
    /// byte-identical to [`write_range_encoded`](Self::write_range_encoded).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not line-aligned or the line exceeds memory.
    pub fn write_line_precoded(
        &mut self,
        addr: u64,
        data: &[u8; LINE_BYTES],
        codes: &[u8; LINE_GROUPS],
    ) {
        self.check_range(addr, LINE_BYTES as u64);
        assert!(addr.is_multiple_of(LINE_BYTES as u64), "line-aligned write");
        let frame_addr = addr & !(FRAME_BYTES - 1);
        let off = (addr - frame_addr) as usize;
        let line = off / LINE_BYTES;
        let frame = self.frame_mut(frame_addr);
        frame.data[off..off + LINE_BYTES].copy_from_slice(data);
        frame.codes[line * LINE_GROUPS..(line + 1) * LINE_GROUPS].copy_from_slice(codes);
        frame.dirty_lines &= !(1u64 << line);
    }

    /// Writes `buf` at `addr` and recomputes the stored code of every
    /// touched group from its (merged) post-write contents — the bulk
    /// equivalent of a per-group encode-and-store loop, but with one frame
    /// lookup and one slice copy per frame.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds physical memory.
    pub fn write_range_encoded(&mut self, addr: u64, buf: &[u8]) {
        self.check_range(addr, buf.len() as u64);
        let codec = self.codec;
        // Aligned single-line writes — the cache writeback and watch
        // disarm shape — skip the general frame walk entirely.
        if buf.len() == LINE_BYTES && addr.is_multiple_of(LINE_BYTES as u64) {
            let bytes: &[u8; LINE_BYTES] = buf.try_into().expect("line-sized buf");
            let codes = codec.encode_line(bytes);
            let frame_addr = addr & !(FRAME_BYTES - 1);
            let off = (addr - frame_addr) as usize;
            let line = off / LINE_BYTES;
            let frame = self.frame_mut(frame_addr);
            frame.data[off..off + LINE_BYTES].copy_from_slice(buf);
            frame.codes[line * LINE_GROUPS..(line + 1) * LINE_GROUPS].copy_from_slice(&codes);
            frame.dirty_lines &= !(1u64 << line);
            return;
        }
        let end = addr + buf.len() as u64;
        let mut frame_addr = addr & !(FRAME_BYTES - 1);
        while frame_addr < end {
            let lo = frame_addr.max(addr);
            let hi = (frame_addr + FRAME_BYTES).min(end);
            let frame = self.frame_mut(frame_addr);
            let off = (lo - frame_addr) as usize;
            frame.data[off..off + (hi - lo) as usize]
                .copy_from_slice(&buf[(lo - addr) as usize..(hi - addr) as usize]);
            // Re-encode every group the span overlaps, including partially
            // covered first/last groups (their code reflects the merged word).
            let gs = (lo & !(GROUP_BYTES - 1)) - frame_addr;
            let g0 = (gs / GROUP_BYTES) as usize;
            let ge = ((hi - frame_addr) as usize).div_ceil(GROUP_BYTES as usize);
            // Whole scan lines inside [g0, ge) take the bit-plane batch
            // encoder; ragged head/tail groups fall back to the per-byte
            // table walk. Either way the stored codes are identical.
            let line_lo = g0.div_ceil(LINE_GROUPS);
            let line_hi = ge / LINE_GROUPS;
            let (head, tail) = if line_lo <= line_hi {
                for line in line_lo..line_hi {
                    let o = line * LINE_BYTES;
                    let bytes: &[u8; LINE_BYTES] = frame.data[o..o + LINE_BYTES]
                        .try_into()
                        .expect("line is 64 bytes");
                    let codes: [u8; LINE_GROUPS] = codec.encode_line(bytes);
                    frame.codes[line * LINE_GROUPS..(line + 1) * LINE_GROUPS]
                        .copy_from_slice(&codes);
                }
                (g0..line_lo * LINE_GROUPS, line_hi * LINE_GROUPS..ge)
            } else {
                (g0..ge, 0..0)
            };
            for g in head.chain(tail) {
                let o = g * GROUP_BYTES as usize;
                let bytes: &[u8; 8] = frame.data[o..o + 8].try_into().expect("group is 8 bytes");
                frame.codes[g] = codec.encode_bytes(bytes);
            }
            // Every group of a fully re-encoded line is now consistent with
            // its code, so those lines are provably clean again.
            if line_lo < line_hi {
                let mask = if line_hi - line_lo == LINES_PER_FRAME {
                    u64::MAX
                } else {
                    ((1u64 << (line_hi - line_lo)) - 1) << line_lo
                };
                frame.dirty_lines &= !mask;
            }
            frame_addr += FRAME_BYTES;
        }
    }

    /// Writes `buf` at `addr` leaving every stored code untouched — the bulk
    /// equivalent of [`EccMemory::write_group_data_only`] per group, used for
    /// writes while ECC is disabled.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds physical memory.
    pub fn write_range_data_only(&mut self, addr: u64, buf: &[u8]) {
        self.check_range(addr, buf.len() as u64);
        let end = addr + buf.len() as u64;
        let mut frame_addr = addr & !(FRAME_BYTES - 1);
        while frame_addr < end {
            let lo = frame_addr.max(addr);
            let hi = (frame_addr + FRAME_BYTES).min(end);
            let frame = self.frame_mut(frame_addr);
            let off = (lo - frame_addr) as usize;
            frame.data[off..off + (hi - lo) as usize]
                .copy_from_slice(&buf[(lo - addr) as usize..(hi - addr) as usize]);
            // Stored codes are now stale for every touched line.
            let line_lo = off / LINE_BYTES;
            let line_hi = ((hi - frame_addr) as usize - 1) / LINE_BYTES;
            for line in line_lo..=line_hi {
                frame.dirty_lines |= 1u64 << line;
            }
            frame_addr += FRAME_BYTES;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_rounds_up_to_frames() {
        let mem = EccMemory::new(1);
        assert_eq!(mem.size(), FRAME_BYTES);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_size_rejected() {
        let _ = EccMemory::new(0);
    }

    #[test]
    fn untouched_memory_reads_zero_clean() {
        let mem = EccMemory::new(1 << 16);
        assert_eq!(mem.read_group(0x1000), (0, 0));
        assert_eq!(mem.resident_frames(), 0);
    }

    #[test]
    fn group_roundtrip_with_unaligned_addr() {
        let mut mem = EccMemory::new(1 << 16);
        mem.write_group(0x43, 0xABCD, 0x55); // group address is 0x40
        assert_eq!(mem.read_group(0x40), (0xABCD, 0x55));
        assert_eq!(mem.read_group(0x47), (0xABCD, 0x55));
    }

    #[test]
    fn data_only_write_preserves_stale_code() {
        let mut mem = EccMemory::new(1 << 16);
        mem.write_group(0x80, 1, 0x13);
        mem.write_group_data_only(0x80, 2);
        assert_eq!(mem.read_group(0x80), (2, 0x13));
    }

    #[test]
    fn rewrite_code_makes_group_consistent() {
        let mut mem = EccMemory::new(1 << 16);
        mem.write_group(0x80, 99, 0xFF);
        mem.rewrite_code(0x80);
        let (data, code) = mem.read_group(0x80);
        assert_eq!(data, 99);
        assert_eq!(Codec::new().syndrome(data, code), 0);
    }

    #[test]
    fn bit_flips_touch_only_their_target() {
        let mut mem = EccMemory::new(1 << 16);
        mem.write_group(0x100, 0, 0);
        mem.flip_data_bit(0x100, 63);
        assert_eq!(mem.read_group(0x100), (1u64 << 63, 0));
        mem.flip_code_bit(0x100, 0);
        assert_eq!(mem.read_group(0x100), (1u64 << 63, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_access_panics() {
        let mem = EccMemory::new(1 << 12);
        let _ = mem.read_group(1 << 12);
    }

    #[test]
    fn groups_on_frame_boundaries_are_independent() {
        let mut mem = EccMemory::new(1 << 16);
        // Last group of frame 0 and first group of frame 1.
        mem.write_group(FRAME_BYTES - 8, 0xAAAA, 0x11);
        mem.write_group(FRAME_BYTES, 0xBBBB, 0x22);
        assert_eq!(mem.read_group(FRAME_BYTES - 8), (0xAAAA, 0x11));
        assert_eq!(mem.read_group(FRAME_BYTES), (0xBBBB, 0x22));
        assert_eq!(mem.resident_frames(), 2);
    }

    #[test]
    fn resident_frames_tracks_touched_frames() {
        let mut mem = EccMemory::new(1 << 16);
        mem.write_group(0x0, 1, 0);
        mem.write_group(0x8, 2, 0); // same frame
        mem.write_group(0x1000, 3, 0); // new frame
        assert_eq!(mem.resident_frames(), 2);
        assert_eq!(mem.resident_frame_addrs(), vec![0x0, 0x1000]);
    }

    #[test]
    fn allocation_epoch_counts_first_touches_only() {
        let mut mem = EccMemory::new(1 << 16);
        assert_eq!(mem.allocation_epoch(), 0);
        mem.write_group(0x0, 1, 0);
        mem.write_group(0x8, 2, 0); // same frame: no new allocation
        assert_eq!(mem.allocation_epoch(), 1);
        mem.write_group(0x2000, 3, 0);
        assert_eq!(mem.allocation_epoch(), 2);
        let _ = mem.read_group(0x3000); // reads never allocate
        assert_eq!(mem.allocation_epoch(), 2);
    }

    #[test]
    fn read_range_matches_group_reads_across_frames() {
        let mut mem = EccMemory::new(1 << 16);
        mem.write_group(FRAME_BYTES - 8, u64::from_le_bytes(*b"ABCDEFGH"), 0);
        mem.write_group(FRAME_BYTES, u64::from_le_bytes(*b"IJKLMNOP"), 0);
        let mut buf = [0u8; 12];
        mem.read_range(FRAME_BYTES - 6, &mut buf);
        assert_eq!(&buf, b"CDEFGHIJKLMN");
    }

    #[test]
    fn read_range_zero_fills_untouched_frames() {
        let mut mem = EccMemory::new(1 << 16);
        mem.write_group(0x0, u64::MAX, 0xFF);
        let mut buf = [0xAAu8; 16];
        mem.read_range(FRAME_BYTES - 8, &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn write_range_encoded_matches_per_group_encode() {
        let codec = Codec::new();
        let mut mem = EccMemory::new(1 << 16);
        // Unaligned span partially covering first and last groups.
        let payload: Vec<u8> = (0..29u8).map(|i| i.wrapping_mul(37)).collect();
        mem.write_range_encoded(0x103, &payload);
        for g in (0x100..0x128).step_by(8) {
            let (data, code) = mem.read_group(g);
            assert_eq!(code, codec.encode(data), "group {g:#x} code mismatch");
        }
        let mut back = vec![0u8; payload.len()];
        mem.read_range(0x103, &mut back);
        assert_eq!(back, payload);
    }

    #[test]
    fn write_range_data_only_leaves_codes_stale() {
        let mut mem = EccMemory::new(1 << 16);
        mem.write_group(0x40, 5, 0x3C);
        mem.write_range_data_only(0x40, &[9, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(mem.read_group(0x40), (9, 0x3C));
    }
}
