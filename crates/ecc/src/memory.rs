//! Sparse physical memory with per-group ECC code storage.
//!
//! Memory is organised in 4 KiB *frames* allocated lazily, each holding 4096
//! data bytes and 512 stored check codes (one per 8-byte ECC group). Keeping
//! the stored codes separate from the data is what lets the simulation
//! reproduce the paper's scramble trick: writing data while ECC is disabled
//! leaves the *old* code in place, and a later verification observes the
//! mismatch.

use crate::codec::Codec;

/// Bytes per ECC group (64 data bits).
pub const GROUP_BYTES: u64 = 8;
/// Bytes per lazily-allocated physical frame.
pub const FRAME_BYTES: u64 = 4096;
const GROUPS_PER_FRAME: usize = (FRAME_BYTES / GROUP_BYTES) as usize;

#[derive(Clone)]
struct Frame {
    data: Box<[u8]>,
    codes: Box<[u8]>,
}

impl Frame {
    fn new() -> Self {
        // A zero word encodes to a zero check code, so fresh frames are clean.
        Frame {
            data: vec![0u8; FRAME_BYTES as usize].into_boxed_slice(),
            codes: vec![0u8; GROUPS_PER_FRAME].into_boxed_slice(),
        }
    }
}

/// Byte-accurate sparse physical memory with stored ECC codes.
///
/// This type is deliberately "dumb": it stores exactly what it is told and
/// never verifies. Policy (when to encode, when to verify, what to do on a
/// mismatch) lives in [`EccController`](crate::EccController).
///
/// # Example
///
/// ```
/// use safemem_ecc::memory::EccMemory;
///
/// let mut mem = EccMemory::new(1 << 16);
/// mem.write_group(0x38, 7, 0x12);
/// assert_eq!(mem.read_group(0x38), (7, 0x12));
/// ```
pub struct EccMemory {
    frames: std::collections::HashMap<u64, Frame>,
    size: u64,
    codec: Codec,
}

impl std::fmt::Debug for EccMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EccMemory")
            .field("size", &self.size)
            .field("resident_frames", &self.frames.len())
            .finish()
    }
}

impl EccMemory {
    /// Creates a physical memory of `size` bytes (rounded up to a whole
    /// number of frames). Frames are allocated on first touch.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    #[must_use]
    pub fn new(size: u64) -> Self {
        assert!(size > 0, "physical memory size must be non-zero");
        let size = size.div_ceil(FRAME_BYTES) * FRAME_BYTES;
        EccMemory {
            frames: std::collections::HashMap::new(),
            size,
            codec: Codec::new(),
        }
    }

    /// Total addressable bytes.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Number of frames currently resident (touched at least once).
    #[must_use]
    pub fn resident_frames(&self) -> usize {
        self.frames.len()
    }

    /// Addresses of all resident frames, in unspecified order. Used by the
    /// scrubber to avoid scanning untouched memory.
    #[must_use]
    pub fn resident_frame_addrs(&self) -> Vec<u64> {
        self.frames.keys().copied().collect()
    }

    fn check_range(&self, addr: u64, len: u64) {
        assert!(
            addr.checked_add(len).is_some_and(|end| end <= self.size),
            "physical access out of range: addr={addr:#x} len={len}"
        );
    }

    fn frame(&mut self, frame_addr: u64) -> &mut Frame {
        self.frames.entry(frame_addr).or_insert_with(Frame::new)
    }

    /// Reads the data word and stored code of the group containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the group lies outside physical memory.
    #[must_use]
    pub fn read_group(&self, addr: u64) -> (u64, u8) {
        self.check_range(addr & !(GROUP_BYTES - 1), GROUP_BYTES);
        let group_addr = addr & !(GROUP_BYTES - 1);
        let frame_addr = group_addr & !(FRAME_BYTES - 1);
        match self.frames.get(&frame_addr) {
            None => (0, 0),
            Some(frame) => {
                let off = (group_addr - frame_addr) as usize;
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&frame.data[off..off + 8]);
                let code = frame.codes[off / GROUP_BYTES as usize];
                (u64::from_le_bytes(bytes), code)
            }
        }
    }

    /// Stores a data word together with an explicit code for the group
    /// containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the group lies outside physical memory.
    pub fn write_group(&mut self, addr: u64, data: u64, code: u8) {
        self.check_range(addr & !(GROUP_BYTES - 1), GROUP_BYTES);
        let group_addr = addr & !(GROUP_BYTES - 1);
        let frame_addr = group_addr & !(FRAME_BYTES - 1);
        let frame = self.frame(frame_addr);
        let off = (group_addr - frame_addr) as usize;
        frame.data[off..off + 8].copy_from_slice(&data.to_le_bytes());
        frame.codes[off / GROUP_BYTES as usize] = code;
    }

    /// Stores only the data word of a group, leaving the stored code
    /// untouched. This is what a write with ECC disabled does.
    ///
    /// # Panics
    ///
    /// Panics if the group lies outside physical memory.
    pub fn write_group_data_only(&mut self, addr: u64, data: u64) {
        let (_, code) = self.read_group(addr);
        self.write_group(addr, data, code);
    }

    /// Recomputes and stores the correct code for a group from its current
    /// data (used when correcting, or when re-arming a group).
    ///
    /// # Panics
    ///
    /// Panics if the group lies outside physical memory.
    pub fn rewrite_code(&mut self, addr: u64) {
        let (data, _) = self.read_group(addr);
        let code = self.codec.encode(data);
        self.write_group(addr, data, code);
    }

    /// Flips a single stored *data* bit without touching the code — a
    /// hardware-fault injection hook for tests and experiments.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 64` or the group lies outside physical memory.
    pub fn flip_data_bit(&mut self, addr: u64, bit: u8) {
        assert!(bit < 64, "data bit out of range");
        let (data, code) = self.read_group(addr);
        self.write_group(addr, data ^ (1u64 << bit), code);
    }

    /// Flips a single stored *check* bit without touching the data.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 8` or the group lies outside physical memory.
    pub fn flip_code_bit(&mut self, addr: u64, bit: u8) {
        assert!(bit < 8, "check bit out of range");
        let (data, code) = self.read_group(addr);
        self.write_group(addr, data, code ^ (1u8 << bit));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_rounds_up_to_frames() {
        let mem = EccMemory::new(1);
        assert_eq!(mem.size(), FRAME_BYTES);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_size_rejected() {
        let _ = EccMemory::new(0);
    }

    #[test]
    fn untouched_memory_reads_zero_clean() {
        let mem = EccMemory::new(1 << 16);
        assert_eq!(mem.read_group(0x1000), (0, 0));
        assert_eq!(mem.resident_frames(), 0);
    }

    #[test]
    fn group_roundtrip_with_unaligned_addr() {
        let mut mem = EccMemory::new(1 << 16);
        mem.write_group(0x43, 0xABCD, 0x55); // group address is 0x40
        assert_eq!(mem.read_group(0x40), (0xABCD, 0x55));
        assert_eq!(mem.read_group(0x47), (0xABCD, 0x55));
    }

    #[test]
    fn data_only_write_preserves_stale_code() {
        let mut mem = EccMemory::new(1 << 16);
        mem.write_group(0x80, 1, 0x13);
        mem.write_group_data_only(0x80, 2);
        assert_eq!(mem.read_group(0x80), (2, 0x13));
    }

    #[test]
    fn rewrite_code_makes_group_consistent() {
        let mut mem = EccMemory::new(1 << 16);
        mem.write_group(0x80, 99, 0xFF);
        mem.rewrite_code(0x80);
        let (data, code) = mem.read_group(0x80);
        assert_eq!(data, 99);
        assert_eq!(Codec::new().syndrome(data, code), 0);
    }

    #[test]
    fn bit_flips_touch_only_their_target() {
        let mut mem = EccMemory::new(1 << 16);
        mem.write_group(0x100, 0, 0);
        mem.flip_data_bit(0x100, 63);
        assert_eq!(mem.read_group(0x100), (1u64 << 63, 0));
        mem.flip_code_bit(0x100, 0);
        assert_eq!(mem.read_group(0x100), (1u64 << 63, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_access_panics() {
        let mem = EccMemory::new(1 << 12);
        let _ = mem.read_group(1 << 12);
    }

    #[test]
    fn groups_on_frame_boundaries_are_independent() {
        let mut mem = EccMemory::new(1 << 16);
        // Last group of frame 0 and first group of frame 1.
        mem.write_group(FRAME_BYTES - 8, 0xAAAA, 0x11);
        mem.write_group(FRAME_BYTES, 0xBBBB, 0x22);
        assert_eq!(mem.read_group(FRAME_BYTES - 8), (0xAAAA, 0x11));
        assert_eq!(mem.read_group(FRAME_BYTES), (0xBBBB, 0x22));
        assert_eq!(mem.resident_frames(), 2);
    }

    #[test]
    fn resident_frames_tracks_touched_frames() {
        let mut mem = EccMemory::new(1 << 16);
        mem.write_group(0x0, 1, 0);
        mem.write_group(0x8, 2, 0); // same frame
        mem.write_group(0x1000, 3, 0); // new frame
        assert_eq!(mem.resident_frames(), 2);
        let mut addrs = mem.resident_frame_addrs();
        addrs.sort_unstable();
        assert_eq!(addrs, vec![0x0, 0x1000]);
    }
}
