//! SEC-DED (39,32) Hsiao code — the narrower ECC grouping of paper §2.1:
//! *"ECC uses larger groupings: 7 bits to protect 32 bits, or 8 bits to
//! protect 64 bits"*.
//!
//! Structurally identical to the 64-bit [`Codec`](crate::codec::Codec) the
//! controller uses (that one models the E7500's 64-bit bus); this variant
//! exists for 32-bit-bus chipsets and to document that the scramble trick
//! carries over: any odd-weight multi-bit flip whose syndrome matches no
//! column is an uncorrectable signature here too.

/// Number of data bits per 32-bit ECC group.
pub const DATA_BITS_32: u32 = 32;
/// Number of check bits per 32-bit ECC group.
pub const CHECK_BITS_32: u32 = 7;

/// Outcome of decoding a 32-bit (data, code) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decoded32 {
    /// Data and code are consistent.
    Clean,
    /// One flipped data bit, corrected.
    CorrectedData {
        /// The corrected word.
        data: u32,
        /// The flipped position (0..32).
        bit: u8,
    },
    /// One flipped check bit; data intact.
    CorrectedCheck {
        /// The flipped check-bit position (0..7).
        bit: u8,
    },
    /// Two or more flipped bits: uncorrectable.
    Uncorrectable {
        /// The raw 7-bit syndrome.
        syndrome: u8,
    },
}

impl Decoded32 {
    /// Returns `true` for the uncorrectable variant.
    #[must_use]
    pub fn is_uncorrectable(&self) -> bool {
        matches!(self, Decoded32::Uncorrectable { .. })
    }
}

/// Data columns: the 32 lexicographically first odd-weight 7-bit vectors of
/// weight ≥ 3 (there are C(7,3) = 35 of weight 3 alone, so 32 fit).
const fn build_columns_32() -> [u8; 32] {
    let mut cols = [0u8; 32];
    let mut n = 0usize;
    let mut v: u16 = 0;
    while v < 128 && n < 32 {
        if (v as u8).count_ones() == 3 {
            cols[n] = v as u8;
            n += 1;
        }
        v += 1;
    }
    cols
}

/// Per-data-bit columns of the (39,32) parity-check matrix.
pub const COLUMNS_32: [u8; 32] = build_columns_32();

const fn build_row_masks_32() -> [u32; 7] {
    let mut masks = [0u32; 7];
    let mut i = 0usize;
    while i < 32 {
        let col = COLUMNS_32[i];
        let mut j = 0usize;
        while j < 7 {
            if col & (1 << j) != 0 {
                masks[j] |= 1u32 << i;
            }
            j += 1;
        }
        i += 1;
    }
    masks
}

/// For each of the 7 check bits, the set of data bits it covers.
pub const ROW_MASKS_32: [u32; 7] = build_row_masks_32();

/// The SEC-DED (39,32) codec.
///
/// # Example
///
/// ```
/// use safemem_ecc::codec32::{Codec32, Decoded32};
///
/// let codec = Codec32::new();
/// let code = codec.encode(0xDEAD_BEEF);
/// assert_eq!(codec.decode(0xDEAD_BEEF, code), Decoded32::Clean);
/// assert_eq!(
///     codec.decode(0xDEAD_BEEF ^ 4, code),
///     Decoded32::CorrectedData { data: 0xDEAD_BEEF, bit: 2 }
/// );
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Codec32(());

impl Codec32 {
    /// Creates the codec.
    #[must_use]
    pub fn new() -> Self {
        Codec32(())
    }

    /// Computes the 7 check bits for a 32-bit word.
    #[must_use]
    pub fn encode(&self, data: u32) -> u8 {
        let mut code = 0u8;
        for (j, mask) in ROW_MASKS_32.iter().enumerate() {
            code |= (((data & mask).count_ones() & 1) as u8) << j;
        }
        code
    }

    /// The syndrome of a stored (data, code) pair (0 = consistent).
    #[must_use]
    pub fn syndrome(&self, data: u32, code: u8) -> u8 {
        self.encode(data) ^ code
    }

    /// Verifies and corrects a stored (data, code) pair.
    #[must_use]
    pub fn decode(&self, data: u32, code: u8) -> Decoded32 {
        let syndrome = self.syndrome(data, code);
        if syndrome == 0 {
            return Decoded32::Clean;
        }
        if syndrome.count_ones().is_multiple_of(2) {
            return Decoded32::Uncorrectable { syndrome };
        }
        if syndrome.count_ones() == 1 {
            return Decoded32::CorrectedCheck {
                bit: syndrome.trailing_zeros() as u8,
            };
        }
        match COLUMNS_32.iter().position(|&c| c == syndrome) {
            Some(bit) => Decoded32::CorrectedData {
                data: data ^ (1u32 << bit),
                bit: bit as u8,
            },
            None => Decoded32::Uncorrectable { syndrome },
        }
    }

    /// Searches for a 3-bit scramble triple with an uncorrectable syndrome
    /// (the 32-bit analogue of
    /// [`ScrambleScheme`](crate::scramble::ScrambleScheme)).
    #[must_use]
    pub fn find_scramble_triple(&self) -> Option<[u8; 3]> {
        for a in 0..32u8 {
            for b in (a + 1)..32 {
                for c in (b + 1)..32 {
                    let syn =
                        COLUMNS_32[a as usize] ^ COLUMNS_32[b as usize] ^ COLUMNS_32[c as usize];
                    let correctable = syn == 0
                        || (syn.count_ones() % 2 == 1
                            && (syn.count_ones() == 1 || COLUMNS_32.contains(&syn)));
                    if !correctable {
                        return Some([a, b, c]);
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_are_distinct_odd_weight_3() {
        for (i, &c) in COLUMNS_32.iter().enumerate() {
            assert_eq!(c.count_ones(), 3, "column {i}");
            assert!(c < 128, "7-bit vectors only");
            for &d in &COLUMNS_32[i + 1..] {
                assert_ne!(c, d);
            }
        }
    }

    #[test]
    fn clean_roundtrip() {
        let codec = Codec32::new();
        for data in [0u32, 1, u32::MAX, 0xDEAD_BEEF, 0x1234_5678] {
            assert_eq!(codec.decode(data, codec.encode(data)), Decoded32::Clean);
        }
    }

    #[test]
    fn every_single_bit_error_corrected() {
        let codec = Codec32::new();
        let data = 0xA5A5_0F0F_u32;
        let code = codec.encode(data);
        for bit in 0..32 {
            assert_eq!(
                codec.decode(data ^ (1u32 << bit), code),
                Decoded32::CorrectedData { data, bit },
                "data bit {bit}"
            );
        }
        for bit in 0..7 {
            assert_eq!(
                codec.decode(data, code ^ (1u8 << bit)),
                Decoded32::CorrectedCheck { bit }
            );
        }
    }

    #[test]
    fn every_double_bit_error_detected() {
        // Exhaustive over all C(39,2) = 741 double flips.
        let codec = Codec32::new();
        let data = 0x0F1E_2D3C_u32;
        let code = codec.encode(data);
        for a in 0..39u32 {
            for b in (a + 1)..39 {
                let mut d = data;
                let mut c = code;
                for &bit in &[a, b] {
                    if bit < 32 {
                        d ^= 1u32 << bit;
                    } else {
                        c ^= 1u8 << (bit - 32);
                    }
                }
                assert!(codec.decode(d, c).is_uncorrectable(), "bits ({a},{b})");
            }
        }
    }

    #[test]
    fn a_scramble_triple_exists_and_faults() {
        let codec = Codec32::new();
        let triple = codec.find_scramble_triple().expect("triple exists");
        let mask = triple.iter().fold(0u32, |m, &b| m | (1 << b));
        for data in [0u32, u32::MAX, 0xCAFE_F00D] {
            let code = codec.encode(data);
            assert!(
                codec.decode(data ^ mask, code).is_uncorrectable(),
                "scramble must be uncorrectable for {data:#x}"
            );
        }
    }

    #[test]
    fn check_bits_match_the_paper_ratio() {
        // §2.1: 7 bits protect 32; 8 bits protect 64.
        assert_eq!(CHECK_BITS_32, 7);
        assert_eq!(crate::codec::CHECK_BITS, 8);
    }
}
