//! SEC-DED (72,64) Hsiao code.
//!
//! Each 64-bit *ECC group* is protected by 8 check bits. The code is built
//! from a parity-check matrix whose data columns are distinct odd-weight 8-bit
//! vectors (all 56 weight-3 vectors plus 8 weight-5 vectors) and whose check
//! columns are the 8 weight-1 vectors. Odd-weight columns give the classic
//! Hsiao SEC-DED property:
//!
//! * a **zero syndrome** means no error;
//! * an **odd-weight syndrome** that matches a column identifies a single-bit
//!   error (correctable) in the corresponding data or check bit;
//! * an **even-weight non-zero syndrome** can only be produced by an even
//!   number of bit errors — reported as uncorrectable;
//! * an **odd-weight syndrome matching no column** indicates ≥3 bit errors —
//!   also uncorrectable. The SafeMem scramble trick deliberately lands here.

/// Number of data bits per ECC group.
pub const DATA_BITS: u32 = 64;
/// Number of check bits per ECC group.
pub const CHECK_BITS: u32 = 8;

/// Outcome of decoding a (data, code) pair.
///
/// Produced by [`Codec::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decoded {
    /// Data and code are consistent.
    Clean,
    /// A single flipped *data* bit was found and corrected; `data` is the
    /// corrected word and `bit` the flipped position (0..64).
    CorrectedData {
        /// The corrected 64-bit word.
        data: u64,
        /// Position of the flipped data bit.
        bit: u8,
    },
    /// A single flipped *check* bit was found; the data word is intact.
    CorrectedCheck {
        /// Position of the flipped check bit (0..8).
        bit: u8,
    },
    /// The syndrome is inconsistent with any single-bit error: two or more
    /// bits are wrong. The stored word cannot be trusted.
    Uncorrectable {
        /// The raw 8-bit syndrome, for diagnostics.
        syndrome: u8,
    },
}

impl Decoded {
    /// Returns `true` for the [`Decoded::Uncorrectable`] variant.
    #[must_use]
    pub fn is_uncorrectable(&self) -> bool {
        matches!(self, Decoded::Uncorrectable { .. })
    }
}

/// Builds the 64 data columns of the H matrix: every odd 8-bit vector of
/// weight 3 in ascending numeric order, then the first 8 of weight 5.
const fn build_columns() -> [u8; 64] {
    let mut cols = [0u8; 64];
    let mut n = 0usize;
    // Weight-3 columns (there are exactly C(8,3) = 56 of them).
    let mut v: u16 = 0;
    while v < 256 {
        if (v as u8).count_ones() == 3 {
            cols[n] = v as u8;
            n += 1;
        }
        v += 1;
    }
    // Weight-5 columns to reach 64.
    let mut v: u16 = 0;
    while v < 256 && n < 64 {
        if (v as u8).count_ones() == 5 {
            cols[n] = v as u8;
            n += 1;
        }
        v += 1;
    }
    cols
}

/// Per-data-bit column vectors of the parity-check matrix.
pub const COLUMNS: [u8; 64] = build_columns();

/// Builds, for each check bit `j`, the mask of data bits participating in it.
const fn build_row_masks() -> [u64; 8] {
    let mut masks = [0u64; 8];
    let mut i = 0usize;
    while i < 64 {
        let col = COLUMNS[i];
        let mut j = 0usize;
        while j < 8 {
            if col & (1 << j) != 0 {
                masks[j] |= 1u64 << i;
            }
            j += 1;
        }
        i += 1;
    }
    masks
}

/// For each check bit, the set of data bits it covers.
pub const ROW_MASKS: [u64; 8] = build_row_masks();

/// The SEC-DED (72,64) codec.
///
/// The codec is a zero-sized strategy type: all state lives in constants, and
/// encoding/decoding are pure functions of their inputs.
///
/// # Example
///
/// ```
/// use safemem_ecc::codec::{Codec, Decoded};
///
/// let codec = Codec::new();
/// let code = codec.encode(0xDEAD_BEEF_0123_4567);
/// assert_eq!(codec.decode(0xDEAD_BEEF_0123_4567, code), Decoded::Clean);
///
/// // Any single flipped data bit is corrected.
/// let damaged = 0xDEAD_BEEF_0123_4567 ^ (1 << 17);
/// assert_eq!(
///     codec.decode(damaged, code),
///     Decoded::CorrectedData { data: 0xDEAD_BEEF_0123_4567, bit: 17 }
/// );
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Codec(());

impl Codec {
    /// Creates the codec.
    #[must_use]
    pub fn new() -> Self {
        Codec(())
    }

    /// Computes the 8 check bits for a 64-bit data word.
    #[must_use]
    pub fn encode(&self, data: u64) -> u8 {
        let mut code = 0u8;
        for (j, mask) in ROW_MASKS.iter().enumerate() {
            let parity = (data & mask).count_ones() & 1;
            code |= (parity as u8) << j;
        }
        code
    }

    /// Computes the syndrome of a stored (data, code) pair.
    ///
    /// Zero means consistent; see [`COLUMNS`] for the single-bit patterns.
    #[must_use]
    pub fn syndrome(&self, data: u64, code: u8) -> u8 {
        self.encode(data) ^ code
    }

    /// Verifies and, where possible, corrects a stored (data, code) pair.
    #[must_use]
    pub fn decode(&self, data: u64, code: u8) -> Decoded {
        let syndrome = self.syndrome(data, code);
        if syndrome == 0 {
            return Decoded::Clean;
        }
        if syndrome.count_ones().is_multiple_of(2) {
            // Even non-zero syndrome: an even number (>=2) of bit flips.
            return Decoded::Uncorrectable { syndrome };
        }
        if syndrome.count_ones() == 1 {
            // A flipped check bit; data is intact.
            return Decoded::CorrectedCheck {
                bit: syndrome.trailing_zeros() as u8,
            };
        }
        // Odd-weight (3 or 5) syndrome: either exactly one data bit flipped
        // (syndrome equals its column) or >=3 flips that alias to no column.
        match COLUMNS.iter().position(|&c| c == syndrome) {
            Some(bit) => Decoded::CorrectedData {
                data: data ^ (1u64 << bit),
                bit: bit as u8,
            },
            None => Decoded::Uncorrectable { syndrome },
        }
    }

    /// Returns `true` if the given syndrome would be classified as a
    /// single-bit (correctable) error.
    #[must_use]
    pub fn syndrome_is_correctable(&self, syndrome: u8) -> bool {
        syndrome != 0
            && syndrome.count_ones() % 2 == 1
            && (syndrome.count_ones() == 1 || COLUMNS.contains(&syndrome))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_are_distinct_odd_weight() {
        for (i, &c) in COLUMNS.iter().enumerate() {
            assert!(c.count_ones() % 2 == 1, "column {i} has even weight");
            assert!(c.count_ones() >= 3, "column {i} collides with check bits");
            for &d in &COLUMNS[i + 1..] {
                assert_ne!(c, d, "duplicate column");
            }
        }
    }

    #[test]
    fn encode_zero_is_zero() {
        assert_eq!(Codec::new().encode(0), 0);
    }

    #[test]
    fn clean_roundtrip() {
        let codec = Codec::new();
        for data in [0u64, 1, u64::MAX, 0xDEAD_BEEF, 0x0123_4567_89AB_CDEF] {
            let code = codec.encode(data);
            assert_eq!(codec.decode(data, code), Decoded::Clean);
        }
    }

    #[test]
    fn every_single_data_bit_error_is_corrected() {
        let codec = Codec::new();
        let data = 0xA5A5_5A5A_F00D_CAFE_u64;
        let code = codec.encode(data);
        for bit in 0..64 {
            let damaged = data ^ (1u64 << bit);
            assert_eq!(
                codec.decode(damaged, code),
                Decoded::CorrectedData { data, bit },
                "bit {bit}"
            );
        }
    }

    #[test]
    fn every_single_check_bit_error_is_flagged() {
        let codec = Codec::new();
        let data = 0x1122_3344_5566_7788_u64;
        let code = codec.encode(data);
        for bit in 0..8 {
            let damaged_code = code ^ (1u8 << bit);
            assert_eq!(
                codec.decode(data, damaged_code),
                Decoded::CorrectedCheck { bit }
            );
        }
    }

    #[test]
    fn every_double_bit_error_is_detected_not_miscorrected() {
        // Exhaustive over all C(72,2) = 2556 double flips for one word.
        let codec = Codec::new();
        let data = 0x0F0F_F0F0_1234_8765_u64;
        let code = codec.encode(data);
        for a in 0..72u32 {
            for b in (a + 1)..72 {
                let mut d = data;
                let mut c = code;
                for &bit in &[a, b] {
                    if bit < 64 {
                        d ^= 1u64 << bit;
                    } else {
                        c ^= 1u8 << (bit - 64);
                    }
                }
                let decoded = codec.decode(d, c);
                assert!(
                    decoded.is_uncorrectable(),
                    "double error ({a},{b}) not detected: {decoded:?}"
                );
            }
        }
    }

    #[test]
    fn syndrome_correctability_matches_decode() {
        let codec = Codec::new();
        for s in 0u16..256 {
            let s = s as u8;
            let correctable = codec.syndrome_is_correctable(s);
            // Cross-check: apply syndrome as code damage on a clean word.
            let data = 0u64;
            let decoded = codec.decode(data, s); // code should be 0; s is the syndrome
            let observed = !matches!(decoded, Decoded::Uncorrectable { .. }) && s != 0;
            assert_eq!(correctable, observed, "syndrome {s:#04x}");
        }
    }
}
