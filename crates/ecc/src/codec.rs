//! SEC-DED (72,64) Hsiao code.
//!
//! Each 64-bit *ECC group* is protected by 8 check bits. The code is built
//! from a parity-check matrix whose data columns are distinct odd-weight 8-bit
//! vectors (all 56 weight-3 vectors plus 8 weight-5 vectors) and whose check
//! columns are the 8 weight-1 vectors. Odd-weight columns give the classic
//! Hsiao SEC-DED property:
//!
//! * a **zero syndrome** means no error;
//! * an **odd-weight syndrome** that matches a column identifies a single-bit
//!   error (correctable) in the corresponding data or check bit;
//! * an **even-weight non-zero syndrome** can only be produced by an even
//!   number of bit errors — reported as uncorrectable;
//! * an **odd-weight syndrome matching no column** indicates ≥3 bit errors —
//!   also uncorrectable. The SafeMem scramble trick deliberately lands here.

/// Number of data bits per ECC group.
pub const DATA_BITS: u32 = 64;
/// Number of check bits per ECC group.
pub const CHECK_BITS: u32 = 8;

/// Outcome of decoding a (data, code) pair.
///
/// Produced by [`Codec::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decoded {
    /// Data and code are consistent.
    Clean,
    /// A single flipped *data* bit was found and corrected; `data` is the
    /// corrected word and `bit` the flipped position (0..64).
    CorrectedData {
        /// The corrected 64-bit word.
        data: u64,
        /// Position of the flipped data bit.
        bit: u8,
    },
    /// A single flipped *check* bit was found; the data word is intact.
    CorrectedCheck {
        /// Position of the flipped check bit (0..8).
        bit: u8,
    },
    /// The syndrome is inconsistent with any single-bit error: two or more
    /// bits are wrong. The stored word cannot be trusted.
    Uncorrectable {
        /// The raw 8-bit syndrome, for diagnostics.
        syndrome: u8,
    },
}

impl Decoded {
    /// Returns `true` for the [`Decoded::Uncorrectable`] variant.
    #[must_use]
    pub fn is_uncorrectable(&self) -> bool {
        matches!(self, Decoded::Uncorrectable { .. })
    }
}

/// Builds the 64 data columns of the H matrix: every odd 8-bit vector of
/// weight 3 in ascending numeric order, then the first 8 of weight 5.
const fn build_columns() -> [u8; 64] {
    let mut cols = [0u8; 64];
    let mut n = 0usize;
    // Weight-3 columns (there are exactly C(8,3) = 56 of them).
    let mut v: u16 = 0;
    while v < 256 {
        if (v as u8).count_ones() == 3 {
            cols[n] = v as u8;
            n += 1;
        }
        v += 1;
    }
    // Weight-5 columns to reach 64.
    let mut v: u16 = 0;
    while v < 256 && n < 64 {
        if (v as u8).count_ones() == 5 {
            cols[n] = v as u8;
            n += 1;
        }
        v += 1;
    }
    cols
}

/// Per-data-bit column vectors of the parity-check matrix.
pub const COLUMNS: [u8; 64] = build_columns();

/// Builds, for each check bit `j`, the mask of data bits participating in it.
const fn build_row_masks() -> [u64; 8] {
    let mut masks = [0u64; 8];
    let mut i = 0usize;
    while i < 64 {
        let col = COLUMNS[i];
        let mut j = 0usize;
        while j < 8 {
            if col & (1 << j) != 0 {
                masks[j] |= 1u64 << i;
            }
            j += 1;
        }
        i += 1;
    }
    masks
}

/// For each check bit, the set of data bits it covers.
pub const ROW_MASKS: [u64; 8] = build_row_masks();

/// Builds the per-byte parity-contribution table: `ENCODE_LUT[i][v]` is the
/// XOR of the H-matrix columns of every set bit of byte `i` holding value
/// `v`. Encoding a word is then the XOR of 8 table lookups instead of 8
/// masked popcounts — the check code of a word is, by linearity, the XOR of
/// the columns of its set data bits.
const fn build_encode_lut() -> [[u8; 256]; 8] {
    let mut lut = [[0u8; 256]; 8];
    let mut byte = 0usize;
    while byte < 8 {
        let mut v = 0usize;
        while v < 256 {
            let mut contrib = 0u8;
            let mut b = 0usize;
            while b < 8 {
                if v & (1 << b) != 0 {
                    contrib ^= COLUMNS[byte * 8 + b];
                }
                b += 1;
            }
            lut[byte][v] = contrib;
            v += 1;
        }
        byte += 1;
    }
    lut
}

/// Per-byte parity contributions: the check code of a 64-bit word (little-
/// endian bytes `b0..b7`) is `ENCODE_LUT[0][b0] ^ ... ^ ENCODE_LUT[7][b7]`.
pub const ENCODE_LUT: [[u8; 256]; 8] = build_encode_lut();

/// Classification of one 8-bit syndrome, independent of the data word it was
/// observed against. Precomputed for all 256 syndromes in
/// [`SYNDROME_TABLE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyndromeClass {
    /// The zero syndrome: data and code are consistent.
    Clean,
    /// The syndrome matches data column `bit`: a single flipped data bit.
    Data(u8),
    /// The syndrome is a single check-bit column: a flipped check bit.
    Check(u8),
    /// No single-bit pattern produces this syndrome: ≥2 bits are wrong.
    Uncorrectable,
}

/// Builds the 256-entry syndrome classifier from [`COLUMNS`], encoding the
/// same decision procedure `decode` used to perform per word: zero → clean,
/// even weight → uncorrectable, weight 1 → check bit, other odd weights →
/// data bit if some column matches, else uncorrectable.
const fn build_syndrome_table() -> [SyndromeClass; 256] {
    let mut table = [SyndromeClass::Uncorrectable; 256];
    table[0] = SyndromeClass::Clean;
    let mut s = 1usize;
    while s < 256 {
        let syndrome = s as u8;
        if syndrome.count_ones() % 2 == 1 {
            if syndrome.count_ones() == 1 {
                table[s] = SyndromeClass::Check(syndrome.trailing_zeros() as u8);
            } else {
                let mut bit = 0usize;
                while bit < 64 {
                    if COLUMNS[bit] == syndrome {
                        table[s] = SyndromeClass::Data(bit as u8);
                        break;
                    }
                    bit += 1;
                }
            }
        }
        s += 1;
    }
    table
}

/// Maps every syndrome directly to its [`SyndromeClass`], replacing the
/// popcount chain and linear [`COLUMNS`] scan on the decode path.
pub const SYNDROME_TABLE: [SyndromeClass; 256] = build_syndrome_table();

/// The SEC-DED (72,64) codec.
///
/// The codec is a zero-sized strategy type: all state lives in constants, and
/// encoding/decoding are pure functions of their inputs.
///
/// # Example
///
/// ```
/// use safemem_ecc::codec::{Codec, Decoded};
///
/// let codec = Codec::new();
/// let code = codec.encode(0xDEAD_BEEF_0123_4567);
/// assert_eq!(codec.decode(0xDEAD_BEEF_0123_4567, code), Decoded::Clean);
///
/// // Any single flipped data bit is corrected.
/// let damaged = 0xDEAD_BEEF_0123_4567 ^ (1 << 17);
/// assert_eq!(
///     codec.decode(damaged, code),
///     Decoded::CorrectedData { data: 0xDEAD_BEEF_0123_4567, bit: 17 }
/// );
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Codec(());

impl Codec {
    /// Creates the codec.
    #[must_use]
    pub fn new() -> Self {
        Codec(())
    }

    /// Computes the 8 check bits for a 64-bit data word.
    #[must_use]
    pub fn encode(&self, data: u64) -> u8 {
        self.encode_bytes(&data.to_le_bytes())
    }

    /// Computes the check bits of a group directly from its 8 little-endian
    /// stored bytes, without assembling a `u64` first — the form the bulk
    /// memory paths use when encoding straight out of a frame slice.
    #[must_use]
    pub fn encode_bytes(&self, bytes: &[u8; 8]) -> u8 {
        ENCODE_LUT[0][bytes[0] as usize]
            ^ ENCODE_LUT[1][bytes[1] as usize]
            ^ ENCODE_LUT[2][bytes[2] as usize]
            ^ ENCODE_LUT[3][bytes[3] as usize]
            ^ ENCODE_LUT[4][bytes[4] as usize]
            ^ ENCODE_LUT[5][bytes[5] as usize]
            ^ ENCODE_LUT[6][bytes[6] as usize]
            ^ ENCODE_LUT[7][bytes[7] as usize]
    }

    /// Computes the syndrome of a stored (data, code) pair.
    ///
    /// Zero means consistent; see [`COLUMNS`] for the single-bit patterns.
    #[must_use]
    pub fn syndrome(&self, data: u64, code: u8) -> u8 {
        self.encode(data) ^ code
    }

    /// Computes the syndrome of a group straight from its 8 stored bytes.
    #[must_use]
    pub fn syndrome_bytes(&self, bytes: &[u8; 8], code: u8) -> u8 {
        self.encode_bytes(bytes) ^ code
    }

    /// Verifies and, where possible, corrects a stored (data, code) pair.
    #[must_use]
    pub fn decode(&self, data: u64, code: u8) -> Decoded {
        let syndrome = self.syndrome(data, code);
        match SYNDROME_TABLE[syndrome as usize] {
            SyndromeClass::Clean => Decoded::Clean,
            SyndromeClass::Data(bit) => Decoded::CorrectedData {
                data: data ^ (1u64 << bit),
                bit,
            },
            SyndromeClass::Check(bit) => Decoded::CorrectedCheck { bit },
            SyndromeClass::Uncorrectable => Decoded::Uncorrectable { syndrome },
        }
    }

    /// Returns `true` if the given syndrome would be classified as a
    /// single-bit (correctable) error.
    #[must_use]
    pub fn syndrome_is_correctable(&self, syndrome: u8) -> bool {
        matches!(
            SYNDROME_TABLE[syndrome as usize],
            SyndromeClass::Data(_) | SyndromeClass::Check(_)
        )
    }

    /// Word-parallel (bit-plane) encode: check bit `j` of a word is the
    /// parity of the data bits selected by [`ROW_MASKS`]`[j]` — one mask,
    /// one popcount-fold per plane, no per-byte table walk. Equivalent to
    /// [`Codec::encode`]; the bulk paths use it so a whole group is coded
    /// from a single register-resident word.
    #[must_use]
    pub fn encode_word(&self, data: u64) -> u8 {
        let mut code = 0u8;
        let mut j = 0;
        while j < CHECK_BITS as usize {
            #[allow(clippy::cast_possible_truncation)]
            let parity = ((data & ROW_MASKS[j]).count_ones() & 1) as u8;
            code |= parity << j;
            j += 1;
        }
        code
    }

    /// Batch-encodes one cache line — [`LINE_GROUPS`] consecutive groups,
    /// [`LINE_BYTES`] little-endian bytes — into its 8 check codes.
    /// Semantically this runs the 8 masked bit-planes over each group word
    /// (see [`Codec::encode_word`]); the hot-path implementation walks the
    /// byte tables instead because baseline `x86-64` emulates `popcnt` in
    /// software, making the L1-resident table walk the faster evaluation of
    /// the same XOR-of-planes sum. The two are differentially tested
    /// exhaustively per byte lane and by proptest over random lines.
    #[must_use]
    pub fn encode_line(&self, line: &[u8; LINE_BYTES]) -> [u8; LINE_GROUPS] {
        let mut codes = [0u8; LINE_GROUPS];
        for (g, chunk) in line.chunks_exact(8).enumerate() {
            let bytes: &[u8; 8] = chunk.try_into().expect("8-byte chunk");
            codes[g] = self.encode_bytes(bytes);
        }
        codes
    }

    /// [`Codec::encode_line`] evaluated strictly through the word-parallel
    /// bit-plane path — the differential reference for the batch encoder.
    #[must_use]
    pub fn encode_line_planes(&self, line: &[u8; LINE_BYTES]) -> [u8; LINE_GROUPS] {
        let mut codes = [0u8; LINE_GROUPS];
        for (g, chunk) in line.chunks_exact(8).enumerate() {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            codes[g] = self.encode_word(word);
        }
        codes
    }

    /// Scans one cache line against its stored codes and returns a bitmask
    /// of the groups whose syndrome is non-zero (bit `g` set = group `g`
    /// disagrees with its code). The common all-clean case reduces to one
    /// 64-bit compare of the recomputed code vector against the stored one.
    #[must_use]
    pub fn dirty_mask_line(&self, line: &[u8; LINE_BYTES], codes: &[u8; LINE_GROUPS]) -> u8 {
        let fresh = self.encode_line(line);
        if u64::from_le_bytes(fresh) == u64::from_le_bytes(*codes) {
            return 0;
        }
        let mut mask = 0u8;
        for g in 0..LINE_GROUPS {
            mask |= u8::from(fresh[g] != codes[g]) << g;
        }
        mask
    }
}

/// Groups batched per bit-plane scan line.
pub const LINE_GROUPS: usize = 8;
/// Bytes per bit-plane scan line (one 64-byte cache line).
pub const LINE_BYTES: usize = LINE_GROUPS * 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_are_distinct_odd_weight() {
        for (i, &c) in COLUMNS.iter().enumerate() {
            assert!(c.count_ones() % 2 == 1, "column {i} has even weight");
            assert!(c.count_ones() >= 3, "column {i} collides with check bits");
            for &d in &COLUMNS[i + 1..] {
                assert_ne!(c, d, "duplicate column");
            }
        }
    }

    #[test]
    fn encode_zero_is_zero() {
        assert_eq!(Codec::new().encode(0), 0);
    }

    #[test]
    fn clean_roundtrip() {
        let codec = Codec::new();
        for data in [0u64, 1, u64::MAX, 0xDEAD_BEEF, 0x0123_4567_89AB_CDEF] {
            let code = codec.encode(data);
            assert_eq!(codec.decode(data, code), Decoded::Clean);
        }
    }

    #[test]
    fn every_single_data_bit_error_is_corrected() {
        let codec = Codec::new();
        let data = 0xA5A5_5A5A_F00D_CAFE_u64;
        let code = codec.encode(data);
        for bit in 0..64 {
            let damaged = data ^ (1u64 << bit);
            assert_eq!(
                codec.decode(damaged, code),
                Decoded::CorrectedData { data, bit },
                "bit {bit}"
            );
        }
    }

    #[test]
    fn every_single_check_bit_error_is_flagged() {
        let codec = Codec::new();
        let data = 0x1122_3344_5566_7788_u64;
        let code = codec.encode(data);
        for bit in 0..8 {
            let damaged_code = code ^ (1u8 << bit);
            assert_eq!(
                codec.decode(data, damaged_code),
                Decoded::CorrectedCheck { bit }
            );
        }
    }

    #[test]
    fn every_double_bit_error_is_detected_not_miscorrected() {
        // Exhaustive over all C(72,2) = 2556 double flips for one word.
        let codec = Codec::new();
        let data = 0x0F0F_F0F0_1234_8765_u64;
        let code = codec.encode(data);
        for a in 0..72u32 {
            for b in (a + 1)..72 {
                let mut d = data;
                let mut c = code;
                for &bit in &[a, b] {
                    if bit < 64 {
                        d ^= 1u64 << bit;
                    } else {
                        c ^= 1u8 << (bit - 64);
                    }
                }
                let decoded = codec.decode(d, c);
                assert!(
                    decoded.is_uncorrectable(),
                    "double error ({a},{b}) not detected: {decoded:?}"
                );
            }
        }
    }

    #[test]
    fn syndrome_correctability_matches_decode() {
        let codec = Codec::new();
        for s in 0u16..256 {
            let s = s as u8;
            let correctable = codec.syndrome_is_correctable(s);
            // Cross-check: apply syndrome as code damage on a clean word.
            let data = 0u64;
            let decoded = codec.decode(data, s); // code should be 0; s is the syndrome
            let observed = !matches!(decoded, Decoded::Uncorrectable { .. }) && s != 0;
            assert_eq!(correctable, observed, "syndrome {s:#04x}");
        }
    }
}
