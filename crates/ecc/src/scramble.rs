//! The SafeMem data-scrambling scheme (paper §2.2.2, Figure 2).
//!
//! Commercial ECC controllers do not let software write the stored code
//! directly, so SafeMem arms a watchpoint by rewriting the watched data with
//! **3 fixed bits flipped while ECC is disabled**: the stale code then
//! mismatches the scrambled data. The 3 positions are chosen so that
//!
//! 1. the resulting syndrome is **uncorrectable** — most controllers silently
//!    fix single-bit errors, so the scramble must not alias to one; and
//! 2. the flip pattern is a **fixed signature**, letting the fault handler
//!    distinguish an access to a watched word (current == original ⊕ mask)
//!    from a genuine hardware error.

use crate::codec::{Codec, COLUMNS};

/// A 3-bit scramble pattern with the guarantees described in the module docs.
///
/// # Example
///
/// ```
/// use safemem_ecc::ScrambleScheme;
///
/// let scheme = ScrambleScheme::default();
/// let original = 0xCAFE_F00D_u64;
/// let scrambled = scheme.apply(original);
/// assert_eq!(scrambled.count_ones().abs_diff(original.count_ones()) % 2, 1);
/// assert!(scheme.matches(original, scrambled));
/// assert_eq!(scheme.apply(scrambled), original); // involution
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScrambleScheme {
    bits: [u8; 3],
}

impl Default for ScrambleScheme {
    /// The canonical scheme: the lexicographically first valid bit triple.
    fn default() -> Self {
        Self::find_valid().expect("a valid 3-bit scramble triple always exists for this code")
    }
}

impl ScrambleScheme {
    /// Creates a scheme from explicit data-bit positions.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidScrambleError`] if the positions are out of range,
    /// not distinct, or produce a syndrome the controller would *correct*
    /// (i.e. one that aliases to a single-bit error).
    pub fn new(bits: [u8; 3]) -> Result<Self, InvalidScrambleError> {
        if bits.iter().any(|&b| b >= 64) {
            return Err(InvalidScrambleError::OutOfRange);
        }
        if bits[0] == bits[1] || bits[0] == bits[2] || bits[1] == bits[2] {
            return Err(InvalidScrambleError::NotDistinct);
        }
        let syndrome =
            COLUMNS[bits[0] as usize] ^ COLUMNS[bits[1] as usize] ^ COLUMNS[bits[2] as usize];
        if Codec::new().syndrome_is_correctable(syndrome) {
            return Err(InvalidScrambleError::Correctable { syndrome });
        }
        Ok(ScrambleScheme { bits })
    }

    /// Searches for the lexicographically first valid triple.
    #[must_use]
    pub fn find_valid() -> Option<Self> {
        for a in 0..64u8 {
            for b in (a + 1)..64 {
                for c in (b + 1)..64 {
                    if let Ok(s) = Self::new([a, b, c]) {
                        return Some(s);
                    }
                }
            }
        }
        None
    }

    /// The three data-bit positions this scheme flips.
    #[must_use]
    pub fn bits(&self) -> [u8; 3] {
        self.bits
    }

    /// The XOR mask applied to a data word.
    #[must_use]
    pub fn mask(&self) -> u64 {
        (1u64 << self.bits[0]) | (1u64 << self.bits[1]) | (1u64 << self.bits[2])
    }

    /// The syndrome the controller observes when reading a scrambled group
    /// against its stale code. Guaranteed uncorrectable.
    #[must_use]
    pub fn syndrome(&self) -> u8 {
        COLUMNS[self.bits[0] as usize]
            ^ COLUMNS[self.bits[1] as usize]
            ^ COLUMNS[self.bits[2] as usize]
    }

    /// Scrambles (or unscrambles — the operation is an involution) a word.
    #[must_use]
    pub fn apply(&self, data: u64) -> u64 {
        data ^ self.mask()
    }

    /// Checks the scramble signature: is `current` exactly `original` with
    /// the scheme's 3 bits flipped? The SafeMem fault handler uses this to
    /// distinguish an access fault from a real hardware error (paper §2.2.2).
    #[must_use]
    pub fn matches(&self, original: u64, current: u64) -> bool {
        original ^ current == self.mask()
    }
}

/// Why a proposed scramble triple was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvalidScrambleError {
    /// A position was ≥ 64.
    OutOfRange,
    /// The three positions were not pairwise distinct.
    NotDistinct,
    /// The triple's syndrome aliases to a single-bit error the controller
    /// would silently correct, so no fault would ever be raised.
    Correctable {
        /// The offending syndrome.
        syndrome: u8,
    },
}

impl std::fmt::Display for InvalidScrambleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvalidScrambleError::OutOfRange => write!(f, "scramble bit position out of range"),
            InvalidScrambleError::NotDistinct => write!(f, "scramble bit positions not distinct"),
            InvalidScrambleError::Correctable { syndrome } => write!(
                f,
                "scramble syndrome {syndrome:#04x} aliases to a correctable single-bit error"
            ),
        }
    }
}

impl std::error::Error for InvalidScrambleError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{Codec, Decoded};

    #[test]
    fn default_scheme_exists_and_is_stable() {
        let a = ScrambleScheme::default();
        let b = ScrambleScheme::default();
        assert_eq!(a, b, "default scheme must be deterministic");
    }

    #[test]
    fn default_scheme_produces_uncorrectable_fault() {
        let codec = Codec::new();
        let scheme = ScrambleScheme::default();
        for data in [0u64, u64::MAX, 0x1234_5678_9ABC_DEF0] {
            let stale_code = codec.encode(data);
            let decoded = codec.decode(scheme.apply(data), stale_code);
            assert!(
                matches!(decoded, Decoded::Uncorrectable { syndrome } if syndrome == scheme.syndrome()),
                "scrambled word must decode as uncorrectable, got {decoded:?}"
            );
        }
    }

    #[test]
    fn apply_is_involution() {
        let scheme = ScrambleScheme::default();
        let data = 0xFEED_FACE_DEAD_BEEF;
        assert_eq!(scheme.apply(scheme.apply(data)), data);
    }

    #[test]
    fn signature_match_rejects_other_corruption() {
        let scheme = ScrambleScheme::default();
        let original = 0x42;
        assert!(scheme.matches(original, scheme.apply(original)));
        // A random hardware error (different flip pattern) must not match.
        assert!(!scheme.matches(original, original ^ 1));
        assert!(!scheme.matches(original, original));
    }

    #[test]
    fn consecutive_low_bits_rejected_as_correctable_or_valid() {
        // Bits {0,1,2} of this particular column layout alias to a
        // single-check-bit syndrome and must be rejected.
        assert_eq!(
            ScrambleScheme::new([0, 1, 2]),
            Err(InvalidScrambleError::Correctable { syndrome: 0x01 })
        );
    }

    #[test]
    fn validation_rejects_bad_input() {
        assert_eq!(
            ScrambleScheme::new([0, 1, 64]),
            Err(InvalidScrambleError::OutOfRange)
        );
        assert_eq!(
            ScrambleScheme::new([5, 5, 6]),
            Err(InvalidScrambleError::NotDistinct)
        );
    }

    #[test]
    fn all_valid_triples_yield_odd_noncolumn_syndromes() {
        // Spot-check the first handful of valid schemes. (Triples whose
        // columns all lie in the low bit positions XOR to small odd-weight
        // values, which are all themselves columns — so the scan must cover
        // the full range to find valid ones.)
        let mut found = 0;
        'outer: for a in 0..64u8 {
            for b in (a + 1)..64 {
                for c in (b + 1)..64 {
                    if let Ok(s) = ScrambleScheme::new([a, b, c]) {
                        let syn = s.syndrome();
                        assert_eq!(syn.count_ones() % 2, 1);
                        assert!(!COLUMNS.contains(&syn));
                        assert!(syn.count_ones() > 1);
                        found += 1;
                        if found > 20 {
                            break 'outer;
                        }
                    }
                }
            }
        }
        assert!(
            found > 0,
            "expected at least one valid triple among low bits"
        );
    }
}
