//! ECC fault events, the simulated analogue of the controller's interrupt.
//!
//! Real ECC controllers report uncorrectable errors to the processor with an
//! interrupt; the operating system then decides what to do (stock kernels
//! panic, SafeMem's patched kernel routes watched-line faults to a user-level
//! handler). In the simulation the controller returns an [`EccFault`] from the
//! failing read and queues a copy in its fault outbox, which the machine layer
//! drains and delivers upward.

use std::error::Error;
use std::fmt;

/// The kind of event reported by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FaultKind {
    /// The syndrome is inconsistent with any single-bit error: the data in
    /// this ECC group cannot be trusted. This is the interrupt-raising case,
    /// and the case the SafeMem scramble trick deliberately triggers.
    UncorrectableData,
    /// A single-bit error was detected while the controller is in
    /// [`CheckOnly`](crate::EccMode::CheckOnly) mode, which reports but does
    /// not correct.
    UnrepairedSingleBit,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::UncorrectableData => write!(f, "uncorrectable multi-bit ECC error"),
            FaultKind::UnrepairedSingleBit => write!(f, "unrepaired single-bit ECC error"),
        }
    }
}

/// An ECC fault raised by the memory controller.
///
/// # Example
///
/// ```
/// use safemem_ecc::{EccFault, FaultKind};
///
/// let fault = EccFault { group_addr: 0x1000, syndrome: 0x17, kind: FaultKind::UncorrectableData };
/// assert_eq!(fault.group_addr % 8, 0);
/// println!("{fault}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EccFault {
    /// Physical address of the 8-byte ECC group that faulted (group-aligned).
    pub group_addr: u64,
    /// The raw syndrome observed.
    pub syndrome: u8,
    /// What the controller concluded.
    pub kind: FaultKind,
}

impl fmt::Display for EccFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at physical group {:#x} (syndrome {:#04x})",
            self.kind, self.group_addr, self.syndrome
        )
    }
}

impl Error for EccFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let fault = EccFault {
            group_addr: 0x40,
            syndrome: 0x0b,
            kind: FaultKind::UncorrectableData,
        };
        let s = fault.to_string();
        assert!(s.contains("0x40"));
        assert!(s.contains("uncorrectable"));
    }

    #[test]
    fn fault_is_error_trait_object_compatible() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<EccFault>();
    }
}
