//! A register-level chipset facade over the ECC controller.
//!
//! Paper §2.2.3: *"most ECC memory controllers export a narrow, limited
//! interface to OS"* — the prototype's ECC library is device-specific. This
//! module models that narrow interface in the style of an E7500-class
//! chipset: a handful of memory-mapped configuration registers with
//! read-to-clear error logging, driven by register reads/writes rather than
//! method calls. The OS layer could be ported to sit on top of this facade
//! unchanged on "another chipset" by remapping register offsets — which is
//! precisely the portability pain the paper argues a standardised
//! software-friendly interface would remove.

use crate::controller::{EccController, EccMode};
use crate::fault::EccFault;

/// Register map (byte offsets, in the style of PCI config-space registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum Register {
    /// DRB — mode control: 0 disabled, 1 check-only, 2 correct, 3 scrub.
    ModeControl = 0x50,
    /// ERRSTS — error status; read-to-clear. Bit 0: single-bit error seen,
    /// bit 1: multi-bit error seen, bit 8: error log valid.
    ErrorStatus = 0x52,
    /// EAP — address of the most recent logged error (group-aligned).
    ErrorAddress = 0x58,
    /// ERRSYN — syndrome of the most recent logged error.
    ErrorSyndrome = 0x5C,
    /// SCRUBCTL — bit 0: scrub enable (requires scrub-capable mode).
    ScrubControl = 0x60,
    /// MCHCFG — bit 0: master ECC enable, bit 1: bus lock.
    GlobalConfig = 0x64,
}

/// ERRSTS bit: a single-bit error was observed.
pub const ERRSTS_SINGLE: u64 = 1 << 0;
/// ERRSTS bit: a multi-bit error was observed.
pub const ERRSTS_MULTI: u64 = 1 << 1;
/// ERRSTS bit: the error address/syndrome registers hold a valid log.
pub const ERRSTS_LOG_VALID: u64 = 1 << 8;

/// The chipset facade. Owns the controller; the raw controller remains
/// reachable through [`Chipset::controller_mut`] for the data path.
#[derive(Debug)]
pub struct Chipset {
    controller: EccController,
    /// Latched error log (first error wins until cleared, like real
    /// chipsets' read-to-clear semantics).
    logged: Option<EccFault>,
    saw_single: bool,
    saw_multi: bool,
    /// Counter snapshot used to detect new corrections.
    last_corrected: u64,
}

impl Chipset {
    /// Wraps a fresh controller over `size` bytes of memory.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    #[must_use]
    pub fn new(size: u64) -> Self {
        Chipset {
            controller: EccController::new(size),
            logged: None,
            saw_single: false,
            saw_multi: false,
            last_corrected: 0,
        }
    }

    /// The underlying controller (data path: reads, writes, scrub).
    #[must_use]
    pub fn controller_mut(&mut self) -> &mut EccController {
        &mut self.controller
    }

    /// Shared access to the underlying controller.
    #[must_use]
    pub fn controller(&self) -> &EccController {
        &self.controller
    }

    /// Latches any newly observed errors into the status bits/log.
    fn sync(&mut self) {
        let stats = self.controller.stats();
        if stats.corrected_single_bit + stats.reported_single_bit > self.last_corrected {
            self.saw_single = true;
            self.last_corrected = stats.corrected_single_bit + stats.reported_single_bit;
        }
        for fault in self.controller.take_faults() {
            self.saw_multi = true;
            self.logged.get_or_insert(fault);
        }
    }

    /// Reads a register. `ErrorStatus` is read-to-clear, like the hardware.
    pub fn read_register(&mut self, reg: Register) -> u64 {
        self.sync();
        match reg {
            Register::ModeControl => match self.controller.mode() {
                EccMode::Disabled => 0,
                EccMode::CheckOnly => 1,
                EccMode::CorrectError => 2,
                EccMode::CorrectAndScrub => 3,
            },
            Register::ErrorStatus => {
                let mut v = 0;
                if self.saw_single {
                    v |= ERRSTS_SINGLE;
                }
                if self.saw_multi {
                    v |= ERRSTS_MULTI;
                }
                if self.logged.is_some() {
                    v |= ERRSTS_LOG_VALID;
                }
                // Read-to-clear.
                self.saw_single = false;
                self.saw_multi = false;
                v
            }
            Register::ErrorAddress => self.logged.map_or(0, |f| f.group_addr),
            Register::ErrorSyndrome => {
                let v = self.logged.map_or(0, |f| u64::from(f.syndrome));
                self.logged = None; // reading the syndrome releases the log
                v
            }
            Register::ScrubControl => u64::from(self.controller.mode() == EccMode::CorrectAndScrub),
            Register::GlobalConfig => {
                u64::from(self.controller.is_enabled())
                    | (u64::from(self.controller.is_bus_locked()) << 1)
            }
        }
    }

    /// Writes a register.
    ///
    /// # Panics
    ///
    /// Panics on an invalid mode value or on a bus-lock protocol violation
    /// (double lock / unlock while unlocked), as the hardware would hang.
    pub fn write_register(&mut self, reg: Register, value: u64) {
        match reg {
            Register::ModeControl => {
                let mode = match value & 0b11 {
                    0 => EccMode::Disabled,
                    1 => EccMode::CheckOnly,
                    2 => EccMode::CorrectError,
                    _ => EccMode::CorrectAndScrub,
                };
                self.controller.set_mode(mode);
            }
            Register::ErrorStatus => {
                // Writing 1s clears the corresponding sticky bits.
                if value & ERRSTS_SINGLE != 0 {
                    self.saw_single = false;
                }
                if value & ERRSTS_MULTI != 0 {
                    self.saw_multi = false;
                }
                if value & ERRSTS_LOG_VALID != 0 {
                    self.logged = None;
                }
            }
            Register::ErrorAddress | Register::ErrorSyndrome => {
                // Log registers are read-only; hardware ignores writes.
            }
            Register::ScrubControl => {
                // Scrub enable is a view of the mode; direct writes select
                // between Correct and CorrectAndScrub.
                if value & 1 != 0 {
                    self.controller.set_mode(EccMode::CorrectAndScrub);
                } else if self.controller.mode() == EccMode::CorrectAndScrub {
                    self.controller.set_mode(EccMode::CorrectError);
                }
            }
            Register::GlobalConfig => {
                self.controller.set_enabled(value & 1 != 0);
                let want_lock = value & 2 != 0;
                if want_lock != self.controller.is_bus_locked() {
                    if want_lock {
                        self.controller.lock_bus();
                    } else {
                        self.controller.unlock_bus();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scramble::ScrambleScheme;

    #[test]
    fn mode_register_roundtrip() {
        let mut chip = Chipset::new(1 << 16);
        for (value, mode) in [
            (0u64, EccMode::Disabled),
            (1, EccMode::CheckOnly),
            (2, EccMode::CorrectError),
            (3, EccMode::CorrectAndScrub),
        ] {
            chip.write_register(Register::ModeControl, value);
            assert_eq!(chip.controller().mode(), mode);
            assert_eq!(chip.read_register(Register::ModeControl), value);
        }
    }

    #[test]
    fn error_status_is_read_to_clear() {
        let mut chip = Chipset::new(1 << 16);
        chip.controller_mut().write(0x100, &7u64.to_le_bytes());
        chip.controller_mut().inject_data_error(0x100, 4);
        let mut buf = [0u8; 8];
        chip.controller_mut().read(0x100, &mut buf).unwrap();
        let status = chip.read_register(Register::ErrorStatus);
        assert_ne!(status & ERRSTS_SINGLE, 0, "single-bit error latched");
        assert_eq!(
            chip.read_register(Register::ErrorStatus) & ERRSTS_SINGLE,
            0,
            "cleared by read"
        );
    }

    #[test]
    fn multi_bit_error_logs_address_and_syndrome() {
        let mut chip = Chipset::new(1 << 16);
        chip.controller_mut().write(0x240, &1u64.to_le_bytes());
        chip.controller_mut().inject_multi_bit_error(0x240);
        let _ = chip.controller_mut().read(0x240, &mut [0u8; 8]);
        let status = chip.read_register(Register::ErrorStatus);
        assert_ne!(status & ERRSTS_MULTI, 0);
        assert_ne!(status & ERRSTS_LOG_VALID, 0);
        assert_eq!(chip.read_register(Register::ErrorAddress), 0x240);
        assert_ne!(chip.read_register(Register::ErrorSyndrome), 0);
        // Reading the syndrome releases the log.
        assert_eq!(
            chip.read_register(Register::ErrorStatus) & ERRSTS_LOG_VALID,
            0
        );
    }

    #[test]
    fn first_error_wins_until_cleared() {
        let mut chip = Chipset::new(1 << 16);
        for addr in [0x300u64, 0x400] {
            chip.controller_mut().write(addr, &1u64.to_le_bytes());
            chip.controller_mut().inject_multi_bit_error(addr);
            let _ = chip.controller_mut().read(addr, &mut [0u8; 8]);
        }
        assert_eq!(
            chip.read_register(Register::ErrorAddress),
            0x300,
            "first logged"
        );
    }

    #[test]
    fn global_config_drives_the_scramble_sequence() {
        // The full WatchMemory arm sequence, expressed purely through the
        // narrow register interface + data path.
        let mut chip = Chipset::new(1 << 16);
        let scheme = ScrambleScheme::default();
        let original = 0xFACE_u64;
        chip.controller_mut().write(0x500, &original.to_le_bytes());

        chip.write_register(Register::GlobalConfig, 0b11); // ECC on + bus lock
        chip.write_register(Register::GlobalConfig, 0b10); // ECC off, keep lock
        chip.controller_mut()
            .write(0x500, &scheme.apply(original).to_le_bytes());
        chip.write_register(Register::GlobalConfig, 0b11); // ECC back on
        chip.write_register(Register::GlobalConfig, 0b01); // release bus

        let fault = chip
            .controller_mut()
            .read(0x500, &mut [0u8; 8])
            .unwrap_err();
        assert_eq!(fault.syndrome, scheme.syndrome());
        assert_eq!(chip.read_register(Register::GlobalConfig), 0b01);
    }

    #[test]
    fn scrub_control_toggles_scrub_mode() {
        let mut chip = Chipset::new(1 << 16);
        chip.write_register(Register::ModeControl, 2);
        chip.write_register(Register::ScrubControl, 1);
        assert_eq!(chip.controller().mode(), EccMode::CorrectAndScrub);
        chip.write_register(Register::ScrubControl, 0);
        assert_eq!(chip.controller().mode(), EccMode::CorrectError);
    }
}
