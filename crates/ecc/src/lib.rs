//! Simulated ECC memory for the SafeMem reproduction.
//!
//! This crate models the piece of hardware the SafeMem paper (HPCA 2005)
//! repurposes: an off-the-shelf ECC memory controller in the style of the
//! Intel E7500 chipset. It provides:
//!
//! * a real **SEC-DED (72,64) Hsiao code** ([`codec`]) — 8 check bits protect
//!   each 64-bit *ECC group*, correcting any single-bit error and detecting
//!   any double-bit error;
//! * a lazily-populated, byte-accurate **physical memory** ([`memory`]) that
//!   stores both data and the per-group check codes, so that writes performed
//!   while ECC is disabled leave *stale* codes behind exactly like the real
//!   hardware;
//! * a **memory controller** ([`controller`]) with the four standard modes
//!   (`Disabled`, `CheckOnly`, `CorrectError`, `CorrectAndScrub`), bus
//!   locking, error injection, scrubbing, and an interrupt-style fault outbox;
//! * the paper's **data-scrambling trick** ([`scramble`]): flip 3 fixed data
//!   bits of a watched word while ECC is disabled so that the first memory
//!   access to it raises an *uncorrectable* (multi-bit) ECC fault with a
//!   recognisable signature.
//!
//! # Example
//!
//! ```
//! use safemem_ecc::{EccController, EccMode, ScrambleScheme, FaultKind};
//!
//! let mut ctl = EccController::new(1 << 20); // 1 MiB of physical memory
//! ctl.set_mode(EccMode::CorrectError);
//!
//! // Normal operation: write, then read back.
//! ctl.write(0x100, &42u64.to_le_bytes());
//! let mut buf = [0u8; 8];
//! ctl.read(0x100, &mut buf).unwrap();
//! assert_eq!(u64::from_le_bytes(buf), 42);
//!
//! // A single-bit hardware error is corrected transparently.
//! ctl.inject_data_error(0x100, 5);
//! ctl.read(0x100, &mut buf).unwrap();
//! assert_eq!(u64::from_le_bytes(buf), 42);
//! assert_eq!(ctl.stats().corrected_single_bit, 1);
//!
//! // The SafeMem scramble trick: rewrite the word with 3 bits flipped while
//! // ECC is disabled, leaving the stale code in place ...
//! let scheme = ScrambleScheme::default();
//! ctl.set_enabled(false);
//! ctl.write(0x100, &scheme.apply(42).to_le_bytes());
//! ctl.set_enabled(true);
//!
//! // ... so the next read faults with an uncorrectable error.
//! let fault = ctl.read(0x100, &mut buf).unwrap_err();
//! assert_eq!(fault.kind, FaultKind::UncorrectableData);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chipset;
pub mod codec;
pub mod codec32;
pub mod controller;
pub mod fault;
pub mod memory;
pub mod parity;
pub mod scramble;

pub use chipset::{Chipset, Register};
pub use codec::{Codec, Decoded, SyndromeClass, ENCODE_LUT, SYNDROME_TABLE};
pub use codec32::{Codec32, Decoded32};
pub use controller::{ControllerStats, EccController, EccMode};
pub use fault::{EccFault, FaultKind};
pub use memory::{EccMemory, GROUP_BYTES};
pub use parity::{ParityCheck, ParityMemory};
pub use scramble::ScrambleScheme;
