//! Simple parity memory — the technology ECC *extends* (paper §2.1).
//!
//! Parity memory keeps one check bit per byte: it detects any single-bit
//! error but corrects nothing and misses every even-weight error. The model
//! exists to make the paper's implicit argument testable: **SafeMem's trick
//! needs ECC, not parity**, because
//!
//! 1. a parity fault cannot be corrected, so a watchpoint could never be
//!    "transparent" for hardware errors; and
//! 2. the scramble must flip an *odd* number of bits per check unit to be
//!    detected at all, yet a single-bit flip is exactly what real memory
//!    errors look like — parity has no uncorrectable/correctable distinction
//!    to hide behind, and a 3-bit flip *within one byte* is detected while
//!    e.g. 2 bits are silently missed. There is no signature space left to
//!    distinguish watchpoints from faults.

/// One parity check bit per this many data bits (a byte), per §2.1: "parity
/// memory ... uses a single bit to provide protection to eight bits".
pub const PARITY_GROUP_BITS: u32 = 8;

/// Outcome of verifying a byte against its stored parity bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParityCheck {
    /// Parity matches. Note this does **not** imply the data is intact —
    /// any even number of flipped bits passes.
    Consistent,
    /// Parity mismatch: an odd number of bits flipped. The error cannot be
    /// corrected, only reported.
    Mismatch,
}

/// A byte-granularity parity memory.
///
/// # Example
///
/// ```
/// use safemem_ecc::parity::{ParityCheck, ParityMemory};
///
/// let mut mem = ParityMemory::new(1024);
/// mem.write(0, &[0xAB]);
/// assert_eq!(mem.check(0), ParityCheck::Consistent);
/// mem.flip_data_bit(0, 3);
/// assert_eq!(mem.check(0), ParityCheck::Mismatch); // detected, not corrected
/// mem.flip_data_bit(0, 5);
/// assert_eq!(mem.check(0), ParityCheck::Consistent); // double error: missed!
/// ```
#[derive(Debug, Clone)]
pub struct ParityMemory {
    data: Vec<u8>,
    parity: Vec<bool>,
}

impl ParityMemory {
    /// Creates a parity memory of `size` bytes, zero-initialised.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    #[must_use]
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "memory size must be non-zero");
        ParityMemory {
            data: vec![0; size],
            parity: vec![false; size],
        }
    }

    /// Total bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.data.len()
    }

    fn parity_of(byte: u8) -> bool {
        byte.count_ones() % 2 == 1
    }

    /// Writes bytes, updating parity (parity cannot be disabled on real
    /// parity modules — there is no controller-level enable like ECC's).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds memory.
    pub fn write(&mut self, addr: usize, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.data[addr + i] = b;
            self.parity[addr + i] = Self::parity_of(b);
        }
    }

    /// Reads bytes and reports whether every byte's parity was consistent.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds memory.
    pub fn read(&self, addr: usize, buf: &mut [u8]) -> ParityCheck {
        let mut status = ParityCheck::Consistent;
        for (i, slot) in buf.iter_mut().enumerate() {
            *slot = self.data[addr + i];
            if self.check(addr + i) == ParityCheck::Mismatch {
                status = ParityCheck::Mismatch;
            }
        }
        status
    }

    /// Verifies one byte against its stored parity.
    ///
    /// # Panics
    ///
    /// Panics if `addr` exceeds memory.
    #[must_use]
    pub fn check(&self, addr: usize) -> ParityCheck {
        if Self::parity_of(self.data[addr]) == self.parity[addr] {
            ParityCheck::Consistent
        } else {
            ParityCheck::Mismatch
        }
    }

    /// Injects a hardware error: flips one stored data bit, leaving the
    /// parity bit as it was.
    ///
    /// # Panics
    ///
    /// Panics if `addr` exceeds memory or `bit >= 8`.
    pub fn flip_data_bit(&mut self, addr: usize, bit: u8) {
        assert!(bit < 8, "bit out of range");
        self.data[addr] ^= 1 << bit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{Codec, Decoded};
    use crate::scramble::ScrambleScheme;

    #[test]
    fn detects_all_single_bit_errors() {
        for bit in 0..8 {
            let mut mem = ParityMemory::new(16);
            mem.write(5, &[0x3C]);
            mem.flip_data_bit(5, bit);
            assert_eq!(mem.check(5), ParityCheck::Mismatch, "bit {bit}");
        }
    }

    #[test]
    fn misses_all_double_bit_errors() {
        for a in 0..8u8 {
            for b in (a + 1)..8 {
                let mut mem = ParityMemory::new(16);
                mem.write(0, &[0xF0]);
                mem.flip_data_bit(0, a);
                mem.flip_data_bit(0, b);
                assert_eq!(
                    mem.check(0),
                    ParityCheck::Consistent,
                    "bits {a},{b} must slip through"
                );
            }
        }
    }

    #[test]
    fn cannot_correct_anything() {
        // Parity knows *that* a byte is bad but not *which bit*: the read
        // still delivers the damaged value.
        let mut mem = ParityMemory::new(16);
        mem.write(0, &[0b0000_0001]);
        mem.flip_data_bit(0, 0);
        let mut buf = [0u8; 1];
        assert_eq!(mem.read(0, &mut buf), ParityCheck::Mismatch);
        assert_eq!(buf[0], 0, "damaged data delivered as-is");
    }

    /// The reason SafeMem needs ECC and not parity, demonstrated: under
    /// SEC-DED the scramble signature occupies a syndrome region *disjoint*
    /// from every single-bit error, so watchpoint faults and correctable
    /// hardware errors are distinguishable. Parity has exactly one failure
    /// signal, already fully used by (odd) hardware errors.
    #[test]
    fn parity_cannot_host_the_safemem_trick() {
        // ECC: single-bit error → corrected (invisible); scramble →
        // uncorrectable fault (visible). Two distinct outcomes.
        let codec = Codec::new();
        let scheme = ScrambleScheme::default();
        let word = 0x1234_5678u64;
        let code = codec.encode(word);
        assert!(matches!(
            codec.decode(word ^ 1, code),
            Decoded::CorrectedData { .. }
        ));
        assert!(codec.decode(scheme.apply(word), code).is_uncorrectable());

        // Parity: the only observable signal is Mismatch, and a plain
        // hardware error raises it too — a parity-based "watchpoint" could
        // never tell the two apart, and even-weight scrambles are invisible.
        let mut mem = ParityMemory::new(8);
        mem.write(0, &[0xAA]);
        mem.flip_data_bit(0, 0); // hardware error
        let hw_signal = mem.check(0);
        let mut mem2 = ParityMemory::new(8);
        mem2.write(0, &[0xAA]);
        mem2.flip_data_bit(0, 1);
        mem2.flip_data_bit(0, 4);
        mem2.flip_data_bit(0, 6); // a 3-bit "scramble" within the byte
        let scramble_signal = mem2.check(0);
        assert_eq!(hw_signal, scramble_signal, "indistinguishable signals");
    }

    #[test]
    fn write_refreshes_parity() {
        let mut mem = ParityMemory::new(4);
        mem.write(1, &[0xFF]);
        mem.flip_data_bit(1, 2);
        assert_eq!(mem.check(1), ParityCheck::Mismatch);
        mem.write(1, &[0x00]); // overwrite heals the inconsistency
        assert_eq!(mem.check(1), ParityCheck::Consistent);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_size_rejected() {
        let _ = ParityMemory::new(0);
    }
}
