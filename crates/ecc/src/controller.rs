//! The ECC memory controller.
//!
//! Policy layer over [`EccMemory`]: encodes on write, verifies/corrects on
//! read, scrubs in the background, and reports uncorrectable errors through a
//! fault outbox (the simulated interrupt line). Mirrors the four operating
//! modes described in paper §2.1 plus the two software-visible controls the
//! SafeMem kernel patch relies on: a master ECC enable toggle and a bus lock
//! held while a line is being scrambled.

use crate::codec::{Codec, Decoded, LINE_BYTES, LINE_GROUPS};
use crate::fault::{EccFault, FaultKind};
use crate::memory::{EccMemory, FRAME_BYTES, GROUP_BYTES};

/// The controller operating mode (paper §2.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EccMode {
    /// All ECC functionality off: no checking, codes not maintained.
    Disabled,
    /// Detect and report single-bit and multi-bit errors, but correct nothing.
    CheckOnly,
    /// Detect and report; correct single-bit errors on the fly.
    #[default]
    CorrectError,
    /// Like `CorrectError`, and additionally scrub memory periodically.
    CorrectAndScrub,
}

impl EccMode {
    /// Whether this mode verifies reads at all.
    #[must_use]
    pub fn checks(self) -> bool {
        !matches!(self, EccMode::Disabled)
    }

    /// Whether this mode corrects single-bit errors.
    #[must_use]
    pub fn corrects(self) -> bool {
        matches!(self, EccMode::CorrectError | EccMode::CorrectAndScrub)
    }

    /// Whether this mode performs background scrubbing.
    #[must_use]
    pub fn scrubs(self) -> bool {
        matches!(self, EccMode::CorrectAndScrub)
    }
}

/// Event counters maintained by the controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ControllerStats {
    /// Group reads that went through verification.
    pub groups_verified: u64,
    /// Group writes that went through encoding.
    pub groups_encoded: u64,
    /// Single-bit errors corrected (read path).
    pub corrected_single_bit: u64,
    /// Single-bit errors detected but not corrected (CheckOnly mode).
    pub reported_single_bit: u64,
    /// Uncorrectable errors reported.
    pub uncorrectable: u64,
    /// Groups examined by the scrubber.
    pub scrubbed_groups: u64,
    /// Single-bit errors the scrubber repaired.
    pub scrub_corrections: u64,
    /// Complete passes the scrubber has made over resident memory.
    pub scrub_passes: u64,
    /// Single-bit *data* errors planted through [`EccController::inject_data_error`].
    pub injected_data_bits: u64,
    /// Single-bit *check-code* errors planted through
    /// [`EccController::inject_code_error`].
    pub injected_code_bits: u64,
    /// Multi-bit bursts planted through
    /// [`EccController::inject_multi_bit_error`].
    pub injected_multi_bit: u64,
}

/// A simulated commodity ECC memory controller.
///
/// See the [crate-level documentation](crate) for a usage walkthrough.
pub struct EccController {
    mem: EccMemory,
    codec: Codec,
    mode: EccMode,
    /// Master enable toggled by the OS around the scramble sequence. While
    /// `false` the controller behaves as in [`EccMode::Disabled`] regardless
    /// of `mode`.
    enabled: bool,
    bus_locked: bool,
    scrub_cursor: u64,
    /// Sorted resident-frame plan the scrubber walks, rebuilt only when the
    /// memory's allocation epoch moves (frames are never freed, so an equal
    /// epoch guarantees an identical plan).
    scrub_plan: Vec<u64>,
    /// Allocation epoch `scrub_plan` was built at; `u64::MAX` = never built.
    scrub_plan_epoch: u64,
    stats: ControllerStats,
    outbox: Vec<EccFault>,
}

impl std::fmt::Debug for EccController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EccController")
            .field("mode", &self.mode)
            .field("enabled", &self.enabled)
            .field("bus_locked", &self.bus_locked)
            .field("stats", &self.stats)
            .finish()
    }
}

impl EccController {
    /// Creates a controller over a fresh physical memory of `size` bytes.
    ///
    /// The controller starts in [`EccMode::CorrectError`] with ECC enabled.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    #[must_use]
    pub fn new(size: u64) -> Self {
        EccController {
            mem: EccMemory::new(size),
            codec: Codec::new(),
            mode: EccMode::CorrectError,
            enabled: true,
            bus_locked: false,
            scrub_cursor: 0,
            scrub_plan: Vec::new(),
            scrub_plan_epoch: u64::MAX,
            stats: ControllerStats::default(),
            outbox: Vec::new(),
        }
    }

    /// Total addressable bytes.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.mem.size()
    }

    /// Current operating mode.
    #[must_use]
    pub fn mode(&self) -> EccMode {
        self.mode
    }

    /// Sets the operating mode.
    pub fn set_mode(&mut self, mode: EccMode) {
        self.mode = mode;
    }

    /// Whether the master ECC enable is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Toggles the master ECC enable. While disabled, writes leave stored
    /// codes stale and reads are not verified — the core of the scramble
    /// trick (paper Figure 2).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Acquires the memory bus, excluding background traffic (scrubbing,
    /// other processors, DMA) during a scramble sequence.
    ///
    /// # Panics
    ///
    /// Panics if the bus is already locked — the simulation is
    /// single-threaded, so a double lock is a tool bug, not contention.
    pub fn lock_bus(&mut self) {
        assert!(!self.bus_locked, "memory bus already locked");
        self.bus_locked = true;
    }

    /// Releases the memory bus.
    ///
    /// # Panics
    ///
    /// Panics if the bus is not locked.
    pub fn unlock_bus(&mut self) {
        assert!(self.bus_locked, "memory bus not locked");
        self.bus_locked = false;
    }

    /// Whether the bus is currently locked.
    #[must_use]
    pub fn is_bus_locked(&self) -> bool {
        self.bus_locked
    }

    /// Cumulative event counters.
    #[must_use]
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// Drains the fault outbox (the pending "interrupts").
    pub fn take_faults(&mut self) -> Vec<EccFault> {
        std::mem::take(&mut self.outbox)
    }

    fn effective_checks(&self) -> bool {
        self.enabled && self.mode.checks()
    }

    fn effective_corrects(&self) -> bool {
        self.enabled && self.mode.corrects()
    }

    /// The policy half of group verification: decode, correct, count,
    /// report. The bulk read and scrub paths count their groups as verified
    /// during the syndrome scan and resolve just the non-clean ones here,
    /// so this deliberately does not touch `groups_verified`.
    fn resolve_group(&mut self, group_addr: u64, during_scrub: bool) -> Result<u64, EccFault> {
        let (data, code) = self.mem.read_group(group_addr);
        // The overwhelmingly common case is a clean group: settle it from the
        // syndrome alone, before constructing a `Decoded`.
        if self.codec.syndrome(data, code) == 0 {
            return Ok(data);
        }
        match self.codec.decode(data, code) {
            Decoded::Clean => Ok(data),
            Decoded::CorrectedData { data: fixed, .. } => {
                if self.effective_corrects() {
                    self.mem
                        .write_group(group_addr, fixed, self.codec.encode(fixed));
                    self.stats.corrected_single_bit += 1;
                    if during_scrub {
                        self.stats.scrub_corrections += 1;
                    }
                    Ok(fixed)
                } else {
                    // CheckOnly: report, deliver uncorrected data.
                    self.stats.reported_single_bit += 1;
                    self.outbox.push(EccFault {
                        group_addr,
                        syndrome: self.codec.syndrome(data, code),
                        kind: FaultKind::UnrepairedSingleBit,
                    });
                    Ok(data)
                }
            }
            Decoded::CorrectedCheck { .. } => {
                if self.effective_corrects() {
                    self.mem.rewrite_code(group_addr);
                    self.stats.corrected_single_bit += 1;
                    if during_scrub {
                        self.stats.scrub_corrections += 1;
                    }
                } else {
                    self.stats.reported_single_bit += 1;
                }
                Ok(data)
            }
            Decoded::Uncorrectable { syndrome } => {
                self.stats.uncorrectable += 1;
                let fault = EccFault {
                    group_addr,
                    syndrome,
                    kind: FaultKind::UncorrectableData,
                };
                self.outbox.push(fault);
                Err(fault)
            }
        }
    }

    /// Reads `buf.len()` bytes starting at physical address `addr`,
    /// verifying every ECC group touched.
    ///
    /// On an uncorrectable error the buffer is still filled with the raw
    /// stored bytes (hardware delivers *something*), the fault is queued in
    /// the outbox, and the first fault is returned.
    ///
    /// # Errors
    ///
    /// Returns the first [`EccFault`] whose kind is
    /// [`FaultKind::UncorrectableData`] among the groups read.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds physical memory (validated up front, so a
    /// huge `addr` cannot wrap past the bounds check in release builds).
    pub fn read(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), EccFault> {
        if buf.is_empty() {
            return Ok(());
        }
        self.mem.check_range(addr, buf.len() as u64);
        if !self.effective_checks() {
            self.mem.read_range(addr, buf);
            return Ok(());
        }
        let end = addr + buf.len() as u64;
        // Fast path: copy frame-at-a-time, scanning syndromes straight off
        // the frame slices. Groups with a non-zero syndrome are rare; they
        // are collected and resolved through the full policy path below.
        // (Does not allocate unless a non-clean group is found.)
        let mut dirty: Vec<u64> = Vec::new();
        let mut frame_addr = addr & !(FRAME_BYTES - 1);
        while frame_addr < end {
            let lo = frame_addr.max(addr);
            let hi = (frame_addr + FRAME_BYTES).min(end);
            let group_lo = lo & !(GROUP_BYTES - 1);
            let group_hi = GROUP_BYTES * hi.div_ceil(GROUP_BYTES);
            self.stats.groups_verified += (group_hi - group_lo) / GROUP_BYTES;
            let dst = &mut buf[(lo - addr) as usize..(hi - addr) as usize];
            let dirty_lines = self.mem.frame_dirty_lines(frame_addr);
            match self.mem.frame_slices(frame_addr) {
                // Untouched frame: all-zero data with all-zero codes — every
                // group is clean by construction.
                None => dst.fill(0),
                Some((data, codes)) => {
                    let off = (lo - frame_addr) as usize;
                    dst.copy_from_slice(&data[off..off + dst.len()]);
                    // A scan line whose dirty bit is clear is *guaranteed*
                    // clean, so the syndrome scan only visits flagged lines;
                    // those go 8 groups at a time through the bit-plane
                    // batch scanner where the span covers the whole line.
                    if dirty_lines != 0 {
                        let mut group = group_lo;
                        while group < group_hi {
                            let line = ((group - frame_addr) as usize) / LINE_BYTES;
                            let line_end =
                                (frame_addr + ((line + 1) * LINE_BYTES) as u64).min(group_hi);
                            if dirty_lines & (1u64 << line) == 0 {
                                group = line_end;
                                continue;
                            }
                            let line_start = frame_addr + (line * LINE_BYTES) as u64;
                            if group == line_start && line_end == line_start + LINE_BYTES as u64 {
                                let o = line * LINE_BYTES;
                                let lb: &[u8; LINE_BYTES] =
                                    data[o..o + LINE_BYTES].try_into().expect("line slice");
                                let cb: &[u8; LINE_GROUPS] = codes
                                    [line * LINE_GROUPS..(line + 1) * LINE_GROUPS]
                                    .try_into()
                                    .expect("code slice");
                                let mut mask = self.codec.dirty_mask_line(lb, cb);
                                while mask != 0 {
                                    let g = mask.trailing_zeros() as u64;
                                    dirty.push(line_start + g * GROUP_BYTES);
                                    mask &= mask - 1;
                                }
                                group = line_end;
                            } else {
                                while group < line_end {
                                    let o = (group - frame_addr) as usize;
                                    let bytes: &[u8; 8] =
                                        data[o..o + 8].try_into().expect("group is 8 bytes");
                                    let code = codes[o / GROUP_BYTES as usize];
                                    if self.codec.syndrome_bytes(bytes, code) != 0 {
                                        dirty.push(group);
                                    }
                                    group += GROUP_BYTES;
                                }
                            }
                        }
                    }
                }
            }
            frame_addr += FRAME_BYTES;
        }
        let mut first_fault = None;
        for group in dirty {
            if let Err(f) = self.resolve_group(group, false) {
                first_fault.get_or_insert(f);
            }
            // Re-copy whatever the group now holds: the corrected word when
            // a single-bit error was repaired, the raw stored bytes when the
            // error was only reported (CheckOnly) or uncorrectable.
            let bytes = self.mem.read_group(group).0.to_le_bytes();
            let lo = group.max(addr);
            let hi = (group + GROUP_BYTES).min(end);
            buf[(lo - addr) as usize..(hi - addr) as usize]
                .copy_from_slice(&bytes[(lo - group) as usize..(hi - group) as usize]);
        }
        match first_fault {
            None => Ok(()),
            Some(f) => Err(f),
        }
    }

    /// Writes `buf` at physical address `addr`.
    ///
    /// With ECC enabled, the stored code of every touched group is updated;
    /// with ECC disabled, the data changes but codes stay stale. Writes never
    /// verify (paper §2.1: only reads and scrubbing check).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds physical memory (validated up front, so a
    /// huge `addr` cannot wrap past the bounds check in release builds).
    pub fn write(&mut self, addr: u64, buf: &[u8]) {
        if buf.is_empty() {
            return;
        }
        self.mem.check_range(addr, buf.len() as u64);
        if self.enabled && self.mode.checks() {
            self.mem.write_range_encoded(addr, buf);
            let end = addr + buf.len() as u64;
            let group_lo = addr & !(GROUP_BYTES - 1);
            let group_hi = GROUP_BYTES * end.div_ceil(GROUP_BYTES);
            self.stats.groups_encoded += (group_hi - group_lo) / GROUP_BYTES;
        } else {
            self.mem.write_range_data_only(addr, buf);
        }
    }

    /// [`write`](Self::write) of one aligned line whose check codes the
    /// caller already holds (computed at watch-arm time): identical stored
    /// state and accounting, no per-group encode. Falls back to a data-only
    /// write when ECC is off, exactly like [`write`](Self::write).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not line-aligned or lies outside memory.
    pub fn write_line_precoded(
        &mut self,
        addr: u64,
        data: &[u8; LINE_BYTES],
        codes: &[u8; LINE_GROUPS],
    ) {
        if self.enabled && self.mode.checks() {
            self.mem.write_line_precoded(addr, data, codes);
            self.stats.groups_encoded += LINE_GROUPS as u64;
        } else {
            self.mem.check_range(addr, LINE_BYTES as u64);
            self.mem.write_range_data_only(addr, data);
        }
    }

    /// Encodes one line with the controller's codec — what a subsequent
    /// ECC-enabled write of `data` would store as check codes.
    #[must_use]
    pub fn encode_line(&self, data: &[u8; LINE_BYTES]) -> [u8; LINE_GROUPS] {
        self.codec.encode_line(data)
    }

    /// Returns the stored codes of the aligned line at `addr` when the
    /// line's dirty bit proves them consistent with the stored data — i.e.
    /// exactly what [`EccController::encode_line`] of the stored bytes would
    /// produce, without paying for the encode. `None` when the line may hold
    /// stale or corrupted codes and the caller must encode instead.
    #[must_use]
    pub fn line_codes_if_clean(&self, addr: u64) -> Option<[u8; LINE_GROUPS]> {
        self.mem.check_range(addr, LINE_BYTES as u64);
        self.mem.line_codes_if_clean(addr)
    }

    /// Reads raw stored bytes without any verification or accounting — the
    /// diagnostic window the SafeMem fault handler uses to compare a faulted
    /// word against the scramble signature.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds physical memory (validated up front, so a
    /// huge `addr` cannot wrap past the bounds check in release builds).
    #[must_use]
    pub fn peek(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.peek_into(addr, &mut out);
        out
    }

    /// [`peek`](Self::peek) into a caller-provided buffer — the
    /// allocation-free variant the kernel's watch sequences use per line.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds physical memory.
    pub fn peek_into(&self, addr: u64, out: &mut [u8]) {
        if !out.is_empty() {
            self.mem.check_range(addr, out.len() as u64);
            self.mem.read_range(addr, out);
        }
    }

    /// Injects a single-bit hardware error into stored *data*. This is the
    /// hook the fault-injection campaign engine (`safemem-faultinject`)
    /// drives; injections are counted in [`ControllerStats`].
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 64` or the group lies outside physical memory.
    pub fn inject_data_error(&mut self, addr: u64, bit: u8) {
        self.stats.injected_data_bits += 1;
        self.mem.flip_data_bit(addr, bit);
    }

    /// Injects a single-bit hardware error into a stored *check code*.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 8` or the group lies outside physical memory.
    pub fn inject_code_error(&mut self, addr: u64, bit: u8) {
        self.stats.injected_code_bits += 1;
        self.mem.flip_code_bit(addr, bit);
    }

    /// Injects a multi-bit hardware error (flips data bits 0 and 1).
    ///
    /// # Panics
    ///
    /// Panics if the group lies outside physical memory.
    pub fn inject_multi_bit_error(&mut self, addr: u64) {
        self.stats.injected_multi_bit += 1;
        self.mem.flip_data_bit(addr, 0);
        self.mem.flip_data_bit(addr, 1);
    }

    /// Performs one scrubbing step over up to `max_groups` resident groups,
    /// verifying and (in correcting modes) repairing them.
    ///
    /// Returns the number of groups examined. Does nothing when the mode does
    /// not scrub, when ECC is disabled, or while the bus is locked.
    pub fn scrub_step(&mut self, max_groups: u64) -> u64 {
        if !self.enabled || !self.mode.scrubs() || self.bus_locked {
            return 0;
        }
        // `resident_frame_addrs` is already in ascending address order; the
        // plan only changes when a frame is first touched, so rebuild it only
        // when the allocation epoch has moved since it was last built.
        if self.scrub_plan_epoch != self.mem.allocation_epoch() {
            self.scrub_plan = self.mem.resident_frame_addrs();
            self.scrub_plan_epoch = self.mem.allocation_epoch();
        }
        if self.scrub_plan.is_empty() {
            return 0;
        }
        let groups_per_frame = FRAME_BYTES / GROUP_BYTES;
        let total_groups = self.scrub_plan.len() as u64 * groups_per_frame;
        let mut done = 0;
        let mut dirty: Vec<u64> = Vec::new();
        while done < max_groups {
            if self.scrub_cursor >= total_groups {
                self.scrub_cursor = 0;
                self.stats.scrub_passes += 1;
            }
            // Process the rest of the current frame as one chunk.
            let frame = self.scrub_plan[(self.scrub_cursor / groups_per_frame) as usize];
            let first = self.scrub_cursor % groups_per_frame;
            let n = (groups_per_frame - first).min(max_groups - done);
            let dirty_lines = self.mem.frame_dirty_lines(frame);
            if dirty_lines != 0 {
                // Scan only the flagged lines of the chunk, 8 groups at a
                // time through the bit-plane batch scanner; clear bits are a
                // cleanliness guarantee, so their groups verify trivially.
                // Only non-clean groups go through the full policy path.
                dirty.clear();
                let mut scanned_lines = 0u64;
                let (data, codes) = self
                    .mem
                    .frame_slices(frame)
                    .expect("scrub plan only holds resident frames");
                let chunk_end = first + n;
                let mut g = first;
                while g < chunk_end {
                    let line = (g as usize) / LINE_GROUPS;
                    let line_start = (line * LINE_GROUPS) as u64;
                    let line_end = (line_start + LINE_GROUPS as u64).min(chunk_end);
                    if dirty_lines & (1u64 << line) == 0 {
                        g = line_end;
                        continue;
                    }
                    if g == line_start && line_end == line_start + LINE_GROUPS as u64 {
                        let o = line * LINE_BYTES;
                        let lb: &[u8; LINE_BYTES] =
                            data[o..o + LINE_BYTES].try_into().expect("line slice");
                        let cb: &[u8; LINE_GROUPS] = codes
                            [line * LINE_GROUPS..(line + 1) * LINE_GROUPS]
                            .try_into()
                            .expect("code slice");
                        let mut mask = self.codec.dirty_mask_line(lb, cb);
                        while mask != 0 {
                            let d = mask.trailing_zeros() as u64;
                            dirty.push(frame + (line_start + d) * GROUP_BYTES);
                            mask &= mask - 1;
                        }
                        // The whole line was examined in this chunk, so its
                        // bit can be cleared once every fault in it repairs.
                        scanned_lines |= 1u64 << line;
                        g = line_end;
                    } else {
                        while g < line_end {
                            let o = (g * GROUP_BYTES) as usize;
                            let bytes: &[u8; 8] =
                                data[o..o + 8].try_into().expect("group is 8 bytes");
                            if self.codec.syndrome_bytes(bytes, codes[g as usize]) != 0 {
                                dirty.push(frame + g * GROUP_BYTES);
                            }
                            g += 1;
                        }
                    }
                }
                self.stats.groups_verified += n;
                let mut uncorrectable = false;
                let mut bad_lines = 0u64;
                for &group_addr in &dirty {
                    // Scrub ignores uncorrectable groups beyond reporting them.
                    if self.resolve_group(group_addr, true).is_err() {
                        uncorrectable = true;
                        bad_lines |= 1u64 << (((group_addr - frame) as usize) / LINE_BYTES);
                    }
                }
                // A fully scanned line whose inconsistencies were all
                // repaired is provably clean; future passes skip it. (The
                // scrubbing mode always corrects, so an `Ok` resolution
                // means the group's code was rewritten.)
                self.mem
                    .clear_dirty_lines(frame, scanned_lines & !bad_lines);
                // A full-frame chunk that repaired every inconsistency proves
                // the frame clean; future passes settle it in O(1).
                if first == 0 && n == groups_per_frame && !uncorrectable {
                    self.mem.mark_frame_clean(frame);
                }
            } else {
                // Clean frame: every group verifies trivially.
                self.stats.groups_verified += n;
            }
            self.stats.scrubbed_groups += n;
            self.scrub_cursor += n;
            done += n;
        }
        done
    }

    /// Direct access to the underlying memory (advanced / test use).
    #[must_use]
    pub fn memory(&self) -> &EccMemory {
        &self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scramble::ScrambleScheme;

    fn ctl() -> EccController {
        EccController::new(1 << 16)
    }

    #[test]
    fn read_write_roundtrip_arbitrary_span() {
        let mut c = ctl();
        let data: Vec<u8> = (0..37).map(|i| i as u8 * 3).collect();
        c.write(0x103, &data); // unaligned, crosses groups
        let mut buf = vec![0u8; 37];
        c.read(0x103, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn partial_group_write_preserves_neighbours() {
        let mut c = ctl();
        c.write(0x100, &[0xAA; 16]);
        c.write(0x104, &[0xBB; 4]);
        let mut buf = [0u8; 16];
        c.read(0x100, &mut buf).unwrap();
        assert_eq!(&buf[..4], &[0xAA; 4]);
        assert_eq!(&buf[4..8], &[0xBB; 4]);
        assert_eq!(&buf[8..], &[0xAA; 8]);
    }

    #[test]
    fn single_bit_error_corrected_in_place() {
        let mut c = ctl();
        c.write(0x200, &7u64.to_le_bytes());
        c.inject_data_error(0x200, 33);
        let mut buf = [0u8; 8];
        c.read(0x200, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), 7);
        // The correction is persistent: memory was repaired.
        assert_eq!(c.memory().read_group(0x200).0, 7);
        assert_eq!(c.stats().corrected_single_bit, 1);
        // A second read finds a clean group.
        c.read(0x200, &mut buf).unwrap();
        assert_eq!(c.stats().corrected_single_bit, 1);
    }

    #[test]
    fn check_only_mode_reports_but_does_not_correct() {
        let mut c = ctl();
        c.set_mode(EccMode::CheckOnly);
        c.write(0x200, &7u64.to_le_bytes());
        c.inject_data_error(0x200, 0);
        let mut buf = [0u8; 8];
        c.read(0x200, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), 6, "uncorrected data delivered");
        assert_eq!(c.stats().reported_single_bit, 1);
        let faults = c.take_faults();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].kind, FaultKind::UnrepairedSingleBit);
    }

    #[test]
    fn multi_bit_error_faults() {
        let mut c = ctl();
        c.write(0x240, &1u64.to_le_bytes());
        c.inject_multi_bit_error(0x240);
        let mut buf = [0u8; 8];
        let fault = c.read(0x240, &mut buf).unwrap_err();
        assert_eq!(fault.kind, FaultKind::UncorrectableData);
        assert_eq!(fault.group_addr, 0x240);
        assert_eq!(c.take_faults(), vec![fault]);
    }

    #[test]
    fn disabled_controller_never_checks() {
        let mut c = ctl();
        c.set_mode(EccMode::Disabled);
        c.write(0x280, &1u64.to_le_bytes());
        c.inject_multi_bit_error(0x280);
        let mut buf = [0u8; 8];
        c.read(0x280, &mut buf).unwrap();
        assert_eq!(c.stats().uncorrectable, 0);
    }

    #[test]
    fn scramble_sequence_faults_on_first_read_only() {
        let mut c = ctl();
        let scheme = ScrambleScheme::default();
        let original = 0x5555_AAAA_u64;
        c.write(0x300, &original.to_le_bytes());

        // The kernel's WatchMemory sequence.
        c.lock_bus();
        c.set_enabled(false);
        c.write(0x300, &scheme.apply(original).to_le_bytes());
        c.set_enabled(true);
        c.unlock_bus();

        let mut buf = [0u8; 8];
        let fault = c.read(0x300, &mut buf).unwrap_err();
        assert_eq!(fault.kind, FaultKind::UncorrectableData);
        assert_eq!(fault.syndrome, scheme.syndrome());
        // Handler can identify the signature from the raw bytes.
        let raw = u64::from_le_bytes(c.peek(0x300, 8).try_into().unwrap());
        assert!(scheme.matches(original, raw));

        // Un-watching: restore original data with ECC on. No more faults.
        c.write(0x300, &original.to_le_bytes());
        c.read(0x300, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), original);
    }

    #[test]
    fn writes_with_ecc_disabled_leave_stale_codes() {
        let mut c = ctl();
        c.write(0x340, &10u64.to_le_bytes());
        c.set_enabled(false);
        c.write(0x340, &11u64.to_le_bytes());
        c.set_enabled(true);
        // 10 -> 11 differs in two bits (0b1010 vs 0b1011)? No: 1 bit. Use
        // values differing in >=2 bits to guarantee an uncorrectable state.
        c.set_enabled(false);
        c.write(0x340, &(10u64 ^ 0b11).to_le_bytes());
        c.set_enabled(true);
        let mut buf = [0u8; 8];
        assert!(c.read(0x340, &mut buf).is_err());
    }

    #[test]
    fn bus_lock_blocks_scrub() {
        let mut c = ctl();
        c.set_mode(EccMode::CorrectAndScrub);
        c.write(0x0, &[1u8; 64]);
        c.lock_bus();
        assert_eq!(c.scrub_step(16), 0);
        c.unlock_bus();
        assert!(c.scrub_step(16) > 0);
    }

    #[test]
    #[should_panic(expected = "already locked")]
    fn double_bus_lock_panics() {
        let mut c = ctl();
        c.lock_bus();
        c.lock_bus();
    }

    #[test]
    fn scrub_repairs_single_bit_errors() {
        let mut c = ctl();
        c.set_mode(EccMode::CorrectAndScrub);
        c.write(0x8, &3u64.to_le_bytes());
        c.inject_data_error(0x8, 7);
        // One full pass over the single resident frame (512 groups).
        c.scrub_step(512);
        assert_eq!(c.stats().scrub_corrections, 1);
        assert_eq!(c.memory().read_group(0x8).0, 3);
    }

    #[test]
    fn scrub_wraps_and_counts_passes() {
        let mut c = ctl();
        c.set_mode(EccMode::CorrectAndScrub);
        c.write(0x0, &[1u8]);
        c.scrub_step(512);
        c.scrub_step(1);
        assert_eq!(c.stats().scrub_passes, 1);
    }

    #[test]
    fn clean_frame_scrub_counts_like_a_scanned_one() {
        // The O(1) clean-frame shortcut must keep every counter identical to
        // the full per-group walk.
        let mut c = ctl();
        c.set_mode(EccMode::CorrectAndScrub);
        c.write(0x0, &[7u8; 64]);
        c.scrub_step(512); // first pass may scan; frame is provably clean after
        let before = c.stats();
        c.scrub_step(512);
        let after = c.stats();
        assert_eq!(after.scrubbed_groups - before.scrubbed_groups, 512);
        assert_eq!(after.groups_verified - before.groups_verified, 512);
        assert_eq!(after.scrub_passes - before.scrub_passes, 1);
        assert_eq!(after.scrub_corrections, before.scrub_corrections);
    }

    #[test]
    fn error_injected_after_clean_pass_is_still_repaired() {
        // The dirty flag must be re-raised by injection so a later scrub
        // does not skip the frame.
        let mut c = ctl();
        c.set_mode(EccMode::CorrectAndScrub);
        c.write(0x8, &3u64.to_le_bytes());
        c.scrub_step(512); // frame proven clean
        c.inject_data_error(0x8, 5);
        c.scrub_step(512);
        assert_eq!(c.stats().scrub_corrections, 1);
        assert_eq!(c.memory().read_group(0x8).0, 3);
    }

    #[test]
    fn uncorrectable_group_keeps_the_frame_under_scrutiny() {
        let mut c = ctl();
        c.set_mode(EccMode::CorrectAndScrub);
        c.write(0x10, &1u64.to_le_bytes());
        c.inject_multi_bit_error(0x10);
        c.scrub_step(512);
        let faults = c.take_faults();
        assert_eq!(faults.len(), 1, "scrub reports the uncorrectable group");
        // A second pass still examines the frame and reports again — the
        // frame is never marked clean while an uncorrectable error persists.
        c.scrub_step(512);
        assert_eq!(c.take_faults().len(), 1);
    }

    #[test]
    fn non_scrub_modes_do_not_scrub() {
        let mut c = ctl();
        c.write(0x0, &[1u8]);
        assert_eq!(c.scrub_step(16), 0, "CorrectError must not scrub");
    }

    #[test]
    fn spans_crossing_frame_boundaries_are_seamless() {
        let mut c = EccController::new(1 << 16);
        let addr = 4096 - 13; // straddles the frame boundary
        let data: Vec<u8> = (0..40u8).collect();
        c.write(addr, &data);
        let mut buf = vec![0u8; 40];
        c.read(addr, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(c.peek(addr, 40), data);
    }

    #[test]
    fn read_fills_buffer_even_on_fault() {
        let mut c = ctl();
        c.write(0x400, &[0xEE; 16]);
        c.inject_multi_bit_error(0x400);
        let mut buf = [0u8; 16];
        assert!(c.read(0x400, &mut buf).is_err());
        // Second group was clean and delivered.
        assert_eq!(&buf[8..], &[0xEE; 8]);
    }
}
