//! Criterion microbenchmarks of the reproduction's primitives: how fast the
//! *simulator itself* runs on the host. (Simulated costs — the paper's
//! Table 2 — are measured by the `table2` binary; these benches ensure the
//! substrate is fast enough to run the full evaluation quickly.)

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use safemem_core::{CallStack, LeakConfig, LeakDetector, MemTool, SafeMem};
use safemem_ecc::{Codec, EccController, ScrambleScheme};
use safemem_os::{Os, HEAP_BASE};

fn bench_codec(c: &mut Criterion) {
    let codec = Codec::new();
    c.bench_function("codec/encode", |b| {
        b.iter(|| codec.encode(black_box(0xDEAD_BEEF_0123_4567)))
    });
    let code = codec.encode(0xDEAD_BEEF_0123_4567);
    c.bench_function("codec/decode_clean", |b| {
        b.iter(|| codec.decode(black_box(0xDEAD_BEEF_0123_4567), black_box(code)))
    });
    c.bench_function("codec/decode_single_bit", |b| {
        b.iter(|| codec.decode(black_box(0xDEAD_BEEF_0123_4567 ^ 2), black_box(code)))
    });
    let scheme = ScrambleScheme::default();
    c.bench_function("codec/decode_scrambled", |b| {
        b.iter(|| {
            codec.decode(
                black_box(scheme.apply(0xDEAD_BEEF)),
                black_box(codec.encode(0xDEAD_BEEF)),
            )
        })
    });
}

fn bench_controller(c: &mut Criterion) {
    let mut ctl = EccController::new(1 << 20);
    ctl.write(0x1000, &[7u8; 64]);
    let mut buf = [0u8; 64];
    c.bench_function("controller/read_line", |b| {
        b.iter(|| ctl.read(black_box(0x1000), &mut buf))
    });
    c.bench_function("controller/write_line", |b| {
        b.iter(|| ctl.write(black_box(0x1000), black_box(&buf)))
    });
}

fn bench_os_access(c: &mut Criterion) {
    let mut os = Os::with_defaults(1 << 22);
    os.vwrite(HEAP_BASE, &[1u8; 4096]).unwrap();
    let mut buf = [0u8; 64];
    c.bench_function("os/vread_cached_line", |b| {
        b.iter(|| os.vread(black_box(HEAP_BASE), &mut buf))
    });
    c.bench_function("os/watch_unwatch_line", |b| {
        b.iter(|| {
            os.watch_memory(HEAP_BASE + 1024, 64).unwrap();
            os.disable_watch_memory(HEAP_BASE + 1024).unwrap();
        })
    });
}

fn bench_detectors(c: &mut Criterion) {
    c.bench_function("leak/alloc_free_pair", |b| {
        let mut os = Os::with_defaults(1 << 22);
        os.register_ecc_fault_handler();
        let mut det = LeakDetector::new(LeakConfig::default(), 64);
        let stack = CallStack::new(&[0x400_000, 0x1]);
        let mut i = 0u64;
        b.iter(|| {
            let addr = HEAP_BASE + (i % 1024) * 128;
            det.on_alloc(&mut os, addr, 64, &stack);
            det.on_free(&mut os, addr);
            i += 1;
        })
    });
    c.bench_function("safemem/malloc_free_watched", |b| {
        let mut os = Os::with_defaults(1 << 24);
        let mut tool = SafeMem::builder().build(&mut os);
        let stack = CallStack::new(&[0x400_000, 0x2]);
        b.iter(|| {
            let addr = tool.malloc(&mut os, 256, &stack);
            tool.free(&mut os, addr);
        })
    });
}

fn bench_workload_throughput(c: &mut Criterion) {
    use safemem_workloads::{run_under, RunConfig};
    // Host-side speed of simulating one monitored ypserv1 request
    // (everything: cache model, ECC codes, detectors).
    c.bench_function("simulate/ypserv1_request_under_safemem", |b| {
        let w = safemem_workloads::workload_by_name("ypserv1").expect("registered");
        b.iter_custom(|iters| {
            let requests = iters.max(1);
            let mut os = Os::with_defaults(1 << 26);
            let mut tool = SafeMem::builder().build(&mut os);
            let cfg = RunConfig {
                requests: Some(requests),
                ..RunConfig::default()
            };
            let start = std::time::Instant::now();
            let _ = run_under(w.as_ref(), &mut os, &mut tool, &cfg);
            start.elapsed()
        })
    });
}

criterion_group!(
    benches,
    bench_codec,
    bench_controller,
    bench_os_access,
    bench_detectors,
    bench_workload_throughput
);
criterion_main!(benches);
