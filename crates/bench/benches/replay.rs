//! Benchmarks of the single-record/multi-replay campaign pipeline: trace
//! recording vs replay, the columnar struct-of-arrays engine vs the enum
//! dispatch [`Replayer`] vs the naive HashMap-per-run reference, and the
//! leak detector's check pass as the live group population grows (the
//! incremental schedule vs the full scan).
//!
//! Set `REPLAY_BENCH_JSON=<path>` to also emit the results as a JSON record —
//! CI uploads it alongside the campaign and ECC bench artifacts.

use criterion::{black_box, Criterion};
use safemem_core::{CallStack, LeakConfig, LeakDetector, SafeMem};
use safemem_faultinject::{record_trace, CampaignSpec};
use safemem_os::{Os, OsConfig, HEAP_BASE};
use safemem_workloads::{ColumnarReplayer, ColumnarTrace, Replayer};

fn os_for(spec: &CampaignSpec) -> Os {
    let mut os = Os::new(OsConfig {
        phys_bytes: spec.phys_bytes,
        swap_policy: spec.swap_policy,
        scrub_interval_cycles: spec.scrub_interval_cycles,
        ..OsConfig::default()
    });
    os.machine_mut().controller_mut().set_mode(spec.ecc_mode);
    os
}

fn bench_record_vs_replay(c: &mut Criterion) {
    let mut spec = CampaignSpec::harsh("gzip", 0);
    spec.requests = Some(48);
    let trace = record_trace(&spec).expect("record gzip");

    c.bench_function("replay/record_gzip48", |b| {
        b.iter(|| black_box(record_trace(&spec).expect("record")))
    });

    // Scratch-reusing replayer: one slot table amortised across runs. This
    // is the shape the memoized campaign runner uses per worker.
    let mut replayer = Replayer::new();
    c.bench_function("replay/replayer_gzip48", |b| {
        b.iter(|| {
            let mut os = os_for(&spec);
            let mut tool = SafeMem::builder().build(&mut os);
            black_box(replayer.replay(&trace, &mut os, &mut tool))
        })
    });

    // Naive reference: fresh HashMap id table every run.
    c.bench_function("replay/naive_gzip48", |b| {
        b.iter(|| {
            let mut os = os_for(&spec);
            let mut tool = SafeMem::builder().build(&mut os);
            black_box(trace.replay_naive(&mut os, &mut tool))
        })
    });

    // Columnar struct-of-arrays engine: the campaign replay hot path. The
    // one-time transposition is benched separately from the scan itself.
    c.bench_function("replay/columnar_transpose_gzip48", |b| {
        b.iter(|| black_box(ColumnarTrace::from_trace(&trace)))
    });
    let columnar = ColumnarTrace::from_trace(&trace);
    let mut columnar_replayer = ColumnarReplayer::new();
    c.bench_function("replay/columnar_gzip48", |b| {
        b.iter(|| {
            let mut os = os_for(&spec);
            let mut tool = SafeMem::builder().build(&mut os);
            black_box(columnar_replayer.replay(&columnar, &mut os, &mut tool))
        })
    });
}

/// One check pass over `groups` allocation sites (one live object each),
/// under the incremental deadline schedule or the naive full scan.
fn leak_check_pass(groups: u64, incremental: bool) -> u64 {
    const LINE: u64 = 64;
    let mut os = Os::with_defaults(1 << 24);
    os.register_ecc_fault_handler();
    let cfg = LeakConfig {
        warmup: 0,
        check_period: u64::MAX, // checks only when we ask
        incremental_check: incremental,
        ..LeakConfig::default()
    };
    let mut det = LeakDetector::new(cfg, LINE);
    for i in 0..groups {
        os.compute(200);
        det.on_alloc(
            &mut os,
            HEAP_BASE + i * 128,
            64,
            &CallStack::new(&[0x400_000, i]),
        );
    }
    det.run_check(&mut os);
    det.stats().checks
}

fn bench_leak_check(c: &mut Criterion) {
    for groups in [64u64, 512, 4096] {
        c.bench_function(&format!("leak_check/incremental_{groups}"), |b| {
            b.iter(|| black_box(leak_check_pass(groups, true)))
        });
        c.bench_function(&format!("leak_check/naive_{groups}"), |b| {
            b.iter(|| black_box(leak_check_pass(groups, false)))
        });
    }
}

fn main() {
    let mut criterion = Criterion::default();
    bench_record_vs_replay(&mut criterion);
    bench_leak_check(&mut criterion);
    if let Ok(path) = std::env::var("REPLAY_BENCH_JSON") {
        criterion
            .write_json("safemem-replay-pipeline", &path)
            .expect("write bench JSON");
        println!("wrote {path}");
    }
}
