//! Thread-scaling benchmark for the sharded campaign runner: the same harsh
//! matrix at 1, 2, and 4 workers, so the speedup (and any regression in it)
//! is visible from `cargo bench` output across PRs. The committed
//! `BENCH_campaign.json` at the repository root tracks the full 160-campaign
//! acceptance run; regenerate it with
//! `safemem-campaign --preset harsh --seeds 32 --bench-threads 1,4 --bench-json BENCH_campaign.json`.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use safemem_faultinject::{expand_matrix, run_matrix, CampaignSpec};

/// A matrix small enough for `cargo bench` to stay in seconds but large
/// enough (8 cells) that sharding has work to distribute.
fn bench_specs() -> Vec<CampaignSpec> {
    let workloads = vec!["ypserv2".to_string(), "tar".to_string()];
    expand_matrix("harsh", &workloads, 4, 0, Some(48)).expect("valid matrix")
}

fn bench_campaign_matrix(c: &mut Criterion) {
    let specs = bench_specs();
    for threads in [1usize, 2, 4] {
        c.bench_function(&format!("campaign/harsh_8cells_t{threads}"), |b| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                for _ in 0..iters {
                    let report = run_matrix(black_box(&specs), threads).expect("matrix runs");
                    assert_eq!(report.results.len(), specs.len());
                    black_box(report);
                }
                start.elapsed()
            });
        });
    }
}

fn bench_single_campaign(c: &mut Criterion) {
    // The per-cell cost the pool amortises — useful for spotting whether a
    // scaling regression is pool overhead or the campaigns themselves.
    let spec = &bench_specs()[0];
    c.bench_function("campaign/single_cell", |b| {
        b.iter_custom(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(safemem_faultinject::run_campaign(black_box(spec)).expect("runs"));
            }
            start.elapsed()
        });
    });
}

criterion_group!(benches, bench_campaign_matrix, bench_single_campaign);
criterion_main!(benches);
