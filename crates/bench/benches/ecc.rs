//! Microbenchmarks of the ECC memory fast path: the table-driven codec, the
//! bulk (frame-at-a-time) controller read/write streams, and the cached-plan
//! scrubber. These are the layers every simulated byte funnels through, so
//! regressions here show up directly as campaign throughput (see
//! `BENCH_campaign.json` at the repository root).
//!
//! Set `ECC_BENCH_JSON=<path>` to also emit the results as a JSON record —
//! CI uploads it alongside the campaign bench artifact.

use criterion::{black_box, Criterion};
use safemem_ecc::{Codec, EccController, EccMode, ScrambleScheme};

fn bench_codec(c: &mut Criterion) {
    let codec = Codec::new();
    c.bench_function("ecc/encode", |b| {
        let mut word = 0x9E37_79B9_7F4A_7C15u64;
        b.iter(|| {
            word = word.wrapping_mul(0xD128_1CD4_9A32_DB1D).rotate_left(17);
            codec.encode(black_box(word))
        })
    });
    let code = codec.encode(0xDEAD_BEEF_0123_4567);
    c.bench_function("ecc/decode_clean", |b| {
        b.iter(|| codec.decode(black_box(0xDEAD_BEEF_0123_4567), black_box(code)))
    });
    c.bench_function("ecc/decode_single_bit", |b| {
        b.iter(|| codec.decode(black_box(0xDEAD_BEEF_0123_4567 ^ 2), black_box(code)))
    });
    let scheme = ScrambleScheme::default();
    c.bench_function("ecc/decode_scrambled", |b| {
        b.iter(|| codec.decode(black_box(scheme.apply(0xDEAD_BEEF)), black_box(code)))
    });
}

fn bench_streaming(c: &mut Criterion) {
    // A 1 MiB working set streamed in 4 KiB spans: the shape workload
    // drivers present to the controller.
    const SPAN: usize = 4096;
    const SET: u64 = 1 << 20;
    let mut ctl = EccController::new(SET);
    let payload = [0x5Au8; SPAN];
    let mut addr = 0u64;
    c.bench_function("ecc/stream_write_4k", |b| {
        b.iter(|| {
            ctl.write(black_box(addr), black_box(&payload));
            addr = (addr + SPAN as u64) % SET;
        })
    });
    let mut buf = [0u8; SPAN];
    c.bench_function("ecc/stream_read_4k", |b| {
        b.iter(|| {
            ctl.read(black_box(addr), &mut buf).expect("clean memory");
            addr = (addr + SPAN as u64) % SET;
        })
    });
    // Unaligned small accesses: the partial-group merge path.
    c.bench_function("ecc/read_unaligned_37b", |b| {
        let mut small = [0u8; 37];
        b.iter(|| {
            ctl.read(black_box(addr + 3), &mut small).expect("clean");
            addr = (addr + 64) % (SET - 64);
        })
    });
    c.bench_function("ecc/write_unaligned_37b", |b| {
        let small = [0xC3u8; 37];
        b.iter(|| {
            ctl.write(black_box(addr + 3), black_box(&small));
            addr = (addr + 64) % (SET - 64);
        })
    });
}

fn bench_scrub(c: &mut Criterion) {
    let mut ctl = EccController::new(1 << 20);
    ctl.set_mode(EccMode::CorrectAndScrub);
    // Touch every frame so the scrub plan covers the whole working set.
    let payload = [1u8; 4096];
    for frame in 0..(1u64 << 20) / 4096 {
        ctl.write(frame * 4096, &payload);
    }
    c.bench_function("ecc/scrub_step_512", |b| {
        b.iter(|| black_box(ctl.scrub_step(black_box(512))))
    });
}

fn main() {
    let mut criterion = Criterion::default();
    bench_codec(&mut criterion);
    bench_streaming(&mut criterion);
    bench_scrub(&mut criterion);
    if let Ok(path) = std::env::var("ECC_BENCH_JSON") {
        criterion
            .write_json("safemem-ecc-fastpath", &path)
            .expect("write bench JSON");
        println!("wrote {path}");
    }
}
