//! Regenerates every table and figure of the paper's evaluation in one
//! `cargo bench` run. Each exhibit can also be produced individually with
//! the corresponding binary (`cargo run -p safemem-bench --bin table3`).
//!
//! Pass `--quick` (or set `SAFEMEM_BENCH_SCALE`) to shrink run lengths.

use safemem_bench::reports;

fn main() {
    let scale: f64 = std::env::var("SAFEMEM_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if std::env::args().any(|a| a == "--quick") {
            0.2
        } else {
            1.0
        });

    println!("SafeMem reproduction — full evaluation (scale {scale})\n");
    println!("{}", reports::table1());
    println!("{}", reports::table2());
    println!("{}", reports::table3(scale));
    println!("{}", reports::table3_extended(scale));
    println!(
        "{}",
        reports::table3_variance(scale * 0.5, &[1, 7, 42, 1234, 0x05AF_E3E3])
    );
    println!("{}", reports::table4(scale));
    println!("{}", reports::table5(scale));
    println!("{}", reports::fig1());
    println!("{}", reports::fig2());
    println!("{}", reports::fig3(scale));
    println!("{}", reports::fig3_detail(scale));
    println!("{}", reports::ablation_padding());
    println!("{}", reports::ablation_checking_period(scale));
    println!("{}", reports::ablation_granularity(scale));
    println!("{}", reports::ablation_overhead_drivers());
    println!("{}", reports::ablation_prefetch(scale));
    println!("{}", reports::ablation_swap_policy());
    println!("{}", reports::ablation_scrub());
}
