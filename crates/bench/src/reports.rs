//! Generators for every table and figure in the paper's evaluation.
//!
//! Each function regenerates one exhibit and returns it as printable text;
//! the `table*`/`fig*` binaries and the `tables` bench target are thin
//! wrappers. Absolute numbers come from the simulated machine's calibrated
//! cost model — the claims under test are the *shapes* (see EXPERIMENTS.md).

use crate::harness::{bug_detected, overhead_percent, run_app, slowdown, ToolKind, PHYS_BYTES};
use safemem_core::{LeakConfig, MemTool, SafeMem};
use safemem_ecc::{EccController, EccMode, ScrambleScheme};
use safemem_os::{Os, Prot, HEAP_BASE, PAGE_BYTES};
use safemem_workloads::{all_workloads, run_under, InputMode, RunConfig};
use std::fmt::Write as _;

/// Table 1: the tested applications.
#[must_use]
pub fn table1() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 1: Tested Applications");
    let _ = writeln!(out, "{:—<72}", "");
    let _ = writeln!(out, "{:<12} {:<10} {:>8}  Description", "Bug", "App", "LOC");
    for w in all_workloads() {
        let s = w.spec();
        let class = if s.bug.is_leak() {
            "Leak"
        } else {
            "Corruption"
        };
        let _ = writeln!(
            out,
            "{:<12} {:<10} {:>8}  {}",
            class, s.name, s.loc, s.description
        );
    }
    out
}

/// Table 2: microsecond cost of the monitoring system calls.
#[must_use]
pub fn table2() -> String {
    let mut os = Os::with_defaults(PHYS_BYTES);
    os.register_ecc_fault_handler();
    const ITERS: u64 = 200;

    // WatchMemory / DisableWatchMemory on one-line regions.
    let mut watch_cycles = 0;
    let mut disable_cycles = 0;
    for i in 0..ITERS {
        let addr = HEAP_BASE + i * 64;
        os.vwrite(addr, &[1u8; 64]).unwrap();
        let t0 = os.total_cycles();
        os.watch_memory(addr, 64).unwrap();
        watch_cycles += os.total_cycles() - t0;
        let t1 = os.total_cycles();
        os.disable_watch_memory(addr).unwrap();
        disable_cycles += os.total_cycles() - t1;
    }
    // Stock mprotect on one page.
    let mut mprotect_cycles = 0;
    for i in 0..ITERS {
        let addr = HEAP_BASE + (1 << 20) + i * PAGE_BYTES;
        let t0 = os.total_cycles();
        os.mprotect(addr, PAGE_BYTES, Prot::NONE).unwrap();
        mprotect_cycles += os.total_cycles() - t0;
    }
    let us = |cycles: u64| os.machine().cost().cycles_to_micros(cycles / ITERS);

    let mut out = String::new();
    let _ = writeln!(out, "Table 2: Time for the ECC system calls (vs paper)");
    let _ = writeln!(out, "{:—<64}", "");
    let _ = writeln!(
        out,
        "{:<18} {:<22} {:>9} {:>9}",
        "", "Call", "µs (sim)", "µs paper"
    );
    let _ = writeln!(
        out,
        "{:<18} {:<22} {:>9.2} {:>9}",
        "ECC Protection",
        "WatchMemory",
        us(watch_cycles),
        "2.0"
    );
    let _ = writeln!(
        out,
        "{:<18} {:<22} {:>9.2} {:>9}",
        "",
        "DisableWatchMemory",
        us(disable_cycles),
        "1.5"
    );
    let _ = writeln!(
        out,
        "{:<18} {:<22} {:>9.2} {:>9}",
        "Page Protection",
        "mprotect",
        us(mprotect_cycles),
        "1.02"
    );
    out
}

/// Table 3: bug detection + time overhead of SafeMem (ML / MC / both) vs
/// Purify. `scale` shrinks the default request counts for quick runs
/// (`1.0` = the full defaults used for reported results).
#[must_use]
pub fn table3(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 3: Time overhead (%) comparison between SafeMem and Purify"
    );
    let _ = writeln!(out, "{:—<100}", "");
    let _ = writeln!(
        out,
        "{:<10} {:>9} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "App", "Detected?", "Only ML %", "Only MC %", "ML+MC %", "Purify", "Reduction"
    );
    for w in all_workloads() {
        let requests = Some(((w.default_requests() as f64) * scale).max(10.0) as u64);
        let base = run_app(w.as_ref(), ToolKind::Baseline, InputMode::Normal, requests);
        let ml = run_app(w.as_ref(), ToolKind::SafeMemMl, InputMode::Normal, requests);
        let mc = run_app(w.as_ref(), ToolKind::SafeMemMc, InputMode::Normal, requests);
        let full = run_app(
            w.as_ref(),
            ToolKind::SafeMemFull,
            InputMode::Normal,
            requests,
        );
        let purify = run_app(w.as_ref(), ToolKind::Purify, InputMode::Normal, requests);
        let detect = run_app(
            w.as_ref(),
            ToolKind::SafeMemFull,
            InputMode::Buggy,
            requests,
        );

        let full_oh = overhead_percent(full.cpu_cycles, base.cpu_cycles);
        let purify_x = slowdown(purify.cpu_cycles, base.cpu_cycles);
        let purify_oh = overhead_percent(purify.cpu_cycles, base.cpu_cycles);
        let _ = writeln!(
            out,
            "{:<10} {:>9} {:>10.1} {:>10.1} {:>10.1} {:>11.1}X {:>11.0}X",
            w.spec().name,
            if bug_detected(w.as_ref(), &detect) {
                "YES"
            } else {
                "NO"
            },
            overhead_percent(ml.cpu_cycles, base.cpu_cycles),
            overhead_percent(mc.cpu_cycles, base.cpu_cycles),
            full_oh,
            purify_x,
            purify_oh / full_oh.max(0.01),
        );
    }
    let _ = writeln!(out, "(paper: SafeMem ML+MC 1.6–14.4 %, Purify 4.8×–50.6×)");
    out
}

/// Table 4: space overhead of ECC-protection vs page-protection.
#[must_use]
pub fn table4(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 4: Space overhead (%) of ECC-protection vs page-protection"
    );
    let _ = writeln!(out, "{:—<64}", "");
    let _ = writeln!(
        out,
        "{:<10} {:>14} {:>18} {:>12}",
        "App", "ECC-Prot. %", "Page-Prot. %", "Reduction"
    );
    for w in all_workloads() {
        let requests = Some(((w.default_requests() as f64) * scale).max(10.0) as u64);
        let ecc = run_app(
            w.as_ref(),
            ToolKind::SafeMemFull,
            InputMode::Normal,
            requests,
        );
        let page = run_app(w.as_ref(), ToolKind::PageGuard, InputMode::Normal, requests);
        let ecc_oh = ecc.heap_stats.overhead_percent();
        let page_oh = page.heap_stats.overhead_percent();
        let _ = writeln!(
            out,
            "{:<10} {:>14.2} {:>18.2} {:>11.0}X",
            w.spec().name,
            ecc_oh,
            page_oh,
            page_oh / ecc_oh.max(0.001),
        );
    }
    let _ = writeln!(
        out,
        "(paper: reduction 64×–74×; overhead computed over all bytes allocated)"
    );
    out
}

/// Table 5: leak false positives before/after ECC pruning.
#[must_use]
pub fn table5(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 5: False memory leaks reported before/after ECC pruning"
    );
    let _ = writeln!(out, "{:—<56}", "");
    let _ = writeln!(
        out,
        "{:<10} {:>16} {:>16}",
        "App", "Before Pruning", "After Pruning"
    );
    let paper = [
        ("ypserv1", 7, 0),
        ("proftpd", 9, 0),
        ("squid1", 13, 1),
        ("ypserv2", 2, 0),
    ];
    for w in all_workloads() {
        if !w.spec().bug.is_leak() {
            continue;
        }
        let requests = Some(((w.default_requests() as f64) * scale).max(10.0) as u64);
        let truth = w.true_leak_groups();
        let before = run_app(
            w.as_ref(),
            ToolKind::SafeMemNoPrune,
            InputMode::Buggy,
            requests,
        );
        let after = run_app(
            w.as_ref(),
            ToolKind::SafeMemFull,
            InputMode::Buggy,
            requests,
        );
        let row = paper.iter().find(|(n, _, _)| *n == w.spec().name);
        let _ = writeln!(
            out,
            "{:<10} {:>10} ({:>2}) {:>10} ({:>2})",
            w.spec().name,
            before.false_leaks(&truth),
            row.map_or(0, |r| r.1),
            after.false_leaks(&truth),
            row.map_or(0, |r| r.2),
        );
    }
    let _ = writeln!(
        out,
        "(paper values in parentheses; no corruption false positives by construction)"
    );
    out
}

/// Figure 1: a step-by-step trace of the ECC memory read/write data path.
#[must_use]
pub fn fig1() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 1: Read/Write operations for ECC memory (event trace)"
    );
    let _ = writeln!(out, "{:—<72}", "");
    let mut ctl = EccController::new(1 << 16);
    ctl.set_mode(EccMode::CorrectError);

    // (a) Write: the controller encodes the group and stores data + code.
    ctl.write(0x100, &0xDEAD_BEEF_u64.to_le_bytes());
    let (data, code) = ctl.memory().read_group(0x100);
    let _ = writeln!(
        out,
        "(a) write 0xdeadbeef  → stored data={data:#018x} code={code:#04x}"
    );

    // (b) Clean read: recomputed code matches.
    let mut buf = [0u8; 8];
    ctl.read(0x100, &mut buf).unwrap();
    let _ = writeln!(out, "(b) read              → codes match, data delivered");

    // (c) Single-bit hardware error: corrected transparently.
    ctl.inject_data_error(0x100, 9);
    ctl.read(0x100, &mut buf).unwrap();
    let _ = writeln!(
        out,
        "(c) 1-bit error + read → corrected in place ({} corrections so far), data={:#x}",
        ctl.stats().corrected_single_bit,
        u64::from_le_bytes(buf)
    );

    // (d) Multi-bit error: reported to the processor.
    ctl.inject_multi_bit_error(0x100);
    let fault = ctl.read(0x100, &mut buf).unwrap_err();
    let _ = writeln!(out, "(d) 2-bit error + read → interrupt: {fault}");
    out
}

/// Figure 2: a step-by-step trace of the `WatchMemory` scramble sequence.
#[must_use]
pub fn fig2() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 2: Implementation of WatchMemory (state trace)");
    let _ = writeln!(out, "{:—<72}", "");
    let mut os = Os::with_defaults(1 << 22);
    os.register_ecc_fault_handler();
    let scheme = ScrambleScheme::default();
    let _ = writeln!(
        out,
        "scramble scheme: flip data bits {:?} (syndrome {:#04x})",
        scheme.bits(),
        scheme.syndrome()
    );

    os.vwrite(HEAP_BASE, &0xCAFE_F00D_u64.to_le_bytes())
        .unwrap();
    os.machine_mut().flush_range(0, PHYS_BYTES.min(1 << 22)); // settle caches for a clean peek
    let phys = os.vm().translate_resident(HEAP_BASE).unwrap();
    let show = |os: &Os, label: &str, out: &mut String| {
        let (data, code) = os.machine().controller().memory().read_group(phys);
        let _ = writeln!(out, "{label:<34} data={data:#018x} code={code:#04x}");
    };
    show(&os, "initial (consistent)", &mut out);

    os.watch_memory(HEAP_BASE, 64).unwrap();
    show(&os, "after disable→scramble→enable", &mut out);
    let _ = writeln!(out, "{:<34} (3 bits flipped, code unchanged → stale)", "");

    let fault = os.vread(HEAP_BASE, &mut [0u8; 8]).unwrap_err();
    let _ = writeln!(out, "first access                       → {fault}");

    os.disable_watch_memory(HEAP_BASE).unwrap();
    show(&os, "after DisableWatchMemory", &mut out);
    let mut buf = [0u8; 8];
    os.vread(HEAP_BASE, &mut buf).unwrap();
    let _ = writeln!(
        out,
        "re-read                            → {:#x} (original restored)",
        u64::from_le_bytes(buf)
    );
    out
}

/// Figure 3: cumulative distribution of WarmUpTime — how quickly the
/// maximal lifetime of each memory object group stabilises — for the three
/// server programs.
#[must_use]
pub fn fig3(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 3: Stability of maximal lifetime (CDF of WarmUpTime)"
    );
    let _ = writeln!(out, "{:—<72}", "");
    for name in ["ypserv1", "proftpd", "squid1"] {
        let w = safemem_workloads::workload_by_name(name).expect("registered");
        let requests = ((w.default_requests() as f64) * scale).max(50.0) as u64;
        let mut os = Os::with_defaults(PHYS_BYTES);
        // Collection-only configuration: the paper gathers these statistics
        // with detection effectively off (normal inputs, §3.1), so suspect
        // handling must not perturb the lifetime record.
        let mut tool = SafeMem::builder()
            .corruption_detection(false)
            .leak_config(LeakConfig {
                aleak_live_threshold: usize::MAX,
                sleak_factor: 1e18,
                ..LeakConfig::default()
            })
            .build(&mut os);
        let cfg = RunConfig {
            requests: Some(requests),
            ..RunConfig::default()
        };
        w.run(&mut os, &mut tool, &cfg);
        tool.finish(&mut os);

        let hz = os.machine().clock().hz() as f64;
        let total_s = os.cpu_cycles() as f64 / hz;
        let mut warmups: Vec<f64> = tool
            .leak_detector()
            .expect("leak detection on")
            .groups()
            .filter(|(_, g)| g.has_freed())
            .map(|(_, g)| g.max_changed_at as f64 / hz)
            .collect();
        warmups.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = warmups.len().max(1) as f64;

        let _ = writeln!(
            out,
            "\n  {name}  ({} groups, {total_s:.3}s simulated CPU time)",
            warmups.len()
        );
        let _ = writeln!(out, "  {:>12} {:>22}", "time (s)", "% stabilised MOG");
        for (i, t) in warmups.iter().enumerate() {
            let pct = (i + 1) as f64 / n * 100.0;
            let _ = writeln!(out, "  {:>12.4} {:>22.1}", t, pct);
        }
        if let Some(last) = warmups.last() {
            let _ = writeln!(
                out,
                "  → all groups stable after {:.1}% of the execution",
                last / total_s.max(1e-9) * 100.0
            );
        }
    }
    out
}

/// Seed-sensitivity check for the headline overhead numbers: Table 3's
/// SafeMem column re-measured across several RNG seeds, reporting
/// min/mean/max. Methodological backing for the single-seed tables.
#[must_use]
pub fn table3_variance(scale: f64, seeds: &[u64]) -> String {
    use safemem_core::NullTool;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Seed sensitivity: SafeMem ML+MC overhead (%) across {} seeds",
        seeds.len()
    );
    let _ = writeln!(out, "{:—<64}", "");
    let _ = writeln!(
        out,
        "{:<10} {:>10} {:>10} {:>10}",
        "App", "min", "mean", "max"
    );
    for w in all_workloads() {
        let requests = Some(((w.default_requests() as f64) * scale).max(10.0) as u64);
        let mut samples = Vec::with_capacity(seeds.len());
        for &seed in seeds {
            let cfg = RunConfig {
                requests,
                seed,
                ..RunConfig::default()
            };
            let mut os = Os::with_defaults(PHYS_BYTES);
            let mut base = NullTool::new();
            let b = safemem_workloads::run_under(w.as_ref(), &mut os, &mut base, &cfg);
            let mut os = Os::with_defaults(PHYS_BYTES);
            let mut tool = SafeMem::builder().build(&mut os);
            let t = safemem_workloads::run_under(w.as_ref(), &mut os, &mut tool, &cfg);
            samples.push(overhead_percent(t.cpu_cycles, b.cpu_cycles));
        }
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let _ = writeln!(
            out,
            "{:<10} {:>10.2} {:>10.2} {:>10.2}",
            w.spec().name,
            min,
            mean,
            max
        );
    }
    let _ = writeln!(
        out,
        "(each seed drives a different request mix; tight bands back the single-seed tables)"
    );
    out
}

/// Extended tool comparison (beyond the paper's Table 3): SafeMem vs the
/// two dynamic-checker families it displaces, plus a hypothetical
/// hardware-watchpoint build (iWatcher-style, §7.2) as the lower bound.
#[must_use]
pub fn table3_extended(scale: f64) -> String {
    use safemem_cache::default_two_level;
    use safemem_machine::CostModel;
    use safemem_os::OsConfig;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extended comparison: slowdown factor over the uninstrumented run"
    );
    let _ = writeln!(out, "{:—<84}", "");
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>12} {:>12} {:>14}",
        "App", "SafeMem", "Purify", "Memcheck", "HW watchpoint"
    );
    for w in all_workloads() {
        let requests = Some(((w.default_requests() as f64) * scale).max(10.0) as u64);
        let base = run_app(w.as_ref(), ToolKind::Baseline, InputMode::Normal, requests);
        let full = run_app(
            w.as_ref(),
            ToolKind::SafeMemFull,
            InputMode::Normal,
            requests,
        );
        let purify = run_app(w.as_ref(), ToolKind::Purify, InputMode::Normal, requests);
        let memcheck = run_app(w.as_ref(), ToolKind::Memcheck, InputMode::Normal, requests);

        // iWatcher-style: same detectors, but watchpoints cost tens of
        // cycles instead of microsecond syscalls, and faults dispatch in
        // hardware. Modelled by swapping the cost calibration.
        let hw = {
            let cost = CostModel {
                watch_memory_cycles: 48,
                watch_extra_line_cycles: 4,
                disable_watch_cycles: 36,
                disable_extra_line_cycles: 4,
                fault_dispatch_cycles: 200,
                ..CostModel::default()
            };
            let mut os = Os::new(OsConfig {
                phys_bytes: PHYS_BYTES,
                caches: default_two_level(),
                cost,
                ..OsConfig::default()
            });
            let mut tool = SafeMem::builder().build(&mut os);
            let cfg = RunConfig {
                requests,
                ..RunConfig::default()
            };
            safemem_workloads::run_under(w.as_ref(), &mut os, &mut tool, &cfg)
        };

        let _ = writeln!(
            out,
            "{:<10} {:>11.3}x {:>11.1}x {:>11.1}x {:>13.3}x",
            w.spec().name,
            slowdown(full.cpu_cycles, base.cpu_cycles),
            slowdown(purify.cpu_cycles, base.cpu_cycles),
            slowdown(memcheck.cpu_cycles, base.cpu_cycles),
            slowdown(hw.cpu_cycles, base.cpu_cycles),
        );
    }
    let _ = writeln!(
        out,
        "(HW watchpoint = SafeMem's detectors over iWatcher-style hardware: no syscalls)"
    );
    out
}

/// Figure 3 detail: per-group lifetime distributions (log₂ histograms and
/// percentile bounds) for the busiest groups of one server — the underlying
/// data behind the paper's stability observation.
#[must_use]
pub fn fig3_detail(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 3 detail: lifetime distributions (ypserv1, normal input)"
    );
    let _ = writeln!(out, "{:—<72}", "");
    let w = safemem_workloads::workload_by_name("ypserv1").expect("registered");
    let requests = ((w.default_requests() as f64) * scale).max(100.0) as u64;
    let mut os = Os::with_defaults(PHYS_BYTES);
    let mut tool = SafeMem::builder()
        .corruption_detection(false)
        .leak_config(LeakConfig {
            aleak_live_threshold: usize::MAX,
            sleak_factor: 1e18,
            ..LeakConfig::default()
        })
        .build(&mut os);
    let cfg = RunConfig {
        requests: Some(requests),
        ..RunConfig::default()
    };
    w.run(&mut os, &mut tool, &cfg);
    tool.finish(&mut os);

    let hz = os.machine().clock().hz() as f64;
    let det = tool.leak_detector().expect("leak detection on");
    let mut rows: Vec<_> = det
        .groups()
        .filter(|(_, g)| g.has_freed())
        .map(|(k, g)| (*k, g))
        .collect();
    rows.sort_by_key(|(_, g)| std::cmp::Reverse(g.total_frees));
    let _ = writeln!(
        out,
        "{:<34} {:>8} {:>11} {:>11} {:>11}",
        "group", "frees", "p50 (µs)", "p99 (µs)", "max (µs)"
    );
    for (key, g) in rows.iter().take(6) {
        let us = |cycles: u64| cycles as f64 / hz * 1e6;
        // Percentiles are bucket upper bounds; the true max caps them.
        let p = |pct: f64| us(g.lifetime_percentile(pct).unwrap_or(0).min(g.max_lifetime));
        let _ = writeln!(
            out,
            "{:<34} {:>8} {:>11.1} {:>11.1} {:>11.1}",
            key.to_string(),
            g.total_frees,
            p(50.0),
            p(99.0),
            us(g.max_lifetime),
        );
    }
    let _ = writeln!(
        out,
        "(tight p50..max bands per group are what makes the 2× maximal-lifetime
 outlier rule of §3.2.2 reliable)"
    );
    out
}

/// Ablation: guard-padding width vs detectable overflow distance and waste.
#[must_use]
pub fn ablation_padding() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation: padding width vs detectable overflow distance"
    );
    let _ = writeln!(out, "{:—<72}", "");
    let _ = writeln!(
        out,
        "{:>10} {:>14} {:>10} {:>10} {:>10} {:>10}",
        "pad lines", "waste/alloc B", "+8 B", "+96 B", "+200 B", "+500 B"
    );
    for pad_lines in [1u64, 2, 4, 8] {
        let mut row = format!("{:>10} {:>14}", pad_lines, 2 * 64 * pad_lines + 28);
        for distance in [8u64, 96, 200, 500] {
            let mut os = Os::with_defaults(1 << 22);
            let mut tool = SafeMem::builder()
                .leak_detection(false)
                .pad_lines(pad_lines)
                .build(&mut os);
            let stack = safemem_core::CallStack::new(&[0x1]);
            let buf = tool.malloc(&mut os, 100, &stack);
            // Overflow exactly `distance` bytes past the rounded payload end.
            tool.write(&mut os, buf + 128 + distance - 1, &[0xEE]);
            let caught = tool
                .all_reports()
                .iter()
                .any(safemem_core::BugReport::is_corruption);
            let _ = write!(row, " {:>10}", if caught { "caught" } else { "missed" });
        }
        let _ = writeln!(out, "{row}");
    }
    let _ = writeln!(
        out,
        "(the paper uses 1 line and notes longer paddings are possible, §4)"
    );
    out
}

/// Ablation: leak-detector checking period vs ML-only overhead.
#[must_use]
pub fn ablation_checking_period(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation: checking period vs leak-detection overhead (ypserv1)"
    );
    let _ = writeln!(out, "{:—<56}", "");
    let w = safemem_workloads::workload_by_name("ypserv1").expect("registered");
    let requests = Some(((w.default_requests() as f64) * scale).max(50.0) as u64);
    let base = run_app(w.as_ref(), ToolKind::Baseline, InputMode::Normal, requests);
    let _ = writeln!(out, "{:>16} {:>14}", "period (µs)", "ML overhead %");
    for period_us in [50u64, 200, 500, 2000, 10_000] {
        let mut os = Os::with_defaults(PHYS_BYTES);
        let mut tool = SafeMem::builder()
            .corruption_detection(false)
            .leak_config(LeakConfig {
                check_period: period_us * 2400, // µs → cycles at 2.4 GHz
                ..LeakConfig::default()
            })
            .build(&mut os);
        let cfg = RunConfig {
            requests,
            ..RunConfig::default()
        };
        let result = run_under(w.as_ref(), &mut os, &mut tool, &cfg);
        let _ = writeln!(
            out,
            "{:>16} {:>14.2}",
            period_us,
            overhead_percent(result.cpu_cycles, base.cpu_cycles)
        );
    }
    out
}

/// Ablation: watch granularity (cache-line size) vs space overhead —
/// quantifying §2.2.3's point that finer protection wastes less.
#[must_use]
pub fn ablation_granularity(scale: f64) -> String {
    use safemem_cache::CacheConfig;
    use safemem_machine::CostModel;
    use safemem_os::OsConfig;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation: watch granularity vs space overhead (ypserv2)"
    );
    let _ = writeln!(out, "{:—<56}", "");
    let _ = writeln!(out, "{:>12} {:>18}", "line bytes", "space overhead %");
    let w = safemem_workloads::workload_by_name("ypserv2").expect("registered");
    let requests = Some(((w.default_requests() as f64) * scale).max(50.0) as u64);
    for line in [32u32, 64, 128, 256] {
        let config = OsConfig {
            phys_bytes: PHYS_BYTES,
            caches: vec![
                CacheConfig {
                    line_size: line,
                    sets: 32,
                    ways: 4,
                },
                CacheConfig {
                    line_size: line,
                    sets: 128,
                    ways: 8,
                },
            ],
            cost: CostModel::default(),
            ..OsConfig::default()
        };
        let mut os = Os::new(config);
        let mut tool = SafeMem::builder().build(&mut os);
        let cfg = RunConfig {
            requests,
            ..RunConfig::default()
        };
        let result = run_under(w.as_ref(), &mut os, &mut tool, &cfg);
        let _ = writeln!(
            out,
            "{:>12} {:>18.2}",
            line,
            result.heap_stats.overhead_percent()
        );
    }
    let _ = writeln!(out, "(page protection corresponds to a 4096-byte 'line')");
    out
}

/// Ablation: what drives each tool's overhead — allocation rate for
/// SafeMem, memory-access density for Purify (the mechanism behind the
/// Table 3 spread), swept on the synthetic workload.
#[must_use]
pub fn ablation_overhead_drivers() -> String {
    use safemem_baselines::Purify;
    use safemem_core::NullTool;
    use safemem_workloads::{Synthetic, SyntheticParams};

    let mut out = String::new();
    let _ = writeln!(out, "Ablation: overhead drivers (synthetic workload)");
    let _ = writeln!(out, "{:—<72}", "");

    let run = |params: SyntheticParams, safemem: bool| -> f64 {
        let w = Synthetic::new(params);
        let cfg = RunConfig {
            requests: Some(120),
            ..RunConfig::default()
        };
        let mut os = Os::with_defaults(PHYS_BYTES);
        let mut base = NullTool::new();
        let b = safemem_workloads::run_under(&w, &mut os, &mut base, &cfg);
        let mut os = Os::with_defaults(PHYS_BYTES);
        let t = if safemem {
            let mut tool = SafeMem::builder().build(&mut os);
            safemem_workloads::run_under(&w, &mut os, &mut tool, &cfg)
        } else {
            let mut tool = Purify::new();
            safemem_workloads::run_under(&w, &mut os, &mut tool, &cfg)
        };
        t.cpu_cycles as f64 / b.cpu_cycles as f64
    };

    let _ = writeln!(out, "sweep A: allocation rate (density fixed at 200/1000)");
    let _ = writeln!(
        out,
        "{:>16} {:>14} {:>12}",
        "allocs/request", "SafeMem", "Purify"
    );
    for allocs in [1u64, 2, 4, 8, 16] {
        let p = SyntheticParams {
            allocs_per_request: allocs,
            ..SyntheticParams::default()
        };
        let _ = writeln!(
            out,
            "{:>16} {:>13.3}x {:>11.1}x",
            allocs,
            run(p, true),
            run(p, false)
        );
    }

    let _ = writeln!(
        out,
        "
sweep B: memory-access density (2 allocs/request fixed)"
    );
    let _ = writeln!(
        out,
        "{:>16} {:>14} {:>12}",
        "accesses/kcycle", "SafeMem", "Purify"
    );
    for density in [50u64, 200, 400, 800] {
        let p = SyntheticParams {
            density_permille: density,
            ..SyntheticParams::default()
        };
        let _ = writeln!(
            out,
            "{:>16} {:>13.3}x {:>11.1}x",
            density,
            run(p, true),
            run(p, false)
        );
    }
    let _ = writeln!(
        out,
        "
(SafeMem scales with column A only; Purify with column B only — the
         mechanism behind Table 3's per-application spread)"
    );
    out
}

/// Ablation: the two watched-page swap policies under memory pressure —
/// quantifying §2.2.2's note that pinning "limits the total amount of
/// monitored memory" vs the proposed swap-aware alternative.
#[must_use]
pub fn ablation_swap_policy() -> String {
    use safemem_os::{OsConfig, SwapPolicy, PAGE_BYTES};

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation: watched-page swap policy under memory pressure (squid1)"
    );
    let _ = writeln!(out, "{:—<72}", "");
    let _ = writeln!(
        out,
        "{:>12} {:>14} {:>12} {:>12} {:>10}",
        "phys MiB", "policy", "unguarded", "swap-outs", "detected"
    );
    let w = safemem_workloads::workload_by_name("squid1").expect("registered");
    for phys_pages in [96u64, 512] {
        for policy in [SwapPolicy::PinWatchedPages, SwapPolicy::SwapAware] {
            let mut os = Os::new(OsConfig {
                phys_bytes: phys_pages * PAGE_BYTES,
                swap_policy: policy,
                ..OsConfig::default()
            });
            let mut tool = SafeMem::builder().build(&mut os);
            let cfg = RunConfig {
                input: InputMode::Buggy,
                requests: Some(600),
                ..RunConfig::default()
            };
            let result = safemem_workloads::run_under(w.as_ref(), &mut os, &mut tool, &cfg);
            let unguarded = tool
                .corruption_detector()
                .map_or(0, |d| d.stats().unguarded);
            let detected = result.true_leaks(&w.true_leak_groups()) > 0;
            let _ = writeln!(
                out,
                "{:>12.1} {:>14} {:>12} {:>12} {:>10}",
                phys_pages as f64 * 4096.0 / 1048576.0,
                match policy {
                    SwapPolicy::PinWatchedPages => "pinned",
                    SwapPolicy::SwapAware => "swap-aware",
                },
                unguarded,
                os.vm().stats().swap_outs,
                if detected { "YES" } else { "no" },
            );
        }
    }
    let _ = writeln!(
        out,
        "(pinning runs out of guardable memory when the working set outgrows RAM;
 the swap-aware extension keeps every buffer guarded)"
    );
    out
}

/// Ablation: hardware prefetching on/off under SafeMem — prefetches of
/// armed lines are squashed by the hardware, so detection is unaffected
/// while the timing changes slightly.
#[must_use]
pub fn ablation_prefetch(scale: f64) -> String {
    use safemem_core::NullTool;

    let mut out = String::new();
    let _ = writeln!(out, "Ablation: next-line prefetcher vs SafeMem (tar)");
    let _ = writeln!(out, "{:—<64}", "");
    let _ = writeln!(
        out,
        "{:>12} {:>14} {:>12} {:>12} {:>12}",
        "prefetch", "overhead %", "detected", "issued", "squashed"
    );
    let w = safemem_workloads::workload_by_name("tar").expect("registered");
    let requests = Some(((w.default_requests() as f64) * scale).max(20.0) as u64);
    for prefetch in [false, true] {
        let mut os = Os::with_defaults(PHYS_BYTES);
        os.machine_mut().set_prefetch(prefetch);
        let mut base = NullTool::new();
        let cfg = RunConfig {
            requests,
            ..RunConfig::default()
        };
        let b = safemem_workloads::run_under(w.as_ref(), &mut os, &mut base, &cfg);

        let mut os = Os::with_defaults(PHYS_BYTES);
        os.machine_mut().set_prefetch(prefetch);
        let mut tool = SafeMem::builder().build(&mut os);
        let cfg = RunConfig {
            input: InputMode::Buggy,
            requests,
            ..RunConfig::default()
        };
        let t = safemem_workloads::run_under(w.as_ref(), &mut os, &mut tool, &cfg);
        let (issued, squashed) = os.machine().hierarchy().prefetch_stats();
        let _ = writeln!(
            out,
            "{:>12} {:>14.2} {:>12} {:>12} {:>12}",
            if prefetch { "on" } else { "off" },
            overhead_percent(t.cpu_cycles, b.cpu_cycles),
            if t.corruption_detected() { "YES" } else { "NO" },
            issued,
            squashed,
        );
    }

    // Direct demonstration of the squash semantics: force a prefetch of an
    // armed guard line by demand-missing the line right before it.
    let mut os = Os::with_defaults(PHYS_BYTES);
    os.machine_mut().set_prefetch(true);
    let mut tool = SafeMem::builder().leak_detection(false).build(&mut os);
    let stack = safemem_core::CallStack::new(&[0x1]);
    let buf = tool.malloc(&mut os, 64, &stack); // one payload line + pads
    tool.write(&mut os, buf, &[1u8; 64]);
    os.machine_mut().flush_range(0, 1 << 20); // evict everything
    tool.read(&mut os, buf, &mut [0u8; 8]); // demand miss → prefetch the back pad
    let (_, squashed) = os.machine().hierarchy().prefetch_stats();
    let _ = writeln!(
        out,
        "
direct check: demand miss adjacent to an armed pad → {squashed} prefetch squashed,
         0 false watchpoint hits: {}",
        if tool.all_reports().is_empty() {
            "confirmed"
        } else {
            "FAILED"
        }
    );
    let _ = writeln!(
        out,
        "(squashed = speculative refills of armed lines the hardware dropped)"
    );
    out
}

/// Ablation: scrub coordination cost vs number of watched lines.
#[must_use]
pub fn ablation_scrub() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Ablation: scrub-coordination cost vs watched lines");
    let _ = writeln!(out, "{:—<72}", "");
    let _ = writeln!(
        out,
        "{:>14} {:>16} {:>20} {:>16}",
        "watched lines", "cycle cost", "cost µs", "1 Hz overhead %"
    );
    for watched in [0u64, 16, 64, 256, 1024] {
        let mut os = Os::with_defaults(PHYS_BYTES);
        os.register_ecc_fault_handler();
        os.machine_mut()
            .controller_mut()
            .set_mode(EccMode::CorrectAndScrub);
        for i in 0..watched {
            os.vwrite(HEAP_BASE + i * 128, &[1u8; 64]).unwrap();
            os.watch_memory(HEAP_BASE + i * 128, 64).unwrap();
        }
        let t0 = os.cpu_cycles();
        os.run_scrub_cycle();
        let cost = os.cpu_cycles() - t0; // CPU-visible part (disarm + re-arm)
        let us = os.machine().cost().cycles_to_micros(cost);
        // A scrub pass per second on a 2.4 GHz CPU:
        let per_second_pct = cost as f64 / 2.4e9 * 100.0;
        let _ = writeln!(
            out,
            "{watched:>14} {cost:>16} {us:>20.1} {per_second_pct:>16.4}"
        );
    }
    let _ = writeln!(
        out,
        "(scan itself is background time; the program is only charged for disarm/re-arm)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_seven() {
        let t = table1();
        for name in [
            "ypserv1", "proftpd", "squid1", "ypserv2", "gzip", "tar", "squid2",
        ] {
            assert!(t.contains(name), "{t}");
        }
    }

    #[test]
    fn table2_matches_calibration() {
        let t = table2();
        assert!(t.contains("2.00"), "{t}");
        assert!(t.contains("1.50"), "{t}");
        assert!(t.contains("1.02"), "{t}");
    }

    #[test]
    fn fig1_and_fig2_trace_the_mechanism() {
        let f1 = fig1();
        assert!(f1.contains("corrected in place"), "{f1}");
        assert!(f1.contains("interrupt"), "{f1}");
        let f2 = fig2();
        assert!(f2.contains("stale"), "{f2}");
        assert!(f2.contains("original restored"), "{f2}");
    }

    #[test]
    fn padding_ablation_widens_coverage() {
        let t = ablation_padding();
        // 1-line pads miss a 200-byte overflow; 4-line pads catch it.
        assert!(t.contains("missed"), "{t}");
        assert!(t.contains("caught"), "{t}");
    }
}
