//! Shared benchmark harness: build a tool, run a workload, measure.

use safemem_baselines::{Memcheck, PageGuard, Purify};
use safemem_core::{LeakConfig, NullTool, SafeMem};
use safemem_os::{Os, STATIC_BASE};
use safemem_workloads::{run_under, BugClass, InputMode, RunConfig, RunResult, Workload};

/// Physical memory given to every run (64 MiB).
pub const PHYS_BYTES: u64 = 1 << 26;
/// Root-table bytes scanned by the Purify model.
pub const ROOT_TABLE_BYTES: u64 = 4096;

/// Which tool configuration a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ToolKind {
    /// Uninstrumented baseline (overhead denominator).
    Baseline,
    /// SafeMem, leak detection only (Table 3 "Only ML").
    SafeMemMl,
    /// SafeMem, corruption detection only (Table 3 "Only MC").
    SafeMemMc,
    /// SafeMem with both detectors (Table 3 "ML + MC").
    SafeMemFull,
    /// SafeMem with ECC pruning disabled (Table 5 "before pruning").
    SafeMemNoPrune,
    /// The Purify-class checker.
    Purify,
    /// The Valgrind/Memcheck-class checker.
    Memcheck,
    /// The page-protection guard tool.
    PageGuard,
}

impl ToolKind {
    /// Human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ToolKind::Baseline => "baseline",
            ToolKind::SafeMemMl => "safemem (ML)",
            ToolKind::SafeMemMc => "safemem (MC)",
            ToolKind::SafeMemFull => "safemem (ML+MC)",
            ToolKind::SafeMemNoPrune => "safemem (no pruning)",
            ToolKind::Purify => "purify",
            ToolKind::Memcheck => "memcheck",
            ToolKind::PageGuard => "page-guard",
        }
    }
}

/// Runs `workload` under the given tool configuration and returns the
/// measurements. Identical seeds and request counts keep op sequences
/// identical across tools, so overhead ratios are apples-to-apples.
#[must_use]
pub fn run_app(
    workload: &dyn Workload,
    kind: ToolKind,
    input: InputMode,
    requests: Option<u64>,
) -> RunResult {
    let mut os = Os::with_defaults(PHYS_BYTES);
    let cfg = RunConfig {
        input,
        requests,
        ..RunConfig::default()
    };
    match kind {
        ToolKind::Baseline => {
            let mut tool = NullTool::new();
            run_under(workload, &mut os, &mut tool, &cfg)
        }
        ToolKind::SafeMemMl => {
            let mut tool = SafeMem::builder()
                .leak_detection(true)
                .corruption_detection(false)
                .build(&mut os);
            run_under(workload, &mut os, &mut tool, &cfg)
        }
        ToolKind::SafeMemMc => {
            let mut tool = SafeMem::builder()
                .leak_detection(false)
                .corruption_detection(true)
                .build(&mut os);
            run_under(workload, &mut os, &mut tool, &cfg)
        }
        ToolKind::SafeMemFull => {
            let mut tool = SafeMem::builder().build(&mut os);
            run_under(workload, &mut os, &mut tool, &cfg)
        }
        ToolKind::SafeMemNoPrune => {
            let mut tool = SafeMem::builder()
                .leak_config(LeakConfig {
                    prune_with_ecc: false,
                    ..LeakConfig::default()
                })
                .build(&mut os);
            run_under(workload, &mut os, &mut tool, &cfg)
        }
        ToolKind::Purify => {
            let mut tool = Purify::new();
            tool.add_root_range(STATIC_BASE, ROOT_TABLE_BYTES);
            run_under(workload, &mut os, &mut tool, &cfg)
        }
        ToolKind::Memcheck => {
            let mut tool = Memcheck::new();
            tool.add_root_range(STATIC_BASE, ROOT_TABLE_BYTES);
            run_under(workload, &mut os, &mut tool, &cfg)
        }
        ToolKind::PageGuard => {
            let mut tool = PageGuard::new();
            run_under(workload, &mut os, &mut tool, &cfg)
        }
    }
}

/// Overhead of `tool_cycles` over `base_cycles`, in percent.
#[must_use]
pub fn overhead_percent(tool_cycles: u64, base_cycles: u64) -> f64 {
    (tool_cycles as f64 / base_cycles as f64 - 1.0) * 100.0
}

/// Slowdown factor of `tool_cycles` over `base_cycles`.
#[must_use]
pub fn slowdown(tool_cycles: u64, base_cycles: u64) -> f64 {
    tool_cycles as f64 / base_cycles as f64
}

/// Whether `result` contains a report matching the app's injected bug.
#[must_use]
pub fn bug_detected(workload: &dyn Workload, result: &RunResult) -> bool {
    match workload.spec().bug {
        BugClass::ALeak | BugClass::SLeak => result.true_leaks(&workload.true_leak_groups()) > 0,
        BugClass::Overflow => result
            .reports
            .iter()
            .any(|r| matches!(r, safemem_core::BugReport::Overflow { .. })),
        BugClass::UseAfterFree => result
            .reports
            .iter()
            .any(|r| matches!(r, safemem_core::BugReport::UseAfterFree { .. })),
        // Without free-history (recovery off) a repeated free can only be
        // diagnosed as a wild free; either report counts as detection.
        BugClass::DoubleFree => result.reports.iter().any(|r| {
            matches!(
                r,
                safemem_core::BugReport::DoubleFree { .. }
                    | safemem_core::BugReport::WildFree { .. }
            )
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safemem_workloads::workload_by_name;

    #[test]
    fn overhead_math() {
        assert!((overhead_percent(110, 100) - 10.0).abs() < 1e-9);
        assert!((slowdown(500, 100) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn gzip_detection_under_full_safemem() {
        let w = workload_by_name("gzip").unwrap();
        let result = run_app(
            w.as_ref(),
            ToolKind::SafeMemFull,
            InputMode::Buggy,
            Some(10),
        );
        assert!(bug_detected(w.as_ref(), &result));
    }

    #[test]
    fn tools_share_the_op_sequence() {
        let w = workload_by_name("tar").unwrap();
        let base = run_app(w.as_ref(), ToolKind::Baseline, InputMode::Normal, Some(20));
        let tool = run_app(
            w.as_ref(),
            ToolKind::SafeMemFull,
            InputMode::Normal,
            Some(20),
        );
        assert_eq!(base.heap_stats.allocs, tool.heap_stats.allocs);
        assert!(tool.cpu_cycles > base.cpu_cycles);
    }
}
