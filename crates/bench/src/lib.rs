//! Benchmark harness for the SafeMem reproduction.
//!
//! One generator per table and figure of the paper's evaluation lives in
//! [`reports`]; the `table*` / `fig*` / `ablation_*` binaries print them,
//! and the `tables` bench target regenerates everything in one `cargo
//! bench` run. [`harness`] holds the shared run/measure machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod reports;

pub use harness::{bug_detected, overhead_percent, run_app, slowdown, ToolKind};
