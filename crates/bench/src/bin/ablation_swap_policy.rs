//! Swap-policy ablation under memory pressure. See DESIGN.md §5.
fn main() {
    println!("{}", safemem_bench::reports::ablation_swap_policy());
}
