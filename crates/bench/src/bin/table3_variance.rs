//! Seed-sensitivity check for the Table 3 overheads. See DESIGN.md §5.
fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    println!(
        "{}",
        safemem_bench::reports::table3_variance(scale, &[1, 7, 42, 1234, 0x05AF_E3E3])
    );
}
