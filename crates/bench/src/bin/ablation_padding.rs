//! Regenerates the paper's ablation_padding exhibit. See DESIGN.md §5.
fn main() {
    println!("{}", safemem_bench::reports::ablation_padding());
}
