//! Regenerates the paper's fig2 exhibit. See DESIGN.md §5.
fn main() {
    println!("{}", safemem_bench::reports::fig2());
}
