//! Regenerates the paper's table5 exhibit. See DESIGN.md §5.
//! Pass a scale factor (default 1.0) to shrink run lengths for quick looks.
fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    println!("{}", safemem_bench::reports::table5(scale));
}
