//! Regenerates the paper's fig1 exhibit. See DESIGN.md §5.
fn main() {
    println!("{}", safemem_bench::reports::fig1());
}
