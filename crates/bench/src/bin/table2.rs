//! Regenerates the paper's table2 exhibit. See DESIGN.md §5.
fn main() {
    println!("{}", safemem_bench::reports::table2());
}
