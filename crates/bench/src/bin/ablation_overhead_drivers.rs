//! Sweeps the synthetic workload's knobs to show what drives each tool's
//! overhead. See DESIGN.md §5.
fn main() {
    println!("{}", safemem_bench::reports::ablation_overhead_drivers());
}
