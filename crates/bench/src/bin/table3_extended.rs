//! Extended tool comparison (SafeMem vs Purify vs Memcheck vs hypothetical
//! hardware watchpoints). See DESIGN.md §5.
fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    println!("{}", safemem_bench::reports::table3_extended(scale));
}
