//! Prefetcher-vs-watchpoints ablation. See DESIGN.md §5.
fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    println!("{}", safemem_bench::reports::ablation_prefetch(scale));
}
