//! Campaign-level regression tests: determinism, the harsh
//! zero-false-positive invariant, and burst accounting.

use safemem_faultinject::{render_campaign, run_campaign, CampaignSpec};

/// Small request counts keep each campaign to tens of milliseconds while
/// still tripping the leak workloads' lifetime heuristic (ypserv2 plants an
/// every-request leak, so it converges much earlier than the harsh preset's
/// default sizing).
const FAST_REQUESTS: u64 = 48;

fn fast(mut spec: CampaignSpec) -> CampaignSpec {
    spec.requests = Some(FAST_REQUESTS);
    spec
}

#[test]
fn same_seed_yields_byte_identical_scorecards() {
    let spec = fast(CampaignSpec::harsh("ypserv2", 7));
    let a = render_campaign(&run_campaign(&spec).expect("campaign runs"));
    let b = render_campaign(&run_campaign(&spec).expect("campaign runs"));
    assert_eq!(a, b, "same spec must render byte-identically");
}

#[test]
fn different_seeds_perturb_injection_sites() {
    let a = run_campaign(&fast(CampaignSpec::harsh("ypserv2", 1))).expect("campaign runs");
    let b = run_campaign(&fast(CampaignSpec::harsh("ypserv2", 2))).expect("campaign runs");
    // The trace is identical (same workload seed), so any difference comes
    // from the injection schedule alone.
    assert_eq!(
        a.truth, b.truth,
        "ground truth must not depend on the campaign seed"
    );
    let logs_a: Vec<_> = a.tools.iter().map(|t| t.injected).collect();
    let logs_b: Vec<_> = b.tools.iter().map(|t| t.injected).collect();
    assert_ne!(
        logs_a, logs_b,
        "different seeds must choose different injection sites"
    );
}

#[test]
fn harsh_invariant_zero_fp_and_all_planted_bugs_caught() {
    for wl in ["ypserv2", "gzip", "tar"] {
        for seed in 0..3u64 {
            let result = run_campaign(&fast(CampaignSpec::harsh(wl, seed))).expect("campaign runs");
            let safemem = result.tool("safemem").expect("panel includes safemem");
            assert!(
                safemem.injected.data_bit_flips + safemem.injected.code_bit_flips > 0,
                "{wl} seed {seed}: campaign must actually inject"
            );
            assert!(
                result.harsh_invariant_holds(),
                "{wl} seed {seed} violated the invariant:\n{}",
                render_campaign(&result)
            );
        }
    }
}

#[test]
fn quiet_control_injects_nothing() {
    let result = run_campaign(&fast(CampaignSpec::quiet("tar", 1))).expect("campaign runs");
    for tool in &result.tools {
        let log = tool.injected;
        assert_eq!(log.data_bit_flips, 0, "{}", tool.tool);
        assert_eq!(log.code_bit_flips, 0, "{}", tool.tool);
        assert_eq!(log.multi_bit_bursts, 0, "{}", tool.tool);
        assert_eq!(log.forced_scrub_cycles, 0, "{}", tool.tool);
        assert_eq!(log.dma_transfers + log.dma_faults, 0, "{}", tool.tool);
        assert_eq!(tool.controller.injected_data_bits, 0, "{}", tool.tool);
    }
}

#[test]
fn mixed_campaign_accounts_every_burst_as_a_hardware_panic() {
    let mut spec = fast(CampaignSpec::mixed("ypserv2", 3));
    // Raise the burst rate so the small trace still gets several.
    spec.mix.multi_bit_permille = 30;
    let result = run_campaign(&spec).expect("campaign runs");
    for tool in &result.tools {
        assert!(
            tool.injected.multi_bit_bursts > 0,
            "{}: no bursts landed",
            tool.tool
        );
        assert_eq!(
            tool.injected.hardware_panics_triggered, tool.injected.multi_bit_bursts,
            "{}: every burst is triggered by the injector itself",
            tool.tool
        );
        assert_eq!(
            tool.hardware_panics, tool.injected.multi_bit_bursts,
            "{}: panics visible in OS stats",
            tool.tool
        );
        assert_eq!(tool.hardware_misattributions, 0, "{}", tool.tool);
        assert_eq!(
            tool.controller.injected_multi_bit, tool.injected.multi_bit_bursts,
            "{}: controller hook counters line up",
            tool.tool
        );
    }
    // Bursts are repaired in place: the planted leak is still caught and no
    // false positives appear.
    let safemem = result.tool("safemem").expect("panel includes safemem");
    assert_eq!(safemem.leaks_missed, 0);
    assert_eq!(safemem.false_leaks, 0);
    assert_eq!(safemem.false_corruptions, 0);
}

#[test]
fn null_tool_is_the_floor_of_the_differential_table() {
    let result = run_campaign(&fast(CampaignSpec::harsh("ypserv2", 5))).expect("campaign runs");
    let none = result.tool("none").expect("panel includes the baseline");
    assert_eq!(none.leaks_found, 0);
    assert_eq!(none.leaks_missed, result.truth.leak_groups.len());
    assert!(!none.corruption_found);
    assert_eq!(none.false_positives(), 0);
}

#[test]
fn unknown_workload_is_a_campaign_error() {
    assert!(run_campaign(&CampaignSpec::harsh("no-such-app", 0)).is_err());
}
