//! The correctness centerpiece of the sharded runner: the scorecard must be
//! a pure function of the campaign matrix, never of the thread count or of
//! which worker happened to run which cell.
//!
//! The harsh preset is the one whose aggregate anchors the paper's
//! zero-false-positive claim, so that is the one pinned across 1, 2, and 8
//! workers (8 oversubscribes this matrix, forcing the cap-and-reassemble
//! path too).

use safemem_faultinject::{
    expand_fleet, expand_frontier, expand_matrix, frontier_rows, render_aggregate, render_campaign,
    render_fleet, render_frontier, run_fleet, run_fleet_sharded, run_matrix, CampaignSpec,
    MatrixReport, TraceMode,
};

/// Small request counts keep each campaign to tens of milliseconds while
/// still tripping the leak workloads' lifetime heuristic.
const FAST_REQUESTS: u64 = 48;

fn harsh_matrix() -> Vec<CampaignSpec> {
    let workloads = vec!["ypserv2".to_string(), "tar".to_string()];
    expand_matrix("harsh", &workloads, 2, 0, Some(FAST_REQUESTS)).expect("valid matrix")
}

fn arena_matrix() -> Vec<CampaignSpec> {
    let workloads: Vec<String> = safemem_faultinject::spec::CVE_WORKLOADS
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    expand_matrix("arena", &workloads, 2, 0, None).expect("valid matrix")
}

/// The full deterministic rendering of a matrix run: every per-campaign
/// scorecard in cell order, then the aggregate. Worker telemetry is
/// deliberately excluded — it is the one schedule-dependent output.
fn scorecard(report: &MatrixReport) -> String {
    let mut out = String::new();
    for result in &report.results {
        out.push_str(&render_campaign(result));
        out.push('\n');
    }
    out.push_str(&render_aggregate(&report.results));
    out
}

#[test]
fn scorecards_are_byte_identical_for_1_2_and_8_threads() {
    let specs = harsh_matrix();
    let t1 = run_matrix(&specs, 1).expect("matrix runs");
    let t2 = run_matrix(&specs, 2).expect("matrix runs");
    let t8 = run_matrix(&specs, 8).expect("matrix runs");

    let (s1, s2, s8) = (scorecard(&t1), scorecard(&t2), scorecard(&t8));
    assert!(!s1.is_empty());
    assert_eq!(s1, s2, "2 workers changed the scorecard");
    assert_eq!(s1, s8, "8 workers changed the scorecard");

    // The invariant covers structured results too, not just the rendering.
    assert_eq!(t1.results, t2.results);
    assert_eq!(t1.results, t8.results);
}

#[test]
fn arena_scorecards_are_byte_identical_for_1_2_and_8_threads() {
    // Recovery adds healing state (quarantine, incident records) to the
    // replay; the survival rows must still be a pure function of the matrix.
    let specs = arena_matrix();
    let t1 = run_matrix(&specs, 1).expect("matrix runs");
    let t2 = run_matrix(&specs, 2).expect("matrix runs");
    let t8 = run_matrix(&specs, 8).expect("matrix runs");

    let (s1, s2, s8) = (scorecard(&t1), scorecard(&t2), scorecard(&t8));
    assert!(s1.contains("survival["), "arena renders survival rows");
    assert_eq!(s1, s2, "2 workers changed the arena scorecard");
    assert_eq!(s1, s8, "8 workers changed the arena scorecard");
    assert_eq!(t1.results, t2.results);
    assert_eq!(t1.results, t8.results);
}

fn frontier_matrix() -> Vec<CampaignSpec> {
    let workloads = vec!["tar".to_string(), "cve-uaf".to_string()];
    expand_frontier(
        "frontier",
        &[1_000_000, 100_000, 10_000],
        &workloads,
        2,
        0,
        Some(FAST_REQUESTS),
    )
    .expect("valid ladder")
}

#[test]
fn frontier_scorecards_are_byte_identical_for_1_2_and_8_threads() {
    // The frontier adds a rate dimension to the matrix and a rendered rate
    // table to the scorecard; both must stay pure functions of the specs.
    let specs = frontier_matrix();
    let t1 = run_matrix(&specs, 1).expect("matrix runs");
    let t2 = run_matrix(&specs, 2).expect("matrix runs");
    let t8 = run_matrix(&specs, 8).expect("matrix runs");

    let full = |report: &MatrixReport| {
        let mut out = scorecard(report);
        out.push_str(&render_frontier(&frontier_rows(&report.results)));
        out
    };
    let (s1, s2, s8) = (full(&t1), full(&t2), full(&t8));
    assert!(s1.contains("frontier: overhead vs detection"), "{s1}");
    assert_eq!(s1, s2, "2 workers changed the frontier scorecard");
    assert_eq!(s1, s8, "8 workers changed the frontier scorecard");
    assert_eq!(t1.results, t2.results);
    assert_eq!(t1.results, t8.results);
}

#[test]
fn fleet_scorecards_are_byte_identical_for_1_2_and_8_shards() {
    // Phase A's shard axis: partitioning the shared-machine fleet across
    // several machines must not move a single byte of the scorecard — the
    // turn-boundary cache barrier makes each process's trajectory a pure
    // function of its own history, and the merge reassembles canonical pid
    // order.
    let specs = expand_fleet(12, 0, Some(FAST_REQUESTS)).expect("valid fleet");
    let s1 = run_fleet_sharded(&specs, 2, 1, TraceMode::Memoized).expect("fleet runs");
    let s2 = run_fleet_sharded(&specs, 2, 2, TraceMode::Memoized).expect("fleet runs");
    let s8 = run_fleet_sharded(&specs, 2, 8, TraceMode::Memoized).expect("fleet runs");

    let (c1, c2, c8) = (render_fleet(&s1), render_fleet(&s2), render_fleet(&s8));
    assert!(c1.contains("fleet invariant"), "{c1}");
    assert_eq!(c1, c2, "2 shards changed the fleet scorecard");
    assert_eq!(c1, c8, "8 shards changed the fleet scorecard");

    // The merged shared-machine reports agree down to every counter —
    // cycles, faults, ECC stats — not just the rendered digits.
    assert_eq!(s1.shared, s2.shared);
    assert_eq!(s1.shared, s8.shared);
    assert_eq!(s1.agg, s2.agg);
    assert_eq!(s1.agg, s8.agg);
}

#[test]
fn fleet_scorecards_are_byte_identical_for_1_2_and_8_threads() {
    // The fleet path has its own runner (phase B shards cells and folds
    // into a fixed-size aggregate in completion order) — the fold must
    // still commute.
    let specs = expand_fleet(12, 0, Some(FAST_REQUESTS)).expect("valid fleet");
    let t1 = run_fleet(&specs, 1, TraceMode::Memoized).expect("fleet runs");
    let t2 = run_fleet(&specs, 2, TraceMode::Memoized).expect("fleet runs");
    let t8 = run_fleet(&specs, 8, TraceMode::Memoized).expect("fleet runs");

    let (s1, s2, s8) = (render_fleet(&t1), render_fleet(&t2), render_fleet(&t8));
    assert!(s1.contains("fleet invariant"), "{s1}");
    assert_eq!(s1, s2, "2 workers changed the fleet scorecard");
    assert_eq!(s1, s8, "8 workers changed the fleet scorecard");

    // The structured aggregates agree too, not just the rendering.
    assert_eq!(t1.agg, t2.agg);
    assert_eq!(t1.agg, t8.agg);
    assert_eq!(t1.shared.detected, t2.shared.detected);
}

#[test]
fn sharded_arena_run_keeps_the_survival_gate() {
    let specs = arena_matrix();
    let report = run_matrix(&specs, 4).expect("matrix runs");
    for result in &report.results {
        assert!(
            result.survival_invariant_holds(),
            "sharding broke the survival invariant:\n{}",
            render_campaign(result)
        );
    }
}

#[test]
fn sharded_harsh_run_keeps_the_zero_false_positive_gate() {
    let specs = harsh_matrix();
    let report = run_matrix(&specs, 4).expect("matrix runs");
    for result in &report.results {
        assert!(
            result.harsh_invariant_holds(),
            "sharding broke the invariant:\n{}",
            render_campaign(result)
        );
    }
}

#[test]
fn worker_telemetry_accounts_for_every_cell_and_event() {
    let specs = harsh_matrix();
    let report = run_matrix(&specs, 2).expect("matrix runs");
    let cells: usize = report.workers.iter().map(|w| w.campaigns).sum();
    assert_eq!(cells, specs.len(), "every cell executed exactly once");

    // Per-worker injection events are schedule-dependent, but their total
    // must equal the deterministic per-campaign logs.
    let telemetry: u64 = report.workers.iter().map(|w| w.injection_events).sum();
    let logged: u64 = report
        .results
        .iter()
        .flat_map(|r| r.tools.iter())
        .map(|t| {
            t.injected.data_bit_flips
                + t.injected.code_bit_flips
                + t.injected.multi_bit_bursts
                + t.injected.forced_scrub_cycles
                + t.injected.dma_transfers
                + t.injected.dma_faults
        })
        .sum();
    assert_eq!(telemetry, logged);
    assert!(logged > 0, "the harsh preset actually injects");
}
