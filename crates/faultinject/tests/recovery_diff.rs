//! Differential gate for the recovery layer: healing must never change
//! *what is detected*. Every harsh-preset campaign on the golden 8 seeds is
//! run twice — recovery off (the shipping default) and recovery on — and the
//! detection side of every tool's score must be identical: same true
//! positives, same false positives, same misses, same hardware attribution.
//! Recovery may only add survival metadata on top.

use safemem_faultinject::{expand_matrix, run_campaign, ToolScore};

const SEEDS: u64 = 8;
const FAST_REQUESTS: u64 = 48;

/// The detection-relevant projection of a tool score — everything except
/// cycles, controller counters, and the survival extension.
fn detection_fields(s: &ToolScore) -> (usize, usize, usize, bool, usize, u64, u64, u64) {
    (
        s.leaks_found,
        s.leaks_missed,
        s.false_leaks,
        s.corruption_found,
        s.false_corruptions,
        s.hardware_reports,
        s.hardware_panics,
        s.hardware_misattributions,
    )
}

#[test]
fn recovery_does_not_change_detection_on_the_golden_seeds() {
    let workloads = vec!["ypserv2".to_string(), "tar".to_string()];
    let specs =
        expand_matrix("harsh", &workloads, SEEDS, 0, Some(FAST_REQUESTS)).expect("valid matrix");
    for spec in &specs {
        assert!(!spec.recovery, "harsh preset must default recovery off");
        let off = run_campaign(spec).expect("recovery-off campaign runs");
        let mut on_spec = spec.clone();
        on_spec.recovery = true;
        let on = run_campaign(&on_spec).expect("recovery-on campaign runs");

        assert_eq!(off.tools.len(), on.tools.len());
        for (a, b) in off.tools.iter().zip(&on.tools) {
            assert_eq!(a.tool, b.tool);
            assert_eq!(
                detection_fields(a),
                detection_fields(b),
                "recovery changed {}'s detection on workload={} seed={:#x}",
                a.tool,
                spec.workload,
                spec.seed
            );
        }
        // The harsh workloads carry no ground-truth incident markers, so the
        // survival dimension stays absent even with recovery enabled — the
        // recovery-on scorecard renders byte-identically.
        assert_eq!(off.truth.markers.total(), 0);
        for t in &on.tools {
            assert!(t.survival.is_none());
        }
    }
}
