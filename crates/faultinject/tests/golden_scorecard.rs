//! Golden-scorecard regression gate: the exact harsh-preset results — every
//! per-campaign card and the aggregate TP/FP/missed table, for 8 fixed seeds
//! over one leak workload (`ypserv2`) and one corruption workload (`tar`) —
//! are pinned as a checked-in snapshot. Any change to the injection
//! schedule, the detectors, the oracle's scoring, or the renderers shows up
//! here as a readable text diff instead of silently shifting the paper's
//! headline numbers.
//!
//! Regenerate after an *intentional* change with:
//! `UPDATE_GOLDEN=1 cargo test -p safemem-faultinject --test golden_scorecard`

use safemem_faultinject::{
    expand_fleet, expand_frontier, expand_matrix, frontier_rows, render_aggregate, render_campaign,
    render_fleet, render_frontier, run_fleet, run_matrix, TraceMode,
};

/// The 8 fixed seeds are 0..8; request count matches the fast suites so the
/// snapshot stays cheap to check on every run.
const SEEDS: u64 = 8;
const FAST_REQUESTS: u64 = 48;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/harsh_scorecard.txt"
);

const ARENA_GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/arena_scorecard.txt"
);

const FRONTIER_GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/frontier_scorecard.txt"
);

/// The frontier golden's rate ladder: 1.0, 0.5, 0.1, 0.01.
const FRONTIER_GOLDEN_RATES: &[u32] = &[1_000_000, 500_000, 100_000, 10_000];

const FLEET_GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/fleet_scorecard.txt"
);

/// The fleet golden's size: 8 processes per churn class — big enough for a
/// meaningful per-class table, small enough for every test run.
const FLEET_GOLDEN_PROCESSES: u64 = 24;

fn render_matrix(preset: &str, workloads: &[String], requests: Option<u64>) -> String {
    let specs = expand_matrix(preset, workloads, SEEDS, 0, requests).expect("valid matrix");
    // Two workers: the golden path exercises the sharded runner, and the
    // parallel-determinism suite guarantees the count cannot matter.
    let report = run_matrix(&specs, 2).expect("matrix runs");
    let mut out = String::new();
    for result in &report.results {
        out.push_str(&render_campaign(result));
        out.push('\n');
    }
    out.push_str(&render_aggregate(&report.results));
    out
}

fn current_scorecard() -> String {
    let workloads = vec!["ypserv2".to_string(), "tar".to_string()];
    render_matrix("harsh", &workloads, Some(FAST_REQUESTS))
}

fn current_arena_scorecard() -> String {
    let workloads: Vec<String> = safemem_faultinject::spec::CVE_WORKLOADS
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    // The arena preset carries its own request count (one incident every 8
    // requests, 8 per campaign), so no override.
    render_matrix("arena", &workloads, None)
}

fn current_frontier_scorecard() -> String {
    // One workload per bug class, the 8 fixed seeds, the shortened request
    // stream. The snapshot is the aggregate plus the frontier table (128
    // per-campaign cards would drown the diff; the aggregate pins their
    // sums, and the frontier rows pin the per-rate numbers).
    let workloads: Vec<String> = ["ypserv2", "tar", "cve-uaf", "cve-dfree"]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let specs = expand_frontier(
        "frontier",
        FRONTIER_GOLDEN_RATES,
        &workloads,
        SEEDS,
        0,
        Some(FAST_REQUESTS),
    )
    .expect("valid ladder");
    let report = run_matrix(&specs, 2).expect("matrix runs");
    let mut out = render_aggregate(&report.results);
    out.push_str(&render_frontier(&frontier_rows(&report.results)));
    out
}

#[test]
fn harsh_scorecard_matches_the_checked_in_golden() {
    let current = current_scorecard();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &current).expect("golden snapshot is writable");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect(
        "golden snapshot exists; regenerate with \
         UPDATE_GOLDEN=1 cargo test -p safemem-faultinject --test golden_scorecard",
    );
    assert!(
        golden == current,
        "harsh scorecard drifted from the golden snapshot.\n\
         If the change is intentional, regenerate with\n\
         UPDATE_GOLDEN=1 cargo test -p safemem-faultinject --test golden_scorecard\n\
         and commit the diff.\n\n--- golden ---\n{golden}\n--- current ---\n{current}"
    );
}

#[test]
fn arena_scorecard_matches_the_checked_in_golden() {
    let current = current_arena_scorecard();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(ARENA_GOLDEN_PATH, &current).expect("golden snapshot is writable");
        return;
    }
    let golden = std::fs::read_to_string(ARENA_GOLDEN_PATH).expect(
        "golden snapshot exists; regenerate with \
         UPDATE_GOLDEN=1 cargo test -p safemem-faultinject --test golden_scorecard",
    );
    assert!(
        golden == current,
        "arena scorecard drifted from the golden snapshot.\n\
         If the change is intentional, regenerate with\n\
         UPDATE_GOLDEN=1 cargo test -p safemem-faultinject --test golden_scorecard\n\
         and commit the diff.\n\n--- golden ---\n{golden}\n--- current ---\n{current}"
    );
}

#[test]
fn arena_golden_pins_the_survival_verdict() {
    // 8 seeds x 4 synthetic-CVE workloads: every campaign must survive with
    // heap integrity and exact incident attribution, on top of the harsh
    // detection bar.
    let golden = std::fs::read_to_string(ARENA_GOLDEN_PATH).expect("golden snapshot exists");
    assert!(
        golden.contains(
            "survival invariant (safemem: survived, heap intact, incidents attributed): 32/32"
        ),
        "arena golden must show all 32 campaigns surviving with integrity"
    );
    assert!(
        golden.contains("harsh invariant (safemem: zero FPs, all planted bugs found): 32/32"),
        "arena golden must keep the zero-false-positive bar"
    );
}

#[test]
fn frontier_scorecard_matches_the_checked_in_golden() {
    let current = current_frontier_scorecard();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(FRONTIER_GOLDEN_PATH, &current).expect("golden snapshot is writable");
        return;
    }
    let golden = std::fs::read_to_string(FRONTIER_GOLDEN_PATH).expect(
        "golden snapshot exists; regenerate with \
         UPDATE_GOLDEN=1 cargo test -p safemem-faultinject --test golden_scorecard",
    );
    assert!(
        golden == current,
        "frontier scorecard drifted from the golden snapshot.\n\
         If the change is intentional, regenerate with\n\
         UPDATE_GOLDEN=1 cargo test -p safemem-faultinject --test golden_scorecard\n\
         and commit the diff.\n\n--- golden ---\n{golden}\n--- current ---\n{current}"
    );
}

#[test]
fn frontier_golden_pins_the_zero_false_positive_verdict() {
    // A regenerated frontier golden can never quietly bless a sampling rate
    // that produces a false positive, and the always-on reference row must
    // show every allocation sampled.
    let golden = std::fs::read_to_string(FRONTIER_GOLDEN_PATH).expect("golden snapshot exists");
    assert!(
        golden.contains(
            "frontier invariant (safemem: zero false positives at every sampling rate): OK (4 rates)"
        ),
        "frontier golden must show zero false positives at all 4 rates"
    );
    assert!(
        golden.contains("1.0000"),
        "frontier golden includes the always-on reference row"
    );
}

fn current_fleet_scorecard() -> String {
    // The fleet's deterministic scorecard is its rendered outcome alone
    // (worker telemetry lives outside it): the shared-machine summary, the
    // per-class observed-vs-predicted table, the fleet-level detection
    // probabilities, the A/B cross-check, and the verdict line.
    let specs = expand_fleet(FLEET_GOLDEN_PROCESSES, 0, None).expect("valid fleet");
    let outcome = run_fleet(&specs, 2, TraceMode::Memoized).expect("fleet runs");
    render_fleet(&outcome)
}

#[test]
fn fleet_scorecard_matches_the_checked_in_golden() {
    let current = current_fleet_scorecard();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(FLEET_GOLDEN_PATH, &current).expect("golden snapshot is writable");
        return;
    }
    let golden = std::fs::read_to_string(FLEET_GOLDEN_PATH).expect(
        "golden snapshot exists; regenerate with \
         UPDATE_GOLDEN=1 cargo test -p safemem-faultinject --test golden_scorecard",
    );
    assert!(
        golden == current,
        "fleet scorecard drifted from the golden snapshot.\n\
         If the change is intentional, regenerate with\n\
         UPDATE_GOLDEN=1 cargo test -p safemem-faultinject --test golden_scorecard\n\
         and commit the diff.\n\n--- golden ---\n{golden}\n--- current ---\n{current}"
    );
}

#[test]
fn fleet_golden_pins_the_zero_false_positive_verdict() {
    // A regenerated fleet golden can never quietly bless a false positive,
    // a broken A/B cross-check, or an out-of-band detection rate.
    let golden = std::fs::read_to_string(FLEET_GOLDEN_PATH).expect("golden snapshot exists");
    assert!(
        golden.contains(&format!(
            "fleet invariant (safemem: zero false positives across \
             {FLEET_GOLDEN_PROCESSES} processes): OK"
        )),
        "fleet golden must show the zero-false-positive verdict:\n{golden}"
    );
    assert!(
        golden.contains("16/16 agree"),
        "fleet golden must keep shared-machine/isolated-cell agreement on \
         all 16 corruption cells:\n{golden}"
    );
    assert!(
        golden.contains("predicted 1-(1-r)^n"),
        "fleet golden must report the fleet-level detection probability:\n{golden}"
    );
}

#[test]
fn golden_snapshot_pins_the_zero_false_positive_verdict() {
    // Belt and braces: the snapshot itself must assert the paper's claim, so
    // a regenerated golden can never quietly bless a false positive.
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden snapshot exists");
    assert!(
        golden.contains("harsh invariant (safemem: zero FPs, all planted bugs found): 16/16"),
        "golden must show all 16 campaigns upholding the invariant"
    );
}
