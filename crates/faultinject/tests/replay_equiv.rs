//! Differential suite for the record-once/replay-many pipeline.
//!
//! Three equivalences are pinned here:
//!
//! 1. **Memoized vs fresh-record campaigns** — sharing one recorded trace
//!    across every cell with the same [`TraceKey`] must produce
//!    byte-identical `CampaignResult`s to re-recording per cell, over the
//!    same 8-seed harsh matrix the golden scorecard freezes.
//! 2. **Incremental vs naive leak checks** — replaying a real recorded
//!    trace through SafeMem with the deadline-scheduled detector must match
//!    the full-scan reference detector result-for-result.
//! 3. **Replayer vs naive replay** — the allocation-free [`Replayer`] must
//!    agree with the self-contained `Trace::replay_naive` on arbitrary
//!    well-formed synthetic traces.

use proptest::prelude::*;
use safemem_core::{IncidentClass, LeakConfig, SafeMem};
use safemem_faultinject::{
    expand_frontier, expand_matrix, record_campaign_trace, record_trace,
    replay_panel_columnar_with, replay_panel_with, run_matrix_streamed, run_matrix_streamed_corpus,
    run_matrix_with, CampaignSpec, CorpusMode, StreamAggregate, TraceCorpus, TraceKey, TraceMode,
};
use safemem_os::{Os, OsConfig};
use safemem_workloads::{ColumnarReplayer, ColumnarTrace, Replayer, Trace, TraceOp};

fn golden_matrix() -> Vec<CampaignSpec> {
    // Mirror of the golden-scorecard harness: one leak and one corruption
    // workload, 8 seeds, shortened request stream.
    let workloads = vec!["ypserv2".to_string(), "tar".to_string()];
    expand_matrix("harsh", &workloads, 8, 0, Some(48)).expect("golden matrix expands")
}

fn os_for(spec: &CampaignSpec) -> Os {
    let mut os = Os::new(OsConfig {
        phys_bytes: spec.phys_bytes,
        swap_policy: spec.swap_policy,
        scrub_interval_cycles: spec.scrub_interval_cycles,
        ..OsConfig::default()
    });
    os.machine_mut().controller_mut().set_mode(spec.ecc_mode);
    os
}

/// Trace sharing is invisible in the results: the memoized pipeline and the
/// per-cell recording pipeline score every cell identically.
#[test]
fn memoized_and_fresh_record_campaigns_are_byte_identical() {
    let specs = golden_matrix();
    let memo = run_matrix_with(&specs, 2, TraceMode::Memoized).expect("memoized run");
    let fresh = run_matrix_with(&specs, 2, TraceMode::FreshRecord).expect("fresh run");
    assert_eq!(memo.results.len(), fresh.results.len());
    for (m, f) in memo.results.iter().zip(&fresh.results) {
        assert_eq!(
            m, f,
            "cell diverged: {} seed {}",
            m.spec.workload, m.spec.seed
        );
    }
}

/// A frontier ladder memoizes one trace per (workload, os-shape) across
/// *every* sampling rate; scoring each cell from the shared recording must
/// match re-recording per cell.
#[test]
fn memoized_frontier_ladder_matches_fresh_recording() {
    let workloads = vec!["tar".to_string(), "cve-dfree".to_string()];
    let specs = expand_frontier(
        "frontier",
        &[1_000_000, 100_000],
        &workloads,
        2,
        0,
        Some(48),
    )
    .expect("valid ladder");
    let memo = run_matrix_with(&specs, 2, TraceMode::Memoized).expect("memoized run");
    let fresh = run_matrix_with(&specs, 2, TraceMode::FreshRecord).expect("fresh run");
    assert_eq!(memo.results, fresh.results);
}

/// The sampling rate is a replay-side knob: specs differing only in
/// `sampling_ppm` share a trace key and record the identical trace, so a
/// rate ladder adds zero recording work and zero recording perturbation.
#[test]
fn sampling_rate_does_not_perturb_the_recorded_trace() {
    let full = CampaignSpec::frontier("tar", 3);
    let mut sampled = full.clone();
    sampled.sampling_ppm = 10_000;
    assert_eq!(TraceKey::of(&full), TraceKey::of(&sampled));
    let a = record_trace(&full).expect("record");
    let b = record_trace(&sampled).expect("record");
    assert_eq!(a.to_text(), b.to_text());
    assert!(a.malloc_count() > 0, "the trace allocates");
}

/// The deadline-scheduled leak detector and the naive full-scan reference
/// produce the same run outcome on real recorded workload traces.
#[test]
fn incremental_and_naive_leak_checks_agree_on_recorded_traces() {
    for workload in ["ypserv1", "ypserv2", "proftpd", "gzip", "tar"] {
        let mut spec = CampaignSpec::harsh(workload, 0);
        spec.requests = Some(48);
        let trace = record_trace(&spec).expect("record");

        let replay = |incremental: bool| {
            let mut os = os_for(&spec);
            let cfg = LeakConfig {
                incremental_check: incremental,
                ..LeakConfig::default()
            };
            let mut tool = SafeMem::builder().leak_config(cfg).build(&mut os);
            Replayer::new().replay(&trace, &mut os, &mut tool)
        };
        let incremental = replay(true);
        let naive = replay(false);
        assert_eq!(incremental, naive, "leak scheduling diverged on {workload}");
    }
}

/// The columnar replay engine and the per-op enum replayer score every
/// golden-matrix cell identically — the whole panel, not just SafeMem.
#[test]
fn columnar_and_enum_replay_agree_on_the_golden_matrix() {
    let mut enum_replayer = Replayer::new();
    let mut columnar_replayer = ColumnarReplayer::new();
    for spec in golden_matrix() {
        let rec = record_campaign_trace(&spec).expect("record");
        let via_enum =
            replay_panel_with(&spec, &rec.trace, &mut enum_replayer).expect("enum replay");
        let via_columnar = replay_panel_columnar_with(&spec, &rec, &mut columnar_replayer)
            .expect("columnar replay");
        assert_eq!(
            via_enum, via_columnar,
            "columnar replay diverged: {} seed {}",
            spec.workload, spec.seed
        );
    }
}

/// Epoch-batched leak-deadline scheduling and per-event eager rescheduling
/// produce identical run outcomes on real recorded workload traces.
#[test]
fn epoch_batched_and_eager_leak_scheduling_agree_on_recorded_traces() {
    for workload in ["ypserv1", "ypserv2", "proftpd", "gzip", "tar"] {
        let mut spec = CampaignSpec::harsh(workload, 0);
        spec.requests = Some(48);
        let trace = record_trace(&spec).expect("record");

        let replay = |epoch_batch: bool| {
            let mut os = os_for(&spec);
            let cfg = LeakConfig {
                epoch_batch,
                ..LeakConfig::default()
            };
            let mut tool = SafeMem::builder().leak_config(cfg).build(&mut os);
            Replayer::new().replay(&trace, &mut os, &mut tool)
        };
        let batched = replay(true);
        let eager = replay(false);
        assert_eq!(batched, eager, "epoch batching diverged on {workload}");
    }
}

/// A corpus-backed matrix run (first populating the corpus, then replaying
/// purely from it) renders the exact aggregate scorecard of a corpus-free
/// run.
#[test]
fn corpus_backed_matrix_matches_fresh_recording() {
    let specs = golden_matrix();
    let fresh = run_matrix_streamed(
        &specs,
        2,
        TraceMode::Memoized,
        false,
        StreamAggregate::new(),
    )
    .expect("fresh run");

    let dir = std::env::temp_dir().join("safemem-corpus-matrix-equiv");
    let _ = std::fs::remove_dir_all(&dir);
    let record = TraceCorpus::open(&dir, CorpusMode::Record).expect("open record");
    let populated = run_matrix_streamed_corpus(
        &specs,
        2,
        TraceMode::Memoized,
        false,
        StreamAggregate::new(),
        Some(&record),
    )
    .expect("recording run");
    let replay = TraceCorpus::open(&dir, CorpusMode::ReplayFrom).expect("open replay");
    let replayed = run_matrix_streamed_corpus(
        &specs,
        2,
        TraceMode::Memoized,
        false,
        StreamAggregate::new(),
        Some(&replay),
    )
    .expect("replaying run");
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(fresh.aggregate.render(), populated.aggregate.render());
    assert_eq!(fresh.aggregate.render(), replayed.aggregate.render());
    // The replay leg recorded nothing.
    assert_eq!(
        replayed
            .workers
            .iter()
            .map(|w| w.traces_recorded)
            .sum::<usize>(),
        0
    );
}

fn trace_op(live_ids: u32) -> impl Strategy<Value = TraceOp> {
    prop_oneof![
        (
            (1u64..2048),
            proptest::collection::vec(1u64..u64::MAX, 1..4)
        )
            .prop_map(|(size, frames)| TraceOp::Malloc { size, frames }),
        (0..live_ids).prop_map(|id| TraceOp::Free { id }),
        ((0..live_ids), (0i64..1024), (1u32..256)).prop_map(|(id, offset, len)| TraceOp::Read {
            id,
            offset,
            len
        }),
        ((0..live_ids), (0i64..1024), (1u32..256), any::<u8>()).prop_map(
            |(id, offset, len, fill)| TraceOp::Write {
                id,
                offset,
                len,
                fill,
            }
        ),
        ((0..live_ids), (0i64..256), (1u32..64))
            .prop_map(|(id, offset, len)| { TraceOp::ReadFreed { id, offset, len } }),
        ((0..live_ids), (0i64..256), (1u32..64), any::<u8>()).prop_map(
            |(id, offset, len, fill)| TraceOp::WriteFreed {
                id,
                offset,
                len,
                fill,
            }
        ),
        (0..live_ids).prop_map(|id| TraceOp::FreeAgain { id }),
        prop_oneof![
            Just(IncidentClass::Overflow),
            Just(IncidentClass::UseAfterFree),
            Just(IncidentClass::DoubleFree),
        ]
        .prop_map(|kind| TraceOp::Marker { kind }),
        ((1u64..500_000), (0u64..50_000)).prop_map(|(cycles, mem_accesses)| TraceOp::Compute {
            cycles,
            mem_accesses
        }),
        (1u64..5_000_000).prop_map(|ns| TraceOp::Io { ns }),
    ]
}

/// Keeps only ops that reference buffers a replay will actually have bound
/// and not yet freed, so both replay paths exercise their happy paths
/// instead of both skipping unknown ids.
fn well_formed(ops: Vec<TraceOp>) -> Trace {
    let mut trace = Trace::new();
    let mut bound: u32 = 0;
    let mut live: Vec<bool> = Vec::new();
    for op in ops {
        match op {
            TraceOp::Malloc { .. } => {
                live.push(true);
                bound += 1;
                trace.push(op);
            }
            TraceOp::Free { id } => {
                if id < bound && live[id as usize] {
                    live[id as usize] = false;
                    trace.push(op);
                }
            }
            TraceOp::Read { id, .. } | TraceOp::Write { id, .. } => {
                if id < bound && live[id as usize] {
                    trace.push(op);
                }
            }
            // Freed-access ops only make sense on buffers that were bound
            // and then freed — exactly what the freed-tracking recorder
            // guarantees.
            TraceOp::ReadFreed { id, .. }
            | TraceOp::WriteFreed { id, .. }
            | TraceOp::FreeAgain { id } => {
                if id < bound && !live[id as usize] {
                    trace.push(op);
                }
            }
            TraceOp::Compute { .. } | TraceOp::Io { .. } | TraceOp::Marker { .. } => trace.push(op),
        }
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The scratch-reusing replayer and the naive HashMap-per-run replay
    /// agree on arbitrary synthetic traces — including a second replay on
    /// the *same* replayer, which must not leak state across runs.
    #[test]
    fn prop_replayer_matches_naive_replay(
        ops in proptest::collection::vec(trace_op(24), 0..80),
    ) {
        let trace = well_formed(ops);

        let mut os = Os::with_defaults(1 << 24);
        let mut tool = SafeMem::builder().build(&mut os);
        let naive = trace.replay_naive(&mut os, &mut tool);

        let mut replayer = Replayer::new();
        let mut os = Os::with_defaults(1 << 24);
        let mut tool = SafeMem::builder().build(&mut os);
        let fast = replayer.replay(&trace, &mut os, &mut tool);
        prop_assert_eq!(&naive, &fast);

        // Reuse the same replayer: stale slot state must not bleed through.
        let mut os = Os::with_defaults(1 << 24);
        let mut tool = SafeMem::builder().build(&mut os);
        let again = replayer.replay(&trace, &mut os, &mut tool);
        prop_assert_eq!(&fast, &again);
    }

    /// The columnar engine agrees with the enum replayer on arbitrary
    /// synthetic traces — markers, freed-access ops, and all — including a
    /// second replay on the same [`ColumnarReplayer`].
    #[test]
    fn prop_columnar_replay_matches_enum_replay(
        ops in proptest::collection::vec(trace_op(24), 0..80),
    ) {
        let trace = well_formed(ops);
        let columnar = ColumnarTrace::from_trace(&trace);
        prop_assert_eq!(columnar.len(), trace.len());

        let mut os = Os::with_defaults(1 << 24);
        let mut tool = SafeMem::builder().build(&mut os);
        let via_enum = Replayer::new().replay(&trace, &mut os, &mut tool);

        let mut replayer = ColumnarReplayer::new();
        let mut os = Os::with_defaults(1 << 24);
        let mut tool = SafeMem::builder().build(&mut os);
        let via_columnar = replayer.replay(&columnar, &mut os, &mut tool);
        prop_assert_eq!(&via_enum, &via_columnar);

        let mut os = Os::with_defaults(1 << 24);
        let mut tool = SafeMem::builder().build(&mut os);
        let again = replayer.replay(&columnar, &mut os, &mut tool);
        prop_assert_eq!(&via_columnar, &again);
    }
}
