//! End-to-end fleet campaign tests: the two-phase run (shared-machine
//! simulation + sharded per-process cells), the detection-probability
//! accounting, and the bounded-memory aggregation.

use safemem_faultinject::{
    expand_fleet, fleet_process_specs, render_fleet, render_fleet_bench_json, run_fleet,
    run_fleet_sharded, BenchRun, CampaignSpec, SmRng, TraceMode, SAMPLING_STREAM,
};
use safemem_fleet::{Fleet, FleetConfig};

/// A small fleet that still exercises every moving part: 24 processes,
/// 8 per churn class, at the preset's 0.2 sampling rate.
const SMALL_FLEET: u64 = 24;

#[test]
fn fleet_campaign_upholds_the_invariants() {
    let specs = expand_fleet(SMALL_FLEET, 0, None).expect("valid fleet");
    let outcome = run_fleet(&specs, 2, TraceMode::Memoized).expect("fleet runs");

    assert_eq!(outcome.processes, SMALL_FLEET);
    assert_eq!(outcome.agg.cells, SMALL_FLEET);
    assert_eq!(outcome.shared.processes, SMALL_FLEET);

    // Zero false positives and zero hardware panics under the harsh
    // correctable-only mix — the fleet analogue of the harsh invariant.
    assert_eq!(outcome.agg.false_positives, 0, "{:?}", outcome.agg);
    assert_eq!(outcome.agg.hardware_panics, 0);
    assert_eq!(outcome.shared.false_positives(), 0);

    // Every corruption cell's isolated detection matches the
    // shared-machine run: detection follows the sampling decision, and
    // both phases derive the per-process sampling seed identically.
    assert_eq!(outcome.agg.ab_checked, 16, "8 uaf + 8 obo cells");
    assert_eq!(outcome.agg.ab_agreed, outcome.agg.ab_checked);

    // The 6-sigma binomial band around the predicted rate holds per class.
    assert!(outcome.agg.invariants_hold(), "{}", render_fleet(&outcome));

    // Sub-1.0 sampling: the fleet instruments a strict subset of
    // allocations, and some process catches a bug (24 cells at 0.2 make
    // an all-miss fleet astronomically unlikely, and the run is
    // deterministic).
    let detected: u64 = outcome.agg.classes.iter().map(|c| c.detected).sum();
    assert!(detected > 0, "{}", render_fleet(&outcome));
    for class in &outcome.agg.classes {
        assert!(class.sampled_allocs < class.total_allocs);
        assert!(class.sampled_allocs > 0);
    }

    // Memoization: three churn workloads, one recorded trace each, for
    // any fleet size.
    let recorded: usize = outcome.workers.iter().map(|w| w.traces_recorded).sum();
    assert_eq!(recorded, 3, "one trace per churn workload");
}

#[test]
fn fleet_scorecard_is_deterministic_and_greppable() {
    let specs = expand_fleet(SMALL_FLEET, 0, None).expect("valid fleet");
    let a = run_fleet(&specs, 1, TraceMode::Memoized).expect("fleet runs");
    let b = run_fleet(&specs, 4, TraceMode::Memoized).expect("fleet runs");
    let card_a = render_fleet(&a);
    let card_b = render_fleet(&b);
    assert_eq!(
        card_a, card_b,
        "the fleet scorecard is byte-identical across thread counts"
    );
    assert!(
        card_a.contains(&format!(
            "fleet invariant (safemem: zero false positives across {SMALL_FLEET} processes): OK"
        )),
        "{card_a}"
    );
    assert!(
        card_a.contains("phase A (shared-machine fleet)"),
        "{card_a}"
    );
    assert!(
        card_a.contains("A/B cross-check (shared-machine vs isolated-cell detection"),
        "{card_a}"
    );
    assert!(card_a.contains("predicted 1-(1-r)^n"), "{card_a}");

    let json = render_fleet_bench_json(
        "fleet",
        None,
        &[BenchRun {
            threads: 1,
            wall: a.wall,
            campaigns: SMALL_FLEET as usize,
            boot: Some(a.boot_wall),
        }],
        &[],
        &a,
    );
    assert!(json.contains("\"fleet\": {"), "{json}");
    assert!(json.contains("\"rate\": 0.2000"), "{json}");
}

#[test]
fn fresh_record_mode_agrees_with_memoized() {
    let specs = expand_fleet(6, 3, Some(48)).expect("valid fleet");
    let memo = run_fleet(&specs, 2, TraceMode::Memoized).expect("fleet runs");
    let fresh = run_fleet(&specs, 2, TraceMode::FreshRecord).expect("fleet runs");
    assert_eq!(memo.agg, fresh.agg);
    let recorded: usize = fresh.workers.iter().map(|w| w.traces_recorded).sum();
    assert_eq!(recorded, 6, "fresh mode records per cell");
}

#[test]
fn detection_follows_the_sampling_decision_across_phases() {
    // The load-bearing cross-check in isolation: for each uaf/obo process,
    // compute the phase-B detection and the phase-A detection separately
    // and compare — the aggregate's ab counters must equal a manual tally.
    let specs = expand_fleet(12, 7, Some(48)).expect("valid fleet");
    let outcome = run_fleet(&specs, 3, TraceMode::Memoized).expect("fleet runs");
    assert_eq!(outcome.agg.ab_checked, 8);
    assert_eq!(outcome.agg.ab_agreed, 8);
    // And the per-process sampling seeds really are the oracle derivation.
    let procs = fleet_process_specs(&specs).expect("churn cells");
    for (proc, spec) in procs.iter().zip(&specs) {
        assert_eq!(
            proc.sampling_seed,
            SmRng::keyed(spec.seed, SAMPLING_STREAM).next_u64()
        );
    }
}

#[test]
fn sharded_campaign_matches_the_single_machine_reference() {
    // The campaign-level shard contract: the whole outcome — shared-machine
    // report, phase-B aggregate, scorecard bytes — is identical whether
    // phase A ran on one machine or several.
    let specs = expand_fleet(12, 0, Some(48)).expect("valid fleet");
    let reference = run_fleet(&specs, 2, TraceMode::Memoized).expect("fleet runs");
    for shards in [2usize, 8] {
        let sharded =
            run_fleet_sharded(&specs, 2, shards, TraceMode::Memoized).expect("fleet runs");
        assert_eq!(reference.shared, sharded.shared, "{shards} shards");
        assert_eq!(reference.agg, sharded.agg, "{shards} shards");
        assert_eq!(
            render_fleet(&reference),
            render_fleet(&sharded),
            "{shards} shards"
        );
        assert_eq!(sharded.shards, shards.min(specs.len()));
    }
}

#[test]
fn epoch_batched_and_eager_leak_checks_detect_identically_on_the_fleet_path() {
    // The fleet-path mirror of the single-process epoch differential, on
    // the golden fleet's seeds: batching leak-check deadlines at epoch
    // boundaries must not change a single detection field — per-process
    // flags, per-class tallies, or false positives.
    let specs = expand_fleet(SMALL_FLEET, 0, None).expect("valid fleet");
    let procs = fleet_process_specs(&specs).expect("churn cells");
    let batched = Fleet::boot(
        &procs,
        FleetConfig {
            epoch_batch: true,
            ..FleetConfig::default()
        },
    )
    .run();
    let eager = Fleet::boot(
        &procs,
        FleetConfig {
            epoch_batch: false,
            ..FleetConfig::default()
        },
    )
    .run();
    assert_eq!(batched.detected, eager.detected, "per-process detection");
    assert_eq!(batched.tallies, eager.tallies, "per-class detection fields");
    assert_eq!(batched.false_positives(), 0);
    assert_eq!(eager.false_positives(), 0);
}

#[test]
fn run_fleet_validates_its_specs() {
    assert!(run_fleet(&[], 1, TraceMode::Memoized).is_err(), "empty");
    let mut mixed_rates = expand_fleet(2, 0, None).expect("valid fleet");
    mixed_rates[1].sampling_ppm = 1_000_000;
    assert!(
        run_fleet(&mixed_rates, 1, TraceMode::Memoized).is_err(),
        "cells must share one rate"
    );
    let alien = vec![CampaignSpec::fleet("tar", 0)];
    assert!(
        run_fleet(&alien, 1, TraceMode::Memoized).is_err(),
        "non-churn workloads are rejected"
    );
    let valid = expand_fleet(2, 0, None).expect("valid fleet");
    assert!(
        run_fleet_sharded(&valid, 1, 0, TraceMode::Memoized).is_err(),
        "zero shards are rejected"
    );
}
