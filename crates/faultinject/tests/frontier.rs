//! Statistical gate for the sampling frontier: the rate ladder must (a) keep
//! the always-on rung byte-compatible with the harsh acceptance gate, (b)
//! sample allocation populations that match the configured rate to within a
//! precomputed binomial tolerance band, (c) detect each bug class with
//! probability consistent with the rate, monotone in the rate, and (d) never
//! report a SafeMem false positive at any rate.
//!
//! One shared ladder matrix feeds every test: the full default rate ladder
//! over one workload per bug class (SLeak, Overflow, UseAfterFree,
//! DoubleFree), 8 seeds, shortened request stream. All rates replay the same
//! recorded traces (the sampling rate is absent from the trace key), so the
//! matrix stays cheap.

use std::sync::OnceLock;

use safemem_core::{SamplingPlan, PPM};
use safemem_faultinject::{
    expand_frontier, frontier_rows, render_campaign, render_frontier, run_matrix, FrontierRow,
    MatrixReport, SmRng, FRONTIER_RATES_PPM, SAMPLING_STREAM,
};

const SEEDS: u64 = 8;
const FAST_REQUESTS: u64 = 48;

/// One workload per scored bug class.
const WORKLOADS: &[&str] = &["ypserv2", "tar", "cve-uaf", "cve-dfree"];

fn ladder_matrix() -> &'static MatrixReport {
    static MATRIX: OnceLock<MatrixReport> = OnceLock::new();
    MATRIX.get_or_init(|| {
        let workloads: Vec<String> = WORKLOADS.iter().map(|s| (*s).to_string()).collect();
        let specs = expand_frontier(
            "frontier",
            FRONTIER_RATES_PPM,
            &workloads,
            SEEDS,
            0,
            Some(FAST_REQUESTS),
        )
        .expect("valid ladder");
        run_matrix(&specs, 4).expect("ladder matrix runs")
    })
}

fn rows() -> Vec<FrontierRow> {
    frontier_rows(&ladder_matrix().results)
}

/// 6-sigma binomial band half-width around `n * p` — wide enough that a
/// correct sampler essentially never trips it, tight enough that a broken
/// hash (constant, correlated, or off by a rate factor) lands far outside.
fn six_sigma(n: f64, p: f64) -> f64 {
    6.0 * (n * p * (1.0 - p)).sqrt()
}

/// The always-on rung *is* the harsh gate: every rate-1.0 campaign upholds
/// the zero-false-positive / all-bugs-found invariant (the CI smoke runs the
/// full 160-campaign version; this pins the ladder's own rung), and the
/// frontier row reports every allocation sampled and every class at p=1.
#[test]
fn full_rate_rung_upholds_the_harsh_gate() {
    let matrix = ladder_matrix();
    let full: Vec<_> = matrix
        .results
        .iter()
        .filter(|r| r.spec.sampling_ppm == PPM)
        .collect();
    assert_eq!(full.len(), (SEEDS as usize) * WORKLOADS.len());
    for result in &full {
        assert!(
            result.harsh_invariant_holds(),
            "rate 1.0 broke the harsh gate:\n{}",
            render_campaign(result)
        );
    }
    let rows = rows();
    let row = rows.iter().find(|r| r.rate_ppm == PPM).expect("1.0 row");
    assert_eq!(row.sampled_allocs, row.total_allocs);
    assert!(row.total_allocs > 0);
    for (name, tally) in [
        ("leak", row.leak),
        ("overflow", row.overflow),
        ("uaf", row.uaf),
        ("double-free", row.double_free),
    ] {
        assert!(tally.total > 0, "{name}: ladder covers the class");
        assert_eq!(tally.found, tally.total, "{name}: p=1.0 at rate 1.0");
    }
}

/// The pipeline's sampled-allocation counts are exactly the ones the
/// published decision function dictates: a test-side mirror of the
/// (seed, stream)-keyed plan reproduces every campaign's summary.
#[test]
fn sampled_counts_match_a_mirror_of_the_decision_function() {
    for result in &ladder_matrix().results {
        let safemem = result.tool("safemem").expect("panel includes safemem");
        let summary = safemem.sampling.expect("safemem reports sampling");
        assert_eq!(summary.rate_ppm, result.spec.sampling_ppm);
        let seed = SmRng::keyed(result.spec.seed, SAMPLING_STREAM).next_u64();
        let plan = SamplingPlan::new(result.spec.sampling_ppm, seed);
        let expected = (0..summary.total_allocs)
            .filter(|&i| plan.samples(i))
            .count() as u64;
        assert_eq!(
            summary.sampled_allocs, expected,
            "{} seed {} rate {}: sampling diverged from the decision function",
            result.spec.workload, result.spec.seed, result.spec.sampling_ppm
        );
    }
}

/// Across each rate's whole row, the sampled fraction stays inside the
/// 6-sigma binomial band around the configured rate.
#[test]
fn sampled_fractions_stay_inside_the_binomial_band() {
    for row in rows() {
        let n = row.total_allocs as f64;
        let p = row.rate();
        let expected = n * p;
        let band = six_sigma(n, p);
        let got = row.sampled_allocs as f64;
        assert!(
            (got - expected).abs() <= band,
            "rate {p}: sampled {got} outside {expected} +/- {band} (n = {n})"
        );
    }
}

/// Per-class detection counts stay above the one-sided binomial floor
/// `n*r - 6*sigma`: a sampled bug site is caught with probability at least
/// the sampling rate (spillover onto sampled neighbours can only raise it,
/// so only the lower side binds).
#[test]
fn per_class_detection_clears_the_one_sided_band() {
    for row in rows() {
        let r = row.rate();
        for (name, tally) in [
            ("leak", row.leak),
            ("overflow", row.overflow),
            ("uaf", row.uaf),
            ("double-free", row.double_free),
        ] {
            let n = tally.total as f64;
            let floor = (n * r - six_sigma(n, r)).max(0.0);
            assert!(
                tally.found as f64 >= floor,
                "rate {r} {name}: found {}/{} below the binomial floor {floor:.2}",
                tally.found,
                tally.total
            );
            assert!(tally.found <= tally.total, "rate {r} {name}: overcount");
        }
    }
}

/// Detection is monotone non-decreasing in the sampling rate. The
/// per-allocation decisions nest across rates under one seed (threshold
/// hashing), so a corruption caught at rate r is caught at every higher
/// rate; the leak detector's group statistics only gain observations.
#[test]
fn detection_is_monotone_in_the_sampling_rate() {
    let mut rows = rows();
    rows.sort_by_key(|r| r.rate_ppm);
    for pair in rows.windows(2) {
        let (lo, hi) = (&pair[0], &pair[1]);
        assert!(
            lo.sampled_allocs <= hi.sampled_allocs,
            "sampled population must nest: {} vs {}",
            lo.rate(),
            hi.rate()
        );
        for (name, a, b) in [
            ("leak", lo.leak, hi.leak),
            ("overflow", lo.overflow, hi.overflow),
            ("uaf", lo.uaf, hi.uaf),
            ("double-free", lo.double_free, hi.double_free),
        ] {
            assert!(
                a.found <= b.found,
                "{name}: detection fell from {} at rate {} to {} at rate {}",
                a.found,
                lo.rate(),
                b.found,
                hi.rate()
            );
        }
    }
}

/// The frontier's hard invariant: sampling out instrumentation must never
/// *add* a report. Zero SafeMem false positives at every rate, and the
/// rendered table says so.
#[test]
fn every_rate_reports_zero_false_positives() {
    for result in &ladder_matrix().results {
        let safemem = result.tool("safemem").expect("panel includes safemem");
        assert_eq!(
            safemem.false_positives(),
            0,
            "{} seed {} rate {}: sampling introduced a false positive:\n{}",
            result.spec.workload,
            result.spec.seed,
            result.spec.sampling_ppm,
            render_campaign(result)
        );
    }
    let rendered = render_frontier(&rows());
    assert!(
        rendered.contains("zero false positives at every sampling rate): OK"),
        "{rendered}"
    );
}

/// Overhead shrinks with the rate: the cheapest rung must cost less CPU and
/// less memory than always-on instrumentation (that is the point of the
/// frontier), while the uninstrumented denominator is rate-invariant.
#[test]
fn overhead_decreases_toward_the_cheap_end_of_the_ladder() {
    let mut rows = rows();
    rows.sort_by_key(|r| r.rate_ppm);
    let (cheapest, full) = (rows.first().expect("rows"), rows.last().expect("rows"));
    assert_eq!(full.rate_ppm, PPM);
    assert!(
        cheapest.safemem_cycles < full.safemem_cycles,
        "sampling must shed simulated CPU: {} vs {}",
        cheapest.safemem_cycles,
        full.safemem_cycles
    );
    assert!(
        cheapest.waste_bytes < full.waste_bytes,
        "sampling must shed heap waste: {} vs {}",
        cheapest.waste_bytes,
        full.waste_bytes
    );
    assert_eq!(
        cheapest.baseline_cycles, full.baseline_cycles,
        "the uninstrumented denominator is rate-invariant"
    );
}
