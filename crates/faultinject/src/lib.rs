//! Deterministic fault-injection campaigns for the SafeMem reproduction.
//!
//! The SafeMem paper's central robustness claim (§2.1, §5) is *differential*:
//! under realistic memory-fault conditions — correctable single-bit errors,
//! background scrubbing, DMA traffic, swap pressure — SafeMem raises **no
//! false alarms** while still catching the planted leaks and corruptions,
//! and genuine uncorrectable errors are *attributed to hardware* rather than
//! misreported as program bugs. This crate turns that claim into a testable
//! harness:
//!
//! * [`spec::CampaignSpec`] — a fully deterministic campaign description:
//!   seed, fault mix and rates, scrub timing, swap pressure, ECC mode;
//! * [`inject::Injector`] — a [`MemTool`](safemem_core::MemTool) wrapper that
//!   interleaves seed-derived injections into a workload's operation stream
//!   through the ECC controller's injection hooks, the OS scrub path, and a
//!   DMA engine;
//! * [`oracle::run_campaign`] — records one ground-truth trace and replays it
//!   through SafeMem, the three comparison baselines, and the uninstrumented
//!   tool, classifying every report as true positive / false positive /
//!   missed (split into [`oracle::record_trace`] and [`oracle::replay_panel`]
//!   so a shared trace can serve many cells);
//! * [`runner::run_matrix`] — shards a seeds × workloads campaign matrix
//!   across a scoped worker pool, recording each unique trace once
//!   ([`runner::TraceMode`]); results reassemble in cell order, so the
//!   aggregate scorecard is byte-identical for any thread count;
//! * [`scorecard`] — byte-stable rendering, per campaign and aggregated.
//!
//! Determinism contract: no wall-clock, no global RNG; every injection
//! decision is a pure function of `(campaign seed, operation index)`. The
//! same spec therefore yields a byte-identical scorecard — for any worker
//! count and scheduling order — which the regression tests assert.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod fleet;
pub mod frontier;
pub mod inject;
pub mod oracle;
pub mod rng;
pub mod runner;
pub mod scorecard;
pub mod spec;
pub mod stream;
pub mod sweep;

pub use corpus::{
    corpus_checksum, obtain_campaign_trace, CorpusError, CorpusMode, TraceCorpus, CORPUS_MAGIC,
};
pub use fleet::{
    expand_fleet, fleet_process_specs, render_fleet, render_fleet_bench_json, run_fleet,
    run_fleet_corpus, run_fleet_sharded, FleetAgg, FleetClassAgg, FleetOutcome, ShardRun,
    DEFAULT_FLEET_PROCESSES,
};
pub use frontier::{
    expand_frontier, frontier_rows, render_frontier, render_frontier_bench_json, ClassTally,
    FrontierRow, FRONTIER_RATES_PPM,
};
pub use inject::{InjectionLog, Injector};
pub use oracle::{
    record_campaign_trace, record_trace, replay_panel, replay_panel_columnar_with,
    replay_panel_with, replay_safemem_columnar_with, replay_safemem_with, run_campaign,
    CampaignError, CampaignResult, GroundTruth, MarkerCounts, RecordedTrace, SurvivalScore,
    ToolScore, PANEL, SAMPLING_STREAM,
};
pub use rng::SmRng;
pub use runner::{
    default_threads, expand_matrix, render_bench_json, run_matrix, run_matrix_with, BenchRun,
    MatrixReport, TraceKey, TraceMode, WorkerReport,
};
pub use scorecard::{render_aggregate, render_campaign, render_worker_table, render_workers};
pub use spec::{CampaignSpec, FaultMix};
pub use stream::{
    run_matrix_streamed, run_matrix_streamed_corpus, StreamAggregate, StreamReport, ToolSums,
};
pub use sweep::{
    render_fleet_sweep, run_fleet_sweep, splice_sweep_json, SweepConfig, SweepKnee, SweepOutcome,
    SweepPoint, SWEEP_DETECTION_TARGET, SWEEP_FLEET_SIZES, SWEEP_RATES_PPM,
};
