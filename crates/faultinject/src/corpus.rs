//! Versioned on-disk trace corpus.
//!
//! Recording a workload trace is pure but not free; a campaign matrix that
//! runs in CI (or is re-run many times while iterating on a detector) pays
//! the recording cost on every invocation even though the recorded op
//! streams never change. The corpus makes that cost a one-time expense: a
//! directory holding one file per unique [`TraceKey`], each a versioned,
//! checksummed snapshot of the trace text the recorder produced. Later runs
//! load the snapshot instead of re-recording, and the replay pipeline is
//! bit-for-bit oblivious to where the trace came from — the golden
//! scorecards are byte-identical either way (pinned by the corpus
//! round-trip test and the CI corpus leg).
//!
//! # File format (version 1)
//!
//! A corpus file is plain text: a header, a `---` separator, then the trace
//! in [`Trace::to_text`] form.
//!
//! ```text
//! safemem-trace v1
//! workload ypserv1
//! workload_seed 0
//! requests -
//! phys_bytes 16777216
//! swap_policy pin
//! scrub_interval_cycles 2000000
//! ecc_mode correct-and-scrub
//! ops 1234
//! checksum 3f2a9c01d4e5b687
//! ---
//! M 64 0x1 0x2
//! ...
//! ```
//!
//! The header pins every [`TraceKey`] field, the op count, and an FNV-1a
//! checksum of the trace text, so a loaded file is validated against the
//! exact key the runner would have recorded under — a stale or foreign file
//! fails loudly (naming the file and the expected version or field) instead
//! of silently perturbing the scorecard.
//!
//! # Version policy
//!
//! The magic line carries the format version. Readers accept exactly the
//! versions they know (`v1` today); any other version — older or newer — is
//! a [`CorpusError::Version`] naming the file and the expected version, and
//! the fix is to re-record (`--corpus-mode record`). The trace text itself
//! is the compatibility boundary: a change to the op grammar requires a new
//! corpus version.

use std::fmt;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use safemem_ecc::EccMode;
use safemem_os::SwapPolicy;
use safemem_workloads::Trace;

use crate::runner::TraceKey;

/// The magic + version line every corpus file must start with.
pub const CORPUS_MAGIC: &str = "safemem-trace v1";

/// How a campaign run uses a trace corpus directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CorpusMode {
    /// Load traces that are present and valid; record and store the rest.
    #[default]
    Auto,
    /// Record every trace fresh and (re)write its corpus file. Never reads.
    Record,
    /// Only load. A missing or invalid file is an error, never a silent
    /// re-record — this is the CI replay leg's mode.
    ReplayFrom,
}

impl CorpusMode {
    /// Parses the `--corpus-mode` flag value.
    ///
    /// # Errors
    ///
    /// Returns the list of accepted values for anything else.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(CorpusMode::Auto),
            "record" => Ok(CorpusMode::Record),
            "replay-from" => Ok(CorpusMode::ReplayFrom),
            other => Err(format!(
                "unknown corpus mode {other:?} (expected auto, record, or replay-from)"
            )),
        }
    }
}

/// Why a corpus file could not be used. Every variant names the offending
/// file so the error is actionable without re-running under a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusError {
    /// The file is missing but the mode required it.
    Missing {
        /// The corpus file that should have held the trace.
        path: PathBuf,
    },
    /// The file could not be read or written.
    Io {
        /// The corpus file involved.
        path: PathBuf,
        /// The underlying I/O error, stringified.
        error: String,
    },
    /// The magic/version line is wrong — foreign file or other format
    /// version.
    Version {
        /// The offending file.
        path: PathBuf,
        /// Its actual first line.
        found: String,
    },
    /// The header disagrees with the [`TraceKey`] the runner needs.
    KeyMismatch {
        /// The offending file.
        path: PathBuf,
        /// Header field that disagrees.
        field: &'static str,
        /// Value the key requires.
        expected: String,
        /// Value the file holds.
        found: String,
    },
    /// The body fails its checksum or does not parse as a trace.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What exactly failed.
        detail: String,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Missing { path } => write!(
                f,
                "trace corpus: {} is missing (record it with --corpus-mode record or auto)",
                path.display()
            ),
            CorpusError::Io { path, error } => {
                write!(f, "trace corpus: {}: {error}", path.display())
            }
            CorpusError::Version { path, found } => write!(
                f,
                "trace corpus: {} has version line {found:?}, expected {CORPUS_MAGIC:?} \
                 (re-record with --corpus-mode record)",
                path.display()
            ),
            CorpusError::KeyMismatch {
                path,
                field,
                expected,
                found,
            } => write!(
                f,
                "trace corpus: {} was recorded for {field} {found}, this run needs {expected}",
                path.display()
            ),
            CorpusError::Corrupt { path, detail } => {
                write!(f, "trace corpus: {} is corrupt: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for CorpusError {}

/// FNV-1a 64-bit over the trace text — stable, dependency-free, and spelled
/// out here so the file format is self-describing.
#[must_use]
pub fn corpus_checksum(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in text.as_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn swap_policy_token(policy: SwapPolicy) -> &'static str {
    match policy {
        SwapPolicy::PinWatchedPages => "pin",
        SwapPolicy::SwapAware => "swap-aware",
    }
}

fn ecc_mode_token(mode: EccMode) -> &'static str {
    match mode {
        EccMode::Disabled => "disabled",
        EccMode::CheckOnly => "check-only",
        EccMode::CorrectError => "correct-error",
        EccMode::CorrectAndScrub => "correct-and-scrub",
    }
}

fn opt_token(value: Option<u64>) -> String {
    value.map_or_else(|| "-".into(), |v| v.to_string())
}

/// A directory of versioned trace snapshots, one file per [`TraceKey`].
#[derive(Debug, Clone)]
pub struct TraceCorpus {
    dir: PathBuf,
    mode: CorpusMode,
}

impl TraceCorpus {
    /// Opens (and for writable modes, creates) the corpus directory.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Io`] if the directory cannot be created
    /// (record/auto) or does not exist (replay-from).
    pub fn open(dir: impl Into<PathBuf>, mode: CorpusMode) -> Result<Self, CorpusError> {
        let dir = dir.into();
        match mode {
            CorpusMode::ReplayFrom => {
                if !dir.is_dir() {
                    return Err(CorpusError::Io {
                        path: dir,
                        error: "not a directory (nothing recorded here yet?)".into(),
                    });
                }
            }
            CorpusMode::Auto | CorpusMode::Record => {
                std::fs::create_dir_all(&dir).map_err(|e| CorpusError::Io {
                    path: dir.clone(),
                    error: e.to_string(),
                })?;
            }
        }
        Ok(TraceCorpus { dir, mode })
    }

    /// The configured mode.
    #[must_use]
    pub fn mode(&self) -> CorpusMode {
        self.mode
    }

    /// The corpus file a key maps to. Deterministic in the key alone, so
    /// every run (and every machine) agrees on the layout.
    #[must_use]
    pub fn path_for(&self, key: &TraceKey) -> PathBuf {
        let name = format!(
            "{}_s{}_r{}_p{}_{}_i{}_{}.trace",
            key.workload,
            key.workload_seed,
            opt_token(key.requests),
            key.phys_bytes,
            swap_policy_token(key.swap_policy),
            opt_token(key.scrub_interval_cycles),
            ecc_mode_token(key.ecc_mode),
        );
        self.dir.join(name)
    }

    /// Serialises a trace under its key into the version-1 file format.
    #[must_use]
    pub fn render(key: &TraceKey, trace: &Trace) -> String {
        let body = trace.to_text();
        let mut out = String::with_capacity(body.len() + 256);
        let _ = writeln!(out, "{CORPUS_MAGIC}");
        let _ = writeln!(out, "workload {}", key.workload);
        let _ = writeln!(out, "workload_seed {}", key.workload_seed);
        let _ = writeln!(out, "requests {}", opt_token(key.requests));
        let _ = writeln!(out, "phys_bytes {}", key.phys_bytes);
        let _ = writeln!(out, "swap_policy {}", swap_policy_token(key.swap_policy));
        let _ = writeln!(
            out,
            "scrub_interval_cycles {}",
            opt_token(key.scrub_interval_cycles)
        );
        let _ = writeln!(out, "ecc_mode {}", ecc_mode_token(key.ecc_mode));
        let _ = writeln!(out, "ops {}", trace.len());
        let _ = writeln!(out, "checksum {:016x}", corpus_checksum(&body));
        let _ = writeln!(out, "---");
        out.push_str(&body);
        out
    }

    /// Writes (or overwrites) the snapshot for `key`.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Io`] if the file cannot be written.
    pub fn store(&self, key: &TraceKey, trace: &Trace) -> Result<(), CorpusError> {
        let path = self.path_for(key);
        std::fs::write(&path, Self::render(key, trace)).map_err(|e| CorpusError::Io {
            path: path.clone(),
            error: e.to_string(),
        })
    }

    /// Loads and validates the snapshot for `key`.
    ///
    /// Under [`CorpusMode::Auto`], a *missing* file returns `Ok(None)` (the
    /// caller records and stores); every other defect is still a hard error
    /// — auto mode heals absence, not corruption. Under
    /// [`CorpusMode::ReplayFrom`], absence is an error too. Under
    /// [`CorpusMode::Record`], nothing is ever read and this returns
    /// `Ok(None)`.
    ///
    /// # Errors
    ///
    /// See [`CorpusError`]; every variant names the offending file.
    pub fn load(&self, key: &TraceKey) -> Result<Option<Trace>, CorpusError> {
        if self.mode == CorpusMode::Record {
            return Ok(None);
        }
        let path = self.path_for(key);
        let content = match std::fs::read_to_string(&path) {
            Ok(content) => content,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return if self.mode == CorpusMode::ReplayFrom {
                    Err(CorpusError::Missing { path })
                } else {
                    Ok(None)
                };
            }
            Err(e) => {
                return Err(CorpusError::Io {
                    path,
                    error: e.to_string(),
                })
            }
        };
        Self::parse(&path, key, &content).map(Some)
    }

    /// Parses and validates one corpus file against the key it must serve.
    fn parse(path: &Path, key: &TraceKey, content: &str) -> Result<Trace, CorpusError> {
        let mut lines = content.lines();
        let magic = lines.next().unwrap_or_default();
        if magic != CORPUS_MAGIC {
            return Err(CorpusError::Version {
                path: path.to_path_buf(),
                found: magic.to_string(),
            });
        }
        let mut ops: Option<u64> = None;
        let mut checksum: Option<u64> = None;
        let mut consumed = magic.len() + 1;
        let mut body_start = None;
        for line in lines {
            consumed += line.len() + 1;
            if line == "---" {
                body_start = Some(consumed);
                break;
            }
            let (field, value) = line.split_once(' ').ok_or_else(|| CorpusError::Corrupt {
                path: path.to_path_buf(),
                detail: format!("malformed header line {line:?}"),
            })?;
            let expect = |expected: String| -> Result<(), CorpusError> {
                if value == expected {
                    Ok(())
                } else {
                    Err(CorpusError::KeyMismatch {
                        path: path.to_path_buf(),
                        field: match field {
                            "workload" => "workload",
                            "workload_seed" => "workload_seed",
                            "requests" => "requests",
                            "phys_bytes" => "phys_bytes",
                            "swap_policy" => "swap_policy",
                            "scrub_interval_cycles" => "scrub_interval_cycles",
                            "ecc_mode" => "ecc_mode",
                            _ => "header field",
                        },
                        expected,
                        found: value.to_string(),
                    })
                }
            };
            match field {
                "workload" => expect(key.workload.clone())?,
                "workload_seed" => expect(key.workload_seed.to_string())?,
                "requests" => expect(opt_token(key.requests))?,
                "phys_bytes" => expect(key.phys_bytes.to_string())?,
                "swap_policy" => expect(swap_policy_token(key.swap_policy).into())?,
                "scrub_interval_cycles" => expect(opt_token(key.scrub_interval_cycles))?,
                "ecc_mode" => expect(ecc_mode_token(key.ecc_mode).into())?,
                "ops" => {
                    ops = Some(value.parse().map_err(|_| CorpusError::Corrupt {
                        path: path.to_path_buf(),
                        detail: format!("unparsable ops count {value:?}"),
                    })?);
                }
                "checksum" => {
                    checksum =
                        Some(
                            u64::from_str_radix(value, 16).map_err(|_| CorpusError::Corrupt {
                                path: path.to_path_buf(),
                                detail: format!("unparsable checksum {value:?}"),
                            })?,
                        );
                }
                other => {
                    return Err(CorpusError::Corrupt {
                        path: path.to_path_buf(),
                        detail: format!("unknown header field {other:?}"),
                    });
                }
            }
        }
        let Some(body_start) = body_start else {
            return Err(CorpusError::Corrupt {
                path: path.to_path_buf(),
                detail: "missing --- separator".into(),
            });
        };
        let body = &content[body_start..];
        let expected_sum = checksum.ok_or_else(|| CorpusError::Corrupt {
            path: path.to_path_buf(),
            detail: "missing checksum header".into(),
        })?;
        let actual_sum = corpus_checksum(body);
        if actual_sum != expected_sum {
            return Err(CorpusError::Corrupt {
                path: path.to_path_buf(),
                detail: format!(
                    "checksum mismatch (header {expected_sum:016x}, body {actual_sum:016x})"
                ),
            });
        }
        let trace = Trace::from_text(body).map_err(|e| CorpusError::Corrupt {
            path: path.to_path_buf(),
            detail: format!("trace body does not parse: {e}"),
        })?;
        if let Some(expected_ops) = ops {
            if trace.len() as u64 != expected_ops {
                return Err(CorpusError::Corrupt {
                    path: path.to_path_buf(),
                    detail: format!("ops header says {expected_ops}, body holds {}", trace.len()),
                });
            }
        }
        Ok(trace)
    }
}

/// Obtains the recorded-trace bundle for a spec: from the corpus when one
/// is configured and holds a valid snapshot, freshly recorded otherwise.
/// Returns the bundle and whether it was recorded fresh (telemetry only —
/// the bundle itself is byte-identical either way, because the corpus
/// stores the exact text [`Trace::to_text`] produces).
///
/// # Errors
///
/// Recording errors, plus every [`CorpusError`] (stringified into
/// [`CampaignError`]) a configured corpus can raise.
pub fn obtain_campaign_trace(
    spec: &crate::spec::CampaignSpec,
    corpus: Option<&TraceCorpus>,
) -> Result<(crate::oracle::RecordedTrace, bool), crate::oracle::CampaignError> {
    use crate::oracle::{record_trace, CampaignError, RecordedTrace};
    let Some(corpus) = corpus else {
        return crate::oracle::record_campaign_trace(spec).map(|t| (t, true));
    };
    let key = TraceKey::of(spec);
    match corpus.load(&key) {
        Ok(Some(trace)) => Ok((RecordedTrace::new(trace), false)),
        Ok(None) => {
            let trace = record_trace(spec)?;
            corpus
                .store(&key, &trace)
                .map_err(|e| CampaignError(e.to_string()))?;
            Ok((RecordedTrace::new(trace), true))
        }
        Err(e) => Err(CampaignError(e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CampaignSpec;

    fn key() -> TraceKey {
        let mut spec = CampaignSpec::harsh("tar", 0);
        spec.requests = Some(24);
        TraceKey::of(&spec)
    }

    fn trace() -> Trace {
        let mut spec = CampaignSpec::harsh("tar", 0);
        spec.requests = Some(24);
        crate::oracle::record_trace(&spec).expect("record")
    }

    #[test]
    fn round_trips_a_recorded_trace() {
        let dir = std::env::temp_dir().join("safemem-corpus-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let corpus = TraceCorpus::open(&dir, CorpusMode::Auto).expect("open");
        let key = key();
        assert_eq!(corpus.load(&key).expect("auto miss is ok"), None);
        let trace = trace();
        corpus.store(&key, &trace).expect("store");
        let loaded = corpus.load(&key).expect("load").expect("present");
        assert_eq!(loaded, trace);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_version_names_file_and_expected_version() {
        let key = key();
        let path = Path::new("corpus/x.trace");
        let err = TraceCorpus::parse(path, &key, "safemem-trace v0\n---\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("corpus/x.trace"), "{msg}");
        assert!(msg.contains("safemem-trace v1"), "{msg}");
        assert!(msg.contains("safemem-trace v0"), "{msg}");
    }

    #[test]
    fn key_mismatch_names_field_and_both_values() {
        let key = key();
        let mut other = key.clone();
        other.workload = "gzip".into();
        let rendered = TraceCorpus::render(&other, &Trace::new());
        let err = TraceCorpus::parse(Path::new("c/y.trace"), &key, &rendered).unwrap_err();
        match &err {
            CorpusError::KeyMismatch {
                field,
                expected,
                found,
                ..
            } => {
                assert_eq!(*field, "workload");
                assert_eq!(expected, "tar");
                assert_eq!(found, "gzip");
            }
            other => panic!("expected KeyMismatch, got {other:?}"),
        }
        assert!(err.to_string().contains("c/y.trace"), "{err}");
    }

    #[test]
    fn corrupted_body_fails_the_checksum() {
        let key = key();
        let trace = trace();
        let mut rendered = TraceCorpus::render(&key, &trace);
        let flip = rendered.rfind('M').expect("trace has a malloc op");
        rendered.replace_range(flip..=flip, "F");
        let err = TraceCorpus::parse(Path::new("c/z.trace"), &key, &rendered).unwrap_err();
        assert!(
            matches!(err, CorpusError::Corrupt { .. }),
            "expected Corrupt, got {err:?}"
        );
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn replay_from_requires_the_file() {
        let dir = std::env::temp_dir().join("safemem-corpus-replay-missing");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let corpus = TraceCorpus::open(&dir, CorpusMode::ReplayFrom).expect("open");
        let err = corpus.load(&key()).unwrap_err();
        assert!(matches!(err, CorpusError::Missing { .. }), "{err:?}");
        assert!(err.to_string().contains(".trace"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
