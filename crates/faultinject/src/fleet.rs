//! The fleet campaign: SafeMem's production story at GWP-ASan scale.
//!
//! One fleet campaign simulates `n` connection-churn server processes, each
//! running SafeMem at the sub-1.0 sampling rate
//! [`FLEET_RATE_PPM`](crate::spec::FLEET_RATE_PPM). Individually, a process
//! catches its planted bug only if the victim allocation happens to draw
//! instrumentation (probability ≈ the rate `r`); collectively, the fleet
//! catches it with probability `1 − (1 − r)^n`. The fleet scorecard
//! quantifies exactly that: per bug class it reports the observed
//! per-process detection fraction `k/n` against the predicted `r` (with a
//! 6σ binomial acceptance band), and the fleet-level detection probability
//! both ways.
//!
//! The campaign runs in two phases:
//!
//! * **Phase A — shared machine.** The whole fleet runs inside one
//!   [`Fleet`] simulation: one physical ECC memory and swap device
//!   time-multiplexed across every process through the pluggable
//!   [`SlotBackend`](safemem_machine::SlotBackend) boundary. This is the
//!   architectural half: hundreds of OS instances genuinely share one
//!   machine, and per-process virtual clocks keep the leak detector's
//!   lifetime thresholds meaningful.
//! * **Phase B — per-process campaign cells.** Every process is replayed as
//!   an isolated campaign cell under the harsh correctable-only fault mix
//!   ([`replay_safemem_with`] — SafeMem alone, not the five-tool panel),
//!   sharded across worker threads with the memoized trace store (three
//!   recorded traces serve the whole fleet). Results are folded straight
//!   into a fixed-size [`FleetAgg`]; no per-cell `Vec` survives the run.
//!
//! The phases cross-check each other: a corruption cell detects iff its
//! victim allocation was sampled, and both phases derive the per-process
//! sampling seed identically, so shared-machine and isolated-cell detection
//! must agree process-for-process for the uaf/obo classes (leak detection
//! also follows the sampling decision, but its idle-time threshold makes
//! the shared-machine timing part of the outcome, so the A/B check binds
//! the corruption classes only).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex, OnceLock};
use std::time::{Duration, Instant};

use safemem_core::PPM;
use safemem_fleet::{Fleet, FleetConfig, FleetReport, ProcessSpec};
use safemem_workloads::apps::ChurnKind;
use safemem_workloads::ColumnarReplayer;

use crate::corpus::{obtain_campaign_trace, TraceCorpus};
use crate::oracle::{
    replay_safemem_columnar_with, CampaignError, GroundTruth, RecordedTrace, ToolScore,
    SAMPLING_STREAM,
};
use crate::rng::SmRng;
use crate::runner::{render_bench_json, BenchRun, TraceKey, TraceMode, WorkerReport};
use crate::spec::{CampaignSpec, FLEET_REQUESTS, FLEET_WORKLOADS};

/// Default fleet size: big enough that at the 0.2 sampling rate the
/// fleet-level detection probability is ≈ 1 for every class, and small
/// enough that the whole two-phase campaign finishes in CI.
pub const DEFAULT_FLEET_PROCESSES: u64 = 512;

/// Expands a fleet of `processes` campaign cells: process `pid` runs
/// [`FLEET_WORKLOADS`]`[pid % 3]` with campaign seed `seed0 + pid`, so
/// every process makes independent sampling decisions.
///
/// # Errors
///
/// Returns [`CampaignError`] for an empty fleet.
pub fn expand_fleet(
    processes: u64,
    seed0: u64,
    requests: Option<u64>,
) -> Result<Vec<CampaignSpec>, CampaignError> {
    if processes == 0 {
        return Err(CampaignError("a fleet needs at least one process".into()));
    }
    let mut specs = Vec::with_capacity(usize::try_from(processes).unwrap_or(usize::MAX));
    for pid in 0..processes {
        let workload = FLEET_WORKLOADS[usize::try_from(pid % 3).expect("mod 3 fits")];
        let mut spec = CampaignSpec::fleet(workload, seed0.wrapping_add(pid));
        if requests.is_some() {
            spec.requests = requests;
        }
        specs.push(spec);
    }
    Ok(specs)
}

/// The churn kind a fleet cell's workload name denotes.
fn kind_of(spec: &CampaignSpec) -> Result<ChurnKind, CampaignError> {
    match spec.workload.as_str() {
        "churn-leak" => Ok(ChurnKind::Leak),
        "churn-uaf" => Ok(ChurnKind::UseAfterFree),
        "churn-obo" => Ok(ChurnKind::Overflow),
        other => Err(CampaignError(format!(
            "fleet cells run the churn family, not {other:?}"
        ))),
    }
}

/// Translates fleet campaign cells into the shared-machine simulation's
/// process specs. The sampling seed is derived exactly as the campaign
/// cell's replay derives it (campaign seed keyed on the dedicated
/// [`SAMPLING_STREAM`]), so a fleet process and its phase-B cell make
/// identical per-allocation sampling decisions.
///
/// # Errors
///
/// Returns [`CampaignError`] if a cell names a non-churn workload.
pub fn fleet_process_specs(specs: &[CampaignSpec]) -> Result<Vec<ProcessSpec>, CampaignError> {
    specs
        .iter()
        .map(|spec| {
            Ok(ProcessSpec {
                kind: kind_of(spec)?,
                workload_seed: spec.workload_seed,
                sampling_ppm: spec.sampling_ppm,
                sampling_seed: SmRng::keyed(spec.seed, SAMPLING_STREAM).next_u64(),
            })
        })
        .collect()
}

/// One bug class's running sums across the fleet's phase-B cells.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetClassAgg {
    /// Cells running this class.
    pub cells: u64,
    /// Cells whose planted bug SafeMem reported.
    pub detected: u64,
    /// SafeMem false positives across this class's cells.
    pub false_positives: u64,
    /// Allocations that drew instrumentation, summed.
    pub sampled_allocs: u64,
    /// Allocations issued, summed.
    pub total_allocs: u64,
}

impl FleetClassAgg {
    /// Observed per-process detection probability `k/n`.
    #[must_use]
    pub fn observed(&self) -> f64 {
        if self.cells == 0 {
            0.0
        } else {
            self.detected as f64 / self.cells as f64
        }
    }

    /// Whether the observed detection count sits inside the 6σ binomial
    /// band around the prediction: `|k − n·r| ≤ 6·√(n·r·(1−r))`.
    #[must_use]
    pub fn within_six_sigma(&self, rate: f64) -> bool {
        let n = self.cells as f64;
        let expected = n * rate;
        let sigma = (n * rate * (1.0 - rate)).sqrt();
        (self.detected as f64 - expected).abs() <= 6.0 * sigma
    }

    /// Fleet-level detection probability from the observed per-process
    /// fraction: `1 − (1 − k/n)^n`.
    #[must_use]
    pub fn fleet_observed(&self) -> f64 {
        1.0 - (1.0 - self.observed()).powf(self.cells as f64)
    }

    /// Fleet-level detection probability the sampling rate predicts:
    /// `1 − (1 − r)^n`.
    #[must_use]
    pub fn fleet_predicted(&self, rate: f64) -> f64 {
        1.0 - (1.0 - rate).powf(self.cells as f64)
    }
}

/// The fixed-size fold of every phase-B cell — the fleet analogue of
/// [`StreamAggregate`](crate::stream::StreamAggregate). Its size depends
/// only on the (three-entry) class list, never on the fleet size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetAgg {
    /// Cells folded.
    pub cells: u64,
    /// The fleet's sampling rate, parts-per-million.
    pub rate_ppm: u32,
    /// Per-class sums, in [`FLEET_WORKLOADS`] order.
    pub classes: [FleetClassAgg; 3],
    /// SafeMem false positives of any kind across the fleet.
    pub false_positives: u64,
    /// Hardware panics across the fleet (must stay zero under the
    /// correctable-only mix).
    pub hardware_panics: u64,
    /// Injected faults (bit flips + bursts) across the fleet.
    pub injected: u64,
    /// Corruption cells (uaf/obo) compared against the shared-machine run.
    pub ab_checked: u64,
    /// Corruption cells whose isolated detection matched the
    /// shared-machine detection.
    pub ab_agreed: u64,
}

impl FleetAgg {
    /// An empty aggregate at the given sampling rate.
    #[must_use]
    pub fn new(rate_ppm: u32) -> Self {
        FleetAgg {
            cells: 0,
            rate_ppm,
            classes: [FleetClassAgg::default(); 3],
            false_positives: 0,
            hardware_panics: 0,
            injected: 0,
            ab_checked: 0,
            ab_agreed: 0,
        }
    }

    /// The sampling rate as a fraction.
    #[must_use]
    pub fn rate(&self) -> f64 {
        f64::from(self.rate_ppm) / f64::from(PPM)
    }

    /// Folds one cell's SafeMem score in. `shared_detected` is the
    /// shared-machine (phase A) detection flag for the same process.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError`] if the cell names a non-churn workload.
    pub fn fold(
        &mut self,
        spec: &CampaignSpec,
        truth: &GroundTruth,
        score: &ToolScore,
        shared_detected: bool,
    ) -> Result<(), CampaignError> {
        let kind = kind_of(spec)?;
        let class = &mut self.classes[match kind {
            ChurnKind::Leak => 0,
            ChurnKind::UseAfterFree => 1,
            ChurnKind::Overflow => 2,
        }];
        let detected = match kind {
            ChurnKind::Leak => score.leaks_found == truth.leak_groups.len(),
            ChurnKind::UseAfterFree | ChurnKind::Overflow => score.corruption_found,
        };
        self.cells += 1;
        class.cells += 1;
        class.detected += u64::from(detected);
        class.false_positives += score.false_positives();
        if let Some(sampling) = &score.sampling {
            class.sampled_allocs += sampling.sampled_allocs;
            class.total_allocs += sampling.total_allocs;
        }
        self.false_positives += score.false_positives();
        self.hardware_panics += score.hardware_panics;
        self.injected += score.injected.data_bit_flips
            + score.injected.code_bit_flips
            + score.injected.multi_bit_bursts;
        if kind != ChurnKind::Leak {
            self.ab_checked += 1;
            self.ab_agreed += u64::from(detected == shared_detected);
        }
        Ok(())
    }

    /// The fleet acceptance verdict: zero SafeMem false positives, zero
    /// hardware panics, every observed per-class detection count inside the
    /// 6σ band, and shared-machine/isolated-cell agreement on every
    /// corruption cell.
    #[must_use]
    pub fn invariants_hold(&self) -> bool {
        self.false_positives == 0
            && self.hardware_panics == 0
            && self.ab_agreed == self.ab_checked
            && self
                .classes
                .iter()
                .all(|c| c.cells == 0 || c.within_six_sigma(self.rate()))
    }
}

/// A completed fleet campaign: the phase-A shared-machine report, the
/// phase-B fold, and the execution telemetry.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Fleet size.
    pub processes: u64,
    /// Requests each process served.
    pub requests: u64,
    /// Phase A: the shared-machine simulation's report.
    pub shared: FleetReport,
    /// Phase B: the per-cell campaign fold.
    pub agg: FleetAgg,
    /// Per-worker phase-B telemetry, sorted by worker index.
    pub workers: Vec<WorkerReport>,
    /// Worker threads actually spawned for phase B.
    pub threads: usize,
    /// Shards the phase-A fleet was partitioned into.
    pub shards: usize,
    /// Wall time for both phases.
    pub wall: Duration,
    /// Wall time of phase A alone (booting and running the shared-machine
    /// fleet); `wall - boot_wall` is the sharded record/replay phase.
    pub boot_wall: Duration,
}

/// Runs the two-phase fleet campaign over `specs` (from [`expand_fleet`])
/// with a single-machine (one-shard) phase A — the differential reference
/// every sharded run is checked against.
///
/// Phase A runs the whole fleet on one shared machine; phase B shards the
/// per-process campaign cells across `threads` workers exactly like the
/// matrix runner, recording each unique trace once under
/// [`TraceMode::Memoized`] (three traces serve any fleet size) and folding
/// every cell into the fixed-size [`FleetAgg`].
///
/// # Errors
///
/// Returns [`CampaignError`] for an empty spec list, cells that disagree on
/// requests or sampling rate, a non-churn workload, or the lowest-indexed
/// cell failure.
pub fn run_fleet(
    specs: &[CampaignSpec],
    threads: usize,
    mode: TraceMode,
) -> Result<FleetOutcome, CampaignError> {
    run_fleet_corpus(specs, threads, 1, mode, None)
}

/// [`run_fleet`] with phase A partitioned into `shards` parallel shards,
/// each owning its own machine sized to its processes' disjoint frame
/// windows ([`Fleet::run_sharded`]). The merged shared-machine report —
/// and therefore the whole scorecard — is byte-identical for every shard
/// count; only the wall clock moves.
///
/// # Errors
///
/// Everything [`run_fleet`] can return, plus a zero shard count.
pub fn run_fleet_sharded(
    specs: &[CampaignSpec],
    threads: usize,
    shards: usize,
    mode: TraceMode,
) -> Result<FleetOutcome, CampaignError> {
    run_fleet_corpus(specs, threads, shards, mode, None)
}

/// [`run_fleet_sharded`] with an optional [`TraceCorpus`] serving phase B's
/// recorded traces (see
/// [`run_matrix_streamed_corpus`](crate::stream::run_matrix_streamed_corpus)).
/// The fleet scorecard is byte-identical with or without a corpus.
///
/// # Errors
///
/// Everything [`run_fleet_sharded`] can return, plus stringified
/// [`CorpusError`](crate::corpus::CorpusError)s from corpus validation.
pub fn run_fleet_corpus(
    specs: &[CampaignSpec],
    threads: usize,
    shards: usize,
    mode: TraceMode,
    corpus: Option<&TraceCorpus>,
) -> Result<FleetOutcome, CampaignError> {
    if shards == 0 {
        return Err(CampaignError("a fleet needs at least one shard".into()));
    }
    let Some(first) = specs.first() else {
        return Err(CampaignError("a fleet needs at least one process".into()));
    };
    let requests = first.requests.unwrap_or(FLEET_REQUESTS);
    let rate_ppm = first.sampling_ppm;
    if specs
        .iter()
        .any(|s| s.requests.unwrap_or(FLEET_REQUESTS) != requests || s.sampling_ppm != rate_ppm)
    {
        return Err(CampaignError(
            "fleet cells must agree on requests and sampling rate".into(),
        ));
    }
    let start = Instant::now();

    // Phase A: every process on a shared machine behind the slot backend —
    // one machine per shard, merged in canonical pid order (one shard IS
    // the single-machine reference; the merged report is byte-identical at
    // every shard count thanks to the turn-boundary cache barrier).
    let process_specs = fleet_process_specs(specs)?;
    let shared = Fleet::run_sharded(
        &process_specs,
        FleetConfig {
            requests,
            ..FleetConfig::default()
        },
        shards,
    );
    let boot_wall = start.elapsed();

    // Phase B: the cells, sharded. Same two-phase record/replay shape as
    // the matrix runner, but each cell replays SafeMem alone and folds.
    let threads = threads.max(1).min(specs.len());
    let mut key_index: HashMap<TraceKey, usize> = HashMap::new();
    let mut slot_of_cell: Vec<usize> = Vec::with_capacity(specs.len());
    let mut slot_spec: Vec<&CampaignSpec> = Vec::new();
    if mode == TraceMode::Memoized {
        for spec in specs {
            let next = key_index.len();
            let slot = *key_index.entry(TraceKey::of(spec)).or_insert(next);
            if slot == next {
                slot_spec.push(spec);
            }
            slot_of_cell.push(slot);
        }
    }
    let slots: Vec<OnceLock<Result<Arc<RecordedTrace>, CampaignError>>> =
        (0..slot_spec.len()).map(|_| OnceLock::new()).collect();

    let record_cursor = AtomicUsize::new(0);
    let cell_cursor = AtomicUsize::new(0);
    let barrier = Barrier::new(threads);
    let agg = Mutex::new(FleetAgg::new(rate_ppm));
    let first_error: Mutex<Option<(usize, CampaignError)>> = Mutex::new(None);
    let workers: Mutex<Vec<WorkerReport>> = Mutex::new(Vec::with_capacity(threads));
    let shared_detected = &shared.detected;

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let record_cursor = &record_cursor;
            let cell_cursor = &cell_cursor;
            let barrier = &barrier;
            let agg = &agg;
            let first_error = &first_error;
            let workers = &workers;
            let slots = &slots;
            let slot_spec = &slot_spec;
            let slot_of_cell = &slot_of_cell;
            scope.spawn(move || {
                let mut replayer = ColumnarReplayer::new();
                let mut report = WorkerReport {
                    worker,
                    campaigns: 0,
                    traces_recorded: 0,
                    busy: Duration::ZERO,
                    injection_events: 0,
                };

                loop {
                    let slot = record_cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = slot_spec.get(slot).copied() else {
                        break;
                    };
                    let t0 = Instant::now();
                    let recorded = obtain_campaign_trace(spec, corpus).map(|(trace, fresh)| {
                        if fresh {
                            report.traces_recorded += 1;
                        }
                        Arc::new(trace)
                    });
                    report.busy += t0.elapsed();
                    slots[slot]
                        .set(recorded)
                        .expect("the cursor hands each slot to one worker");
                }
                barrier.wait();

                loop {
                    let index = cell_cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = specs.get(index) else {
                        break;
                    };
                    let t0 = Instant::now();
                    let cell = match mode {
                        TraceMode::Memoized => {
                            let slot = &slots[slot_of_cell[index]];
                            match slot.get().expect("phase one filled every slot") {
                                Ok(trace) => {
                                    replay_safemem_columnar_with(spec, trace, &mut replayer)
                                }
                                Err(e) => Err(e.clone()),
                            }
                        }
                        TraceMode::FreshRecord => {
                            obtain_campaign_trace(spec, corpus).and_then(|(trace, fresh)| {
                                if fresh {
                                    report.traces_recorded += 1;
                                }
                                replay_safemem_columnar_with(spec, &trace, &mut replayer)
                            })
                        }
                    };
                    report.busy += t0.elapsed();
                    report.campaigns += 1;
                    let folded = cell.and_then(|(truth, score)| {
                        let log = score.injected;
                        report.injection_events += log.data_bit_flips
                            + log.code_bit_flips
                            + log.multi_bit_bursts
                            + log.forced_scrub_cycles
                            + log.dma_transfers
                            + log.dma_faults;
                        agg.lock().expect("no panics hold the aggregate lock").fold(
                            spec,
                            &truth,
                            &score,
                            shared_detected[index],
                        )
                    });
                    if let Err(e) = folded {
                        let mut slot = first_error.lock().expect("no panics hold the error lock");
                        if slot.as_ref().is_none_or(|(lowest, _)| index < *lowest) {
                            *slot = Some((index, e));
                        }
                    }
                }
                workers
                    .lock()
                    .expect("no panics hold the worker lock")
                    .push(report);
            });
        }
    });

    if let Some((_, e)) = first_error.into_inner().expect("scope joined all workers") {
        return Err(e);
    }
    let mut workers = workers.into_inner().expect("scope joined all workers");
    workers.sort_by_key(|w| w.worker);

    Ok(FleetOutcome {
        processes: specs.len() as u64,
        requests,
        shared,
        agg: agg.into_inner().expect("scope joined all workers"),
        workers,
        threads,
        shards: shards.min(specs.len()),
        wall: start.elapsed(),
        boot_wall,
    })
}

/// Renders the fleet scorecard: the shared-machine summary, the per-class
/// observed-vs-predicted table with 6σ bands, the fleet-level detection
/// probabilities, the A/B cross-check, and the greppable verdict line.
/// Byte-stable: every number is a deterministic integer sum or a
/// fixed-precision function of one.
#[must_use]
pub fn render_fleet(outcome: &FleetOutcome) -> String {
    let agg = &outcome.agg;
    let shared = &outcome.shared;
    let rate = agg.rate();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fleet: {} processes x {} requests, sampling rate {:.4}",
        outcome.processes, outcome.requests, rate
    );
    // Deliberately shard-count-free: the scorecard must be byte-identical
    // no matter how phase A was partitioned.
    let _ = writeln!(
        out,
        "  phase A (shared-machine fleet): phys={} B machine_cycles={} process_cycles={} page_faults={} swap_in={} swap_out={} ecc_verified={} detections={} FPs={}",
        shared.shared_phys_bytes,
        shared.machine_cycles,
        shared.process_cycles,
        shared.page_faults,
        shared.swap_ins,
        shared.swap_outs,
        shared.ecc.groups_verified,
        shared.detections(),
        shared.false_positives()
    );
    let _ = writeln!(
        out,
        "  phase B (isolated campaign cells, harsh mix): {} cells, {} injected faults, {} hardware panics",
        agg.cells, agg.injected, agg.hardware_panics
    );
    let _ = writeln!(
        out,
        "  {:<12} {:>6} {:>9} {:>9} {:>10} {:>8} {:>22}",
        "class", "procs", "detected", "observed", "predicted", "6sigma", "sampled-allocs"
    );
    for (name, class) in FLEET_WORKLOADS.iter().zip(&agg.classes) {
        if class.cells == 0 {
            continue;
        }
        let sampled = format!("{}/{}", class.sampled_allocs, class.total_allocs);
        let _ = writeln!(
            out,
            "  {:<12} {:>6} {:>9} {:>9.4} {:>10.4} {:>8} {:>22}",
            name,
            class.cells,
            class.detected,
            class.observed(),
            rate,
            if class.within_six_sigma(rate) {
                "ok"
            } else {
                "OUT"
            },
            sampled
        );
    }
    let _ = writeln!(
        out,
        "  fleet-level detection probability (any process catches its bug), predicted 1-(1-r)^n vs observed 1-(1-k/n)^n:"
    );
    for (name, class) in FLEET_WORKLOADS.iter().zip(&agg.classes) {
        if class.cells == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "    {:<12} predicted {:.4} observed {:.4}",
            name,
            class.fleet_predicted(rate),
            class.fleet_observed()
        );
    }
    let _ = writeln!(
        out,
        "  A/B cross-check (shared-machine vs isolated-cell detection, corruption classes): {}/{} agree",
        agg.ab_agreed, agg.ab_checked
    );
    if agg.invariants_hold() {
        let _ = writeln!(
            out,
            "fleet invariant (safemem: zero false positives across {} processes): OK",
            outcome.processes
        );
    } else {
        let _ = writeln!(
            out,
            "fleet invariant (safemem: zero false positives across {} processes): VIOLATED ({} FPs, {} panics, A/B {}/{}, 6sigma {})",
            outcome.processes,
            agg.false_positives,
            agg.hardware_panics,
            agg.ab_agreed,
            agg.ab_checked,
            if agg
                .classes
                .iter()
                .all(|c| c.cells == 0 || c.within_six_sigma(rate))
            {
                "ok"
            } else {
                "OUT"
            }
        );
    }
    out
}

/// One fleet run at a given phase-A shard count, for the shard-scaling
/// dimension of `BENCH_campaign.json`.
#[derive(Debug, Clone, Copy)]
pub struct ShardRun {
    /// Shards phase A was partitioned into.
    pub shards: usize,
    /// Wall time of the whole two-phase campaign.
    pub wall: Duration,
    /// Wall time of phase A alone (the sharded part).
    pub boot_wall: Duration,
    /// Campaign cells completed (the fleet size).
    pub campaigns: u64,
}

/// Renders the shard-scaling records: wall/boot/replay split,
/// throughput, and speedup relative to the first (reference) entry.
fn write_shard_runs(out: &mut String, shard_runs: &[ShardRun]) {
    let _ = writeln!(out, "    \"shard_runs\": [");
    let first_wall = shard_runs.first().map_or(0.0, |r| r.wall.as_secs_f64());
    for (i, run) in shard_runs.iter().enumerate() {
        let wall = run.wall.as_secs_f64();
        let boot = run.boot_wall.as_secs_f64();
        let per_sec = if wall > 0.0 {
            run.campaigns as f64 / wall
        } else {
            0.0
        };
        let speedup = if wall > 0.0 { first_wall / wall } else { 0.0 };
        let comma = if i + 1 < shard_runs.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{\"shards\": {}, \"wall_ms\": {:.1}, \"boot_ms\": {:.1}, \
             \"replay_ms\": {:.1}, \"campaigns_per_sec\": {per_sec:.2}, \
             \"speedup_vs_first\": {speedup:.2}}}{comma}",
            run.shards,
            wall * 1e3,
            boot * 1e3,
            (wall - boot).max(0.0) * 1e3,
        );
    }
    let _ = writeln!(out, "    ],");
}

/// Renders the `BENCH_campaign.json` schema with a `fleet` section appended
/// to the thread-scaling records: the fleet shape, the phase-A
/// shard-scaling grid, the shared-machine stats, and one record per class
/// with the observed/predicted detection probabilities of the scorecard.
#[must_use]
pub fn render_fleet_bench_json(
    preset: &str,
    requests: Option<u64>,
    runs: &[BenchRun],
    shard_runs: &[ShardRun],
    outcome: &FleetOutcome,
) -> String {
    let base = render_bench_json(preset, requests, runs);
    let mut out = base
        .strip_suffix("}\n")
        .expect("render_bench_json ends with its closing brace")
        .to_string();
    while out.ends_with('\n') {
        out.pop();
    }
    let agg = &outcome.agg;
    let rate = agg.rate();
    out.push_str(",\n  \"fleet\": {\n");
    let _ = writeln!(out, "    \"processes\": {},", outcome.processes);
    let _ = writeln!(out, "    \"requests\": {},", outcome.requests);
    let _ = writeln!(out, "    \"rate\": {rate:.4},");
    if !shard_runs.is_empty() {
        write_shard_runs(&mut out, shard_runs);
    }
    let _ = writeln!(
        out,
        "    \"shared_phys_bytes\": {},",
        outcome.shared.shared_phys_bytes
    );
    let _ = writeln!(
        out,
        "    \"machine_cycles\": {},",
        outcome.shared.machine_cycles
    );
    let _ = writeln!(out, "    \"false_positives\": {},", agg.false_positives);
    let _ = writeln!(
        out,
        "    \"ab_agreement\": {{\"agreed\": {}, \"checked\": {}}},",
        agg.ab_agreed, agg.ab_checked
    );
    let _ = writeln!(out, "    \"classes\": [");
    let present: Vec<(&str, &FleetClassAgg)> = FLEET_WORKLOADS
        .iter()
        .zip(&agg.classes)
        .filter(|(_, c)| c.cells > 0)
        .map(|(n, c)| (*n, c))
        .collect();
    for (i, (name, class)) in present.iter().enumerate() {
        let comma = if i + 1 < present.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{\"class\": \"{name}\", \"processes\": {}, \"detected\": {}, \
             \"observed\": {:.4}, \"predicted\": {rate:.4}, \"fleet_observed\": {:.4}, \
             \"fleet_predicted\": {:.4}}}{comma}",
            class.cells,
            class.detected,
            class.observed(),
            class.fleet_observed(),
            class.fleet_predicted(rate)
        );
    }
    out.push_str("    ]\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FLEET_RATE_PPM;

    #[test]
    fn expand_fleet_cycles_the_churn_family() {
        let specs = expand_fleet(7, 100, None).expect("valid fleet");
        assert_eq!(specs.len(), 7);
        assert_eq!(specs[0].workload, "churn-leak");
        assert_eq!(specs[1].workload, "churn-uaf");
        assert_eq!(specs[2].workload, "churn-obo");
        assert_eq!(specs[3].workload, "churn-leak");
        assert_eq!(specs[6].seed, 106);
        for spec in &specs {
            assert_eq!(spec.preset, "fleet");
            assert_eq!(spec.sampling_ppm, FLEET_RATE_PPM);
            assert_eq!(spec.requests, Some(FLEET_REQUESTS));
        }
        assert!(expand_fleet(0, 0, None).is_err(), "empty fleet");
    }

    #[test]
    fn process_specs_mirror_the_campaign_sampling_derivation() {
        let specs = expand_fleet(3, 9, Some(48)).expect("valid fleet");
        let procs = fleet_process_specs(&specs).expect("churn cells");
        assert_eq!(procs.len(), 3);
        assert_eq!(procs[0].kind, ChurnKind::Leak);
        assert_eq!(procs[1].kind, ChurnKind::UseAfterFree);
        assert_eq!(procs[2].kind, ChurnKind::Overflow);
        for (proc, spec) in procs.iter().zip(&specs) {
            assert_eq!(
                proc.sampling_seed,
                SmRng::keyed(spec.seed, SAMPLING_STREAM).next_u64(),
                "same stream the oracle's build_tool keys"
            );
        }
        let mut alien = specs;
        alien[0].workload = "tar".into();
        assert!(fleet_process_specs(&alien).is_err());
    }

    #[test]
    fn fleet_bench_json_is_well_formed() {
        let runs = [BenchRun {
            threads: 2,
            wall: Duration::from_millis(100),
            campaigns: 6,
            boot: Some(Duration::from_millis(40)),
        }];
        let mut agg = FleetAgg::new(FLEET_RATE_PPM);
        agg.cells = 6;
        agg.classes[0] = FleetClassAgg {
            cells: 2,
            detected: 1,
            false_positives: 0,
            sampled_allocs: 40,
            total_allocs: 200,
        };
        agg.ab_checked = 4;
        agg.ab_agreed = 4;
        let outcome = FleetOutcome {
            processes: 6,
            requests: 48,
            shared: FleetReport {
                processes: 6,
                requests: 48,
                shared_phys_bytes: 6 * 32 * 4096,
                machine_cycles: 1000,
                process_cycles: 900,
                page_faults: 10,
                swap_ins: 0,
                swap_outs: 0,
                ecc: Default::default(),
                tallies: Vec::new(),
                detected: vec![false; 6],
            },
            agg,
            workers: Vec::new(),
            threads: 2,
            shards: 1,
            wall: Duration::from_millis(100),
            boot_wall: Duration::from_millis(40),
        };
        let shard_runs = [
            ShardRun {
                shards: 1,
                wall: Duration::from_millis(200),
                boot_wall: Duration::from_millis(160),
                campaigns: 6,
            },
            ShardRun {
                shards: 8,
                wall: Duration::from_millis(100),
                boot_wall: Duration::from_millis(60),
                campaigns: 6,
            },
        ];
        let json = render_fleet_bench_json("fleet", Some(48), &runs, &shard_runs, &outcome);
        assert!(json.contains("\"fleet\": {"), "{json}");
        assert!(json.contains("\"processes\": 6"), "{json}");
        assert!(json.contains("\"rate\": 0.2000"), "{json}");
        assert!(json.contains("\"observed\": 0.5000"), "{json}");
        assert!(json.contains("\"runs\": ["), "{json}");
        assert!(json.contains("\"shard_runs\": ["), "{json}");
        assert!(
            json.contains("\"shards\": 8") && json.contains("\"speedup_vs_first\": 2.00"),
            "{json}"
        );
        assert!(json.ends_with("  }\n}\n"), "{json}");
    }
}
