//! The campaign engine's private random stream.
//!
//! Determinism is the central contract of the fault injector (DESIGN.md):
//! every injection decision must be a pure function of the campaign seed and
//! the position in the operation stream. A tiny self-contained SplitMix64
//! keeps that contract auditable — no global state, no wall-clock, no
//! dependence on an external crate's stream evolution.

/// SplitMix64: 64 bits of state, full-period, well mixed. Used for every
/// injection decision the campaign engine makes.
#[derive(Debug, Clone)]
pub struct SmRng {
    state: u64,
}

impl SmRng {
    /// Creates a stream from a campaign seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SmRng { state: seed }
    }

    /// Creates a stream keyed by `(seed, stream)`: the stream index is fed
    /// through one SplitMix64 round before being folded into the seed, so
    /// nearby indices (cell 0, cell 1, ...) start in uncorrelated regions of
    /// the state space. This is how every consumer in the campaign engine —
    /// one injector per (campaign seed, panel slot), one cell per matrix
    /// position — gets a private stream that is a pure function of its key
    /// and never depends on which worker thread runs it.
    #[must_use]
    pub fn keyed(seed: u64, stream: u64) -> Self {
        let mut salt = SmRng::new(stream);
        SmRng::new(seed ^ salt.next_u64())
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (widening-multiply reduction).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns `true` with probability `permille / 1000`.
    pub fn chance(&mut self, permille: u16) -> bool {
        self.below(1000) < u64::from(permille)
    }
}

#[cfg(test)]
mod tests {
    use super::SmRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmRng::new(7);
        let mut b = SmRng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn keyed_streams_are_reproducible_and_distinct() {
        let mut a = SmRng::new(7);
        let mut b = SmRng::keyed(7, 0);
        let mut b2 = SmRng::keyed(7, 0);
        let mut c = SmRng::keyed(7, 1);
        let (x, y, y2, z) = (a.next_u64(), b.next_u64(), b2.next_u64(), c.next_u64());
        assert_eq!(y, y2, "same key, same stream");
        assert_ne!(x, y, "stream 0 is salted away from the bare seed");
        assert_ne!(y, z, "adjacent stream indices diverge");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SmRng::new(1);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SmRng::new(3);
        assert!(!(0..100).any(|_| r.chance(0)));
        assert!((0..100).all(|_| r.chance(1000)));
    }
}
