//! Sharded campaign execution: a hand-rolled scoped worker pool that fans a
//! seeds × workloads campaign matrix across N threads **without giving up
//! byte-identical scorecards**.
//!
//! # The determinism-under-parallelism invariant
//!
//! Every campaign cell is a *pure function of its spec*:
//! [`run_campaign`](crate::oracle::run_campaign)
//! builds a private machine, OS, controller, and injector per cell, and the
//! injector derives its decision stream from the cell's campaign seed alone
//! (see [`SmRng::keyed`](crate::rng::SmRng::keyed)). Workers therefore share
//! **no** mutable simulation state — the shared objects are atomic cursors
//! handing out work indices and, under [`TraceMode::Memoized`], *immutable*
//! recorded traces behind `Arc`. Scheduling decides *when* a cell runs,
//! never *what* it computes, and results are re-assembled in cell-index
//! order before aggregation. The aggregate scorecard is byte-identical for
//! any thread count and any interleaving; `tests/parallel_determinism.rs`
//! pins this for 1, 2, and 8 threads.
//!
//! # Record once, replay many
//!
//! A recorded trace is a pure function of the spec fields that feed the
//! recording run ([`TraceKey`]: workload, workload seed, request count, and
//! the OS/controller shape). Within a preset sweep every seed shares those
//! fields, so a harsh 32 × 5 matrix has only 5 distinct traces. The runner
//! exploits this in two phases: phase one shards the *unique* trace keys
//! across the workers and records each exactly once; after a barrier, phase
//! two shards the cells, each replaying its panel against the shared
//! `Arc<Trace>`. [`TraceMode::FreshRecord`] disables the sharing and records
//! per cell — the CI determinism gate diffs the two modes' scorecards.
//!
//! Per-worker timing and injection counters ([`WorkerReport`]) are the one
//! deliberately schedule-dependent output: they describe the execution, not
//! the experiment, and are rendered separately from the scorecard.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex, OnceLock};
use std::time::{Duration, Instant};

use safemem_ecc::EccMode;
use safemem_os::SwapPolicy;
use safemem_workloads::{workload_by_name, ColumnarReplayer};

use crate::oracle::{
    record_campaign_trace, replay_panel_columnar_with, CampaignError, CampaignResult, RecordedTrace,
};
use crate::spec::CampaignSpec;

/// The worker count used when the caller does not pin one: the host's
/// available parallelism (1 if it cannot be determined).
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Expands a seeds × workloads matrix into campaign specs, in the canonical
/// cell order: seed-major, workload-minor (`cell = row * workloads + col`).
/// This is the single place the cell order is defined; the runner and every
/// scorecard consumer inherit it.
///
/// # Errors
///
/// Returns [`CampaignError`] for an unknown preset or workload name — the
/// whole matrix is validated up front so a sweep never dies mid-flight on a
/// typo.
pub fn expand_matrix(
    preset: &str,
    workloads: &[String],
    seeds: u64,
    seed0: u64,
    requests: Option<u64>,
) -> Result<Vec<CampaignSpec>, CampaignError> {
    if seeds == 0 {
        return Err(CampaignError("matrix needs at least one seed".into()));
    }
    if workloads.is_empty() {
        return Err(CampaignError("matrix needs at least one workload".into()));
    }
    for name in workloads {
        if workload_by_name(name).is_none() {
            return Err(CampaignError(format!("unknown workload {name:?}")));
        }
    }
    let mut specs = Vec::with_capacity(usize::try_from(seeds).unwrap_or(usize::MAX));
    for i in 0..seeds {
        let seed = seed0.wrapping_add(i);
        for workload in workloads {
            let mut spec = CampaignSpec::preset(preset, workload, seed).ok_or_else(|| {
                CampaignError(format!(
                    "unknown preset {preset:?} (valid presets: {})",
                    CampaignSpec::PRESETS.join("/")
                ))
            })?;
            if requests.is_some() {
                spec.requests = requests;
            }
            specs.push(spec);
        }
    }
    Ok(specs)
}

/// Whether a matrix run shares recorded traces between cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Record each distinct [`TraceKey`] once and replay it for every cell
    /// that shares it (the default — same results, less work).
    #[default]
    Memoized,
    /// Record a private trace per cell, exactly as `run_campaign` does. The
    /// reference mode the memoized path is diffed against.
    FreshRecord,
}

/// The spec fields that determine a recorded trace. Two cells with equal
/// keys replay byte-identical op streams, so the runner records the trace
/// once per key. The campaign seed and fault mix are deliberately absent:
/// recording runs uninstrumented and uninjected.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// Workload name.
    pub workload: String,
    /// Workload input seed.
    pub workload_seed: u64,
    /// Request count forwarded to the workload.
    pub requests: Option<u64>,
    /// Physical memory size of the recording OS.
    pub phys_bytes: u64,
    /// Swap policy of the recording OS.
    pub swap_policy: SwapPolicy,
    /// Periodic scrub interval of the recording OS.
    pub scrub_interval_cycles: Option<u64>,
    /// Controller mode of the recording machine.
    pub ecc_mode: EccMode,
}

impl TraceKey {
    /// Extracts the trace-determining fields of a spec.
    #[must_use]
    pub fn of(spec: &CampaignSpec) -> TraceKey {
        TraceKey {
            workload: spec.workload.clone(),
            workload_seed: spec.workload_seed,
            requests: spec.requests,
            phys_bytes: spec.phys_bytes,
            swap_policy: spec.swap_policy,
            scrub_interval_cycles: spec.scrub_interval_cycles,
            ecc_mode: spec.ecc_mode,
        }
    }
}

/// What one worker did during a matrix run. Which cells land on which worker
/// depends on scheduling, so these numbers are *not* part of the
/// deterministic scorecard — they exist to show shard balance and measured
/// throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerReport {
    /// Worker index (0-based).
    pub worker: usize,
    /// Campaign cells this worker executed.
    pub campaigns: usize,
    /// Traces this worker recorded (unique keys in the memoized phase, one
    /// per cell under [`TraceMode::FreshRecord`]).
    pub traces_recorded: usize,
    /// Wall time this worker spent recording and replaying campaigns.
    pub busy: Duration,
    /// Total injection events across this worker's cells (bit flips, bursts,
    /// forced scrubs, DMA transfers and DMA faults, summed over the panel).
    pub injection_events: u64,
}

/// A completed matrix run: deterministic results in cell order plus the
/// schedule-dependent execution telemetry.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// Campaign results in canonical cell order — identical for every thread
    /// count.
    pub results: Vec<CampaignResult>,
    /// Per-worker execution telemetry, sorted by worker index.
    pub workers: Vec<WorkerReport>,
    /// Worker threads actually spawned (the requested count, capped at the
    /// cell count).
    pub threads: usize,
    /// Wall time for the whole matrix.
    pub wall: Duration,
}

/// Sums a campaign's injection events over the whole panel.
pub(crate) fn injection_events(result: &CampaignResult) -> u64 {
    result
        .tools
        .iter()
        .map(|t| {
            let log = t.injected;
            log.data_bit_flips
                + log.code_bit_flips
                + log.multi_bit_bursts
                + log.forced_scrub_cycles
                + log.dma_transfers
                + log.dma_faults
        })
        .sum()
}

/// Runs every spec in the matrix across `threads` workers and reassembles
/// the results in cell order, sharing recorded traces ([`TraceMode::Memoized`]).
///
/// # Errors
///
/// Returns the lowest-cell-index [`CampaignError`] if any cell fails (the
/// remaining cells still run), so the reported error does not depend on
/// scheduling either.
pub fn run_matrix(specs: &[CampaignSpec], threads: usize) -> Result<MatrixReport, CampaignError> {
    run_matrix_with(specs, threads, TraceMode::default())
}

/// Runs every spec in the matrix across `threads` workers and reassembles
/// the results in cell order.
///
/// Under [`TraceMode::Memoized`] the workers first shard the matrix's
/// *unique* [`TraceKey`]s and record each once; a barrier then releases the
/// replay phase, where an atomic cursor hands out cells (dynamic
/// self-scheduling, so an expensive cell does not stall a whole stripe) and
/// each cell replays the shared `Arc<Trace>` for its key. Determinism is
/// unaffected because the shared traces are immutable and each equals what
/// the cell would have recorded privately (see the module docs).
///
/// # Errors
///
/// Returns the lowest-cell-index [`CampaignError`] if any cell fails (the
/// remaining cells still run), so the reported error does not depend on
/// scheduling either. A failed *recording* fails every cell that shares the
/// key, which includes the lowest-indexed one.
pub fn run_matrix_with(
    specs: &[CampaignSpec],
    threads: usize,
    mode: TraceMode,
) -> Result<MatrixReport, CampaignError> {
    let threads = threads.max(1).min(specs.len().max(1));
    let start = Instant::now();

    // Map each cell to its trace slot. Under FreshRecord the table is empty
    // and every cell records privately in phase two.
    let mut key_index: HashMap<TraceKey, usize> = HashMap::new();
    let mut slot_of_cell: Vec<usize> = Vec::new();
    let mut slot_spec: Vec<&CampaignSpec> = Vec::new();
    if mode == TraceMode::Memoized {
        slot_of_cell.reserve(specs.len());
        for spec in specs {
            let next = key_index.len();
            let slot = *key_index.entry(TraceKey::of(spec)).or_insert(next);
            if slot == next {
                slot_spec.push(spec);
            }
            slot_of_cell.push(slot);
        }
    }
    let slots: Vec<OnceLock<Result<Arc<RecordedTrace>, CampaignError>>> =
        (0..slot_spec.len()).map(|_| OnceLock::new()).collect();

    let record_cursor = AtomicUsize::new(0);
    let cell_cursor = AtomicUsize::new(0);
    let barrier = Barrier::new(threads);
    let cells: Mutex<Vec<(usize, Result<CampaignResult, CampaignError>)>> =
        Mutex::new(Vec::with_capacity(specs.len()));
    let workers: Mutex<Vec<WorkerReport>> = Mutex::new(Vec::with_capacity(threads));

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let record_cursor = &record_cursor;
            let cell_cursor = &cell_cursor;
            let barrier = &barrier;
            let cells = &cells;
            let workers = &workers;
            let slots = &slots;
            let slot_spec = &slot_spec;
            let slot_of_cell = &slot_of_cell;
            scope.spawn(move || {
                let mut mine = Vec::new();
                let mut replayer = ColumnarReplayer::new();
                let mut report = WorkerReport {
                    worker,
                    campaigns: 0,
                    traces_recorded: 0,
                    busy: Duration::ZERO,
                    injection_events: 0,
                };

                // Phase one: record each unique trace exactly once.
                loop {
                    let slot = record_cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = slot_spec.get(slot).copied() else {
                        break;
                    };
                    let t0 = Instant::now();
                    let recorded = record_campaign_trace(spec).map(Arc::new);
                    report.busy += t0.elapsed();
                    report.traces_recorded += 1;
                    slots[slot]
                        .set(recorded)
                        .expect("the cursor hands each slot to one worker");
                }
                barrier.wait();

                // Phase two: replay the panel for every cell.
                loop {
                    let index = cell_cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = specs.get(index) else {
                        break;
                    };
                    let t0 = Instant::now();
                    let result = match mode {
                        TraceMode::Memoized => {
                            let slot = &slots[slot_of_cell[index]];
                            match slot.get().expect("phase one filled every slot") {
                                Ok(trace) => replay_panel_columnar_with(spec, trace, &mut replayer),
                                Err(e) => Err(e.clone()),
                            }
                        }
                        TraceMode::FreshRecord => {
                            report.traces_recorded += 1;
                            record_campaign_trace(spec).and_then(|trace| {
                                replay_panel_columnar_with(spec, &trace, &mut replayer)
                            })
                        }
                    };
                    report.busy += t0.elapsed();
                    report.campaigns += 1;
                    if let Ok(r) = &result {
                        report.injection_events += injection_events(r);
                    }
                    mine.push((index, result));
                }
                cells
                    .lock()
                    .expect("no panics hold the cell lock")
                    .extend(mine);
                workers
                    .lock()
                    .expect("no panics hold the worker lock")
                    .push(report);
            });
        }
    });

    let mut cells = cells.into_inner().expect("scope joined all workers");
    cells.sort_by_key(|(index, _)| *index);
    let mut results = Vec::with_capacity(cells.len());
    for (_, result) in cells {
        results.push(result?);
    }
    let mut workers = workers.into_inner().expect("scope joined all workers");
    workers.sort_by_key(|w| w.worker);

    Ok(MatrixReport {
        results,
        workers,
        threads,
        wall: start.elapsed(),
    })
}

/// One timed matrix run inside a thread-scaling measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchRun {
    /// Worker threads requested.
    pub threads: usize,
    /// Wall time for the whole matrix at this thread count.
    pub wall: Duration,
    /// Campaign cells executed.
    pub campaigns: usize,
    /// Wall time of a sequential boot phase preceding the sharded
    /// record/replay work (the fleet preset's shared-machine phase A).
    /// `None` for single-phase presets. When present, the bench JSON
    /// reports the replay phase's throughput separately, since boot time
    /// does not shrink with threads.
    pub boot: Option<Duration>,
}

/// Renders thread-scaling measurements as the `BENCH_campaign.json` schema:
/// one record per thread count with wall time, throughput, and speedup
/// relative to the first run (conventionally 1 thread). `host_threads`
/// records the machine's available parallelism so a flat curve on a
/// single-core host is self-explaining.
#[must_use]
pub fn render_bench_json(preset: &str, requests: Option<u64>, runs: &[BenchRun]) -> String {
    use std::fmt::Write as _;

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"safemem-campaign\",");
    let _ = writeln!(out, "  \"preset\": \"{preset}\",");
    match requests {
        Some(n) => {
            let _ = writeln!(out, "  \"requests\": {n},");
        }
        None => {
            let _ = writeln!(out, "  \"requests\": null,");
        }
    }
    let _ = writeln!(out, "  \"host_threads\": {},", default_threads());
    let _ = writeln!(out, "  \"runs\": [");
    let base = runs.first().map(|r| r.wall);
    for (i, run) in runs.iter().enumerate() {
        let wall_ms = run.wall.as_secs_f64() * 1e3;
        let per_sec = if run.wall.is_zero() {
            0.0
        } else {
            run.campaigns as f64 / run.wall.as_secs_f64()
        };
        let speedup = match base {
            Some(b) if !run.wall.is_zero() => b.as_secs_f64() / run.wall.as_secs_f64(),
            _ => 1.0,
        };
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let phase_split = run.boot.map_or_else(String::new, |boot| {
            let replay = run.wall.saturating_sub(boot);
            let replay_per_sec = if replay.is_zero() {
                0.0
            } else {
                run.campaigns as f64 / replay.as_secs_f64()
            };
            format!(
                ", \"boot_ms\": {:.1}, \"replay_ms\": {:.1}, \
                 \"replay_campaigns_per_sec\": {replay_per_sec:.2}",
                boot.as_secs_f64() * 1e3,
                replay.as_secs_f64() * 1e3,
            )
        });
        let _ = writeln!(
            out,
            "    {{\"threads\": {}, \"campaigns\": {}, \"wall_ms\": {wall_ms:.1}, \
             \"campaigns_per_sec\": {per_sec:.2}{phase_split}, \
             \"speedup_vs_first\": {speedup:.2}}}{comma}",
            run.threads, run.campaigns
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_specs() -> Vec<CampaignSpec> {
        let workloads = vec!["ypserv2".to_string(), "tar".to_string()];
        expand_matrix("harsh", &workloads, 2, 0, Some(24)).expect("valid matrix")
    }

    #[test]
    fn expand_matrix_is_seed_major_workload_minor() {
        let workloads = vec!["ypserv2".to_string(), "tar".to_string()];
        let specs = expand_matrix("harsh", &workloads, 2, 5, None).expect("valid matrix");
        let cells: Vec<(u64, &str)> = specs
            .iter()
            .map(|s| (s.seed, s.workload.as_str()))
            .collect();
        assert_eq!(
            cells,
            vec![(5, "ypserv2"), (5, "tar"), (6, "ypserv2"), (6, "tar")]
        );
    }

    #[test]
    fn expand_matrix_validates_up_front() {
        let good = vec!["tar".to_string()];
        let bad = vec!["tar".to_string(), "nginx".to_string()];
        assert!(
            expand_matrix("harsh", &good, 0, 0, None).is_err(),
            "0 seeds"
        );
        assert!(
            expand_matrix("harsh", &[], 1, 0, None).is_err(),
            "no workloads"
        );
        assert!(
            expand_matrix("brutal", &good, 1, 0, None).is_err(),
            "bad preset"
        );
        assert!(
            expand_matrix("harsh", &bad, 1, 0, None).is_err(),
            "bad workload"
        );
    }

    #[test]
    fn every_cell_runs_exactly_once_and_in_order() {
        let specs = fast_specs();
        let report = run_matrix(&specs, 3).expect("matrix runs");
        assert_eq!(report.results.len(), specs.len());
        for (result, spec) in report.results.iter().zip(&specs) {
            assert_eq!(&result.spec, spec, "results come back in cell order");
        }
        let total: usize = report.workers.iter().map(|w| w.campaigns).sum();
        assert_eq!(total, specs.len(), "workers account for every cell");
    }

    #[test]
    fn memoized_and_fresh_record_agree_cell_for_cell() {
        let specs = fast_specs();
        let memo = run_matrix_with(&specs, 2, TraceMode::Memoized).expect("matrix runs");
        let fresh = run_matrix_with(&specs, 2, TraceMode::FreshRecord).expect("matrix runs");
        assert_eq!(memo.results, fresh.results);
    }

    #[test]
    fn memoized_run_records_one_trace_per_unique_key() {
        let specs = fast_specs(); // 2 seeds × 2 workloads → 2 unique traces
        let memo = run_matrix_with(&specs, 3, TraceMode::Memoized).expect("matrix runs");
        let recorded: usize = memo.workers.iter().map(|w| w.traces_recorded).sum();
        assert_eq!(recorded, 2, "one recording per (workload, os-shape) key");
        let fresh = run_matrix_with(&specs, 3, TraceMode::FreshRecord).expect("matrix runs");
        let recorded: usize = fresh.workers.iter().map(|w| w.traces_recorded).sum();
        assert_eq!(recorded, specs.len(), "fresh mode records per cell");
    }

    #[test]
    fn unknown_workload_fails_the_memoized_matrix_too() {
        let mut specs = fast_specs();
        specs[1].workload = "nginx".into();
        let err = run_matrix_with(&specs, 2, TraceMode::Memoized).expect_err("bad cell");
        assert!(err.0.contains("nginx"), "{err}");
    }

    #[test]
    fn oversubscribed_pool_caps_at_cell_count() {
        let specs = fast_specs();
        let report = run_matrix(&specs, 64).expect("matrix runs");
        assert_eq!(report.threads, specs.len());
        assert_eq!(report.workers.len(), specs.len());
    }

    #[test]
    fn bench_json_is_well_formed() {
        let runs = [
            BenchRun {
                threads: 1,
                wall: Duration::from_millis(400),
                campaigns: 8,
                boot: None,
            },
            BenchRun {
                threads: 4,
                wall: Duration::from_millis(100),
                campaigns: 8,
                boot: None,
            },
        ];
        let json = render_bench_json("harsh", Some(128), &runs);
        assert!(json.contains("\"speedup_vs_first\": 4.00"), "{json}");
        assert!(json.contains("\"campaigns_per_sec\": 20.00"), "{json}");
        assert!(json.contains("\"requests\": 128"), "{json}");
        assert_eq!(json.matches("\"threads\"").count(), 2, "{json}");
    }
}
