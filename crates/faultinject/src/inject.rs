//! The injector: a [`MemTool`] wrapper that interleaves deterministic
//! hardware-fault injections into a workload run.
//!
//! Between every operation the wrapped tool executes, the injector rolls the
//! campaign's [`FaultMix`] rates against its seed-derived stream and, on a
//! hit, perturbs the machine through the controller's injection hooks
//! (`inject_data_error` / `inject_code_error` / `inject_multi_bit_error`),
//! the OS scrub path, or a DMA engine. Every decision is a pure function of
//! `(campaign seed, operation index)` — see DESIGN.md's determinism rules.

use std::collections::BTreeMap;

use safemem_core::{BugReport, CallStack, MemTool};
use safemem_ecc::{Codec, Decoded, GROUP_BYTES};
use safemem_machine::{DmaEngine, DmaStep, DmaTransfer};
use safemem_os::{Os, OsFault};

use crate::rng::SmRng;
use crate::spec::FaultMix;

/// What the injector actually did during a run — the ground truth the
/// differential oracle scores detections against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionLog {
    /// Operations observed (injection opportunities).
    pub ops_seen: u64,
    /// Correctable single-bit data flips planted.
    pub data_bit_flips: u64,
    /// Correctable check-bit flips planted.
    pub code_bit_flips: u64,
    /// Uncorrectable multi-bit bursts planted (each triggered and repaired
    /// in place by the injector).
    pub multi_bit_bursts: u64,
    /// Bursts whose trigger access was classified as a hardware panic.
    pub hardware_panics_triggered: u64,
    /// Forced scrub cycles.
    pub forced_scrub_cycles: u64,
    /// DMA transfers completed.
    pub dma_transfers: u64,
    /// DMA transfers aborted by an ECC fault (armed or corrupted lines).
    pub dma_faults: u64,
    /// Injection opportunities dropped because no clean resident target
    /// could be found.
    pub skipped_no_target: u64,
}

/// The line size every layer of the simulator shares.
const LINE_BYTES: u64 = 64;

/// Attempts made to find a clean resident ECC group before giving up.
const PICK_ATTEMPTS: usize = 8;

/// Stream tag domain-separating the injector's decisions from every other
/// consumer of a campaign seed (see [`SmRng::keyed`]).
const INJECTOR_STREAM: u64 = 0xFA07_1213_5EED_0001;

/// A deterministic fault-injecting wrapper around a memory tool.
pub struct Injector {
    inner: Box<dyn MemTool>,
    rng: SmRng,
    mix: FaultMix,
    codec: Codec,
    /// Live payloads (addr -> size), ordered so index-based picking is
    /// deterministic.
    live: BTreeMap<u64, u64>,
    dma: DmaEngine,
    log: InjectionLog,
}

impl std::fmt::Debug for Injector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Injector")
            .field("tool", &self.inner.name())
            .field("mix", &self.mix)
            .field("log", &self.log)
            .finish()
    }
}

impl Injector {
    /// Wraps `inner`, deriving every future injection decision from `seed`.
    #[must_use]
    pub fn new(inner: Box<dyn MemTool>, mix: FaultMix, seed: u64) -> Self {
        Injector {
            inner,
            rng: SmRng::keyed(seed, INJECTOR_STREAM),
            mix,
            codec: Codec::new(),
            live: BTreeMap::new(),
            dma: DmaEngine::new(),
            log: InjectionLog::default(),
        }
    }

    /// What was injected so far.
    #[must_use]
    pub fn log(&self) -> InjectionLog {
        self.log
    }

    /// The wrapped tool.
    #[must_use]
    pub fn inner(&self) -> &dyn MemTool {
        self.inner.as_ref()
    }

    /// Picks a live, resident, *clean* ECC group. Returns its group-aligned
    /// virtual address and physical address.
    ///
    /// Cleanliness matters twice over: armed (watched) groups decode as
    /// uncorrectable — injecting there would silently stack onto a
    /// watchpoint — and a group already carrying an unread single-bit error
    /// would turn uncorrectable under a second flip. Skipping non-clean
    /// groups keeps "correctable single-bit injection" exactly that.
    fn pick_clean_group(&mut self, os: &mut Os) -> Option<(u64, u64)> {
        if self.live.is_empty() {
            self.log.skipped_no_target += 1;
            return None;
        }
        for _ in 0..PICK_ATTEMPTS {
            let idx = self.rng.below(self.live.len() as u64) as usize;
            let (&addr, &size) = self.live.iter().nth(idx).expect("idx < len");
            let base = (addr + GROUP_BYTES - 1) & !(GROUP_BYTES - 1);
            if base + GROUP_BYTES > addr + size {
                continue; // too small to hold one aligned group
            }
            let groups = (addr + size - base) / GROUP_BYTES;
            let vaddr = base + self.rng.below(groups) * GROUP_BYTES;
            let Some(phys) = os.vm().translate_resident(vaddr) else {
                continue; // swapped out
            };
            // Write back any cached copy so the stored group is current and
            // the flip cannot be masked (or silently erased) by a later
            // writeback.
            os.machine_mut()
                .flush_range(phys & !(LINE_BYTES - 1), LINE_BYTES);
            let (data, code) = os.machine().controller().memory().read_group(phys);
            if matches!(self.codec.decode(data, code), Decoded::Clean) {
                return Some((vaddr, phys));
            }
        }
        self.log.skipped_no_target += 1;
        None
    }

    /// Plants a correctable single-bit error in a data word.
    fn inject_data_bit(&mut self, os: &mut Os) {
        let bit = self.rng.below(64) as u8;
        if let Some((_, phys)) = self.pick_clean_group(os) {
            os.machine_mut()
                .controller_mut()
                .inject_data_error(phys, bit);
            self.log.data_bit_flips += 1;
        }
    }

    /// Plants a correctable single-bit error in a check code.
    fn inject_code_bit(&mut self, os: &mut Os) {
        let bit = self.rng.below(8) as u8;
        if let Some((_, phys)) = self.pick_clean_group(os) {
            os.machine_mut()
                .controller_mut()
                .inject_code_error(phys, bit);
            self.log.code_bit_flips += 1;
        }
    }

    /// Plants an uncorrectable multi-bit burst, then immediately triggers it
    /// with a kernel-visible access and repairs the group in place.
    ///
    /// Unwatched uncorrectable errors are fatal on real hardware (the OS
    /// panics); tools model that by aborting on `OsFault::HardwareError`.
    /// Consuming the fault here keeps the run alive while still exercising
    /// the full detection path — the panic is visible in `OsStats` and in
    /// this log. The repair is safe because a faulting refill never installs
    /// the line in cache.
    fn inject_multi_bit(&mut self, os: &mut Os) {
        let Some((vaddr, phys)) = self.pick_clean_group(os) else {
            return;
        };
        os.machine_mut()
            .controller_mut()
            .inject_multi_bit_error(phys);
        self.log.multi_bit_bursts += 1;
        let mut scratch = [0u8; GROUP_BYTES as usize];
        if let Err(OsFault::HardwareError { .. }) = os.vread(vaddr, &mut scratch) {
            self.log.hardware_panics_triggered += 1;
        }
        // Undo the burst: memory still holds original ^ 0b11 with the
        // *original* (still valid) code, so xor-ing the bits back and
        // re-encoding restores a clean group.
        let raw = os.machine().peek(phys, GROUP_BYTES as usize);
        let orig = u64::from_le_bytes(raw.try_into().expect("group is 8 bytes")) ^ 0b11;
        os.machine_mut().write_uncached(phys, &orig.to_le_bytes());
    }

    /// Forces one background scrub cycle (timing perturbation).
    fn force_scrub(&mut self, os: &mut Os) {
        os.run_scrub_cycle();
        self.log.forced_scrub_cycles += 1;
    }

    /// Runs one `src == dst` single-line DMA transfer over a live buffer.
    ///
    /// Reads of armed lines fault and abort the transfer *before* the write,
    /// so watchpoints survive; unarmed lines are rewritten with identical
    /// bytes. Either way the interference is observable only as bus traffic
    /// and controller stats — exactly the property the campaign checks.
    fn run_dma(&mut self, os: &mut Os) {
        if self.live.is_empty() {
            self.log.skipped_no_target += 1;
            return;
        }
        let idx = self.rng.below(self.live.len() as u64) as usize;
        let (&addr, &size) = self.live.iter().nth(idx).expect("idx < len");
        let vaddr = (addr + self.rng.below(size.max(1))) & !(LINE_BYTES - 1);
        let Some(phys) = os.vm().translate_resident(vaddr) else {
            self.log.skipped_no_target += 1;
            return;
        };
        let line = phys & !(LINE_BYTES - 1);
        self.dma.enqueue(DmaTransfer {
            src: line,
            dst: line,
            len: LINE_BYTES,
        });
        let ctl = os.machine_mut().controller_mut();
        for _ in 0..16 {
            match self.dma.step(ctl) {
                DmaStep::Completed(_) => {
                    self.log.dma_transfers += 1;
                    break;
                }
                DmaStep::Faulted(_) => {
                    self.log.dma_faults += 1;
                    break;
                }
                DmaStep::Idle => break,
                DmaStep::Stalled | DmaStep::Progress => {}
            }
        }
        // The DMA engine reports faults through the controller outbox too;
        // drain them so they cannot be mistaken for CPU-access faults later.
        let _ = os.machine_mut().take_faults();
    }

    /// One injection opportunity: rolls every rate in a fixed order.
    fn maybe_inject(&mut self, os: &mut Os) {
        self.log.ops_seen += 1;
        if self.mix.scrub_permille > 0 && self.rng.chance(self.mix.scrub_permille) {
            self.force_scrub(os);
        }
        if self.mix.dma_permille > 0 && self.rng.chance(self.mix.dma_permille) {
            self.run_dma(os);
        }
        if self.mix.data_bit_permille > 0 && self.rng.chance(self.mix.data_bit_permille) {
            self.inject_data_bit(os);
        }
        if self.mix.code_bit_permille > 0 && self.rng.chance(self.mix.code_bit_permille) {
            self.inject_code_bit(os);
        }
        if self.mix.multi_bit_permille > 0 && self.rng.chance(self.mix.multi_bit_permille) {
            self.inject_multi_bit(os);
        }
    }
}

impl MemTool for Injector {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn heap(&self) -> &safemem_alloc::Heap {
        self.inner.heap()
    }

    fn malloc(&mut self, os: &mut Os, size: u64, stack: &CallStack) -> u64 {
        self.maybe_inject(os);
        let addr = self.inner.malloc(os, size, stack);
        self.live.insert(addr, size);
        addr
    }

    fn free(&mut self, os: &mut Os, addr: u64) {
        self.maybe_inject(os);
        self.live.remove(&addr);
        self.inner.free(os, addr);
    }

    fn realloc(&mut self, os: &mut Os, addr: u64, new_size: u64, stack: &CallStack) -> u64 {
        self.maybe_inject(os);
        self.live.remove(&addr);
        let new_addr = self.inner.realloc(os, addr, new_size, stack);
        self.live.insert(new_addr, new_size);
        new_addr
    }

    fn read(&mut self, os: &mut Os, addr: u64, buf: &mut [u8]) {
        self.maybe_inject(os);
        self.inner.read(os, addr, buf);
    }

    fn write(&mut self, os: &mut Os, addr: u64, data: &[u8]) {
        self.maybe_inject(os);
        self.inner.write(os, addr, data);
    }

    fn compute(&mut self, os: &mut Os, cycles: u64, mem_accesses: u64) {
        self.maybe_inject(os);
        self.inner.compute(os, cycles, mem_accesses);
    }

    fn finish(&mut self, os: &mut Os) {
        self.inner.finish(os);
    }

    fn reports(&self) -> Vec<BugReport> {
        self.inner.reports()
    }

    fn mark_incident(&mut self, kind: safemem_core::IncidentClass) {
        // Pure metadata — no injection roll, so the decision stream (and
        // every recovery-off scorecard) is unchanged by marker ops.
        self.inner.mark_incident(kind);
    }

    fn survival(&self) -> Option<safemem_core::SurvivalSummary> {
        self.inner.survival()
    }

    fn sampling(&self) -> Option<safemem_core::SamplingSummary> {
        self.inner.sampling()
    }
}
