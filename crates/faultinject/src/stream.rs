//! Streaming campaign aggregation: fold each cell's result into a
//! fixed-size aggregate the moment it finishes, instead of collecting a
//! `Vec<CampaignResult>` and aggregating at the end.
//!
//! A fleet-scale sweep runs hundreds-to-thousands of cells; keeping every
//! [`CampaignResult`] alive until rendering makes peak memory linear in the
//! matrix size for numbers the scorecard reads only as sums. Every column
//! of the aggregate table, both verdict lines, and every frontier-row
//! column are commutative integer sums over per-cell values, so the
//! aggregate can be folded in **any order** — including the
//! schedule-dependent order a worker pool finishes cells in — and still
//! render byte-identically to the collected path. [`render_aggregate`] is
//! itself implemented as a fold over a [`StreamAggregate`], so the two
//! paths share one renderer and cannot drift.
//!
//! The one exception is frontier rows, whose *order* is first-appearance
//! (the ladder order). Under streaming, first-appearance would depend on
//! scheduling, so [`StreamAggregate::with_frontier`] pre-registers the rows
//! from the spec list in canonical cell order before any worker runs.
//!
//! [`render_aggregate`]: crate::scorecard::render_aggregate

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex, OnceLock};
use std::time::{Duration, Instant};

use safemem_workloads::ColumnarReplayer;

use crate::corpus::{obtain_campaign_trace, TraceCorpus};
use crate::frontier::{render_frontier, FrontierRow};
use crate::oracle::{
    replay_panel_columnar_with, CampaignError, CampaignResult, RecordedTrace, PANEL,
};
use crate::runner::{injection_events, TraceKey, TraceMode, WorkerReport};
use crate::scorecard::render_campaign;
use crate::spec::CampaignSpec;

/// One panel tool's running sums across every folded campaign — the inputs
/// of one aggregate-table row.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ToolSums {
    /// Planted leak groups found.
    pub leaks_found: usize,
    /// False leak reports.
    pub false_leaks: usize,
    /// Planted leak groups missed.
    pub leaks_missed: usize,
    /// Campaigns whose planted corruption was found.
    pub corruption_found: usize,
    /// False corruption reports.
    pub false_corruptions: usize,
    /// Hardware panics.
    pub hardware_panics: u64,
    /// Misattributed hardware errors.
    pub hardware_misattributions: u64,
    /// Injected bit flips and bursts.
    pub injected: u64,
    /// False positives of any kind.
    pub false_positives: u64,
}

/// A fixed-size running aggregate of campaign results. Its memory footprint
/// depends only on the panel size and (when sweeping rates) the ladder
/// length — never on how many campaigns have been folded in, which
/// `tests/fleet.rs` pins.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamAggregate {
    campaigns: usize,
    tools: Vec<ToolSums>,
    harsh_seen: usize,
    harsh_ok: usize,
    survival_seen: usize,
    survival_ok: usize,
    full_rate_seen: usize,
    full_rate_ok: usize,
    safemem_false_positives: u64,
    frontier: Option<Vec<FrontierRow>>,
}

impl Default for StreamAggregate {
    fn default() -> Self {
        StreamAggregate::new()
    }
}

impl StreamAggregate {
    /// An empty aggregate (no frontier table).
    #[must_use]
    pub fn new() -> Self {
        StreamAggregate {
            campaigns: 0,
            tools: vec![ToolSums::default(); PANEL.len()],
            harsh_seen: 0,
            harsh_ok: 0,
            survival_seen: 0,
            survival_ok: 0,
            full_rate_seen: 0,
            full_rate_ok: 0,
            safemem_false_positives: 0,
            frontier: None,
        }
    }

    /// An empty aggregate that will also maintain one [`FrontierRow`] per
    /// sampling rate appearing in `specs`. Rows are pre-registered here, in
    /// canonical cell order, so the rendered ladder order never depends on
    /// which worker finishes first.
    #[must_use]
    pub fn with_frontier(specs: &[CampaignSpec]) -> Self {
        let mut rows: Vec<FrontierRow> = Vec::new();
        for spec in specs {
            if !rows.iter().any(|r| r.rate_ppm == spec.sampling_ppm) {
                rows.push(FrontierRow::empty(spec.sampling_ppm));
            }
        }
        StreamAggregate {
            frontier: Some(rows),
            ..StreamAggregate::new()
        }
    }

    /// Folds one campaign result in and drops nothing but sums from it.
    ///
    /// # Panics
    ///
    /// Panics if the aggregate was built [`with_frontier`] and the result's
    /// sampling rate was not in the spec list the rows were registered from.
    ///
    /// [`with_frontier`]: StreamAggregate::with_frontier
    pub fn fold(&mut self, result: &CampaignResult) {
        self.campaigns += 1;
        for (i, sums) in self.tools.iter_mut().enumerate() {
            let Some(s) = result.tools.get(i) else {
                continue;
            };
            debug_assert_eq!(s.tool, PANEL[i]);
            sums.leaks_found += s.leaks_found;
            sums.false_leaks += s.false_leaks;
            sums.leaks_missed += s.leaks_missed;
            sums.corruption_found += usize::from(s.expects_corruption && s.corruption_found);
            sums.false_corruptions += s.false_corruptions;
            sums.hardware_panics += s.hardware_panics;
            sums.hardware_misattributions += s.hardware_misattributions;
            sums.injected +=
                s.injected.data_bit_flips + s.injected.code_bit_flips + s.injected.multi_bit_bursts;
            sums.false_positives += s.false_positives();
        }
        if !result.spec.mix.injects_uncorrectable() {
            self.harsh_seen += 1;
            if result.harsh_invariant_holds() {
                self.harsh_ok += 1;
            }
        }
        if result.truth.markers.total() > 0 {
            self.survival_seen += 1;
            if result.survival_invariant_holds() {
                self.survival_ok += 1;
            }
        }
        if let Some(s) = result.tool("safemem") {
            self.safemem_false_positives += s.false_positives();
        }
        if result.spec.sampling_ppm == safemem_core::PPM {
            self.full_rate_seen += 1;
            if result.harsh_invariant_holds() {
                self.full_rate_ok += 1;
            }
        }
        if let Some(rows) = &mut self.frontier {
            rows.iter_mut()
                .find(|r| r.rate_ppm == result.spec.sampling_ppm)
                .expect("with_frontier pre-registered every rate in the matrix")
                .fold(result);
        }
    }

    /// Campaigns folded so far.
    #[must_use]
    pub fn campaigns(&self) -> usize {
        self.campaigns
    }

    /// The frontier rows, when the aggregate maintains them.
    #[must_use]
    pub fn frontier_rows(&self) -> Option<&[FrontierRow]> {
        self.frontier.as_deref()
    }

    /// The non-frontier acceptance verdict: every campaign with a
    /// correctable-only mix upheld the harsh invariant, and every campaign
    /// with ground-truth markers upheld the survival invariant.
    #[must_use]
    pub fn invariants_hold(&self) -> bool {
        self.harsh_ok == self.harsh_seen && self.survival_ok == self.survival_seen
    }

    /// The frontier acceptance verdict: SafeMem reported zero false
    /// positives at every rate, and every always-on cell upheld the full
    /// harsh invariant.
    #[must_use]
    pub fn frontier_invariants_hold(&self) -> bool {
        self.safemem_false_positives == 0 && self.full_rate_ok == self.full_rate_seen
    }

    /// Heap + inline bytes this aggregate occupies. Constant in the number
    /// of campaigns folded — the bounded-memory claim, pinned by test.
    #[must_use]
    pub fn footprint(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.tools.capacity() * std::mem::size_of::<ToolSums>()
            + self.frontier.as_ref().map_or(0, |rows| {
                rows.capacity() * std::mem::size_of::<FrontierRow>()
            })
    }

    /// Renders the aggregate table, the verdict lines, and — when the
    /// aggregate maintains frontier rows — the frontier table. Byte-for-byte
    /// what the collected path renders for the same results.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "aggregate over {} campaigns", self.campaigns);
        let _ = writeln!(
            out,
            "  {:<10} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8} {:>9} {:>10}",
            "tool",
            "tpL",
            "fpL",
            "missL",
            "corrTP",
            "fpC",
            "hwPanic",
            "misattr",
            "injected",
            "fpAll"
        );
        for (name, s) in PANEL.iter().zip(&self.tools) {
            let _ = writeln!(
                out,
                "  {name:<10} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8} {:>9} {:>10}",
                s.leaks_found,
                s.false_leaks,
                s.leaks_missed,
                s.corruption_found,
                s.false_corruptions,
                s.hardware_panics,
                s.hardware_misattributions,
                s.injected,
                s.false_positives
            );
        }
        if self.harsh_seen > 0 {
            let _ = writeln!(
                out,
                "  harsh invariant (safemem: zero FPs, all planted bugs found): {}/{} campaigns",
                self.harsh_ok, self.harsh_seen
            );
        }
        if self.survival_seen > 0 {
            let _ = writeln!(
                out,
                "  survival invariant (safemem: survived, heap intact, incidents attributed): {}/{} campaigns",
                self.survival_ok, self.survival_seen
            );
        }
        if let Some(rows) = &self.frontier {
            out.push_str(&render_frontier(rows));
        }
        out
    }
}

/// A completed streamed matrix run: the folded aggregate plus the same
/// execution telemetry a collected run reports. `cards` is the one
/// optionally per-cell part — rendered per-campaign scorecards, collected
/// only when the caller asks for verbose output.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// The folded, fixed-size aggregate.
    pub aggregate: StreamAggregate,
    /// Rendered per-campaign cards in cell order; empty unless requested.
    pub cards: Vec<(usize, String)>,
    /// Per-worker execution telemetry, sorted by worker index.
    pub workers: Vec<WorkerReport>,
    /// Worker threads actually spawned.
    pub threads: usize,
    /// Wall time for the whole matrix.
    pub wall: Duration,
}

/// [`run_matrix_with`](crate::runner::run_matrix_with), except each cell's
/// result is folded into `aggregate` the moment it finishes and then
/// dropped — peak memory stays bounded by the aggregate's
/// [`footprint`](StreamAggregate::footprint) no matter how many cells the
/// matrix has. Identical two-phase record/replay structure: unique traces
/// are recorded once, a barrier releases the replay phase, and an atomic
/// cursor hands out cells.
///
/// With `verbose`, the rendered per-campaign card of every cell is also
/// collected (returned in cell order) — that path is deliberately *not*
/// bounded, and callers opt into it per run.
///
/// # Errors
///
/// Returns the lowest-cell-index [`CampaignError`] if any cell fails (the
/// remaining cells still run), exactly like the collected runner.
pub fn run_matrix_streamed(
    specs: &[CampaignSpec],
    threads: usize,
    mode: TraceMode,
    verbose: bool,
    aggregate: StreamAggregate,
) -> Result<StreamReport, CampaignError> {
    run_matrix_streamed_corpus(specs, threads, mode, verbose, aggregate, None)
}

/// [`run_matrix_streamed`] with an optional [`TraceCorpus`]: recorded traces
/// come from (and, in writable modes, go to) the corpus instead of always
/// being re-recorded. The scorecard is byte-identical with or without a
/// corpus — only the recording phase's work changes.
///
/// # Errors
///
/// Everything [`run_matrix_streamed`] can return, plus stringified
/// [`CorpusError`](crate::corpus::CorpusError)s from corpus validation.
pub fn run_matrix_streamed_corpus(
    specs: &[CampaignSpec],
    threads: usize,
    mode: TraceMode,
    verbose: bool,
    aggregate: StreamAggregate,
    corpus: Option<&TraceCorpus>,
) -> Result<StreamReport, CampaignError> {
    let threads = threads.max(1).min(specs.len().max(1));
    let start = Instant::now();

    let mut key_index: HashMap<TraceKey, usize> = HashMap::new();
    let mut slot_of_cell: Vec<usize> = Vec::new();
    let mut slot_spec: Vec<&CampaignSpec> = Vec::new();
    if mode == TraceMode::Memoized {
        slot_of_cell.reserve(specs.len());
        for spec in specs {
            let next = key_index.len();
            let slot = *key_index.entry(TraceKey::of(spec)).or_insert(next);
            if slot == next {
                slot_spec.push(spec);
            }
            slot_of_cell.push(slot);
        }
    }
    let slots: Vec<OnceLock<Result<Arc<RecordedTrace>, CampaignError>>> =
        (0..slot_spec.len()).map(|_| OnceLock::new()).collect();

    let record_cursor = AtomicUsize::new(0);
    let cell_cursor = AtomicUsize::new(0);
    let barrier = Barrier::new(threads);
    let aggregate = Mutex::new(aggregate);
    let cards: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    // The lowest-indexed failing cell, so the reported error matches the
    // collected runner's for any scheduling.
    let first_error: Mutex<Option<(usize, CampaignError)>> = Mutex::new(None);
    let workers: Mutex<Vec<WorkerReport>> = Mutex::new(Vec::with_capacity(threads));

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let record_cursor = &record_cursor;
            let cell_cursor = &cell_cursor;
            let barrier = &barrier;
            let aggregate = &aggregate;
            let cards = &cards;
            let first_error = &first_error;
            let workers = &workers;
            let slots = &slots;
            let slot_spec = &slot_spec;
            let slot_of_cell = &slot_of_cell;
            scope.spawn(move || {
                let mut replayer = ColumnarReplayer::new();
                let mut report = WorkerReport {
                    worker,
                    campaigns: 0,
                    traces_recorded: 0,
                    busy: Duration::ZERO,
                    injection_events: 0,
                };

                // Phase one: record each unique trace exactly once.
                loop {
                    let slot = record_cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = slot_spec.get(slot).copied() else {
                        break;
                    };
                    let t0 = Instant::now();
                    let recorded = obtain_campaign_trace(spec, corpus).map(|(trace, fresh)| {
                        if fresh {
                            report.traces_recorded += 1;
                        }
                        Arc::new(trace)
                    });
                    report.busy += t0.elapsed();
                    slots[slot]
                        .set(recorded)
                        .expect("the cursor hands each slot to one worker");
                }
                barrier.wait();

                // Phase two: replay, fold, drop.
                loop {
                    let index = cell_cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = specs.get(index) else {
                        break;
                    };
                    let t0 = Instant::now();
                    let result = match mode {
                        TraceMode::Memoized => {
                            let slot = &slots[slot_of_cell[index]];
                            match slot.get().expect("phase one filled every slot") {
                                Ok(trace) => replay_panel_columnar_with(spec, trace, &mut replayer),
                                Err(e) => Err(e.clone()),
                            }
                        }
                        TraceMode::FreshRecord => {
                            obtain_campaign_trace(spec, corpus).and_then(|(trace, fresh)| {
                                if fresh {
                                    report.traces_recorded += 1;
                                }
                                replay_panel_columnar_with(spec, &trace, &mut replayer)
                            })
                        }
                    };
                    report.busy += t0.elapsed();
                    report.campaigns += 1;
                    match result {
                        Ok(result) => {
                            report.injection_events += injection_events(&result);
                            if verbose {
                                cards
                                    .lock()
                                    .expect("no panics hold the card lock")
                                    .push((index, render_campaign(&result)));
                            }
                            aggregate
                                .lock()
                                .expect("no panics hold the aggregate lock")
                                .fold(&result);
                        }
                        Err(e) => {
                            let mut slot =
                                first_error.lock().expect("no panics hold the error lock");
                            if slot.as_ref().is_none_or(|(lowest, _)| index < *lowest) {
                                *slot = Some((index, e));
                            }
                        }
                    }
                }
                workers
                    .lock()
                    .expect("no panics hold the worker lock")
                    .push(report);
            });
        }
    });

    if let Some((_, e)) = first_error.into_inner().expect("scope joined all workers") {
        return Err(e);
    }
    let mut cards = cards.into_inner().expect("scope joined all workers");
    cards.sort_by_key(|(index, _)| *index);
    let mut workers = workers.into_inner().expect("scope joined all workers");
    workers.sort_by_key(|w| w.worker);

    Ok(StreamReport {
        aggregate: aggregate.into_inner().expect("scope joined all workers"),
        cards,
        workers,
        threads,
        wall: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::{expand_frontier, frontier_rows};
    use crate::runner::{expand_matrix, run_matrix_with};
    use crate::scorecard::render_aggregate;
    use safemem_core::PPM;

    fn fast_specs() -> Vec<CampaignSpec> {
        let workloads = vec!["ypserv2".to_string(), "tar".to_string()];
        expand_matrix("harsh", &workloads, 2, 0, Some(24)).expect("valid matrix")
    }

    #[test]
    fn streamed_scorecard_matches_the_collected_one() {
        let specs = fast_specs();
        let collected = run_matrix_with(&specs, 2, TraceMode::Memoized).expect("matrix runs");
        let streamed = run_matrix_streamed(
            &specs,
            3,
            TraceMode::Memoized,
            false,
            StreamAggregate::new(),
        )
        .expect("matrix runs");
        assert_eq!(
            streamed.aggregate.render(),
            render_aggregate(&collected.results)
        );
        assert_eq!(streamed.aggregate.campaigns(), specs.len());
        assert!(streamed.cards.is_empty(), "cards only when verbose");
        let total: usize = streamed.workers.iter().map(|w| w.campaigns).sum();
        assert_eq!(total, specs.len(), "workers account for every cell");
    }

    #[test]
    fn streamed_frontier_matches_the_collected_one() {
        let workloads = vec!["tar".to_string()];
        let specs = expand_frontier("frontier", &[PPM, 100_000], &workloads, 1, 0, Some(24))
            .expect("valid ladder");
        let collected = run_matrix_with(&specs, 2, TraceMode::Memoized).expect("matrix runs");
        let streamed = run_matrix_streamed(
            &specs,
            2,
            TraceMode::Memoized,
            false,
            StreamAggregate::with_frontier(&specs),
        )
        .expect("matrix runs");
        let reference = {
            let mut s = render_aggregate(&collected.results);
            s.push_str(&crate::frontier::render_frontier(&frontier_rows(
                &collected.results,
            )));
            s
        };
        assert_eq!(streamed.aggregate.render(), reference);
        assert!(streamed.aggregate.frontier_invariants_hold());
    }

    #[test]
    fn verbose_cards_come_back_in_cell_order() {
        let specs = fast_specs();
        let streamed =
            run_matrix_streamed(&specs, 3, TraceMode::Memoized, true, StreamAggregate::new())
                .expect("matrix runs");
        let indices: Vec<usize> = streamed.cards.iter().map(|(i, _)| *i).collect();
        assert_eq!(indices, (0..specs.len()).collect::<Vec<_>>());
        for ((_, card), spec) in streamed.cards.iter().zip(&specs) {
            assert!(
                card.contains(&format!("workload={}", spec.workload)),
                "{card}"
            );
        }
    }

    #[test]
    fn streamed_errors_match_the_collected_runner() {
        let mut specs = fast_specs();
        specs[1].workload = "nginx".into();
        let collected = run_matrix_with(&specs, 2, TraceMode::Memoized).expect_err("bad cell");
        let streamed = run_matrix_streamed(
            &specs,
            2,
            TraceMode::Memoized,
            false,
            StreamAggregate::new(),
        )
        .expect_err("bad cell");
        assert_eq!(collected, streamed);
        assert!(streamed.0.contains("nginx"), "{streamed}");
    }

    #[test]
    fn aggregate_footprint_is_independent_of_campaigns_folded() {
        let spec = CampaignSpec::harsh("tar", 0);
        let result = {
            let mut s = spec.clone();
            s.requests = Some(24);
            crate::oracle::run_campaign(&s).expect("campaign runs")
        };
        let mut few = StreamAggregate::new();
        let mut many = StreamAggregate::new();
        few.fold(&result);
        for _ in 0..64 {
            many.fold(&result);
        }
        assert_eq!(few.footprint(), many.footprint());
        assert_eq!(many.campaigns(), 64);
    }
}
