//! The differential detection oracle.
//!
//! One campaign = one recorded workload trace replayed through SafeMem, the
//! three comparison tools, and the uninstrumented baseline, each under the
//! same deterministic fault injection. The oracle owns the ground truth
//! (which bugs the workload plants, which faults the injector planted) and
//! classifies every [`BugReport`] as a true positive, a false positive, or a
//! miss.

use safemem_alloc::HeapStats;
use safemem_baselines::{Memcheck, PageGuard, Purify};
use safemem_core::{
    BugReport, GroupKey, IncidentClass, MemTool, NullTool, SafeMem, SamplingPlan, SamplingSummary,
    SurvivalSummary,
};
use safemem_ecc::ControllerStats;
use safemem_os::{Os, OsConfig, STATIC_BASE};
use safemem_workloads::{
    workload_by_name, BugClass, ColumnarReplayer, ColumnarTrace, InputMode, Recorder, Replayer,
    RunConfig, Trace, TraceOp,
};
use std::collections::HashSet;

use crate::inject::{InjectionLog, Injector};
use crate::rng::SmRng;
use crate::spec::CampaignSpec;

/// Dedicated RNG stream for deriving SafeMem's per-allocation sampling seed
/// from the campaign seed — domain-separated from the injector's stream so
/// sampling decisions never correlate with fault placement.
pub const SAMPLING_STREAM: u64 = 0xFA07_1213_5EED_0002;

/// A campaign-level error (bad spec).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignError(pub String);

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for CampaignError {}

/// Ground-truth incident markers a recorded trace carries, counted per
/// class. The synthetic-CVE workloads emit one marker per scheduled
/// corruption; the Table 1 workloads emit none, so these stay zero for
/// every pre-existing preset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MarkerCounts {
    /// Planted overflow incidents.
    pub overflows: usize,
    /// Planted use-after-free incidents.
    pub uafs: usize,
    /// Planted double-free incidents.
    pub double_frees: usize,
}

impl MarkerCounts {
    /// Counts the markers in a recorded trace.
    #[must_use]
    pub fn of(trace: &Trace) -> MarkerCounts {
        let mut counts = MarkerCounts::default();
        for op in trace.ops() {
            if let TraceOp::Marker { kind } = op {
                match kind {
                    IncidentClass::Overflow => counts.overflows += 1,
                    IncidentClass::UseAfterFree => counts.uafs += 1,
                    IncidentClass::DoubleFree => counts.double_frees += 1,
                }
            }
        }
        counts
    }

    /// Total marked incidents of any class.
    #[must_use]
    pub fn total(&self) -> usize {
        self.overflows + self.uafs + self.double_frees
    }
}

/// What the workload is known to plant — the reference every tool's reports
/// are scored against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundTruth {
    /// The planted bug class.
    pub bug: BugClass,
    /// Allocation groups that genuinely leak (empty for corruption apps).
    pub leak_groups: Vec<GroupKey>,
    /// Whether a corruption bug (overflow / use-after-free) is planted.
    pub expects_corruption: bool,
    /// Operations in the recorded trace.
    pub trace_ops: usize,
    /// Per-class incident markers in the trace (all zero unless the
    /// workload emits ground-truth markers).
    pub markers: MarkerCounts,
}

/// One tool's scored run within a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToolScore {
    /// Tool name ("safemem", "purify", ...).
    pub tool: &'static str,
    /// Simulated CPU cycles consumed.
    pub cpu_cycles: u64,
    /// Distinct planted leak groups the tool reported.
    pub leaks_found: usize,
    /// Planted leak groups the tool did not report.
    pub leaks_missed: usize,
    /// Leak reports naming groups that do not leak.
    pub false_leaks: usize,
    /// Whether the planted corruption (if any) was reported.
    pub corruption_found: bool,
    /// Corruption reports in a run with no planted corruption.
    pub false_corruptions: usize,
    /// `BugReport::HardwareError` count (watched-line signature mismatches).
    pub hardware_reports: u64,
    /// OS-level panics on unwatched uncorrectable errors.
    pub hardware_panics: u64,
    /// Hardware-error observations not explained by an injected
    /// uncorrectable fault. Under a correctable-only mix every observation
    /// counts — the controller corrected behind the scenes, so anything
    /// surfacing as a hardware error was misattributed.
    pub hardware_misattributions: u64,
    /// Final controller counters (the delta for this run: each tool gets a
    /// fresh machine).
    pub controller: ControllerStats,
    /// What the injector did during this run.
    pub injected: InjectionLog,
    /// Mirror of the campaign's `expects_corruption`, carried so the score
    /// is self-contained.
    pub expects_corruption: bool,
    /// Survival-with-integrity score. `Some` only when the trace carries
    /// ground-truth incident markers *and* the tool ran with a recovery
    /// layer (today: SafeMem under the `arena` preset) — every
    /// pre-existing preset and tool yields `None`, keeping their scorecards
    /// byte-identical.
    pub survival: Option<SurvivalScore>,
    /// Final allocator statistics for this run — the memory-overhead side
    /// of the sampling frontier (Table 4's waste metric).
    pub heap_stats: HeapStats,
    /// Sampling accounting, for tools that sample their instrumentation
    /// (`None` for the non-sampling panel tools).
    pub sampling: Option<SamplingSummary>,
}

/// The survival-with-integrity dimension of an arena campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurvivalScore {
    /// The process completed the run without a hardware panic.
    pub survived: bool,
    /// Post-run heap integrity: the allocator's live map verified
    /// well-formed and no quarantine canary was overwritten.
    pub integrity: bool,
    /// Every ground-truth marker's incident was healed, class for class
    /// (healed counts equal marker counts exactly).
    pub attributed: bool,
    /// Incidents healed, summed over all classes.
    pub healed: u64,
}

impl SurvivalScore {
    /// Whether all three survival dimensions hold.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.survived && self.integrity && self.attributed
    }

    /// Scores a recovery-enabled run against the trace's markers.
    fn of(summary: &SurvivalSummary, markers: &MarkerCounts, hardware_panics: u64) -> Self {
        SurvivalScore {
            survived: hardware_panics == 0,
            integrity: summary.heap_intact && summary.canary_violations == 0,
            attributed: summary.healed_overflows == markers.overflows as u64
                && summary.healed_uafs == markers.uafs as u64
                && summary.healed_double_frees == markers.double_frees as u64,
            healed: summary.healed_overflows + summary.healed_uafs + summary.healed_double_frees,
        }
    }
}

impl ToolScore {
    /// Total false positives of any kind, including misattributed hardware
    /// errors.
    #[must_use]
    pub fn false_positives(&self) -> u64 {
        self.false_leaks as u64 + self.false_corruptions as u64 + self.hardware_misattributions
    }

    /// Whether every planted bug was reported.
    #[must_use]
    pub fn found_all_planted(&self) -> bool {
        self.leaks_missed == 0 && (self.corruption_found || !self.expects_corruption)
    }
}

/// A fully scored campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignResult {
    /// The spec that produced this result.
    pub spec: CampaignSpec,
    /// The reference the tools were scored against.
    pub truth: GroundTruth,
    /// Per-tool scores, in the fixed order safemem, purify, memcheck,
    /// pageguard, none.
    pub tools: Vec<ToolScore>,
}

impl CampaignResult {
    /// The score for a given tool name.
    #[must_use]
    pub fn tool(&self, name: &str) -> Option<&ToolScore> {
        self.tools.iter().find(|t| t.tool == name)
    }

    /// The harsh-preset acceptance invariant: under a correctable-only
    /// injection mix SafeMem reports **zero** false positives of any kind
    /// and still catches every planted bug.
    #[must_use]
    pub fn harsh_invariant_holds(&self) -> bool {
        let Some(s) = self.tool("safemem") else {
            return false;
        };
        !self.spec.mix.injects_uncorrectable()
            && s.false_positives() == 0
            && s.hardware_panics == 0
            && s.found_all_planted()
    }

    /// The arena-preset acceptance invariant: SafeMem-with-recovery
    /// detected the planted corruption, survived every scheduled incident,
    /// kept the heap verifiably intact, and healed exactly the incidents
    /// the trace's ground-truth markers attest — on top of the harsh
    /// zero-false-positive bar.
    #[must_use]
    pub fn survival_invariant_holds(&self) -> bool {
        let Some(s) = self.tool("safemem") else {
            return false;
        };
        let Some(survival) = &s.survival else {
            return false;
        };
        self.harsh_invariant_holds() && survival.holds()
    }
}

/// Builds the campaign's OS: memory size, swap policy, scrub interval, and
/// controller mode all come from the spec.
fn build_os(spec: &CampaignSpec) -> Os {
    let mut os = Os::new(OsConfig {
        phys_bytes: spec.phys_bytes,
        swap_policy: spec.swap_policy,
        scrub_interval_cycles: spec.scrub_interval_cycles,
        ..OsConfig::default()
    });
    os.machine_mut().controller_mut().set_mode(spec.ecc_mode);
    os
}

/// Builds one tool of the differential panel. SafeMem alone honours the
/// spec's recovery flag — the comparison tools have no healing layer.
fn build_tool(name: &str, spec: &CampaignSpec, os: &mut Os) -> Box<dyn MemTool> {
    match name {
        "safemem" => {
            let sampling_seed = SmRng::keyed(spec.seed, SAMPLING_STREAM).next_u64();
            Box::new(
                SafeMem::builder()
                    .recovery(spec.recovery)
                    .sampling(SamplingPlan::new(spec.sampling_ppm, sampling_seed))
                    .build(os),
            )
        }
        "purify" => {
            let mut tool = Purify::new();
            tool.add_root_range(STATIC_BASE, 4096);
            Box::new(tool)
        }
        "memcheck" => {
            let mut tool = Memcheck::new();
            tool.add_root_range(STATIC_BASE, 4096);
            Box::new(tool)
        }
        "pageguard" => Box::new(PageGuard::new()),
        "none" => Box::new(NullTool::new()),
        other => unreachable!("unknown panel tool {other}"),
    }
}

/// The differential panel, in scorecard order.
pub const PANEL: &[&str] = &["safemem", "purify", "memcheck", "pageguard", "none"];

/// A recorded campaign trace in both layouts: the enum [`Trace`] (the
/// serialisation format and differential reference) and its struct-of-arrays
/// [`ColumnarTrace`] flattening (the replay hot path). Flattening happens
/// once at record time, so every panel cell sharing the recording replays
/// columns without re-walking the enum stream.
#[derive(Debug, Clone)]
pub struct RecordedTrace {
    /// The enum-layout op stream.
    pub trace: Trace,
    /// The same stream flattened to columns.
    pub columnar: ColumnarTrace,
}

impl RecordedTrace {
    /// Flattens `trace` and bundles both layouts.
    #[must_use]
    pub fn new(trace: Trace) -> Self {
        RecordedTrace {
            columnar: ColumnarTrace::from_trace(&trace),
            trace,
        }
    }
}

/// [`record_trace`] bundled with its columnar flattening — what the matrix
/// runners memoize per [`TraceKey`](crate::TraceKey).
///
/// # Errors
///
/// Returns [`CampaignError`] if the spec names an unknown workload.
pub fn record_campaign_trace(spec: &CampaignSpec) -> Result<RecordedTrace, CampaignError> {
    record_trace(spec).map(RecordedTrace::new)
}

/// Runs one campaign: records the ground-truth trace, replays it through the
/// whole panel under injection, and scores every tool.
///
/// Equivalent to [`record_trace`] followed by [`replay_panel`]; the matrix
/// runner uses the split halves so cells sharing a trace record it once.
///
/// # Errors
///
/// Returns [`CampaignError`] if the spec names an unknown workload.
pub fn run_campaign(spec: &CampaignSpec) -> Result<CampaignResult, CampaignError> {
    let trace = record_trace(spec)?;
    replay_panel(spec, &trace)
}

/// Replays an already-recorded campaign trace through the whole panel under
/// injection and scores every tool. The trace is only borrowed, so one
/// recording can serve every cell that shares it.
///
/// # Errors
///
/// Returns [`CampaignError`] if the spec names an unknown workload.
pub fn replay_panel(spec: &CampaignSpec, trace: &Trace) -> Result<CampaignResult, CampaignError> {
    replay_panel_with(spec, trace, &mut Replayer::new())
}

/// [`replay_panel`] with a caller-owned [`Replayer`], so a worker thread
/// replaying many cells reuses its scratch buffers across all of them.
///
/// # Errors
///
/// Returns [`CampaignError`] if the spec names an unknown workload.
pub fn replay_panel_with(
    spec: &CampaignSpec,
    trace: &Trace,
    replayer: &mut Replayer,
) -> Result<CampaignResult, CampaignError> {
    let workload = workload_by_name(&spec.workload)
        .ok_or_else(|| CampaignError(format!("unknown workload {:?}", spec.workload)))?;
    let truth = GroundTruth {
        bug: workload.spec().bug,
        leak_groups: workload.true_leak_groups(),
        expects_corruption: !workload.spec().bug.is_leak(),
        trace_ops: trace.len(),
        markers: MarkerCounts::of(trace),
    };
    // One membership set per campaign, not one linear scan per reported
    // group.
    let truth_set: HashSet<GroupKey> = truth.leak_groups.iter().copied().collect();

    let mut tools = Vec::with_capacity(PANEL.len());
    for &name in PANEL {
        let mut os = build_os(spec);
        let tool = build_tool(name, spec, &mut os);
        let mut injector = Injector::new(tool, spec.mix, spec.seed);
        let result = replayer.replay(trace, &mut os, &mut injector);
        let summary = injector.survival();
        let sampling = injector.sampling();
        tools.push(score(
            name,
            spec,
            &truth,
            &truth_set,
            &os,
            &result,
            injector.log(),
            summary,
            sampling,
        ));
    }

    Ok(CampaignResult {
        spec: spec.clone(),
        truth,
        tools,
    })
}

/// [`replay_panel_with`] over the columnar layout — the campaign runners'
/// hot path. Scores are identical to the enum-layout panel (the replay
/// engines are differentially tested); only the scan is different.
///
/// # Errors
///
/// Returns [`CampaignError`] if the spec names an unknown workload.
pub fn replay_panel_columnar_with(
    spec: &CampaignSpec,
    rec: &RecordedTrace,
    replayer: &mut ColumnarReplayer,
) -> Result<CampaignResult, CampaignError> {
    let workload = workload_by_name(&spec.workload)
        .ok_or_else(|| CampaignError(format!("unknown workload {:?}", spec.workload)))?;
    let truth = GroundTruth {
        bug: workload.spec().bug,
        leak_groups: workload.true_leak_groups(),
        expects_corruption: !workload.spec().bug.is_leak(),
        trace_ops: rec.columnar.len(),
        markers: MarkerCounts::of(&rec.trace),
    };
    let truth_set: HashSet<GroupKey> = truth.leak_groups.iter().copied().collect();

    let mut tools = Vec::with_capacity(PANEL.len());
    for &name in PANEL {
        let mut os = build_os(spec);
        let tool = build_tool(name, spec, &mut os);
        let mut injector = Injector::new(tool, spec.mix, spec.seed);
        let result = replayer.replay(&rec.columnar, &mut os, &mut injector);
        let summary = injector.survival();
        let sampling = injector.sampling();
        tools.push(score(
            name,
            spec,
            &truth,
            &truth_set,
            &os,
            &result,
            injector.log(),
            summary,
            sampling,
        ));
    }

    Ok(CampaignResult {
        spec: spec.clone(),
        truth,
        tools,
    })
}

/// Replays an already-recorded trace through **SafeMem alone** under the
/// spec's injection mix — the fleet campaign's per-process cell executor.
/// A fleet sweeps hundreds-to-thousands of cells and only scores SafeMem's
/// detection probability, so running the full differential panel per cell
/// would quintuple the work for numbers the fleet scorecard never reads.
/// The SafeMem run is identical to the panel's (same builder, same
/// seed-derived sampling stream, same injector), so a fleet cell and the
/// matching panel cell produce the same `safemem` score.
///
/// # Errors
///
/// Returns [`CampaignError`] if the spec names an unknown workload.
pub fn replay_safemem_with(
    spec: &CampaignSpec,
    trace: &Trace,
    replayer: &mut Replayer,
) -> Result<(GroundTruth, ToolScore), CampaignError> {
    let workload = workload_by_name(&spec.workload)
        .ok_or_else(|| CampaignError(format!("unknown workload {:?}", spec.workload)))?;
    let truth = GroundTruth {
        bug: workload.spec().bug,
        leak_groups: workload.true_leak_groups(),
        expects_corruption: !workload.spec().bug.is_leak(),
        trace_ops: trace.len(),
        markers: MarkerCounts::of(trace),
    };
    let truth_set: HashSet<GroupKey> = truth.leak_groups.iter().copied().collect();
    let mut os = build_os(spec);
    let tool = build_tool("safemem", spec, &mut os);
    let mut injector = Injector::new(tool, spec.mix, spec.seed);
    let result = replayer.replay(trace, &mut os, &mut injector);
    let summary = injector.survival();
    let sampling = injector.sampling();
    let tool_score = score(
        "safemem",
        spec,
        &truth,
        &truth_set,
        &os,
        &result,
        injector.log(),
        summary,
        sampling,
    );
    Ok((truth, tool_score))
}

/// [`replay_safemem_with`] over the columnar layout — the fleet's
/// per-process cell executor.
///
/// # Errors
///
/// Returns [`CampaignError`] if the spec names an unknown workload.
pub fn replay_safemem_columnar_with(
    spec: &CampaignSpec,
    rec: &RecordedTrace,
    replayer: &mut ColumnarReplayer,
) -> Result<(GroundTruth, ToolScore), CampaignError> {
    let workload = workload_by_name(&spec.workload)
        .ok_or_else(|| CampaignError(format!("unknown workload {:?}", spec.workload)))?;
    let truth = GroundTruth {
        bug: workload.spec().bug,
        leak_groups: workload.true_leak_groups(),
        expects_corruption: !workload.spec().bug.is_leak(),
        trace_ops: rec.columnar.len(),
        markers: MarkerCounts::of(&rec.trace),
    };
    let truth_set: HashSet<GroupKey> = truth.leak_groups.iter().copied().collect();
    let mut os = build_os(spec);
    let tool = build_tool("safemem", spec, &mut os);
    let mut injector = Injector::new(tool, spec.mix, spec.seed);
    let result = replayer.replay(&rec.columnar, &mut os, &mut injector);
    let summary = injector.survival();
    let sampling = injector.sampling();
    let tool_score = score(
        "safemem",
        spec,
        &truth,
        &truth_set,
        &os,
        &result,
        injector.log(),
        summary,
        sampling,
    );
    Ok((truth, tool_score))
}

/// Classifies one tool's reports against the ground truth.
#[allow(clippy::too_many_arguments)]
fn score(
    tool: &'static str,
    spec: &CampaignSpec,
    truth: &GroundTruth,
    truth_set: &HashSet<GroupKey>,
    os: &Os,
    result: &safemem_workloads::RunResult,
    injected: InjectionLog,
    summary: Option<SurvivalSummary>,
    sampling: Option<SamplingSummary>,
) -> ToolScore {
    // `leak_groups()` is already deduped, so one pass partitions it into
    // true and false positives.
    let mut leaks_found = 0usize;
    let mut false_leaks = 0usize;
    for g in result.leak_groups() {
        if truth_set.contains(&g) {
            leaks_found += 1;
        } else {
            false_leaks += 1;
        }
    }
    let leaks_missed = truth.leak_groups.len() - leaks_found;

    let corruption_found = result.corruption_detected();
    let false_corruptions = if truth.expects_corruption {
        0
    } else {
        result.reports.iter().filter(|r| r.is_corruption()).count()
    };

    let hardware_reports = result
        .reports
        .iter()
        .filter(|r| matches!(r, BugReport::HardwareError { .. }))
        .count() as u64;
    let hardware_panics = os.stats().hardware_panics;
    // Every injected burst is triggered exactly once by the injector itself;
    // observations beyond that budget were misattributed.
    let hardware_misattributions =
        (hardware_reports + hardware_panics).saturating_sub(injected.multi_bit_bursts);

    let _ = spec;
    let survival = match (&summary, truth.markers.total()) {
        (Some(s), n) if n > 0 => Some(SurvivalScore::of(s, &truth.markers, hardware_panics)),
        _ => None,
    };
    ToolScore {
        tool,
        cpu_cycles: result.cpu_cycles,
        leaks_found,
        leaks_missed,
        false_leaks,
        corruption_found,
        false_corruptions,
        hardware_reports,
        hardware_panics,
        hardware_misattributions,
        controller: os.machine().controller().stats(),
        injected,
        expects_corruption: truth.expects_corruption,
        survival,
        heap_stats: result.heap_stats,
        sampling,
    }
}

/// Records the campaign trace only — exposed for tests that need the raw
/// trace alongside [`run_campaign`].
///
/// # Errors
///
/// Returns [`CampaignError`] if the spec names an unknown workload.
pub fn record_trace(spec: &CampaignSpec) -> Result<Trace, CampaignError> {
    let workload = workload_by_name(&spec.workload)
        .ok_or_else(|| CampaignError(format!("unknown workload {:?}", spec.workload)))?;
    let cfg = RunConfig {
        input: InputMode::Buggy,
        requests: spec.requests,
        seed: spec.workload_seed,
    };
    let mut os = build_os(spec);
    let mut null = NullTool::new();
    // Workloads whose planted bugs touch freed memory need the
    // freed-tracking recorder, or the bug evaporates from the trace. The
    // Table 1 workloads keep the plain recorder, byte for byte.
    let mut recorder = if workload.records_freed_accesses() {
        Recorder::with_freed_tracking(&mut null)
    } else {
        Recorder::new(&mut null)
    };
    workload.run(&mut os, &mut recorder, &cfg);
    Ok(recorder.into_trace())
}
