//! The overhead-vs-detection frontier: sweeping SafeMem's instrumentation
//! sampling rate across a campaign matrix.
//!
//! GWP-ASan's production insight is that sampled protection turns a
//! fixed-cost tool into a dial: at rate 1.0 you have today's always-on
//! SafeMem, at 1% you have near-zero overhead and a proportionally smaller
//! chance of catching each planted bug. The *curve* — detection
//! probability per bug class against simulated overhead, per rate — is the
//! production-relevant result, so the frontier sweep scores a whole ladder
//! of rates over the same recorded traces (the sampling rate is absent
//! from [`TraceKey`](crate::runner::TraceKey), so an n-rate ladder adds
//! zero recording work) and renders one row per rate.
//!
//! Two invariants anchor the sweep:
//!
//! * **Zero false positives at every rate.** Sampling out an allocation
//!   removes instrumentation; it must never add a report. The frontier
//!   verdict fails if any rate shows a SafeMem false positive.
//! * **Monotone detection.** The per-allocation decisions nest across
//!   rates (see [`SamplingPlan`](safemem_core::SamplingPlan)), so a bug
//!   caught at rate r is caught at every higher rate under the same seed.

use std::fmt::Write as _;

use crate::oracle::{CampaignError, CampaignResult};
use crate::runner::{expand_matrix, render_bench_json, BenchRun};
use crate::spec::CampaignSpec;
use safemem_core::PPM;
use safemem_workloads::BugClass;

/// The default sampling-rate ladder, in parts-per-million: 1.0, 0.5, 0.2,
/// 0.1, 0.02, 0.01. Ordered high-to-low so the first frontier row is the
/// always-on reference the harsh gate pins.
pub const FRONTIER_RATES_PPM: &[u32] = &[PPM, 500_000, 200_000, 100_000, 20_000, 10_000];

/// Expands a sampling-rate ladder over a seeds × workloads matrix:
/// rate-major, then the canonical seed-major/workload-minor cell order
/// within each rate. All rates share the same recorded traces under the
/// memoized runner, because the sampling rate is not part of the trace
/// key.
///
/// # Errors
///
/// Returns [`CampaignError`] for an unknown preset or workload, an empty
/// ladder, or a rate above [`PPM`].
pub fn expand_frontier(
    preset: &str,
    rates_ppm: &[u32],
    workloads: &[String],
    seeds: u64,
    seed0: u64,
    requests: Option<u64>,
) -> Result<Vec<CampaignSpec>, CampaignError> {
    if rates_ppm.is_empty() {
        return Err(CampaignError("frontier needs at least one rate".into()));
    }
    if let Some(&bad) = rates_ppm.iter().find(|&&r| r > PPM) {
        return Err(CampaignError(format!(
            "sampling rate {bad} ppm exceeds {PPM}"
        )));
    }
    let base = expand_matrix(preset, workloads, seeds, seed0, requests)?;
    let mut specs = Vec::with_capacity(base.len() * rates_ppm.len());
    for &rate in rates_ppm {
        for spec in &base {
            let mut spec = spec.clone();
            spec.sampling_ppm = rate;
            specs.push(spec);
        }
    }
    Ok(specs)
}

/// Per-bug-class detection tally within one frontier row.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassTally {
    /// Opportunities to detect (planted leak groups, or campaigns planting
    /// this corruption class).
    pub total: usize,
    /// How many SafeMem reported.
    pub found: usize,
}

impl ClassTally {
    /// Detection probability (0 when the class never occurred).
    #[must_use]
    pub fn probability(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.found as f64 / self.total as f64
        }
    }
}

/// One rate's aggregate scores across the frontier matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierRow {
    /// The sampling rate, parts-per-million.
    pub rate_ppm: u32,
    /// Campaigns aggregated into this row.
    pub campaigns: usize,
    /// Allocations SafeMem saw, summed over the row's campaigns.
    pub total_allocs: u64,
    /// Allocations that drew instrumentation.
    pub sampled_allocs: u64,
    /// Planted leak groups found / total (ALeak + SLeak workloads).
    pub leak: ClassTally,
    /// Overflow campaigns detected / total.
    pub overflow: ClassTally,
    /// Use-after-free campaigns detected / total.
    pub uaf: ClassTally,
    /// Double-free campaigns detected / total.
    pub double_free: ClassTally,
    /// SafeMem false positives of any kind, summed (the frontier demands
    /// zero at every rate).
    pub false_positives: u64,
    /// SafeMem simulated CPU cycles, summed.
    pub safemem_cycles: u64,
    /// Uninstrumented-baseline CPU cycles, summed — the denominator of the
    /// runtime-overhead column.
    pub baseline_cycles: u64,
    /// SafeMem cumulative heap waste bytes (padding + rounding), summed.
    pub waste_bytes: u64,
    /// SafeMem cumulative heap payload bytes, summed.
    pub payload_bytes: u64,
}

impl FrontierRow {
    /// An all-zero row for `rate_ppm`, ready to fold results into.
    #[must_use]
    pub fn empty(rate_ppm: u32) -> Self {
        FrontierRow {
            rate_ppm,
            campaigns: 0,
            total_allocs: 0,
            sampled_allocs: 0,
            leak: ClassTally::default(),
            overflow: ClassTally::default(),
            uaf: ClassTally::default(),
            double_free: ClassTally::default(),
            false_positives: 0,
            safemem_cycles: 0,
            baseline_cycles: 0,
            waste_bytes: 0,
            payload_bytes: 0,
        }
    }

    /// Folds one campaign result into this row. Every column is a
    /// commutative integer sum, so fold order never changes the row — the
    /// property the streaming aggregator relies on.
    pub fn fold(&mut self, result: &CampaignResult) {
        self.campaigns += 1;
        let Some(safemem) = result.tool("safemem") else {
            return;
        };
        if let Some(sampling) = &safemem.sampling {
            self.total_allocs += sampling.total_allocs;
            self.sampled_allocs += sampling.sampled_allocs;
        }
        self.false_positives += safemem.false_positives();
        self.safemem_cycles += safemem.cpu_cycles;
        if let Some(none) = result.tool("none") {
            self.baseline_cycles += none.cpu_cycles;
        }
        self.waste_bytes += safemem.heap_stats.cumulative_waste;
        self.payload_bytes += safemem.heap_stats.cumulative_payload;
        self.leak.total += result.truth.leak_groups.len();
        self.leak.found += safemem.leaks_found;
        let class = match result.truth.bug {
            BugClass::Overflow => Some(&mut self.overflow),
            BugClass::UseAfterFree => Some(&mut self.uaf),
            BugClass::DoubleFree => Some(&mut self.double_free),
            BugClass::ALeak | BugClass::SLeak => None,
        };
        if let Some(tally) = class {
            tally.total += 1;
            if safemem.corruption_found {
                tally.found += 1;
            }
        }
    }

    /// The sampling rate as a fraction.
    #[must_use]
    pub fn rate(&self) -> f64 {
        f64::from(self.rate_ppm) / f64::from(PPM)
    }

    /// Simulated runtime overhead of SafeMem over the uninstrumented
    /// baseline, percent.
    #[must_use]
    pub fn cpu_overhead_percent(&self) -> f64 {
        if self.baseline_cycles == 0 {
            0.0
        } else {
            (self.safemem_cycles as f64 - self.baseline_cycles as f64) / self.baseline_cycles as f64
                * 100.0
        }
    }

    /// Space overhead (Table 4's metric): wasted bytes per payload byte,
    /// percent.
    #[must_use]
    pub fn memory_overhead_percent(&self) -> f64 {
        if self.payload_bytes == 0 {
            0.0
        } else {
            self.waste_bytes as f64 / self.payload_bytes as f64 * 100.0
        }
    }

    /// Fraction of allocations instrumented.
    #[must_use]
    pub fn sampled_fraction(&self) -> f64 {
        if self.total_allocs == 0 {
            0.0
        } else {
            self.sampled_allocs as f64 / self.total_allocs as f64
        }
    }
}

/// Groups frontier matrix results by sampling rate, in order of first
/// appearance (the ladder order [`expand_frontier`] laid down), and
/// aggregates each group into a [`FrontierRow`].
#[must_use]
pub fn frontier_rows(results: &[CampaignResult]) -> Vec<FrontierRow> {
    let mut rows: Vec<FrontierRow> = Vec::new();
    for result in results {
        let rate = result.spec.sampling_ppm;
        let row = match rows.iter_mut().find(|r| r.rate_ppm == rate) {
            Some(row) => row,
            None => {
                rows.push(FrontierRow::empty(rate));
                rows.last_mut().expect("just pushed")
            }
        };
        row.fold(result);
    }
    rows
}

/// Renders the frontier table plus its zero-false-positive verdict line.
/// Byte-stable: every column derives from deterministic integer sums with
/// fixed-precision formatting.
#[must_use]
pub fn render_frontier(rows: &[FrontierRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "frontier: overhead vs detection across sampling rates");
    let _ = writeln!(
        out,
        "  {:<8} {:>5}  {:<22} {:<14} {:<14} {:<14} {:<14} {:>4} {:>9} {:>9}",
        "rate",
        "camps",
        "sampled-allocs",
        "leak",
        "overflow",
        "uaf",
        "double-free",
        "FP",
        "cpu-ovh%",
        "mem-ovh%"
    );
    for row in rows {
        let sampled = format!(
            "{}/{} ({:.1}%)",
            row.sampled_allocs,
            row.total_allocs,
            row.sampled_fraction() * 100.0
        );
        let class = |t: &ClassTally| {
            if t.total == 0 {
                "-".to_string()
            } else {
                format!("{}/{} p={:.2}", t.found, t.total, t.probability())
            }
        };
        let _ = writeln!(
            out,
            "  {:<8.4} {:>5}  {:<22} {:<14} {:<14} {:<14} {:<14} {:>4} {:>9.1} {:>9.1}",
            row.rate(),
            row.campaigns,
            sampled,
            class(&row.leak),
            class(&row.overflow),
            class(&row.uaf),
            class(&row.double_free),
            row.false_positives,
            row.cpu_overhead_percent(),
            row.memory_overhead_percent(),
        );
    }
    let total_fps: u64 = rows.iter().map(|r| r.false_positives).sum();
    if total_fps == 0 {
        let _ = writeln!(
            out,
            "frontier invariant (safemem: zero false positives at every sampling rate): OK ({} rates)",
            rows.len()
        );
    } else {
        let _ = writeln!(
            out,
            "frontier invariant (safemem: zero false positives at every sampling rate): VIOLATED ({total_fps} FPs)"
        );
    }
    out
}

/// Renders the `BENCH_campaign.json` schema with a `frontier` section
/// appended to the thread-scaling records: one JSON object per rate with
/// the detection probabilities, false-positive count, and overhead
/// columns of the table.
#[must_use]
pub fn render_frontier_bench_json(
    preset: &str,
    requests: Option<u64>,
    runs: &[BenchRun],
    rows: &[FrontierRow],
) -> String {
    let base = render_bench_json(preset, requests, runs);
    let mut out = base
        .strip_suffix("}\n")
        .expect("render_bench_json ends with its closing brace")
        .to_string();
    // Re-open the object: the base ends with the closed `runs` array.
    while out.ends_with('\n') {
        out.pop();
    }
    out.push_str(",\n  \"frontier\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"rate\": {:.4}, \"campaigns\": {}, \"sampled_allocs\": {}, \
             \"total_allocs\": {}, \"detection\": {{\"leak\": {:.4}, \"overflow\": {:.4}, \
             \"uaf\": {:.4}, \"double_free\": {:.4}}}, \"false_positives\": {}, \
             \"cpu_overhead_pct\": {:.1}, \"mem_overhead_pct\": {:.1}}}{comma}",
            row.rate(),
            row.campaigns,
            row.sampled_allocs,
            row.total_allocs,
            row.leak.probability(),
            row.overflow.probability(),
            row.uaf.probability(),
            row.double_free.probability(),
            row.false_positives,
            row.cpu_overhead_percent(),
            row.memory_overhead_percent(),
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expand_frontier_is_rate_major() {
        let workloads = vec!["tar".to_string()];
        let specs = expand_frontier("frontier", &[PPM, 10_000], &workloads, 2, 0, Some(24))
            .expect("valid ladder");
        let cells: Vec<(u32, u64)> = specs.iter().map(|s| (s.sampling_ppm, s.seed)).collect();
        assert_eq!(cells, vec![(PPM, 0), (PPM, 1), (10_000, 0), (10_000, 1)]);
    }

    #[test]
    fn expand_frontier_rejects_bad_ladders() {
        let workloads = vec!["tar".to_string()];
        assert!(expand_frontier("frontier", &[], &workloads, 1, 0, None).is_err());
        assert!(expand_frontier("frontier", &[PPM + 1], &workloads, 1, 0, None).is_err());
        assert!(expand_frontier("nope", &[PPM], &workloads, 1, 0, None).is_err());
    }

    #[test]
    fn frontier_bench_json_is_well_formed() {
        use std::time::Duration;
        let runs = [BenchRun {
            threads: 1,
            wall: Duration::from_millis(100),
            campaigns: 4,
            boot: None,
        }];
        let rows = [FrontierRow {
            rate_ppm: 500_000,
            campaigns: 4,
            total_allocs: 1000,
            sampled_allocs: 493,
            leak: ClassTally { total: 4, found: 2 },
            overflow: ClassTally { total: 2, found: 1 },
            uaf: ClassTally::default(),
            double_free: ClassTally::default(),
            false_positives: 0,
            safemem_cycles: 150,
            baseline_cycles: 100,
            waste_bytes: 50,
            payload_bytes: 100,
        }];
        let json = render_frontier_bench_json("frontier", Some(128), &runs, &rows);
        assert!(json.contains("\"frontier\": ["), "{json}");
        assert!(json.contains("\"rate\": 0.5000"), "{json}");
        assert!(json.contains("\"leak\": 0.5000"), "{json}");
        assert!(json.contains("\"cpu_overhead_pct\": 50.0"), "{json}");
        assert!(json.ends_with("  ]\n}\n"), "{json}");
        // Both sections coexist.
        assert!(json.contains("\"runs\": ["), "{json}");
    }
}
