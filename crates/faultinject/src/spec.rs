//! Campaign specifications: what to inject, how often, and under which
//! machine/OS configuration.

use safemem_ecc::EccMode;
use safemem_os::SwapPolicy;

/// Per-operation injection rates, in permille (0..=1000). Each forwarded
/// workload operation rolls each rate independently against the campaign's
/// seed-derived stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultMix {
    /// Correctable single-bit flips in stored *data* words.
    pub data_bit_permille: u16,
    /// Correctable single-bit flips in stored *check codes*.
    pub code_bit_permille: u16,
    /// Uncorrectable multi-bit bursts (triggered and repaired by the
    /// injector itself; observable as hardware panics).
    pub multi_bit_permille: u16,
    /// Forced background scrub cycles (scrub-timing perturbation).
    pub scrub_permille: u16,
    /// Bus-interference DMA sweeps (`src == dst` single-line transfers).
    pub dma_permille: u16,
}

impl FaultMix {
    /// A mix that injects nothing (control campaigns).
    #[must_use]
    pub fn none() -> Self {
        FaultMix {
            data_bit_permille: 0,
            code_bit_permille: 0,
            multi_bit_permille: 0,
            scrub_permille: 0,
            dma_permille: 0,
        }
    }

    /// Whether the mix can produce an uncorrectable error.
    #[must_use]
    pub fn injects_uncorrectable(&self) -> bool {
        self.multi_bit_permille > 0
    }
}

/// One fault-injection campaign: a workload replayed under every tool while
/// the injector perturbs the machine according to `mix`.
///
/// Everything that influences the run is in this struct; two campaigns with
/// equal specs produce byte-identical scorecards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Preset name, echoed in the scorecard ("harsh", "mixed", "quiet").
    pub preset: String,
    /// Workload name, resolved through `safemem_workloads::workload_by_name`.
    pub workload: String,
    /// Campaign seed: drives every injection decision.
    pub seed: u64,
    /// Workload input seed. Deliberately *not* derived from `seed`: all
    /// campaigns of a preset replay the identical trace, isolating the
    /// injection mix as the only experimental variable.
    pub workload_seed: u64,
    /// Request count forwarded to the workload (None = its default).
    pub requests: Option<u64>,
    /// The injection rates.
    pub mix: FaultMix,
    /// Physical memory size — small values create swap pressure.
    pub phys_bytes: u64,
    /// How the OS treats watched pages under swap pressure.
    pub swap_policy: SwapPolicy,
    /// Periodic OS scrub interval in cycles (None = no periodic scrubbing).
    pub scrub_interval_cycles: Option<u64>,
    /// Controller operating mode for the campaign.
    pub ecc_mode: EccMode,
    /// Whether SafeMem runs with the recovery layer (healing actions +
    /// quarantine) enabled. **Off in every pre-existing preset** so their
    /// scorecards stay byte-identical; the `arena` preset turns it on.
    /// Recording is unaffected (traces are recorded uninstrumented), so this
    /// field is deliberately absent from the trace-memoization key.
    pub recovery: bool,
    /// SafeMem instrumentation sampling rate in parts-per-million
    /// (`1_000_000` = always-on, today's behaviour; every pre-existing
    /// preset uses that value so their scorecards stay byte-identical).
    /// The per-allocation decision seed is derived from `seed` on a
    /// dedicated RNG stream, so sampling never correlates with fault
    /// injection. Like `recovery`, this is a replay-side knob: it is
    /// deliberately absent from the trace-memoization key, so a frontier
    /// sweep across rates shares one recorded trace per workload.
    pub sampling_ppm: u32,
}

/// Workload input seed shared by all presets (the same default the CLI
/// runner uses), so preset traces are comparable across campaigns.
pub const WORKLOAD_SEED: u64 = 0x05AF_E3E3;

/// Request count the presets drive each workload with: large enough for the
/// leak workloads' lifetime heuristic to trip under trace replay, small
/// enough that a 32-seed × 5-workload campaign sweep finishes in about a
/// minute.
pub const HARSH_REQUESTS: u64 = 128;

/// The workloads the preset campaigns sweep by default.
///
/// This is the subset of the registry whose planted bugs survive *trace
/// replay* faithfully: `squid1`'s leak heuristic raises one false leak even
/// with zero injection, and `squid2`'s use-after-free access is remapped by
/// the trace recorder to the nearest live buffer (the freed buffer has no
/// stable identity in a trace), so neither can anchor a zero-false-positive
/// acceptance gate. Both remain runnable by naming them explicitly.
pub const PRESET_WORKLOADS: &[&str] = &["ypserv1", "proftpd", "ypserv2", "gzip", "tar"];

/// The synthetic-CVE corruption arena the `arena` preset sweeps by default:
/// scheduled corruption patterns with ground-truth incident markers (see
/// `safemem_workloads::cve_workloads`).
pub const CVE_WORKLOADS: &[&str] = &["cve-uaf", "cve-dfree", "cve-obo", "cve-fmt"];

/// Request count for the arena preset: eight scheduled corruption incidents
/// per run (the CVE workloads corrupt every eighth request).
pub const ARENA_REQUESTS: u64 = 64;

/// The connection-churn server workloads the fleet preset cycles processes
/// through (see `safemem_workloads::churn_workloads`).
pub const FLEET_WORKLOADS: &[&str] = &["churn-leak", "churn-uaf", "churn-obo"];

/// Requests each fleet process serves: long enough for the churn leak's
/// idle time to cross the SLeak report threshold with margin.
pub const FLEET_REQUESTS: u64 = 96;

/// The fleet preset's sub-1.0 sampling rate (0.2): each process is unlikely
/// to catch its bug, the fleet almost certainly does — the GWP-ASan story
/// the fleet scorecard quantifies via `1 - (1 - r)^n`.
pub const FLEET_RATE_PPM: u32 = 200_000;

impl CampaignSpec {
    /// The acceptance-gate preset: swap pressure, periodic and forced
    /// scrubbing, DMA interference, and a steady rain of *correctable*
    /// single-bit errors — but nothing uncorrectable. SafeMem must come out
    /// with zero false positives and every planted bug detected.
    #[must_use]
    pub fn harsh(workload: &str, seed: u64) -> Self {
        CampaignSpec {
            preset: "harsh".into(),
            workload: workload.into(),
            seed,
            workload_seed: WORKLOAD_SEED,
            requests: Some(HARSH_REQUESTS),
            mix: FaultMix {
                data_bit_permille: 25,
                code_bit_permille: 8,
                multi_bit_permille: 0,
                scrub_permille: 4,
                dma_permille: 4,
            },
            phys_bytes: 1 << 22,
            swap_policy: SwapPolicy::SwapAware,
            scrub_interval_cycles: Some(250_000),
            ecc_mode: EccMode::CorrectAndScrub,
            recovery: false,
            sampling_ppm: safemem_core::PPM,
        }
    }

    /// The survival arena: the harsh correctable-only fault climate, but
    /// SafeMem runs with **recovery enabled** against the synthetic-CVE
    /// corruption workloads ([`CVE_WORKLOADS`]). The acceptance dimension is
    /// survival-with-integrity: every scheduled incident detected and
    /// healed, the process alive at the end of the run, the heap verified
    /// intact, and the healed incidents attributable one-to-one to the
    /// trace's ground-truth markers.
    #[must_use]
    pub fn arena(workload: &str, seed: u64) -> Self {
        let mut spec = CampaignSpec::harsh(workload, seed);
        spec.preset = "arena".into();
        spec.requests = Some(ARENA_REQUESTS);
        spec.recovery = true;
        spec
    }

    /// The sampling-frontier preset: the harsh correctable-only fault
    /// climate over the full bug-class spectrum (leak + overflow workloads
    /// plus the synthetic-CVE arena family), with **recovery enabled** so a
    /// double free of a sampled-and-quarantined block is attributable as
    /// `DoubleFree` rather than degrading to a wild free. The frontier
    /// sweep clones this spec across a ladder of `sampling_ppm` values; at
    /// the default always-on rate it upholds the full harsh invariant, and
    /// at every rate SafeMem must report zero false positives.
    #[must_use]
    pub fn frontier(workload: &str, seed: u64) -> Self {
        let mut spec = CampaignSpec::harsh(workload, seed);
        spec.preset = "frontier".into();
        spec.recovery = true;
        spec
    }

    /// One cell of the fleet preset: a connection-churn server process
    /// under the harsh correctable-only fault climate, sampled at the
    /// sub-1.0 fleet rate ([`FLEET_RATE_PPM`]). The fleet campaign expands
    /// one such cell per simulated process (workload cycling through
    /// [`FLEET_WORKLOADS`], seed `seed0 + pid`), replays them sharded, and
    /// folds the results into the fleet-level detection-probability
    /// scorecard; the same specs also parameterize the shared-machine fleet
    /// simulation in `safemem-fleet`.
    #[must_use]
    pub fn fleet(workload: &str, seed: u64) -> Self {
        let mut spec = CampaignSpec::harsh(workload, seed);
        spec.preset = "fleet".into();
        spec.requests = Some(FLEET_REQUESTS);
        spec.sampling_ppm = FLEET_RATE_PPM;
        spec
    }

    /// Adds uncorrectable multi-bit bursts to the harsh mix. The injector
    /// triggers and repairs each burst itself, so runs complete; the
    /// scorecard accounts for every burst as a hardware panic.
    #[must_use]
    pub fn mixed(workload: &str, seed: u64) -> Self {
        let mut spec = CampaignSpec::harsh(workload, seed);
        spec.preset = "mixed".into();
        spec.mix.data_bit_permille = 15;
        spec.mix.multi_bit_permille = 3;
        spec.phys_bytes = 1 << 23;
        spec
    }

    /// The control preset: no injection, generous memory, default policies.
    /// Establishes each tool's baseline detections for differential reading.
    #[must_use]
    pub fn quiet(workload: &str, seed: u64) -> Self {
        CampaignSpec {
            preset: "quiet".into(),
            workload: workload.into(),
            seed,
            workload_seed: WORKLOAD_SEED,
            requests: Some(HARSH_REQUESTS),
            mix: FaultMix::none(),
            phys_bytes: 1 << 24,
            swap_policy: SwapPolicy::PinWatchedPages,
            scrub_interval_cycles: None,
            ecc_mode: EccMode::CorrectError,
            recovery: false,
            sampling_ppm: safemem_core::PPM,
        }
    }

    /// Looks a preset up by name.
    #[must_use]
    pub fn preset(name: &str, workload: &str, seed: u64) -> Option<Self> {
        match name {
            "harsh" => Some(CampaignSpec::harsh(workload, seed)),
            "mixed" => Some(CampaignSpec::mixed(workload, seed)),
            "quiet" => Some(CampaignSpec::quiet(workload, seed)),
            "arena" => Some(CampaignSpec::arena(workload, seed)),
            "frontier" => Some(CampaignSpec::frontier(workload, seed)),
            "fleet" => Some(CampaignSpec::fleet(workload, seed)),
            _ => None,
        }
    }

    /// The preset names `preset` accepts.
    pub const PRESETS: &'static [&'static str] =
        &["harsh", "mixed", "quiet", "arena", "frontier", "fleet"];
}
