//! Deterministic scorecard rendering.
//!
//! Everything here formats already-sorted data with `{}`/`{:?}` on plain
//! integers and derived enums — no floats beyond a fixed-precision rate, no
//! hash-ordered iteration, no timestamps — so a campaign's rendering is
//! byte-identical across runs and across machines.

use std::fmt::Write as _;

use crate::oracle::{CampaignResult, ToolScore};
use crate::runner::MatrixReport;

/// Renders one campaign as a multi-line scorecard.
#[must_use]
pub fn render_campaign(result: &CampaignResult) -> String {
    let spec = &result.spec;
    let truth = &result.truth;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "campaign preset={} workload={} seed={:#018x}",
        spec.preset, spec.workload, spec.seed
    );
    let _ = writeln!(
        out,
        "  mix permille: data={} code={} multi={} scrub={} dma={}",
        spec.mix.data_bit_permille,
        spec.mix.code_bit_permille,
        spec.mix.multi_bit_permille,
        spec.mix.scrub_permille,
        spec.mix.dma_permille
    );
    let _ = writeln!(
        out,
        "  machine: phys={} swap={:?} scrub_interval={:?} ecc={:?}",
        spec.phys_bytes, spec.swap_policy, spec.scrub_interval_cycles, spec.ecc_mode
    );
    let _ = writeln!(
        out,
        "  truth: bug={:?} leak_groups={} corruption={} trace_ops={}",
        truth.bug,
        truth.leak_groups.len(),
        truth.expects_corruption,
        truth.trace_ops
    );
    if truth.markers.total() > 0 {
        let _ = writeln!(
            out,
            "  markers: overflow={} uaf={} dfree={}",
            truth.markers.overflows, truth.markers.uafs, truth.markers.double_frees
        );
    }
    let _ = writeln!(
        out,
        "  {:<10} {:>5} {:>5} {:>5} {:>5} {:>5} {:>7} {:>7} {:>8} {:>11} {:>9} {:>6}",
        "tool",
        "tpL",
        "fpL",
        "missL",
        "corr",
        "fpC",
        "hwRep",
        "hwPanic",
        "misattr",
        "inj(d/c/m)",
        "corrected",
        "fpAll"
    );
    for t in &result.tools {
        let _ = writeln!(out, "  {}", render_tool_row(t));
    }
    for t in &result.tools {
        if let Some(s) = &t.survival {
            let yn = |b: bool| if b { "yes" } else { "NO" };
            let _ = writeln!(
                out,
                "  survival[{}]: survived={} integrity={} attributed={} healed={}",
                t.tool,
                yn(s.survived),
                yn(s.integrity),
                yn(s.attributed),
                s.healed
            );
        }
    }
    out
}

fn render_tool_row(t: &ToolScore) -> String {
    format!(
        "{:<10} {:>5} {:>5} {:>5} {:>5} {:>5} {:>7} {:>7} {:>8} {:>4}/{:>2}/{:>2} {:>9} {:>6}",
        t.tool,
        t.leaks_found,
        t.false_leaks,
        t.leaks_missed,
        if t.expects_corruption {
            if t.corruption_found {
                "yes"
            } else {
                "NO"
            }
        } else {
            "-"
        },
        t.false_corruptions,
        t.hardware_reports,
        t.hardware_panics,
        t.hardware_misattributions,
        t.injected.data_bit_flips,
        t.injected.code_bit_flips,
        t.injected.multi_bit_bursts,
        t.controller.corrected_single_bit,
        t.false_positives()
    )
}

/// Renders the cross-campaign aggregate table plus the acceptance verdict.
///
/// Implemented by folding every result into a [`StreamAggregate`] — the
/// collected path and the streaming path therefore render through the same
/// code and cannot drift apart.
///
/// [`StreamAggregate`]: crate::stream::StreamAggregate
#[must_use]
pub fn render_aggregate(results: &[CampaignResult]) -> String {
    let mut aggregate = crate::stream::StreamAggregate::new();
    for result in results {
        aggregate.fold(result);
    }
    aggregate.render()
}

/// Renders the execution telemetry of a sharded matrix run: per-worker cell
/// counts, busy time, and injection-event totals.
///
/// Unlike every other renderer in this module, this output is **not**
/// deterministic — which cells land on which worker, and how long they take,
/// depend on host scheduling. It is therefore never part of the scorecard
/// that `tests/parallel_determinism.rs` compares byte-for-byte; callers
/// print it after the aggregate, clearly separated.
#[must_use]
pub fn render_workers(report: &MatrixReport) -> String {
    render_worker_table(
        report.results.len(),
        report.threads,
        report.wall,
        &report.workers,
    )
}

/// [`render_workers`] over bare parts, for runs that do not keep a
/// [`MatrixReport`] (the streaming and fleet runners fold their results away
/// instead of collecting them).
#[must_use]
pub fn render_worker_table(
    campaigns: usize,
    threads: usize,
    wall: std::time::Duration,
    workers: &[crate::runner::WorkerReport],
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "execution: {campaigns} campaigns on {threads} worker threads, wall {:.1} ms (host timing; not part of the scorecard)",
        wall.as_secs_f64() * 1e3
    );
    let _ = writeln!(
        out,
        "  {:<7} {:>9} {:>7} {:>10} {:>10}",
        "worker", "campaigns", "traces", "busy_ms", "injEvents"
    );
    for w in workers {
        let _ = writeln!(
            out,
            "  {:<7} {:>9} {:>7} {:>10.1} {:>10}",
            w.worker,
            w.campaigns,
            w.traces_recorded,
            w.busy.as_secs_f64() * 1e3,
            w.injection_events
        );
    }
    out
}
