//! Deterministic scorecard rendering.
//!
//! Everything here formats already-sorted data with `{}`/`{:?}` on plain
//! integers and derived enums — no floats beyond a fixed-precision rate, no
//! hash-ordered iteration, no timestamps — so a campaign's rendering is
//! byte-identical across runs and across machines.

use std::fmt::Write as _;

use crate::oracle::{CampaignResult, ToolScore};
use crate::runner::MatrixReport;

/// Renders one campaign as a multi-line scorecard.
#[must_use]
pub fn render_campaign(result: &CampaignResult) -> String {
    let spec = &result.spec;
    let truth = &result.truth;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "campaign preset={} workload={} seed={:#018x}",
        spec.preset, spec.workload, spec.seed
    );
    let _ = writeln!(
        out,
        "  mix permille: data={} code={} multi={} scrub={} dma={}",
        spec.mix.data_bit_permille,
        spec.mix.code_bit_permille,
        spec.mix.multi_bit_permille,
        spec.mix.scrub_permille,
        spec.mix.dma_permille
    );
    let _ = writeln!(
        out,
        "  machine: phys={} swap={:?} scrub_interval={:?} ecc={:?}",
        spec.phys_bytes, spec.swap_policy, spec.scrub_interval_cycles, spec.ecc_mode
    );
    let _ = writeln!(
        out,
        "  truth: bug={:?} leak_groups={} corruption={} trace_ops={}",
        truth.bug,
        truth.leak_groups.len(),
        truth.expects_corruption,
        truth.trace_ops
    );
    if truth.markers.total() > 0 {
        let _ = writeln!(
            out,
            "  markers: overflow={} uaf={} dfree={}",
            truth.markers.overflows, truth.markers.uafs, truth.markers.double_frees
        );
    }
    let _ = writeln!(
        out,
        "  {:<10} {:>5} {:>5} {:>5} {:>5} {:>5} {:>7} {:>7} {:>8} {:>11} {:>9} {:>6}",
        "tool",
        "tpL",
        "fpL",
        "missL",
        "corr",
        "fpC",
        "hwRep",
        "hwPanic",
        "misattr",
        "inj(d/c/m)",
        "corrected",
        "fpAll"
    );
    for t in &result.tools {
        let _ = writeln!(out, "  {}", render_tool_row(t));
    }
    for t in &result.tools {
        if let Some(s) = &t.survival {
            let yn = |b: bool| if b { "yes" } else { "NO" };
            let _ = writeln!(
                out,
                "  survival[{}]: survived={} integrity={} attributed={} healed={}",
                t.tool,
                yn(s.survived),
                yn(s.integrity),
                yn(s.attributed),
                s.healed
            );
        }
    }
    out
}

fn render_tool_row(t: &ToolScore) -> String {
    format!(
        "{:<10} {:>5} {:>5} {:>5} {:>5} {:>5} {:>7} {:>7} {:>8} {:>4}/{:>2}/{:>2} {:>9} {:>6}",
        t.tool,
        t.leaks_found,
        t.false_leaks,
        t.leaks_missed,
        if t.expects_corruption {
            if t.corruption_found {
                "yes"
            } else {
                "NO"
            }
        } else {
            "-"
        },
        t.false_corruptions,
        t.hardware_reports,
        t.hardware_panics,
        t.hardware_misattributions,
        t.injected.data_bit_flips,
        t.injected.code_bit_flips,
        t.injected.multi_bit_bursts,
        t.controller.corrected_single_bit,
        t.false_positives()
    )
}

/// Renders the cross-campaign aggregate table plus the acceptance verdict.
#[must_use]
pub fn render_aggregate(results: &[CampaignResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "aggregate over {} campaigns", results.len());
    let _ = writeln!(
        out,
        "  {:<10} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8} {:>9} {:>10}",
        "tool", "tpL", "fpL", "missL", "corrTP", "fpC", "hwPanic", "misattr", "injected", "fpAll"
    );
    for (i, &name) in crate::oracle::PANEL.iter().enumerate() {
        let scores = results.iter().filter_map(|r| r.tools.get(i));
        let mut tp = 0usize;
        let mut fp_l = 0usize;
        let mut miss = 0usize;
        let mut corr = 0usize;
        let mut fp_c = 0usize;
        let mut panics = 0u64;
        let mut misattr = 0u64;
        let mut injected = 0u64;
        let mut fp_all = 0u64;
        for s in scores {
            debug_assert_eq!(s.tool, name);
            tp += s.leaks_found;
            fp_l += s.false_leaks;
            miss += s.leaks_missed;
            corr += usize::from(s.expects_corruption && s.corruption_found);
            fp_c += s.false_corruptions;
            panics += s.hardware_panics;
            misattr += s.hardware_misattributions;
            injected +=
                s.injected.data_bit_flips + s.injected.code_bit_flips + s.injected.multi_bit_bursts;
            fp_all += s.false_positives();
        }
        let _ = writeln!(
            out,
            "  {name:<10} {tp:>6} {fp_l:>6} {miss:>6} {corr:>6} {fp_c:>6} {panics:>8} {misattr:>8} {injected:>9} {fp_all:>10}"
        );
    }
    render_harsh_verdict(&mut out, results);
    render_survival_verdict(&mut out, results);
    out
}

/// Renders the execution telemetry of a sharded matrix run: per-worker cell
/// counts, busy time, and injection-event totals.
///
/// Unlike every other renderer in this module, this output is **not**
/// deterministic — which cells land on which worker, and how long they take,
/// depend on host scheduling. It is therefore never part of the scorecard
/// that `tests/parallel_determinism.rs` compares byte-for-byte; callers
/// print it after the aggregate, clearly separated.
#[must_use]
pub fn render_workers(report: &MatrixReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "execution: {} campaigns on {} worker threads, wall {:.1} ms (host timing; not part of the scorecard)",
        report.results.len(),
        report.threads,
        report.wall.as_secs_f64() * 1e3
    );
    let _ = writeln!(
        out,
        "  {:<7} {:>9} {:>7} {:>10} {:>10}",
        "worker", "campaigns", "traces", "busy_ms", "injEvents"
    );
    for w in &report.workers {
        let _ = writeln!(
            out,
            "  {:<7} {:>9} {:>7} {:>10.1} {:>10}",
            w.worker,
            w.campaigns,
            w.traces_recorded,
            w.busy.as_secs_f64() * 1e3,
            w.injection_events
        );
    }
    out
}

fn render_survival_verdict(out: &mut String, results: &[CampaignResult]) {
    let arena: Vec<&CampaignResult> = results
        .iter()
        .filter(|r| r.truth.markers.total() > 0)
        .collect();
    if !arena.is_empty() {
        let ok = arena
            .iter()
            .filter(|r| r.survival_invariant_holds())
            .count();
        let _ = writeln!(
            out,
            "  survival invariant (safemem: survived, heap intact, incidents attributed): {ok}/{} campaigns",
            arena.len()
        );
    }
}

fn render_harsh_verdict(out: &mut String, results: &[CampaignResult]) {
    let harsh: Vec<&CampaignResult> = results
        .iter()
        .filter(|r| !r.spec.mix.injects_uncorrectable())
        .collect();
    if !harsh.is_empty() {
        let ok = harsh.iter().filter(|r| r.harsh_invariant_holds()).count();
        let _ = writeln!(
            out,
            "  harsh invariant (safemem: zero FPs, all planted bugs found): {ok}/{} campaigns",
            harsh.len()
        );
    }
}
