//! The rate × fleet-size sweep: locating the knee of fleet-level
//! detection.
//!
//! GWP-ASan's deployment math says a fleet of `n` processes each sampling
//! at rate `r` catches a planted bug with probability `1 − (1 − r)^n` —
//! so there is a *knee* in the (r, n) surface: for every rate there is a
//! smallest fleet size past which detection is effectively certain, and
//! shrinking the rate just slides the knee to larger fleets. The sweep
//! measures that surface empirically: it grids sampling rate × fleet size
//! over **shared recorded traces** (the [`TraceKey`] excludes the sampling
//! rate, so three recorded churn traces serve every grid cell), replays
//! each (rate, process) cell once under SafeMem, and scores each grid
//! point's observed fleet-level detection against the prediction with the
//! same 6σ binomial band the fleet campaign uses.
//!
//! Fleet sizes are *prefixes* of one expansion: process `pid` runs the same
//! spec at every size ([`expand_fleet`] keys each pid's spec on `seed0 +
//! pid` independent of the fleet size), so a size-`n` grid point scores the
//! first `n` per-process outcomes of the size-`n_max` replay — every cell
//! is replayed exactly once for the whole sweep.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use safemem_core::PPM;
use safemem_workloads::apps::ChurnKind;
use safemem_workloads::ColumnarReplayer;

use crate::corpus::{obtain_campaign_trace, TraceCorpus};
use crate::fleet::expand_fleet;
use crate::oracle::{replay_safemem_columnar_with, CampaignError, RecordedTrace};
use crate::runner::TraceKey;
use crate::spec::CampaignSpec;

/// Default sampling-rate axis, parts-per-million: 1% to 50%.
pub const SWEEP_RATES_PPM: [u32; 5] = [10_000, 50_000, 100_000, 200_000, 500_000];

/// Default fleet-size axis.
pub const SWEEP_FLEET_SIZES: [u64; 5] = [4, 16, 64, 256, 512];

/// Fleet-level detection probability a grid point must reach to count as
/// past the knee.
pub const SWEEP_DETECTION_TARGET: f64 = 0.9;

/// Sweep shape: the two axes, the trace horizon, and the knee target.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Campaign seed of process 0 (process `pid` uses `seed0 + pid`).
    pub seed0: u64,
    /// Requests per churn process (None = the fleet preset default).
    pub requests: Option<u64>,
    /// Sampling-rate axis, parts-per-million, in render order.
    pub rates_ppm: Vec<u32>,
    /// Fleet-size axis, in render order. The largest size bounds the
    /// replay work: every rate replays that many cells, once each.
    pub sizes: Vec<u64>,
    /// Observed fleet-level detection a grid point needs to sit past the
    /// knee.
    pub detection_target: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seed0: 0,
            requests: None,
            rates_ppm: SWEEP_RATES_PPM.to_vec(),
            sizes: SWEEP_FLEET_SIZES.to_vec(),
            detection_target: SWEEP_DETECTION_TARGET,
        }
    }
}

/// One grid point: a (sampling rate, fleet size) pair and its scores. The
/// per-process probability pools the three churn classes — each process
/// plants exactly one bug, and detection follows its victim allocation's
/// sampling decision, so the pooled detection count is Binomial(n, r).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Sampling rate, parts-per-million.
    pub rate_ppm: u32,
    /// Fleet size (the first `processes` pids of the expansion).
    pub processes: u64,
    /// Processes whose planted bug SafeMem reported.
    pub detected: u64,
    /// SafeMem false positives across the point's cells (counts every
    /// cell of the prefix, same as `detected`).
    pub false_positives: u64,
    /// Whether `detected` sits inside the 6σ binomial band around
    /// `processes · rate`.
    pub in_band: bool,
}

impl SweepPoint {
    /// The sampling rate as a fraction.
    #[must_use]
    pub fn rate(&self) -> f64 {
        f64::from(self.rate_ppm) / f64::from(PPM)
    }

    /// Observed per-process detection probability `k/n`.
    #[must_use]
    pub fn observed(&self) -> f64 {
        if self.processes == 0 {
            0.0
        } else {
            self.detected as f64 / self.processes as f64
        }
    }

    /// Observed fleet-level detection probability `1 − (1 − k/n)^n`.
    #[must_use]
    pub fn fleet_observed(&self) -> f64 {
        1.0 - (1.0 - self.observed()).powf(self.processes as f64)
    }

    /// Predicted fleet-level detection probability `1 − (1 − r)^n`.
    #[must_use]
    pub fn fleet_predicted(&self) -> f64 {
        1.0 - (1.0 - self.rate()).powf(self.processes as f64)
    }
}

/// One rate's knee: the smallest swept fleet size whose observed
/// fleet-level detection reaches the target, if any size does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepKnee {
    /// Sampling rate, parts-per-million.
    pub rate_ppm: u32,
    /// The knee fleet size (None = even the largest swept size falls
    /// short).
    pub knee_processes: Option<u64>,
}

/// A completed sweep: the grid in rate-major render order plus the per-rate
/// knees.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// Requests each churn process served.
    pub requests: u64,
    /// Fleet-level detection a knee requires.
    pub detection_target: f64,
    /// Grid points, rate-major (`rates_ppm` outer, `sizes` inner).
    pub points: Vec<SweepPoint>,
    /// Per-rate knees, in `rates_ppm` order.
    pub knees: Vec<SweepKnee>,
    /// Campaign cells replayed (rates × the largest swept size).
    pub cells: u64,
    /// Wall time of the whole sweep.
    pub wall: Duration,
}

impl SweepOutcome {
    /// Total false positives across every replayed cell.
    #[must_use]
    pub fn false_positives(&self) -> u64 {
        // Each point is a prefix of its rate's replay, so the full-size
        // points (one per rate) already cover every cell exactly once.
        self.points
            .iter()
            .filter(|p| p.processes == self.max_size())
            .map(|p| p.false_positives)
            .sum()
    }

    /// The largest swept fleet size.
    #[must_use]
    pub fn max_size(&self) -> u64 {
        self.points.iter().map(|p| p.processes).max().unwrap_or(0)
    }

    /// The sweep acceptance verdict: zero SafeMem false positives at every
    /// grid point and every observed detection count inside its 6σ band.
    #[must_use]
    pub fn invariants_hold(&self) -> bool {
        self.points
            .iter()
            .all(|p| p.false_positives == 0 && p.in_band)
    }
}

/// Whether `detected` out of `n` sits inside the 6σ binomial band around
/// `n · rate` — the same acceptance band the fleet campaign applies per
/// class, pooled over the prefix.
fn within_six_sigma(detected: u64, n: u64, rate: f64) -> bool {
    let n = n as f64;
    let expected = n * rate;
    let sigma = (n * rate * (1.0 - rate)).sqrt();
    (detected as f64 - expected).abs() <= 6.0 * sigma
}

/// Runs the sweep: records the shared traces once, replays every
/// (rate, pid) cell across `threads` workers, and scores the grid.
///
/// # Errors
///
/// Returns [`CampaignError`] for an empty or out-of-range axis, a
/// detection target outside `(0, 1)`, or the first failing cell.
pub fn run_fleet_sweep(
    config: &SweepConfig,
    threads: usize,
    corpus: Option<&TraceCorpus>,
) -> Result<SweepOutcome, CampaignError> {
    if config.rates_ppm.is_empty() || config.sizes.is_empty() {
        return Err(CampaignError(
            "a sweep needs at least one rate and one fleet size".into(),
        ));
    }
    if config.rates_ppm.iter().any(|&r| r == 0 || r > PPM) {
        return Err(CampaignError(format!(
            "sweep rates must be in 1..={PPM} ppm"
        )));
    }
    if config.sizes.contains(&0) {
        return Err(CampaignError(
            "a sweep fleet size must be at least 1".into(),
        ));
    }
    if !(config.detection_target > 0.0 && config.detection_target < 1.0) {
        return Err(CampaignError(
            "the sweep detection target must be inside (0, 1)".into(),
        ));
    }
    let n_max = *config.sizes.iter().max().expect("non-empty sizes");
    let start = Instant::now();

    // One expansion serves every grid point: pid's spec is independent of
    // the fleet size, and the TraceKey is independent of the sampling
    // rate, so the whole grid shares one trace set and each (rate, pid)
    // cell replays exactly once.
    let base = expand_fleet(n_max, config.seed0, config.requests)?;
    let requests = base[0].requests.unwrap_or(crate::spec::FLEET_REQUESTS);
    let mut cells: Vec<CampaignSpec> = Vec::with_capacity(base.len() * config.rates_ppm.len());
    for &rate_ppm in &config.rates_ppm {
        for spec in &base {
            let mut cell = spec.clone();
            cell.sampling_ppm = rate_ppm;
            cells.push(cell);
        }
    }

    // Record the unique traces up front (three for the churn family — the
    // key excludes sampling, so rates share them).
    let mut key_slot: HashMap<TraceKey, usize> = HashMap::new();
    let mut slot_of_cell: Vec<usize> = Vec::with_capacity(cells.len());
    let mut traces: Vec<Arc<RecordedTrace>> = Vec::new();
    for cell in &cells {
        let next = key_slot.len();
        let slot = *key_slot.entry(TraceKey::of(cell)).or_insert(next);
        if slot == next {
            let (trace, _fresh) = obtain_campaign_trace(cell, corpus)?;
            traces.push(Arc::new(trace));
        }
        slot_of_cell.push(slot);
    }

    // Replay every cell on the scoped pool. Results land in index order
    // after the sort, so the grid is independent of worker scheduling.
    let threads = threads.max(1).min(cells.len());
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, bool, u64)>> = Mutex::new(Vec::with_capacity(cells.len()));
    let first_error: Mutex<Option<(usize, CampaignError)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let cursor = &cursor;
            let results = &results;
            let first_error = &first_error;
            let cells = &cells;
            let slot_of_cell = &slot_of_cell;
            let traces = &traces;
            scope.spawn(move || {
                let mut replayer = ColumnarReplayer::new();
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(index) else {
                        break;
                    };
                    let trace = &traces[slot_of_cell[index]];
                    match replay_safemem_columnar_with(cell, trace, &mut replayer) {
                        Ok((truth, score)) => {
                            let detected = match kind_of_cell(cell) {
                                ChurnKind::Leak => score.leaks_found == truth.leak_groups.len(),
                                ChurnKind::UseAfterFree | ChurnKind::Overflow => {
                                    score.corruption_found
                                }
                            };
                            results
                                .lock()
                                .expect("no panics hold the results lock")
                                .push((index, detected, score.false_positives()));
                        }
                        Err(e) => {
                            let mut slot =
                                first_error.lock().expect("no panics hold the error lock");
                            if slot.as_ref().is_none_or(|(lowest, _)| index < *lowest) {
                                *slot = Some((index, e));
                            }
                        }
                    }
                }
            });
        }
    });
    if let Some((_, e)) = first_error.into_inner().expect("scope joined all workers") {
        return Err(e);
    }
    let mut results = results.into_inner().expect("scope joined all workers");
    results.sort_by_key(|(index, _, _)| *index);

    // Score the grid: point (rate, n) folds the first n pids of its rate's
    // replay stripe.
    let n_max_usize = usize::try_from(n_max).expect("swept sizes fit the grid");
    let mut points = Vec::with_capacity(config.rates_ppm.len() * config.sizes.len());
    let mut knees = Vec::with_capacity(config.rates_ppm.len());
    for (rate_index, &rate_ppm) in config.rates_ppm.iter().enumerate() {
        let stripe = &results[rate_index * n_max_usize..(rate_index + 1) * n_max_usize];
        for &n in &config.sizes {
            let prefix = &stripe[..usize::try_from(n).expect("size <= n_max")];
            let detected = prefix.iter().filter(|(_, d, _)| *d).count() as u64;
            let false_positives = prefix.iter().map(|(_, _, f)| *f).sum();
            points.push(SweepPoint {
                rate_ppm,
                processes: n,
                detected,
                false_positives,
                in_band: within_six_sigma(detected, n, f64::from(rate_ppm) / f64::from(PPM)),
            });
        }
        // The knee scans sizes in ascending order even if the render order
        // is not sorted.
        let mut sorted_sizes = config.sizes.clone();
        sorted_sizes.sort_unstable();
        let knee = sorted_sizes.into_iter().find(|&n| {
            points.iter().any(|p| {
                p.rate_ppm == rate_ppm
                    && p.processes == n
                    && p.fleet_observed() >= config.detection_target
            })
        });
        knees.push(SweepKnee {
            rate_ppm,
            knee_processes: knee,
        });
    }

    Ok(SweepOutcome {
        requests,
        detection_target: config.detection_target,
        points,
        knees,
        cells: cells.len() as u64,
        wall: start.elapsed(),
    })
}

/// The churn kind of a sweep cell (infallible: the cells come from
/// [`expand_fleet`], which only emits the churn family).
fn kind_of_cell(cell: &CampaignSpec) -> ChurnKind {
    match cell.workload.as_str() {
        "churn-leak" => ChurnKind::Leak,
        "churn-uaf" => ChurnKind::UseAfterFree,
        _ => ChurnKind::Overflow,
    }
}

/// Renders the sweep scorecard: the grid table (rate-major), the per-rate
/// knee column, and the greppable verdict line. Byte-stable for a given
/// outcome.
#[must_use]
pub fn render_fleet_sweep(outcome: &SweepOutcome) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fleet sweep: sampling rate x fleet size over shared traces ({} cells, {} requests each)",
        outcome.cells, outcome.requests
    );
    let _ = writeln!(
        out,
        "  {:<8} {:>6} {:>9} {:>9} {:>14} {:>15} {:>8}",
        "rate", "procs", "detected", "observed", "fleet-observed", "fleet-predicted", "6sigma"
    );
    for point in &outcome.points {
        let _ = writeln!(
            out,
            "  {:<8.4} {:>6} {:>9} {:>9.4} {:>14.4} {:>15.4} {:>8}",
            point.rate(),
            point.processes,
            point.detected,
            point.observed(),
            point.fleet_observed(),
            point.fleet_predicted(),
            if point.in_band { "ok" } else { "OUT" }
        );
    }
    let _ = writeln!(
        out,
        "  knee (smallest fleet with observed fleet-level detection >= {:.2}):",
        outcome.detection_target
    );
    for knee in &outcome.knees {
        let _ = writeln!(
            out,
            "    rate {:<8.4} knee {}",
            f64::from(knee.rate_ppm) / f64::from(PPM),
            match knee.knee_processes {
                Some(n) => format!("{n} processes"),
                None => "beyond the swept sizes".into(),
            }
        );
    }
    if outcome.invariants_hold() {
        let _ = writeln!(
            out,
            "sweep invariant (safemem: zero false positives and 6sigma band at every grid point): OK"
        );
    } else {
        let _ = writeln!(
            out,
            "sweep invariant (safemem: zero false positives and 6sigma band at every grid point): VIOLATED ({} FPs, {} points out of band)",
            outcome.false_positives(),
            outcome.points.iter().filter(|p| !p.in_band).count()
        );
    }
    out
}

/// Splices a `fleet_sweep` section into a rendered `BENCH_campaign.json`
/// (the output of
/// [`render_fleet_bench_json`](crate::fleet::render_fleet_bench_json)):
/// the grid points, the knees, and the verdict.
#[must_use]
pub fn splice_sweep_json(base: &str, outcome: &SweepOutcome) -> String {
    let mut out = base
        .strip_suffix("}\n")
        .expect("bench JSON ends with its closing brace")
        .to_string();
    while out.ends_with('\n') {
        out.pop();
    }
    out.push_str(",\n  \"fleet_sweep\": {\n");
    let _ = writeln!(out, "    \"requests\": {},", outcome.requests);
    let _ = writeln!(
        out,
        "    \"detection_target\": {:.2},",
        outcome.detection_target
    );
    let _ = writeln!(
        out,
        "    \"invariants_hold\": {},",
        outcome.invariants_hold()
    );
    let _ = writeln!(out, "    \"points\": [");
    for (i, p) in outcome.points.iter().enumerate() {
        let comma = if i + 1 < outcome.points.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "      {{\"rate\": {:.4}, \"processes\": {}, \"detected\": {}, \
             \"fleet_observed\": {:.4}, \"fleet_predicted\": {:.4}, \"in_band\": {}, \
             \"false_positives\": {}}}{comma}",
            p.rate(),
            p.processes,
            p.detected,
            p.fleet_observed(),
            p.fleet_predicted(),
            p.in_band,
            p.false_positives
        );
    }
    let _ = writeln!(out, "    ],");
    let _ = writeln!(out, "    \"knees\": [");
    for (i, k) in outcome.knees.iter().enumerate() {
        let comma = if i + 1 < outcome.knees.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{\"rate\": {:.4}, \"knee_processes\": {}}}{comma}",
            f64::from(k.rate_ppm) / f64::from(PPM),
            match k.knee_processes {
                Some(n) => n.to_string(),
                None => "null".into(),
            }
        );
    }
    out.push_str("    ]\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SweepConfig {
        SweepConfig {
            seed0: 0,
            requests: Some(48),
            rates_ppm: vec![200_000, 500_000],
            sizes: vec![3, 12],
            detection_target: SWEEP_DETECTION_TARGET,
        }
    }

    #[test]
    fn sweep_grids_rates_by_sizes_and_finds_the_knee() {
        let outcome = run_fleet_sweep(&tiny_config(), 2, None).expect("sweep runs");
        assert_eq!(outcome.cells, 2 * 12);
        assert_eq!(outcome.points.len(), 4);
        assert_eq!(outcome.knees.len(), 2);
        // Prefix scoring: the size-3 point's counts are bounded by the
        // size-12 point's for the same rate.
        for rate in [200_000, 500_000] {
            let small = outcome
                .points
                .iter()
                .find(|p| p.rate_ppm == rate && p.processes == 3)
                .expect("grid point");
            let large = outcome
                .points
                .iter()
                .find(|p| p.rate_ppm == rate && p.processes == 12)
                .expect("grid point");
            assert!(small.detected <= large.detected);
        }
        assert!(outcome.invariants_hold(), "{outcome:?}");
        assert_eq!(outcome.false_positives(), 0);
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let a = run_fleet_sweep(&tiny_config(), 1, None).expect("sweep runs");
        let b = run_fleet_sweep(&tiny_config(), 4, None).expect("sweep runs");
        assert_eq!(render_fleet_sweep(&a), render_fleet_sweep(&b));
        assert_eq!(a.points, b.points);
        assert_eq!(a.knees, b.knees);
    }

    #[test]
    fn detection_rises_with_the_sampling_rate() {
        // The monotonicity the knee rests on: at a fixed fleet size, a
        // higher sampling rate never observes lower fleet-level detection
        // by prediction, and the observed counts stay in their bands.
        let outcome = run_fleet_sweep(&tiny_config(), 2, None).expect("sweep runs");
        let low = outcome
            .points
            .iter()
            .find(|p| p.rate_ppm == 200_000 && p.processes == 12)
            .expect("grid point");
        let high = outcome
            .points
            .iter()
            .find(|p| p.rate_ppm == 500_000 && p.processes == 12)
            .expect("grid point");
        assert!(high.fleet_predicted() > low.fleet_predicted());
    }

    #[test]
    fn sweep_rejects_bad_axes() {
        let mut config = tiny_config();
        config.rates_ppm.clear();
        assert!(run_fleet_sweep(&config, 1, None).is_err());

        let mut config = tiny_config();
        config.sizes = vec![0, 4];
        assert!(run_fleet_sweep(&config, 1, None).is_err());

        let mut config = tiny_config();
        config.rates_ppm = vec![2_000_000];
        assert!(run_fleet_sweep(&config, 1, None).is_err());

        let mut config = tiny_config();
        config.detection_target = 1.5;
        assert!(run_fleet_sweep(&config, 1, None).is_err());
    }

    #[test]
    fn sweep_json_splices_into_the_bench_schema() {
        let outcome = run_fleet_sweep(&tiny_config(), 2, None).expect("sweep runs");
        let base = "{\n  \"bench\": \"safemem-campaign\"\n}\n";
        let json = splice_sweep_json(base, &outcome);
        assert!(json.contains("\"fleet_sweep\": {"), "{json}");
        assert!(json.contains("\"knees\": ["), "{json}");
        assert!(json.contains("\"in_band\": true"), "{json}");
        assert!(json.ends_with("  }\n}\n"), "{json}");
    }
}
