//! A fully parameterised synthetic application.
//!
//! The seven Table-1 models fix their allocation rates, object sizes and
//! memory-access densities to mimic the real programs; this workload exposes
//! those knobs directly, so ablation benches can sweep them and show *why*
//! the Table 3 overheads spread the way they do: SafeMem's cost scales with
//! allocation frequency, Purify's with access density.

use crate::driver::{AppSpec, BugClass, Ctx, InputMode, RunConfig, Workload};
use safemem_core::{GroupKey, MemTool};
use safemem_os::Os;

const APP_ID: u64 = 99;
const SITE_OBJECT: u64 = 1;
const SITE_LEAK: u64 = 2;

/// Tunable request-loop parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SyntheticParams {
    /// malloc/free pairs per request.
    pub allocs_per_request: u64,
    /// Size of each allocation.
    pub object_bytes: u64,
    /// CPU cycles of application work per request.
    pub compute_per_request: u64,
    /// Memory-access instructions per 1000 compute cycles.
    pub density_permille: u64,
    /// Bytes of each buffer actually touched per request.
    pub touch_bytes: u64,
}

impl Default for SyntheticParams {
    fn default() -> Self {
        SyntheticParams {
            allocs_per_request: 2,
            object_bytes: 256,
            compute_per_request: 500_000,
            density_permille: 200,
            touch_bytes: 128,
        }
    }
}

/// The synthetic workload. In [`InputMode::Buggy`] it leaks one object per
/// 50 requests from a dedicated site (an SLeak).
#[derive(Debug, Clone, Copy)]
pub struct Synthetic {
    params: SyntheticParams,
}

impl Synthetic {
    /// Creates the workload with explicit parameters.
    #[must_use]
    pub fn new(params: SyntheticParams) -> Self {
        Synthetic { params }
    }

    /// The parameters in force.
    #[must_use]
    pub fn params(&self) -> SyntheticParams {
        self.params
    }
}

impl Default for Synthetic {
    fn default() -> Self {
        Synthetic::new(SyntheticParams::default())
    }
}

impl Workload for Synthetic {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "synthetic",
            loc: 0,
            description: "parameterised request loop for ablations",
            bug: BugClass::SLeak,
        }
    }

    fn default_requests(&self) -> u64 {
        500
    }

    fn true_leak_groups(&self) -> Vec<GroupKey> {
        vec![crate::driver::group_of(
            APP_ID,
            SITE_LEAK,
            self.params.object_bytes,
        )]
    }

    fn run(&self, os: &mut Os, tool: &mut dyn MemTool, cfg: &RunConfig) {
        let p = self.params;
        let mut ctx = Ctx::new(os, tool, APP_ID, cfg.seed);
        let requests = cfg.requests.unwrap_or_else(|| self.default_requests());
        for req in 0..requests {
            ctx.work(p.compute_per_request / 2, p.density_permille);
            for _ in 0..p.allocs_per_request {
                let a = ctx.alloc(SITE_OBJECT, p.object_bytes);
                ctx.fill(a, p.touch_bytes.min(p.object_bytes) as usize, req as u8);
                ctx.touch(a, p.touch_bytes.min(p.object_bytes) as usize);
                ctx.free(a);
            }
            if cfg.input == InputMode::Buggy && req % 50 == 0 {
                // The planted SLeak: allocated, filled, dropped.
                let leaked = ctx.alloc(SITE_LEAK, p.object_bytes);
                ctx.fill(leaked, 16, 0xEE);
            } else {
                let kept = ctx.alloc(SITE_LEAK, p.object_bytes);
                ctx.fill(kept, 16, 0x11);
                ctx.work(10_000, p.density_permille);
                ctx.free(kept);
            }
            ctx.work(p.compute_per_request / 2, p.density_permille);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_under;
    use safemem_core::{NullTool, SafeMem};

    #[test]
    fn overhead_grows_with_allocation_rate() {
        let overhead = |allocs: u64| {
            let params = SyntheticParams {
                allocs_per_request: allocs,
                ..SyntheticParams::default()
            };
            let w = Synthetic::new(params);
            let cfg = RunConfig {
                requests: Some(80),
                ..RunConfig::default()
            };
            let mut os = Os::with_defaults(1 << 24);
            let mut base = NullTool::new();
            let b = run_under(&w, &mut os, &mut base, &cfg);
            let mut os = Os::with_defaults(1 << 24);
            let mut tool = SafeMem::builder().build(&mut os);
            let t = run_under(&w, &mut os, &mut tool, &cfg);
            t.cpu_cycles as f64 / b.cpu_cycles as f64 - 1.0
        };
        let low = overhead(1);
        let high = overhead(16);
        assert!(
            high > 2.0 * low,
            "alloc-rate scaling: {low:.4} vs {high:.4}"
        );
    }

    #[test]
    fn planted_leak_is_detected() {
        let w = Synthetic::default();
        let cfg = RunConfig {
            input: InputMode::Buggy,
            requests: Some(400),
            ..RunConfig::default()
        };
        let mut os = Os::with_defaults(1 << 25);
        let mut tool = SafeMem::builder().build(&mut os);
        let result = run_under(&w, &mut os, &mut tool, &cfg);
        assert!(
            result.true_leaks(&w.true_leak_groups()) >= 1,
            "{:?}",
            result.reports
        );
    }
}
