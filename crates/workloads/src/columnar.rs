//! Struct-of-arrays trace layout for the campaign replay hot loop.
//!
//! A [`Trace`](crate::Trace) stores one Rust enum per operation: 48 bytes
//! of tagged union (plus a heap `Vec` per `Malloc` for its call-stack
//! frames) walked through a ten-arm `match`. Campaigns replay each recorded
//! trace once per panel tool, so that walk — pointer-chasing, cold per-op
//! payloads, unpredictable dispatch — is the inner loop of every preset.
//!
//! [`ColumnarTrace`] flattens the same op stream into parallel columns:
//! one byte of op kind, one `u32` slot id, one `i64` offset, one `u32`
//! length and one `u8` fill byte per op, plus *side columns* — a packed
//! freed-access flag bitset, the marker classes in emission order, and all
//! call-stack frames flattened into a single `u64` array with per-malloc
//! lengths. The replay scan streams these columns front to back: each
//! column is dense and homogeneous, the kind byte drives one well-predicted
//! jump table, and nothing in the loop allocates.
//!
//! Replay behaviour is bit-for-bit identical to [`Replayer`]
//! (`crate::Replayer`), which stays as the differential reference together
//! with `Trace::replay_naive`; `tests/` replays golden campaign seeds and
//! proptest-generated synthetic traces through both engines and asserts
//! equal [`RunResult`]s.

use crate::driver::RunResult;
use crate::trace::{Trace, TraceOp};
use safemem_core::{CallStack, IncidentClass, MemTool};
use safemem_os::Os;

/// Dense op discriminant for the kind column. The numeric values are an
/// internal layout detail (they never leave the process; the on-disk corpus
/// stores the text op tags).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpKind {
    /// Binds the next dense slot id; frames live in the side columns.
    Malloc = 0,
    /// Frees a live slot (no-op on a retired slot).
    Free = 1,
    /// Reads `len` bytes at `offset` within a live slot.
    Read = 2,
    /// Writes `len` bytes of `fill` at `offset` within a live slot.
    Write = 3,
    /// CPU work: `offset` holds cycles; the memory-access count is split
    /// across the slot (high 32 bits) and length (low 32 bits) columns.
    Compute = 4,
    /// Blocking I/O: `offset` holds nanoseconds.
    Io = 5,
    /// Ground-truth incident marker; the class sits in the marker column.
    Marker = 6,
}

/// Flag bit marking a retired (freed) slot, mirroring the [`Replayer`]
/// slot-map encoding: heap virtual addresses never reach bit 63.
const RETIRED: u64 = 1 << 63;

/// A recorded op stream flattened to struct-of-arrays columns.
///
/// Build one with [`ColumnarTrace::from_trace`]; replay it with
/// [`ColumnarTrace::replay`] or, reusing buffers across traces, with
/// [`ColumnarReplayer::replay`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnarTrace {
    /// Op kind per operation.
    kinds: Vec<OpKind>,
    /// Slot (buffer) id per operation; 0 where the kind has no slot.
    slots: Vec<u32>,
    /// Byte offset within the slot's buffer; cycles for `Compute`,
    /// nanoseconds (bit-cast) for `Io`; 0 where unused.
    offsets: Vec<i64>,
    /// Access length; memory accesses for `Compute`; 0 where unused.
    lens: Vec<u32>,
    /// Fill byte for writes; 0 where unused.
    fills: Vec<u8>,
    /// Side column: packed bitset, bit `i` set = op `i` targets a *freed*
    /// slot (`ReadFreed`/`WriteFreed`/`FreeAgain` in the enum layout).
    freed: Vec<u64>,
    /// Side column: marker classes in emission order, consumed by a cursor
    /// at each `Marker` kind.
    markers: Vec<IncidentClass>,
    /// Side column: call-stack frames of every `Malloc`, flattened.
    frames: Vec<u64>,
    /// Side column: frames-per-malloc, consumed by a cursor.
    frame_lens: Vec<u32>,
}

impl ColumnarTrace {
    /// Flattens an enum-layout trace into columns. Pure layout change: the
    /// op stream, ids and payloads are preserved exactly.
    #[must_use]
    pub fn from_trace(trace: &Trace) -> Self {
        let n = trace.len();
        let mut t = ColumnarTrace {
            kinds: Vec::with_capacity(n),
            slots: Vec::with_capacity(n),
            offsets: Vec::with_capacity(n),
            lens: Vec::with_capacity(n),
            fills: Vec::with_capacity(n),
            freed: vec![0u64; n.div_ceil(64)],
            markers: Vec::new(),
            frames: Vec::new(),
            frame_lens: Vec::new(),
        };
        for (i, op) in trace.ops().iter().enumerate() {
            let (kind, slot, offset, len, fill) = match op {
                TraceOp::Malloc { size, frames } => {
                    t.frames.extend_from_slice(frames);
                    t.frame_lens.push(frames.len() as u32);
                    #[allow(clippy::cast_possible_wrap)]
                    (OpKind::Malloc, 0, *size as i64, 0, 0)
                }
                TraceOp::Free { id } => (OpKind::Free, *id, 0, 0, 0),
                TraceOp::Read { id, offset, len } => (OpKind::Read, *id, *offset, *len, 0),
                TraceOp::Write {
                    id,
                    offset,
                    len,
                    fill,
                } => (OpKind::Write, *id, *offset, *len, *fill),
                TraceOp::Compute {
                    cycles,
                    mem_accesses,
                } =>
                {
                    #[allow(clippy::cast_possible_wrap, clippy::cast_possible_truncation)]
                    (
                        OpKind::Compute,
                        (*mem_accesses >> 32) as u32,
                        *cycles as i64,
                        *mem_accesses as u32,
                        0,
                    )
                }
                TraceOp::Io { ns } =>
                {
                    #[allow(clippy::cast_possible_wrap)]
                    (OpKind::Io, 0, *ns as i64, 0, 0)
                }
                TraceOp::ReadFreed { id, offset, len } => {
                    t.freed[i / 64] |= 1u64 << (i % 64);
                    (OpKind::Read, *id, *offset, *len, 0)
                }
                TraceOp::WriteFreed {
                    id,
                    offset,
                    len,
                    fill,
                } => {
                    t.freed[i / 64] |= 1u64 << (i % 64);
                    (OpKind::Write, *id, *offset, *len, *fill)
                }
                TraceOp::FreeAgain { id } => {
                    t.freed[i / 64] |= 1u64 << (i % 64);
                    (OpKind::Free, *id, 0, 0, 0)
                }
                TraceOp::Marker { kind } => {
                    t.markers.push(*kind);
                    (OpKind::Marker, 0, 0, 0, 0)
                }
            };
            t.kinds.push(kind);
            t.slots.push(slot);
            t.offsets.push(offset);
            t.lens.push(len);
            t.fills.push(fill);
        }
        t
    }

    /// Number of operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the trace holds no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Number of `Malloc` ops — the binomial `n` for sampling statistics,
    /// identical to [`Trace::malloc_count`] on the source trace.
    #[must_use]
    pub fn malloc_count(&self) -> u64 {
        self.frame_lens.len() as u64
    }

    /// Replays against a tool with fresh buffers. Campaign loops should
    /// hold a [`ColumnarReplayer`] and reuse it instead.
    pub fn replay(&self, os: &mut Os, tool: &mut dyn MemTool) -> RunResult {
        ColumnarReplayer::new().replay(self, os, tool)
    }
}

/// Reusable buffers for the columnar replay scan — the struct-of-arrays
/// counterpart of [`Replayer`](crate::Replayer), with identical semantics:
/// dense slot map with a retired-flag bit, one grow-only scratch payload,
/// freed accesses skipped unless the op carries the freed flag, and a debug
/// assertion on ids no `Malloc` ever bound.
#[derive(Debug, Default)]
pub struct ColumnarReplayer {
    addrs: Vec<u64>,
    scratch: Vec<u8>,
}

impl ColumnarReplayer {
    /// Creates a replayer with empty buffers.
    #[must_use]
    pub fn new() -> Self {
        ColumnarReplayer::default()
    }

    fn scratch_mut(&mut self, len: usize) -> &mut [u8] {
        if self.scratch.len() < len {
            self.scratch.resize(len, 0);
        }
        &mut self.scratch[..len]
    }

    /// Replays a columnar trace. Equivalent to
    /// [`Replayer::replay`](crate::Replayer::replay) on the source trace;
    /// the differential suites assert equal [`RunResult`]s over golden
    /// campaign seeds and proptest-generated op streams.
    pub fn replay(
        &mut self,
        trace: &ColumnarTrace,
        os: &mut Os,
        tool: &mut dyn MemTool,
    ) -> RunResult {
        self.addrs.clear();
        let mut marker_cursor = 0usize;
        let mut frame_cursor = 0usize;
        let mut malloc_cursor = 0usize;
        for i in 0..trace.kinds.len() {
            let slot = trace.slots[i] as usize;
            let freed = trace.freed[i / 64] >> (i % 64) & 1 != 0;
            match trace.kinds[i] {
                OpKind::Malloc => {
                    let nframes = trace.frame_lens[malloc_cursor] as usize;
                    malloc_cursor += 1;
                    let frames = &trace.frames[frame_cursor..frame_cursor + nframes];
                    frame_cursor += nframes;
                    let stack = CallStack::new(frames);
                    #[allow(clippy::cast_sign_loss)]
                    let size = trace.offsets[i] as u64;
                    self.addrs.push(tool.malloc(os, size, &stack));
                }
                OpKind::Free => {
                    debug_assert!(
                        slot < self.addrs.len(),
                        "trace frees id {slot} but only {} ids were bound",
                        self.addrs.len()
                    );
                    match self.addrs.get_mut(slot) {
                        Some(s) if !freed && *s & RETIRED == 0 => {
                            let addr = *s;
                            *s = addr | RETIRED;
                            tool.free(os, addr);
                        }
                        Some(s) if freed && *s & RETIRED != 0 => {
                            let addr = *s & !RETIRED;
                            tool.free(os, addr);
                        }
                        _ => {}
                    }
                }
                OpKind::Read => {
                    debug_assert!(
                        slot < self.addrs.len(),
                        "trace reads id {slot} but only {} ids were bound",
                        self.addrs.len()
                    );
                    match self.addrs.get(slot).copied() {
                        Some(a) if (a & RETIRED != 0) == freed => {
                            let addr = (a & !RETIRED).wrapping_add_signed(trace.offsets[i]);
                            let buf = self.scratch_mut(trace.lens[i] as usize);
                            tool.read(os, addr, buf);
                        }
                        _ => {}
                    }
                }
                OpKind::Write => {
                    debug_assert!(
                        slot < self.addrs.len(),
                        "trace writes id {slot} but only {} ids were bound",
                        self.addrs.len()
                    );
                    match self.addrs.get(slot).copied() {
                        Some(a) if (a & RETIRED != 0) == freed => {
                            let addr = (a & !RETIRED).wrapping_add_signed(trace.offsets[i]);
                            let fill = trace.fills[i];
                            let data = self.scratch_mut(trace.lens[i] as usize);
                            data.fill(fill);
                            tool.write(os, addr, data);
                        }
                        _ => {}
                    }
                }
                OpKind::Compute => {
                    #[allow(clippy::cast_sign_loss)]
                    let cycles = trace.offsets[i] as u64;
                    let mem_accesses = (slot as u64) << 32 | u64::from(trace.lens[i]);
                    tool.compute(os, cycles, mem_accesses);
                }
                OpKind::Io => {
                    #[allow(clippy::cast_sign_loss)]
                    os.io_wait_ns(trace.offsets[i] as u64);
                }
                OpKind::Marker => {
                    tool.mark_incident(trace.markers[marker_cursor]);
                    marker_cursor += 1;
                }
            }
        }
        tool.finish(os);
        RunResult {
            cpu_cycles: os.cpu_cycles(),
            reports: tool.reports(),
            heap_stats: tool.heap().stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safemem_core::{NullTool, SafeMem};

    fn uaf_trace() -> Trace {
        let mut t = Trace::new();
        t.push(TraceOp::Malloc {
            size: 100,
            frames: vec![0x1, 0x2],
        });
        t.push(TraceOp::Write {
            id: 0,
            offset: 0,
            len: 100,
            fill: 7,
        });
        t.push(TraceOp::Compute {
            cycles: 5000,
            mem_accesses: 120,
        });
        t.push(TraceOp::Free { id: 0 });
        t.push(TraceOp::ReadFreed {
            id: 0,
            offset: 16,
            len: 8,
        });
        t.push(TraceOp::Marker {
            kind: IncidentClass::UseAfterFree,
        });
        t.push(TraceOp::FreeAgain { id: 0 });
        t.push(TraceOp::Marker {
            kind: IncidentClass::DoubleFree,
        });
        t.push(TraceOp::Io { ns: 1500 });
        t
    }

    #[test]
    fn columnar_replay_matches_enum_replay_on_freed_ops() {
        let t = uaf_trace();
        let col = ColumnarTrace::from_trace(&t);
        assert_eq!(col.len(), t.len());
        assert_eq!(col.malloc_count(), t.malloc_count());
        let enum_run = {
            let mut os = Os::with_defaults(1 << 22);
            let mut tool = SafeMem::builder().leak_detection(false).build(&mut os);
            t.replay(&mut os, &mut tool)
        };
        let col_run = {
            let mut os = Os::with_defaults(1 << 22);
            let mut tool = SafeMem::builder().leak_detection(false).build(&mut os);
            col.replay(&mut os, &mut tool)
        };
        assert_eq!(enum_run, col_run);
        assert!(col_run.corruption_detected());
    }

    #[test]
    fn accesses_to_freed_slots_are_skipped_without_the_flag() {
        let mut t = Trace::new();
        t.push(TraceOp::Malloc {
            size: 16,
            frames: vec![0x1],
        });
        t.push(TraceOp::Free { id: 0 });
        t.push(TraceOp::Read {
            id: 0,
            offset: 0,
            len: 8,
        });
        let col = ColumnarTrace::from_trace(&t);
        let mut os = Os::with_defaults(1 << 22);
        let mut tool = NullTool::new();
        let result = col.replay(&mut os, &mut tool);
        assert!(result.reports.is_empty());
    }

    #[test]
    fn replayer_reuse_across_traces_is_clean() {
        let a = uaf_trace();
        let mut b = Trace::new();
        b.push(TraceOp::Malloc {
            size: 32,
            frames: vec![0x9],
        });
        b.push(TraceOp::Write {
            id: 0,
            offset: 0,
            len: 32,
            fill: 5,
        });
        b.push(TraceOp::Free { id: 0 });
        let (ca, cb) = (ColumnarTrace::from_trace(&a), ColumnarTrace::from_trace(&b));
        let fresh = {
            let mut os = Os::with_defaults(1 << 22);
            let mut tool = SafeMem::builder().build(&mut os);
            cb.replay(&mut os, &mut tool)
        };
        let mut r = ColumnarReplayer::new();
        let mut os = Os::with_defaults(1 << 22);
        let mut tool = SafeMem::builder().build(&mut os);
        r.replay(&ca, &mut os, &mut tool);
        let mut os = Os::with_defaults(1 << 22);
        let mut tool = SafeMem::builder().build(&mut os);
        let reused = r.replay(&cb, &mut os, &mut tool);
        assert_eq!(fresh, reused);
    }

    #[test]
    fn compute_payloads_survive_wide_mem_access_counts() {
        let mut t = Trace::new();
        t.push(TraceOp::Compute {
            cycles: u64::MAX / 2,
            mem_accesses: (7u64 << 32) | 123,
        });
        let col = ColumnarTrace::from_trace(&t);
        let run_enum = {
            let mut os = Os::with_defaults(1 << 22);
            let mut tool = NullTool::new();
            t.replay(&mut os, &mut tool)
        };
        let run_col = {
            let mut os = Os::with_defaults(1 << 22);
            let mut tool = NullTool::new();
            col.replay(&mut os, &mut tool)
        };
        assert_eq!(run_enum, run_col);
    }
}
