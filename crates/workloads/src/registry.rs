//! The application registry: Table 1 as code.

use crate::apps::{
    ChurnLeak, ChurnObo, ChurnUaf, CveDfree, CveFmt, CveObo, CveUaf, Gzip, Httpd, Proftpd, Squid1,
    Squid2, Tar, Ypserv1, Ypserv2,
};
use crate::driver::Workload;

/// All seven evaluated applications in the paper's Table 1/3 order:
/// the memory-leak group first, then the memory-corruption group.
#[must_use]
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Ypserv1),
        Box::new(Proftpd),
        Box::new(Squid1),
        Box::new(Ypserv2),
        Box::new(Gzip),
        Box::new(Tar),
        Box::new(Squid2),
    ]
}

/// Extension workloads beyond the paper's Table 1 (the future-work
/// direction of evaluating more applications).
#[must_use]
pub fn extension_workloads() -> Vec<Box<dyn Workload>> {
    vec![Box::new(Httpd)]
}

/// The synthetic-CVE corruption arena (see [`crate::apps::cve`]): scheduled
/// corruption patterns with ground-truth incident markers, driven by the
/// `arena` campaign preset.
#[must_use]
pub fn cve_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(CveUaf),
        Box::new(CveDfree),
        Box::new(CveObo),
        Box::new(CveFmt),
    ]
}

/// The connection-churn server family (see [`crate::apps::churn`]):
/// per-process programs of the fleet simulation, driven by the `fleet`
/// campaign preset.
#[must_use]
pub fn churn_workloads() -> Vec<Box<dyn Workload>> {
    vec![Box::new(ChurnLeak), Box::new(ChurnUaf), Box::new(ChurnObo)]
}

/// Looks an application up by name, searching Table 1 first, then the
/// extension workloads, then the synthetic-CVE arena, then the fleet churn
/// family.
#[must_use]
pub fn workload_by_name(name: &str) -> Option<Box<dyn Workload>> {
    all_workloads()
        .into_iter()
        .chain(extension_workloads())
        .chain(cve_workloads())
        .chain(churn_workloads())
        .find(|w| w.spec().name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::BugClass;

    #[test]
    fn registry_matches_table_1() {
        let all = all_workloads();
        assert_eq!(all.len(), 7);
        let names: Vec<&str> = all.iter().map(|w| w.spec().name).collect();
        assert_eq!(
            names,
            ["ypserv1", "proftpd", "squid1", "ypserv2", "gzip", "tar", "squid2"]
        );
        let leaks = all.iter().filter(|w| w.spec().bug.is_leak()).count();
        assert_eq!(leaks, 4, "four leak apps, three corruption apps");
    }

    #[test]
    fn leak_apps_declare_ground_truth() {
        for w in all_workloads() {
            if w.spec().bug.is_leak() {
                assert!(!w.true_leak_groups().is_empty(), "{}", w.spec().name);
            } else {
                assert!(w.true_leak_groups().is_empty(), "{}", w.spec().name);
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload_by_name("gzip").is_some());
        assert!(workload_by_name("nginx").is_none());
        assert_eq!(
            workload_by_name("squid2").unwrap().spec().bug,
            BugClass::UseAfterFree
        );
    }

    #[test]
    fn cve_arena_is_separate_but_reachable() {
        assert_eq!(all_workloads().len(), 7, "Table 1 stays authoritative");
        let names: Vec<&str> = cve_workloads().iter().map(|w| w.spec().name).collect();
        assert_eq!(names, ["cve-uaf", "cve-dfree", "cve-obo", "cve-fmt"]);
        assert!(workload_by_name("cve-dfree").is_some());
        for w in cve_workloads() {
            assert!(!w.spec().bug.is_leak(), "{}", w.spec().name);
            assert!(w.true_leak_groups().is_empty(), "{}", w.spec().name);
        }
        assert!(
            cve_workloads()
                .iter()
                .filter(|w| w.records_freed_accesses())
                .count()
                == 2,
            "uaf and dfree need freed-tracking recording"
        );
    }

    #[test]
    fn churn_family_is_separate_but_reachable() {
        assert_eq!(all_workloads().len(), 7, "Table 1 stays authoritative");
        let names: Vec<&str> = churn_workloads().iter().map(|w| w.spec().name).collect();
        assert_eq!(names, ["churn-leak", "churn-uaf", "churn-obo"]);
        for name in names {
            assert!(workload_by_name(name).is_some(), "{name}");
        }
        let leak = workload_by_name("churn-leak").unwrap();
        assert_eq!(leak.true_leak_groups().len(), 1);
        assert!(workload_by_name("churn-uaf")
            .unwrap()
            .records_freed_accesses());
    }

    #[test]
    fn extensions_are_separate_from_table_1() {
        assert_eq!(all_workloads().len(), 7, "Table 1 stays authoritative");
        assert!(extension_workloads()
            .iter()
            .any(|w| w.spec().name == "httpd"));
        assert!(workload_by_name("httpd").is_some(), "but reachable by name");
    }
}
