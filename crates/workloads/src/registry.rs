//! The application registry: Table 1 as code.

use crate::apps::{Gzip, Httpd, Proftpd, Squid1, Squid2, Tar, Ypserv1, Ypserv2};
use crate::driver::Workload;

/// All seven evaluated applications in the paper's Table 1/3 order:
/// the memory-leak group first, then the memory-corruption group.
#[must_use]
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Ypserv1),
        Box::new(Proftpd),
        Box::new(Squid1),
        Box::new(Ypserv2),
        Box::new(Gzip),
        Box::new(Tar),
        Box::new(Squid2),
    ]
}

/// Extension workloads beyond the paper's Table 1 (the future-work
/// direction of evaluating more applications).
#[must_use]
pub fn extension_workloads() -> Vec<Box<dyn Workload>> {
    vec![Box::new(Httpd)]
}

/// Looks an application up by name, searching Table 1 first, then the
/// extension workloads.
#[must_use]
pub fn workload_by_name(name: &str) -> Option<Box<dyn Workload>> {
    all_workloads()
        .into_iter()
        .chain(extension_workloads())
        .find(|w| w.spec().name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::BugClass;

    #[test]
    fn registry_matches_table_1() {
        let all = all_workloads();
        assert_eq!(all.len(), 7);
        let names: Vec<&str> = all.iter().map(|w| w.spec().name).collect();
        assert_eq!(
            names,
            ["ypserv1", "proftpd", "squid1", "ypserv2", "gzip", "tar", "squid2"]
        );
        let leaks = all.iter().filter(|w| w.spec().bug.is_leak()).count();
        assert_eq!(leaks, 4, "four leak apps, three corruption apps");
    }

    #[test]
    fn leak_apps_declare_ground_truth() {
        for w in all_workloads() {
            if w.spec().bug.is_leak() {
                assert!(!w.true_leak_groups().is_empty(), "{}", w.spec().name);
            } else {
                assert!(w.true_leak_groups().is_empty(), "{}", w.spec().name);
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload_by_name("gzip").is_some());
        assert!(workload_by_name("nginx").is_none());
        assert_eq!(
            workload_by_name("squid2").unwrap().spec().bug,
            BugClass::UseAfterFree
        );
    }

    #[test]
    fn extensions_are_separate_from_table_1() {
        assert_eq!(all_workloads().len(), 7, "Table 1 stays authoritative");
        assert!(extension_workloads()
            .iter()
            .any(|w| w.spec().name == "httpd"));
        assert!(workload_by_name("httpd").is_some(), "but reachable by name");
    }
}
