//! Behavioural models of the SafeMem paper's seven evaluated applications,
//! plus the driver that runs them under any [`MemTool`](safemem_core::MemTool).
//!
//! Table 1 of the paper lists the applications; each model in [`apps`]
//! reproduces the allocation/access behaviour that its row of Tables 3–5
//! and Figure 3 depends on. The [`driver`] module provides the run
//! configuration (normal vs buggy inputs, §5), deterministic seeding so
//! per-tool overhead comparisons are apples-to-apples, and ground-truth
//! bookkeeping for false-positive counting.
//!
//! # Example
//!
//! ```
//! use safemem_core::SafeMem;
//! use safemem_os::Os;
//! use safemem_workloads::{run_under, InputMode, RunConfig, Workload};
//! use safemem_workloads::apps::Gzip;
//!
//! let mut os = Os::with_defaults(1 << 25);
//! let mut tool = SafeMem::builder().build(&mut os);
//! let cfg = RunConfig { input: InputMode::Buggy, requests: Some(10), ..RunConfig::default() };
//! let result = run_under(&Gzip, &mut os, &mut tool, &cfg);
//! assert!(result.corruption_detected());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod columnar;
pub mod driver;
pub mod registry;
pub mod synthetic;
pub mod trace;

pub use columnar::{ColumnarReplayer, ColumnarTrace, OpKind};
pub use driver::{
    group_of, run_under, AppSpec, BugClass, Ctx, FpPool, InputMode, RunConfig, RunResult, Workload,
};
pub use registry::{
    all_workloads, churn_workloads, cve_workloads, extension_workloads, workload_by_name,
};
pub use synthetic::{Synthetic, SyntheticParams};
pub use trace::{Recorder, Replayer, Trace, TraceOp};
