//! `proftpd`: an FTP server with a **transfer-buffer leak** (Table 1).
//!
//! Each session opens a control connection and performs several data
//! transfers through an 8 KiB transfer buffer. On the aborted-transfer path
//! (~5 % of buggy-input sessions) the buffer of the aborted transfer is
//! never released. Nine long-lived per-module state objects generate the 9
//! pre-pruning false positives of Table 5.

use crate::driver::{group_of, AppSpec, BugClass, Ctx, FpPool, InputMode, RunConfig, Workload};
use safemem_core::{GroupKey, MemTool};
use safemem_os::Os;

const APP_ID: u64 = 2;
const SITE_CONTROL: u64 = 1;
const SITE_XFER: u64 = 0x70;
const SITE_FP_BASE: u64 = 0x80;
const XFER_SIZE: u64 = 8192;
const FP_COUNT: usize = 9;
const FP_SIZE: u64 = 256;

/// The proftpd model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Proftpd;

impl Workload for Proftpd {
    fn spec(&self) -> AppSpec {
        AppSpec {
            name: "proftpd",
            loc: 68_700,
            description: "an ftp server",
            bug: BugClass::SLeak,
        }
    }

    fn default_requests(&self) -> u64 {
        350 // sessions
    }

    fn true_leak_groups(&self) -> Vec<GroupKey> {
        vec![group_of(APP_ID, SITE_XFER, XFER_SIZE)]
    }

    fn run(&self, os: &mut Os, tool: &mut dyn MemTool, cfg: &RunConfig) {
        let mut ctx = Ctx::new(os, tool, APP_ID, cfg.seed);
        let sessions = cfg.requests.unwrap_or_else(|| self.default_requests());
        let fp = FpPool::init(&mut ctx, SITE_FP_BASE, FP_COUNT, FP_SIZE, 6, 0);

        for session in 0..sessions {
            // Login handshake.
            ctx.io(80_000);
            ctx.work(400_000, 140);
            let control = ctx.alloc(SITE_CONTROL, 512);
            ctx.fill(control, 512, 0x10);

            // 2–4 file transfers per session.
            let transfers = 2 + ctx.rand(3);
            for t in 0..transfers {
                let xfer = ctx.alloc(SITE_XFER, XFER_SIZE);
                // Stream file data through the buffer (disk + net I/O).
                ctx.fill(xfer, 4096, 0x77);
                ctx.work(700_000, 140);
                ctx.io(120_000);
                ctx.touch(xfer, 2048);

                // The bug: the ABOR handler tears down the transfer state
                // but forgets the data buffer.
                let aborted = cfg.input == InputMode::Buggy && t == transfers - 1 && ctx.chance(50);
                if !aborted {
                    ctx.free(xfer);
                }
            }

            fp.churn(&mut ctx, session);
            fp.touch(&mut ctx, session);

            ctx.touch(control, 128);
            ctx.free(control);
            ctx.io(40_000);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_under;
    use safemem_core::SafeMem;

    #[test]
    fn safemem_detects_the_transfer_leak() {
        let mut os = Os::with_defaults(1 << 26);
        let mut tool = SafeMem::builder().build(&mut os);
        let cfg = RunConfig {
            input: InputMode::Buggy,
            requests: Some(250),
            ..RunConfig::default()
        };
        let result = run_under(&Proftpd, &mut os, &mut tool, &cfg);
        let truth = Proftpd.true_leak_groups();
        assert!(
            result.true_leaks(&truth) >= 1,
            "leak detected: {:?}",
            result.reports
        );
        assert_eq!(result.false_leaks(&truth), 0, "{:?}", result.reports);
    }

    #[test]
    fn normal_sessions_leak_nothing() {
        let mut os = Os::with_defaults(1 << 26);
        let mut tool = SafeMem::builder().build(&mut os);
        let cfg = RunConfig {
            requests: Some(200),
            ..RunConfig::default()
        };
        let result = run_under(&Proftpd, &mut os, &mut tool, &cfg);
        assert_eq!(result.leak_groups().len(), 0, "{:?}", result.reports);
        // All transfer buffers were freed.
        assert_eq!(
            result.heap_stats.live_payload % XFER_SIZE,
            result.heap_stats.live_payload % XFER_SIZE
        );
    }
}
