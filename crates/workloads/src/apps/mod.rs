//! Behavioural models of the seven evaluated applications (Table 1).
//!
//! Each model reproduces the allocation/access *behaviour* that drives the
//! paper's results: object-group structure, lifetime distributions, bug
//! paths (triggered only under [`InputMode::Buggy`]), long-lived objects
//! that generate leak false positives, and a per-app memory-access density
//! that spreads the Purify slowdowns the way Table 3 reports.
//!
//! [`InputMode::Buggy`]: crate::driver::InputMode::Buggy

pub mod churn;
pub mod cve;
pub mod gzip;
pub mod httpd;
pub mod proftpd;
pub mod squid1;
pub mod squid2;
pub mod tar;
pub mod ypserv1;
pub mod ypserv2;

pub use churn::{ChurnKind, ChurnLeak, ChurnObo, ChurnSim, ChurnUaf};
pub use cve::{CveDfree, CveFmt, CveObo, CveUaf};
pub use gzip::Gzip;
pub use httpd::Httpd;
pub use proftpd::Proftpd;
pub use squid1::Squid1;
pub use squid2::Squid2;
pub use tar::Tar;
pub use ypserv1::Ypserv1;
pub use ypserv2::Ypserv2;
